file(REMOVE_RECURSE
  "CMakeFiles/laperm_mem.dir/mem/cache.cc.o"
  "CMakeFiles/laperm_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/laperm_mem.dir/mem/dram.cc.o"
  "CMakeFiles/laperm_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/laperm_mem.dir/mem/mem_system.cc.o"
  "CMakeFiles/laperm_mem.dir/mem/mem_system.cc.o.d"
  "liblaperm_mem.a"
  "liblaperm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
