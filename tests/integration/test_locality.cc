/**
 * @file
 * End-to-end locality properties: on a workload engineered so children
 * reuse exactly what their parents produced, LaPerm must deliver the
 * cache-behaviour ordering the paper claims.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/**
 * Producer/consumer grid: parent TB t reads input tile t, writes
 * output tile t (stores), then launches a child that re-reads both.
 * Input-tile reuse is L1-visible (read-read); output-tile reuse is
 * L2-only (the L1 is write-evict, so stores never populate it).
 * Tiles are disjoint, so any interference is pure scheduling effect.
 */
LaunchRequest
producerConsumer(std::uint32_t tiles, std::uint32_t tile_lines)
{
    constexpr Addr kIn = 0x4000000;
    constexpr Addr kOut = 0x8000000;
    auto line_of = [=](Addr base, std::uint32_t tile, std::uint32_t l) {
        return base +
               (static_cast<Addr>(tile) * tile_lines + l) * kLineBytes;
    };
    auto child_for = [=](std::uint32_t tile) {
        return std::make_shared<LambdaProgram>(
            "consume", 8101, [=](ThreadCtx &c) {
                for (std::uint32_t l = c.threadIndex(); l < tile_lines;
                     l += c.threadsPerTb()) {
                    c.ld(line_of(kIn, tile, l), 4);
                    c.ld(line_of(kOut, tile, l), 4);
                    c.alu(4);
                }
            });
    };
    auto parent = std::make_shared<LambdaProgram>(
        "produce", 8100, [=](ThreadCtx &c) {
            std::uint32_t tile = c.tbIndex();
            for (std::uint32_t l = c.threadIndex(); l < tile_lines;
                 l += c.threadsPerTb()) {
                c.ld(line_of(kIn, tile, l), 4);
                c.alu(8);
                c.st(line_of(kOut, tile, l), 4);
            }
            if (c.threadIndex() == 0)
                c.launch({child_for(tile), 1, 64});
            // Trailing work: the parent TB stays resident after the
            // launch (as real kernels do), so an unbound child lands
            // on whichever SMX frees a slot first.
            c.bar();
            c.alu(400);
            for (std::uint32_t l = c.threadIndex(); l < tile_lines;
                 l += c.threadsPerTb()) {
                c.ld(line_of(kIn, tile, l), 4);
                c.alu(8);
            }
        });
    return {parent, tiles, 64};
}

GpuStats
runPolicy(TbPolicy policy, std::uint32_t l2_kb)
{
    GpuConfig cfg;
    cfg.numSmx = 4;
    cfg.maxThreadsPerSmx = 512;
    cfg.maxTbsPerSmx = 4;
    cfg.l1Size = 16 * 1024;
    cfg.l2Size = l2_kb * 1024;
    cfg.l2Assoc = 8;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.dtblLaunchLatency = 30;
    cfg.tbPolicy = policy;
    Gpu gpu(cfg);
    // 256 tiles x 16 lines = 512 KB of produced data: far beyond L2,
    // so late consumers find their tile evicted.
    gpu.launchHostKernel(producerConsumer(256, 16));
    gpu.runToIdle();
    return gpu.stats();
}

} // namespace

TEST(LocalityIntegration, TbPriImprovesL2OverRr)
{
    GpuStats rr = runPolicy(TbPolicy::RR, 64);
    GpuStats pri = runPolicy(TbPolicy::TbPri, 64);
    EXPECT_GT(pri.l2.hitRate(), rr.l2.hitRate() + 0.05)
        << "children scheduled early must find parent data in L2";
}

TEST(LocalityIntegration, AdaptiveBindImprovesL1OverTbPri)
{
    GpuStats pri = runPolicy(TbPolicy::TbPri, 64);
    GpuStats bind = runPolicy(TbPolicy::AdaptiveBind, 64);
    EXPECT_GT(bind.l1Total().hitRate(), pri.l1Total().hitRate())
        << "binding children to the parent SMX must add L1 reuse";
}

TEST(LocalityIntegration, AdaptiveBindNoSlowerThanSmxBind)
{
    GpuStats bind = runPolicy(TbPolicy::SmxBind, 64);
    GpuStats adaptive = runPolicy(TbPolicy::AdaptiveBind, 64);
    EXPECT_LE(static_cast<double>(adaptive.cycles),
              static_cast<double>(bind.cycles) * 1.02);
}

TEST(LocalityIntegration, LaPermBeatsRrWhenWorkingSetExceedsL2)
{
    GpuStats rr = runPolicy(TbPolicy::RR, 64);
    GpuStats laperm = runPolicy(TbPolicy::AdaptiveBind, 64);
    EXPECT_LT(laperm.cycles, rr.cycles)
        << "the headline result: LaPerm outperforms round-robin";
}

TEST(LocalityIntegration, GainShrinksWhenEverythingFitsInL2)
{
    // With a cache big enough to hold all tiles, RR's late children
    // still hit: the policies converge (the locality headroom is the
    // working-set/cache-size gap).
    GpuStats rr = runPolicy(TbPolicy::RR, 4096);
    GpuStats laperm = runPolicy(TbPolicy::AdaptiveBind, 4096);
    double big_gain = static_cast<double>(rr.cycles) /
                      static_cast<double>(laperm.cycles);

    GpuStats rr_small = runPolicy(TbPolicy::RR, 64);
    GpuStats laperm_small = runPolicy(TbPolicy::AdaptiveBind, 64);
    double small_gain = static_cast<double>(rr_small.cycles) /
                        static_cast<double>(laperm_small.cycles);

    EXPECT_GT(small_gain, big_gain);
}
