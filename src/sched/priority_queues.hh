/**
 * @file
 * The priority-queue structure of Figure 5: L+1 FCFS queues of dispatch
 * units (level 0 = host kernels), with on-chip SRAM capacity and a
 * global-memory overflow buffer modeled by a fetch delay.
 */

#ifndef LAPERM_SCHED_PRIORITY_QUEUES_HH
#define LAPERM_SCHED_PRIORITY_QUEUES_HH

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "common/types.hh"
#include "sched/dispatch_unit.hh"
#include "sim/dispatch_gate.hh"
#include "sim/stats.hh"

namespace laperm {

/**
 * One set of priority queues (levels 0..L). Used directly by TB-Pri and
 * replicated per SMX (or cluster) by SMX-Bind / Adaptive-Bind.
 */
class PriorityQueues
{
  public:
    /**
     * @param levels number of levels (L + 1).
     * @param onchip_capacity entries resident in SRAM; further entries
     *        overflow to global memory (kept FCFS, fetched on demand).
     *        0 means unlimited (no overflow modeling).
     */
    PriorityQueues(std::uint32_t levels, std::uint32_t onchip_capacity);

    /**
     * Append @p unit to its priority level. If the SRAM is full the
     * entry spills to the global-memory overflow buffer: it becomes
     * visible to the dispatcher only after @p fetch_latency (the
     * paper's Section IV-E insertion cost, largely hidden by the TB
     * setup; the SRAM refill itself is prefetched by hardware and not
     * modeled as a dispatch-side stall).
     */
    void push(DispatchUnit *unit, GpuStats &stats, Cycle now = 0,
              Cycle fetch_latency = 0);

    /**
     * Highest-priority non-exhausted unit whose readyAt has elapsed.
     * Exhausted units are dropped from the queues as encountered.
     *
     * @param now current cycle.
     * @param blocked_out set to true if a unit exists but is delayed
     *        (readyAt in the future), distinguishing "busy" from empty.
     * @param gate optional tenant dispatch gate; gated entries are
     *        passed over (FIFO is preserved among each tenant's own
     *        entries). With nullptr the scan is the exact ungated
     *        head-of-level probe.
     */
    DispatchUnit *front(Cycle now, bool &blocked_out,
                        const DispatchGate *gate = nullptr);

    /** Remove @p unit after its final TB was dispatched. */
    void popIfExhausted(DispatchUnit *unit);

    /** No units with remaining TBs at any level. */
    bool empty() const;

    /** Entries currently held (all levels). */
    std::uint32_t entries() const { return entries_; }

    /** Min readyAt among delayed units; kNoCycle if none. */
    Cycle nextReadyAt(Cycle now) const;

  private:
    void prune(std::uint32_t level);

    std::uint32_t onchipCapacity_;
    std::vector<std::deque<DispatchUnit *>> levels_;
    std::uint32_t entries_ = 0;
    /** Future visibility cycles of spilled entries (pruned lazily). */
    mutable std::multiset<Cycle> delayed_;
};

} // namespace laperm

#endif // LAPERM_SCHED_PRIORITY_QUEUES_HH
