#include "harness/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "harness/thread_pool.hh"
#include "obs/locality.hh"
#include "obs/trace_collector.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"
#include "workloads/registry.hh"

namespace laperm {

GpuConfig
paperConfig()
{
    // Defaults already encode Table I; spelled out for documentation.
    GpuConfig cfg;
    cfg.numSmx = 13;
    cfg.maxThreadsPerSmx = 2048;
    cfg.maxTbsPerSmx = 16;
    cfg.regsPerSmx = 65536;
    cfg.smemPerSmx = 32 * 1024;
    cfg.l1Size = 32 * 1024;
    cfg.l2Size = 1536 * 1024;
    cfg.kduEntries = 32;
    cfg.warpPolicy = WarpPolicy::GTO;
    // LAPERM_TICK_MODE=dense|event selects the simulation core's
    // time-advance strategy for every harness run (used by the
    // differential determinism gate; results are byte-identical).
    if (const char *tm = std::getenv("LAPERM_TICK_MODE")) {
        if (!std::strcmp(tm, "dense"))
            cfg.tickMode = TickMode::Dense;
        else if (!std::strcmp(tm, "event"))
            cfg.tickMode = TickMode::Event;
        else if (*tm)
            laperm_fatal("bad LAPERM_TICK_MODE '%s'", tm);
    }
    return cfg;
}

namespace {

/**
 * Per-cell trace opt-in for sweeps: when LAPERM_TRACE_DIR is set, every
 * runOne writes its observability artifacts into that directory under a
 * deterministic name derived from the cell coordinates. Purely
 * additive: RunResult (and therefore the TSV cache) is unaffected, and
 * each cell owns its collector, so the parallel sweep stays
 * byte-deterministic at any worker count.
 */
std::string
traceDir()
{
    const char *dir = std::getenv("LAPERM_TRACE_DIR");
    return dir && *dir ? dir : std::string();
}

} // namespace

ResultRecord
runOneRecord(const Workload &workload, const GpuConfig &cfg,
             const std::string &trace_dir)
{
    Gpu gpu(cfg);
    std::unique_ptr<obs::TraceCollector> collector;
    std::unique_ptr<obs::LocalityTracker> locality;
    if (!trace_dir.empty()) {
        collector = std::make_unique<obs::TraceCollector>();
        gpu.observers().attach(collector.get());
        locality =
            std::make_unique<obs::LocalityTracker>(gpu.mem().numL1());
        gpu.setLocalityTracker(locality.get());
    }
    gpu.runWaves(workload.waves());
    if (collector) {
        std::error_code ec;
        std::filesystem::create_directories(trace_dir, ec);
        const std::string base =
            logFormat("%s/%s_%s_%s", trace_dir.c_str(),
                      workload.fullName().c_str(),
                      toString(cfg.dynParModel), toString(cfg.tbPolicy));
        collector->writeChromeTrace(base + ".trace.json");
        collector->writeIntervalTsv(base + ".intervals.tsv");
        collector->writeLaunchLatencyTsv(base + ".latency.tsv");
        locality->writeTsv(base + ".locality.tsv");
    }
    return ResultRecord::fromStats(workload.fullName(), cfg.dynParModel,
                                   cfg.tbPolicy, gpu.stats(),
                                   machineHash(cfg));
}

RunResult
runOne(const Workload &workload, const GpuConfig &cfg)
{
    return runOneRecord(workload, cfg, traceDir()).toRunResult();
}

namespace {

constexpr TbPolicy kPolicies[] = {TbPolicy::RR, TbPolicy::TbPri,
                                  TbPolicy::SmxBind,
                                  TbPolicy::AdaptiveBind};
constexpr DynParModel kModels[] = {DynParModel::CDP, DynParModel::DTBL};

bool
loadCache(const std::string &path, const std::string &preset,
          const std::vector<std::string> &names,
          std::vector<RunResult> &out)
{
    // Fingerprint-gated load (harness/result_cache.hh): a TSV written
    // by a different simulator build fails here and is regenerated.
    ResultCache cache;
    std::string payload;
    if (!cache.loadFile(path, payload))
        return false;
    std::vector<RunResult> rows;
    if (!decodeSweepTsv(payload, rows))
        return false;
    // A cached row must belong to the requested preset (legacy-format
    // rows decode with the "k20c" default, which is exactly right for
    // the legacy cache file they live in).
    for (const auto &r : rows) {
        if (r.preset != preset)
            return false;
    }
    // The cache is usable only if it covers the full request.
    for (const auto &name : names) {
        for (DynParModel m : kModels) {
            for (TbPolicy p : kPolicies) {
                bool found = false;
                for (const auto &r : rows) {
                    if (r.workload == name && r.model == m &&
                        r.policy == p) {
                        found = true;
                        break;
                    }
                }
                if (!found)
                    return false;
            }
        }
    }
    out = std::move(rows);
    return true;
}

void
saveCache(const std::string &path, const std::vector<RunResult> &rows)
{
    ResultCache cache;
    cache.storeFile(path, encodeSweepTsv(rows));
}

} // namespace

std::string
sweepCachePath(Scale scale, std::uint64_t seed)
{
    return logFormat("%s/laperm_results_%s_%llu.tsv",
                     cacheRootDir().c_str(), toString(scale),
                     static_cast<unsigned long long>(seed));
}

std::string
sweepCachePath(const std::string &preset, Scale scale,
               std::uint64_t seed)
{
    if (preset == "k20c")
        return sweepCachePath(scale, seed);
    return logFormat("%s/laperm_results_%s_%s_%llu.tsv",
                     cacheRootDir().c_str(), preset.c_str(),
                     toString(scale),
                     static_cast<unsigned long long>(seed));
}

std::vector<RunResult>
runMatrix(const std::vector<std::string> &names, Scale scale,
          std::uint64_t seed, bool use_cache, unsigned jobs)
{
    return runMatrixPreset(names, "k20c", scale, seed, use_cache, jobs);
}

std::vector<RunResult>
runMatrixPreset(const std::vector<std::string> &names,
                const std::string &preset, Scale scale,
                std::uint64_t seed, bool use_cache, unsigned jobs)
{
    const char *no_cache = std::getenv("LAPERM_NO_CACHE");
    if (no_cache && *no_cache == '1')
        use_cache = false;
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();

    // Fatal on an unknown preset before any simulation spends cycles;
    // the machine geometry below is presetConfig(preset) with the
    // harness-level tick-mode override layered on top (paperConfig()
    // handles LAPERM_TICK_MODE; the preset must not undo it).
    const GpuConfig base_machine = presetConfig(preset);

    // Same early-fatal discipline for the workload axis: an unknown
    // name (e.g. a typo in a tenant/mix spec routed here) dies with
    // the structured known-names error, never a mid-sweep surprise.
    for (const std::string &name : names) {
        if (!isKnownWorkload(name)) {
            laperm_fatal("unknown workload '%s' (known: %s)",
                         name.c_str(), workloadNameList().c_str());
        }
    }

    const std::string path = sweepCachePath(preset, scale, seed);
    std::vector<RunResult> results;
    if (use_cache && loadCache(path, preset, names, results))
        return results;
    results.clear();

    constexpr std::size_t kNumModels = std::size(kModels);
    constexpr std::size_t kNumPolicies = std::size(kPolicies);
    const std::size_t cellsPerWorkload = kNumModels * kNumPolicies;

    // Phase 1: input generation, one job per workload. Workloads are
    // immutable after setup() (traces const, programs const), so the
    // cell jobs below const-borrow them concurrently.
    std::vector<std::unique_ptr<Workload>> workloads(names.size());
    {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, std::max<std::size_t>(
                                            names.size(), 1))));
        for (std::size_t i = 0; i < names.size(); ++i) {
            pool.submit([&, i] {
                auto w = createWorkload(names[i]);
                w->setup(scale, seed);
                workloads[i] = std::move(w);
            });
        }
        pool.wait();
    }

    // Phase 2: one job per (workload x model x policy) cell. Every
    // cell owns its own Gpu instance and writes to a preassigned slot,
    // so the result vector — and therefore the TSV cache — is
    // byte-identical no matter how many workers raced to fill it.
    results.resize(names.size() * cellsPerWorkload);
    {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, results.size())));
        for (std::size_t i = 0; i < names.size(); ++i) {
            for (std::size_t mi = 0; mi < kNumModels; ++mi) {
                for (std::size_t pi = 0; pi < kNumPolicies; ++pi) {
                    const std::size_t slot =
                        i * cellsPerWorkload + mi * kNumPolicies + pi;
                    pool.submit([&, i, mi, pi, slot] {
                        GpuConfig cfg = base_machine;
                        cfg.tickMode = paperConfig().tickMode;
                        cfg.dynParModel = kModels[mi];
                        cfg.tbPolicy = kPolicies[pi];
                        cfg.seed = seed;
                        results[slot] = runOne(*workloads[i], cfg);
                        results[slot].preset = preset;
                        laperm_inform(
                            "%s %s/%s: ipc=%.2f l1=%.3f l2=%.3f",
                            names[i].c_str(), toString(kModels[mi]),
                            toString(kPolicies[pi]), results[slot].ipc,
                            results[slot].l1HitRate,
                            results[slot].l2HitRate);
                    });
                }
            }
        }
        pool.wait();
    }

    if (use_cache)
        saveCache(path, results);
    return results;
}

const RunResult &
findResult(const std::vector<RunResult> &results,
           const std::string &workload, DynParModel model,
           TbPolicy policy)
{
    for (const auto &r : results) {
        if (r.workload == workload && r.model == model &&
            r.policy == policy) {
            return r;
        }
    }
    laperm_fatal("no result for %s %s/%s", workload.c_str(),
                 toString(model), toString(policy));
}

double
meanOver(const std::vector<RunResult> &results, DynParModel model,
         TbPolicy policy, double RunResult::*metric)
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &r : results) {
        if (r.model == model && r.policy == policy) {
            sum += r.*metric;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace laperm
