#include "sched/priority_queues.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

PriorityQueues::PriorityQueues(std::uint32_t levels,
                               std::uint32_t onchip_capacity)
    : onchipCapacity_(onchip_capacity), levels_(levels)
{
    laperm_assert(levels > 0, "priority queues need at least one level");
}

void
PriorityQueues::push(DispatchUnit *unit, GpuStats &stats, Cycle now,
                     Cycle fetch_latency)
{
    std::uint32_t level = std::min<std::uint32_t>(
        unit->priority, static_cast<std::uint32_t>(levels_.size()) - 1);
    if (onchipCapacity_ != 0 && entries_ >= onchipCapacity_) {
        // The SRAM is full: the entry takes the global-memory overflow
        // path and becomes dispatchable one memory round-trip later.
        unit->overflowed = true;
        ++stats.queueOverflows;
        if (fetch_latency > 0) {
            unit->readyAt = std::max(unit->readyAt, now + fetch_latency);
            delayed_.insert(unit->readyAt);
        }
    }
    levels_[level].push_back(unit);
    ++entries_;
}

void
PriorityQueues::prune(std::uint32_t level)
{
    auto &q = levels_[level];
    while (!q.empty() && q.front()->exhausted()) {
        q.pop_front();
        laperm_assert(entries_ > 0, "priority-queue entry underflow");
        --entries_;
    }
}

DispatchUnit *
PriorityQueues::front(Cycle now, bool &blocked_out,
                      const DispatchGate *gate)
{
    blocked_out = false;
    for (std::uint32_t level = static_cast<std::uint32_t>(levels_.size());
         level-- > 0;) {
        prune(level);
        auto &q = levels_[level];
        if (q.empty())
            continue;
        if (!gate) {
            DispatchUnit *unit = q.front();
            if (unit->readyAt > now) {
                // Still in flight from the overflow buffer: not visible
                // to the dispatcher yet, so lower levels may proceed.
                // Entries within a level are FIFO, so a delayed head
                // implies the whole level is delayed.
                blocked_out = true;
                continue;
            }
            return unit;
        }
        // Gated scan: the first live ungated entry is the level's only
        // candidate — FIFO is preserved among each tenant's own
        // entries, gated tenants are passed over like not-yet-ready
        // ones. Mid-queue exhausted entries (possible once non-head
        // units dispatch) are skipped and reclaimed by prune() when
        // they reach the front.
        for (DispatchUnit *unit : q) {
            if (unit->exhausted())
                continue;
            if (gate->blocked(unit->tenant))
                continue;
            if (unit->readyAt > now) {
                blocked_out = true;
                break; // delayed head of the ungated sub-queue
            }
            return unit;
        }
    }
    return nullptr;
}

void
PriorityQueues::popIfExhausted(DispatchUnit *unit)
{
    if (!unit->exhausted())
        return;
    std::uint32_t level = std::min<std::uint32_t>(
        unit->priority, static_cast<std::uint32_t>(levels_.size()) - 1);
    prune(level);
}

bool
PriorityQueues::empty() const
{
    for (const auto &q : levels_) {
        for (const DispatchUnit *unit : q) {
            if (!unit->exhausted())
                return false;
        }
    }
    return true;
}

Cycle
PriorityQueues::nextReadyAt(Cycle now) const
{
    while (!delayed_.empty() && *delayed_.begin() <= now)
        delayed_.erase(delayed_.begin());
    return delayed_.empty() ? kNoCycle : *delayed_.begin();
}

} // namespace laperm
