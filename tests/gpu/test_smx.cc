#include <gtest/gtest.h>

#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/** Run one host kernel to completion on a tiny device. */
GpuStats
runOne(const GpuConfig &cfg, const LaunchRequest &req)
{
    Gpu gpu(cfg);
    gpu.launchHostKernel(req);
    gpu.runToIdle();
    return gpu.stats();
}

} // namespace

TEST(Smx, ExecutesAllThreads)
{
    auto prog = std::make_shared<LambdaProgram>(
        "k", allocateFunctionId(),
        [](ThreadCtx &c) { c.alu(10); });
    GpuStats s = runOne(tinyConfig(), {prog, 8, 64});
    std::uint64_t insts = 0;
    for (const auto &smx : s.smx)
        insts += smx.threadInstructions;
    EXPECT_EQ(insts, 8u * 64u); // one alu op per thread
}

TEST(Smx, OccupancyLimitsThreads)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 1;
    cfg.maxThreadsPerSmx = 128;
    cfg.maxTbsPerSmx = 16;
    Gpu gpu(cfg);
    auto prog = std::make_shared<LambdaProgram>(
        "k", allocateFunctionId(), [](ThreadCtx &c) { c.alu(50); });
    gpu.launchHostKernel({prog, 4, 64});
    gpu.runToIdle();
    // Only 2 TBs of 64 threads fit at once; the kernel still finishes.
    EXPECT_EQ(gpu.stats().smx[0].tbsExecuted, 4u);
}

TEST(Smx, BarrierSynchronizesWarps)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 1;
    // Two warps; warp 0 is fast before the barrier, warp 1 slow. After
    // the barrier both store; the stores must come after the slow
    // warp's pre-barrier work. We check via cycle counts: with the
    // barrier the total runtime covers the slow warp's 500 cycles.
    auto prog = std::make_shared<LambdaProgram>(
        "bar", allocateFunctionId(), [](ThreadCtx &c) {
            if (c.threadIndex() >= 32)
                c.alu(500);
            c.bar();
            c.alu(1);
        });
    GpuStats s = runOne(cfg, {prog, 1, 64});
    EXPECT_GE(s.cycles, 500u);
    EXPECT_EQ(s.smx[0].tbsExecuted, 1u);
}

TEST(Smx, LoadsGoThroughTheHierarchy)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 1;
    auto prog = std::make_shared<LambdaProgram>(
        "ld", allocateFunctionId(), [](ThreadCtx &c) {
            c.ld(c.globalThreadIndex() * 4, 4);
        });
    GpuStats s = runOne(cfg, {prog, 1, 32});
    // 32 threads x 4B = one coalesced line.
    EXPECT_EQ(s.l1Total().accesses, 1u);
    EXPECT_EQ(s.dram.reads, 1u);
}

TEST(Smx, RepeatedLoadHitsL1)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 1;
    auto prog = std::make_shared<LambdaProgram>(
        "ld2", allocateFunctionId(), [](ThreadCtx &c) {
            c.ld(0, 4);
            c.alu(2000); // let the fill complete
            c.ld(0, 4);
        });
    GpuStats s = runOne(cfg, {prog, 1, 32});
    EXPECT_EQ(s.l1Total().hits, 1u);
}

TEST(Smx, EmptyTbCompletesImmediately)
{
    GpuConfig cfg = tinyConfig();
    auto prog = std::make_shared<LambdaProgram>(
        "empty", allocateFunctionId(), [](ThreadCtx &) {});
    GpuStats s = runOne(cfg, {prog, 4, 32});
    std::uint64_t tbs = 0;
    for (const auto &smx : s.smx)
        tbs += smx.tbsExecuted;
    EXPECT_EQ(tbs, 4u);
}

TEST(Smx, GtoPrefersGreedyWarp)
{
    // Behavioural smoke test: GTO and LRR both finish with identical
    // work; cycle counts may differ but instruction totals match.
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 1;
    auto prog = std::make_shared<LambdaProgram>(
        "mix", allocateFunctionId(), [](ThreadCtx &c) {
            for (std::uint32_t i = 0; i < 4; ++i) {
                c.ld((c.globalThreadIndex() % 7) * 4096 + i * 131072, 4);
                c.alu(8);
            }
        });
    cfg.warpPolicy = WarpPolicy::GTO;
    GpuStats gto = runOne(cfg, {prog, 4, 64});
    cfg.warpPolicy = WarpPolicy::LRR;
    GpuStats lrr = runOne(cfg, {prog, 4, 64});
    EXPECT_EQ(gto.smx[0].warpInstructions, lrr.smx[0].warpInstructions);
    EXPECT_GT(gto.cycles, 0u);
    EXPECT_GT(lrr.cycles, 0u);
}
