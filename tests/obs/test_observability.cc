/**
 * @file
 * The observability layer's contract: multiple observers coexist,
 * locality counters exactly partition the cache-hit statistics, launch
 * events decompose Section IV-D latency, Chrome-trace output is
 * schema-valid JSON, and every artifact is byte-identical across
 * re-runs and sweep worker counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/trace.hh"
#include "harness/experiment.hh"
#include "obs/locality.hh"
#include "obs/trace_collector.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/** The parent/child microbenchmark from the Figure-4 example. */
struct Scenario
{
    std::shared_ptr<LambdaProgram> parent;
};

Scenario
makeScenario()
{
    auto child = std::make_shared<LambdaProgram>(
        "obs-child", allocateFunctionId(), [](ThreadCtx &c) {
            c.ld(0x8000 + 128 * (c.threadIndex() % 4));
            c.alu(30);
        });
    auto parent = std::make_shared<LambdaProgram>(
        "obs-parent", allocateFunctionId(), [child](ThreadCtx &c) {
            c.st(0x8000 + 128 * (c.threadIndex() % 4));
            if (c.threadIndex() == 0 && c.tbIndex() % 2 == 0)
                c.launch({child, 2, 32});
            c.alu(40);
        });
    return {parent};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Minimal structural JSON validation: every brace/bracket/quote
 * balances and no control characters leak into strings. Sufficient to
 * catch any malformed emission from the hand-rolled writer.
 */
bool
jsonWellFormed(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (char ch : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (ch == '\\')
                escaped = true;
            else if (ch == '"')
                in_string = false;
            else if (static_cast<unsigned char>(ch) < 0x20)
                return false;
            continue;
        }
        switch (ch) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            stack.push_back(ch);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return stack.empty() && !in_string;
}

} // namespace

TEST(Observability, MultipleObserversCoexist)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    Gpu gpu(cfg);

    // Legacy CSV trace, the test recorder, and the structured collector
    // all attached to one Gpu.
    DispatchTrace trace(gpu);
    DispatchRecorder recorder(gpu);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);

    Scenario s = makeScenario();
    gpu.launchHostKernel({s.parent, 6, 32});
    gpu.runToIdle();

    // 6 parents + 3 children * 2 TBs.
    ASSERT_EQ(trace.events().size(), 12u);
    EXPECT_EQ(recorder.records.size(), 12u);
    EXPECT_EQ(collector.dispatches().size(), 12u);
    EXPECT_EQ(collector.retires().size(), 12u);

    // All observers saw the same dispatch stream.
    for (std::size_t i = 0; i < trace.events().size(); ++i) {
        EXPECT_EQ(trace.events()[i].uid, recorder.records[i].uid);
        EXPECT_EQ(trace.events()[i].uid, collector.dispatches()[i].uid);
        EXPECT_EQ(trace.events()[i].cycle,
                  collector.dispatches()[i].cycle);
    }

    // The legacy CSV format is unchanged.
    const std::string path = "obs_multi_tmp.csv";
    ASSERT_TRUE(trace.writeCsv(path));
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
              "uid,kernel,tbIndex,smx,cycle,priority,dynamic,parent");
    in.close();
    std::remove(path.c_str());
}

TEST(Observability, RetiresCarryDispatchData)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);

    Scenario s = makeScenario();
    gpu.launchHostKernel({s.parent, 4, 32});
    gpu.runToIdle();

    ASSERT_FALSE(collector.retires().empty());
    for (const auto &e : collector.retires()) {
        EXPECT_LT(e.smx, cfg.numSmx);
        EXPECT_GE(e.cycle, e.dispatchCycle);
    }
    // Every dispatched uid retires exactly once.
    ASSERT_EQ(collector.dispatches().size(), collector.retires().size());
}

TEST(Observability, LaunchLatencyDecomposition)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    cfg.cdpLaunchLatency = 200;
    Gpu gpu(cfg);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);

    Scenario s = makeScenario();
    gpu.launchHostKernel({s.parent, 6, 32});
    gpu.runToIdle();

    const auto lats = collector.launchLatencies();
    // 1 host kernel + 3 device launches.
    ASSERT_EQ(lats.size(), 4u);
    std::size_t device = 0;
    for (const auto &ll : lats) {
        EXPECT_NE(ll.firstDispatchAt, kNoCycle);
        EXPECT_GE(ll.firstDispatchAt, ll.admittedAt);
        if (ll.isDevice) {
            ++device;
            // Queue time covers at least the modeled launch latency.
            EXPECT_GE(ll.queueCycles(), cfg.cdpLaunchLatency);
        } else {
            EXPECT_EQ(ll.queueCycles(), 0u);
        }
    }
    EXPECT_EQ(device, 3u);

    const std::string path = "obs_latency_tmp.tsv";
    ASSERT_TRUE(collector.writeLaunchLatencyTsv(path));
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "bucket_lo\tbucket_hi\tqueue\tdispatch\ttotal");
    // The per-component bucket counts each sum to the launch count.
    std::uint64_t queue_sum = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::uint64_t lo, hi, q, d, t;
        ASSERT_TRUE(static_cast<bool>(ls >> lo >> hi >> q >> d >> t));
        queue_sum += q;
    }
    EXPECT_EQ(queue_sum, lats.size());
    in.close();
    std::remove(path.c_str());
}

TEST(Observability, StealEventsMatchStats)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    cfg.maxTbsPerSmx = 1;
    cfg.maxThreadsPerSmx = 64;
    Gpu gpu(cfg);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);

    Scenario s = makeScenario();
    gpu.launchHostKernel({s.parent, 8, 32});
    gpu.runToIdle();

    const GpuStats &st = gpu.stats();
    std::uint64_t adoptions = 0, thefts = 0;
    for (const auto &e : collector.steals()) {
        EXPECT_LT(e.smx, cfg.numSmx);
        (e.adoption ? adoptions : thefts)++;
    }
    EXPECT_EQ(adoptions, st.backupAdoptions);
    EXPECT_EQ(thefts, st.unboundDispatches);
}

TEST(Observability, LocalityCountersPartitionCacheHits)
{
    // A real workload, both models: the class counters must sum to the
    // exact L1/L2 hit totals the cache statistics report.
    for (DynParModel model : {DynParModel::CDP, DynParModel::DTBL}) {
        auto w = createWorkload("bfs-cage");
        w->setup(Scale::Tiny, 7);
        GpuConfig cfg = paperConfig();
        cfg.dynParModel = model;
        cfg.tbPolicy = TbPolicy::AdaptiveBind;
        Gpu gpu(cfg);
        obs::LocalityTracker tracker(gpu.mem().numL1());
        gpu.setLocalityTracker(&tracker);
        gpu.runWaves(w->waves());

        const GpuStats &s = gpu.stats();
        EXPECT_EQ(tracker.l1().total(), s.l1Total().hits);
        EXPECT_EQ(tracker.l2().total(), s.l2.hits);
        EXPECT_GT(tracker.l1().total(), 0u);
    }
}

TEST(Observability, LocalityClassification)
{
    obs::LocalityTracker t(1);
    const obs::MemAccessor parent{10, kNoTb, false};
    const obs::MemAccessor childA{20, 10, true};
    const obs::MemAccessor childB{21, 10, true};
    const obs::MemAccessor stranger{30, kNoTb, false};

    t.onL1Access(0, 0x100, false, parent);   // install: no hit counted
    t.onL1Access(0, 0x100, true, parent);    // self
    t.onL1Access(0, 0x100, true, childA);    // parent-line reuse
    t.onL1Access(0, 0x100, true, childB);    // sibling
    t.onL1Access(0, 0x100, true, parent);    // child (B touched last)
    t.onL1Access(0, 0x100, true, stranger);  // other
    using RC = obs::ReuseClass;
    EXPECT_EQ(t.l1().count(RC::Self), 1u);
    EXPECT_EQ(t.l1().count(RC::Parent), 1u);
    EXPECT_EQ(t.l1().count(RC::Sibling), 1u);
    EXPECT_EQ(t.l1().count(RC::Child), 1u);
    EXPECT_EQ(t.l1().count(RC::Other), 1u);
    EXPECT_EQ(t.l1().total(), 5u);
    EXPECT_EQ(t.l2().total(), 0u);
}

TEST(Observability, ChromeTraceIsWellFormedJson)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    Gpu gpu(cfg);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);
    Scenario s = makeScenario();
    gpu.launchHostKernel({s.parent, 8, 32});
    gpu.runToIdle();

    const std::string path = "obs_chrome_tmp.json";
    ASSERT_TRUE(collector.writeChromeTrace(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());

    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(jsonWellFormed(text));
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    // Every TB appears as a duration event with integer timestamps.
    std::size_t durations = 0;
    for (std::size_t at = text.find("\"ph\":\"X\"");
         at != std::string::npos;
         at = text.find("\"ph\":\"X\"", at + 1)) {
        ++durations;
    }
    EXPECT_EQ(durations, collector.retires().size());
    EXPECT_EQ(text.find('.'), std::string::npos)
        << "Chrome trace must contain only integer values";
}

TEST(Observability, ArtifactsByteIdenticalAcrossReruns)
{
    auto run_once = [](const std::string &tag) {
        GpuConfig cfg = tinyConfig();
        cfg.dynParModel = DynParModel::DTBL;
        cfg.tbPolicy = TbPolicy::AdaptiveBind;
        Gpu gpu(cfg);
        obs::TraceCollector collector;
        gpu.observers().attach(&collector);
        obs::LocalityTracker tracker(gpu.mem().numL1());
        gpu.setLocalityTracker(&tracker);
        Scenario s = makeScenario();
        gpu.launchHostKernel({s.parent, 8, 32});
        gpu.runToIdle();
        collector.writeChromeTrace(tag + ".json");
        collector.writeIntervalTsv(tag + ".tsv", 64);
        collector.writeLaunchLatencyTsv(tag + ".lat");
        tracker.writeTsv(tag + ".loc");
    };
    run_once("obs_rerun_a");
    run_once("obs_rerun_b");
    for (const char *ext : {".json", ".tsv", ".lat", ".loc"}) {
        const std::string a = slurp(std::string("obs_rerun_a") + ext);
        const std::string b = slurp(std::string("obs_rerun_b") + ext);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "mismatch in " << ext;
        std::remove((std::string("obs_rerun_a") + ext).c_str());
        std::remove((std::string("obs_rerun_b") + ext).c_str());
    }
}

TEST(Observability, SweepTracesByteIdenticalAcrossJobCounts)
{
    namespace fs = std::filesystem;
    const std::string dirA = "obs_sweep_j1";
    const std::string dirB = "obs_sweep_j8";

    setenv("LAPERM_TRACE_DIR", dirA.c_str(), 1);
    runMatrix({"bfs-cage"}, Scale::Tiny, 7, false, 1);
    setenv("LAPERM_TRACE_DIR", dirB.c_str(), 1);
    runMatrix({"bfs-cage"}, Scale::Tiny, 7, false, 8);
    unsetenv("LAPERM_TRACE_DIR");

    // 8 cells x 4 artifacts per directory, pairwise byte-identical.
    std::vector<std::string> names;
    for (const auto &e : fs::directory_iterator(dirA))
        names.push_back(e.path().filename().string());
    std::sort(names.begin(), names.end());
    ASSERT_EQ(names.size(), 32u);
    for (const auto &name : names) {
        const std::string a = slurp(dirA + "/" + name);
        const std::string b = slurp(dirB + "/" + name);
        ASSERT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, b) << "worker-count-dependent bytes in " << name;
    }
    fs::remove_all(dirA);
    fs::remove_all(dirB);
}

TEST(Observability, IntervalTsvAccountsEveryTb)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);
    Scenario s = makeScenario();
    gpu.launchHostKernel({s.parent, 8, 32});
    gpu.runToIdle();

    const std::string path = "obs_interval_tmp.tsv";
    ASSERT_TRUE(collector.writeIntervalTsv(path, 32));
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "interval_start\tdispatches\tretires\tadmits\t"
                      "steals\toccupancy_tb_cycles");
    std::uint64_t dispatches = 0, retires = 0, occupancy = 0;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::uint64_t start, d, r, a, st, occ;
        ASSERT_TRUE(
            static_cast<bool>(ls >> start >> d >> r >> a >> st >> occ));
        dispatches += d;
        retires += r;
        occupancy += occ;
    }
    in.close();
    std::remove(path.c_str());

    EXPECT_EQ(dispatches, collector.dispatches().size());
    EXPECT_EQ(retires, collector.retires().size());
    // The occupancy integral equals the summed TB residencies.
    std::uint64_t residency = 0;
    for (const auto &e : collector.retires())
        residency += e.cycle - e.dispatchCycle;
    EXPECT_EQ(occupancy, residency);
}
