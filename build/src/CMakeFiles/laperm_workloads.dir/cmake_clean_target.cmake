file(REMOVE_RECURSE
  "liblaperm_workloads.a"
)
