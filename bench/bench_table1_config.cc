/**
 * @file
 * Table I: the modeled GPGPU-Sim configuration. Prints the device
 * parameters and checks them against the paper's values.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"

using namespace laperm;

int
main()
{
    setVerbose(false);
    GpuConfig cfg = paperConfig();
    cfg.validate();

    std::printf("Table I: GPGPU-Sim configuration parameters "
                "(modeled device)\n\n");

    Table t({"parameter", "paper (K20c / GK110)", "modeled"});
    t.addRow({"SMXs", "13", fmtU(cfg.numSmx)});
    t.addRow({"threads / SMX", "2048", fmtU(cfg.maxThreadsPerSmx)});
    t.addRow({"TBs / SMX", "16", fmtU(cfg.maxTbsPerSmx)});
    t.addRow({"registers / SMX", "65536", fmtU(cfg.regsPerSmx)});
    t.addRow({"shared memory / SMX", "32 KB", fmtU(cfg.smemPerSmx / 1024) + " KB"});
    t.addRow({"L1 cache", "32 KB", fmtU(cfg.l1Size / 1024) + " KB"});
    t.addRow({"L2 cache", "1536 KB", fmtU(cfg.l2Size / 1024) + " KB"});
    t.addRow({"cache line", "128 B", fmtU(kLineBytes) + " B"});
    t.addRow({"max concurrent kernels", "32", fmtU(cfg.kduEntries)});
    t.addRow({"warp scheduler", "Greedy-Then-Oldest [7]",
              toString(cfg.warpPolicy)});
    t.addRule();
    t.addRow({"max priority levels L", "(Sec. IV-A)",
              fmtU(cfg.maxPriorityLevels)});
    t.addRow({"on-chip queue entries / SMX", "128 (3KB, 24B/entry)",
              fmtU(cfg.onchipQueueEntries)});
    t.addRow({"shared level-0 entries", "32 (768B)",
              fmtU(cfg.sharedQueueEntries)});
    t.addRow({"CDP launch latency", "(methodology of [15][16])",
              fmtU(cfg.cdpLaunchLatency) + " cycles"});
    t.addRow({"DTBL launch latency", "(modeled, [16])",
              fmtU(cfg.dtblLaunchLatency) + " cycles"});
    t.print();

    bool ok = cfg.numSmx == 13 && cfg.maxThreadsPerSmx == 2048 &&
              cfg.maxTbsPerSmx == 16 && cfg.regsPerSmx == 65536 &&
              cfg.l1Size == 32 * 1024 && cfg.l2Size == 1536 * 1024 &&
              cfg.kduEntries == 32;
    std::printf("\n%s\n", ok ? "configuration matches Table I"
                             : "MISMATCH against Table I");
    return ok ? 0 : 1;
}
