/**
 * @file
 * Multi-tenant concurrent-kernel execution (DESIGN.md §14). The
 * TenantManager owns one simulated device and N workload streams; it
 * interleaves them with three mechanisms:
 *
 *  1. Admission control (BEMPS idiom): a tenant's next host wave only
 *     launches while device warp occupancy is below the mix threshold
 *     (or the device is empty) and the KDU has a free entry.
 *  2. Preemptive TB scheduling: while a higher-priority tenant is held
 *     at admission, the cheapest lower-priority tenant — by predicted
 *     drain cost from the per-tenant integer EWMA runtime predictor —
 *     is gated at TB boundaries (DispatchGate) so its resident TBs
 *     drain without being replaced.
 *  3. Open-loop arrivals: job i of a stream arrives at
 *     firstArrival + i*period in simulated cycles; queueing delay is
 *     charged to turnaround, never rescheduled away.
 *
 * Decisions are made only between run slices (every mix quantum), so
 * the engine's byte-identical dense/event tick equivalence is
 * preserved: the manager is a pure driver on top of Gpu::runUntil /
 * Gpu::advanceTo plus the obs::TenantTracker counters.
 */

#ifndef LAPERM_TENANT_TENANT_MANAGER_HH
#define LAPERM_TENANT_TENANT_MANAGER_HH

#include <vector>

#include "sim/config.hh"
#include "tenant/metrics.hh"
#include "tenant/tenant_spec.hh"
#include "workloads/workload.hh"

namespace laperm {
namespace tenant {

/**
 * Drives one mix on one device configuration. Workloads are borrowed:
 * index-aligned with mix.tenants, already setup(), and reusable across
 * managers (waves() is const after setup).
 */
class TenantManager
{
  public:
    TenantManager(const MixSpec &mix, const GpuConfig &cfg,
                  std::vector<const Workload *> workloads);

    /** Run the whole mix to completion and collect per-tenant results. */
    MultiTenantResult run(Cycle max_cycles = Cycle(1) << 36);

  private:
    const MixSpec mix_;
    const GpuConfig cfg_;
    std::vector<const Workload *> workloads_;
};

/** A shared run, its per-tenant solo baselines, and the metrics. */
struct MixStudy
{
    MultiTenantResult shared;
    std::vector<TenantRunResult> solo;
    MixMetrics metrics;
};

/**
 * Convenience driver: instantiate the mix's workloads (scale from each
 * TenantSpec, seed from @p cfg), run the shared mix, then each tenant
 * alone with its own arrival schedule, and finalize the metrics.
 */
MixStudy runMixStudy(const MixSpec &mix, const GpuConfig &cfg);

} // namespace tenant
} // namespace laperm

#endif // LAPERM_TENANT_TENANT_MANAGER_HH
