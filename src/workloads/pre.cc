#include "workloads/pre.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "common/rng.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

constexpr std::uint32_t kPreThreads = 128;
constexpr std::uint32_t kUserSpawn = 24; ///< ratings above this -> child
constexpr std::uint32_t kFeatureBytes = 64;

struct PreData
{
    std::uint32_t numUsers = 0, numItems = 0;
    std::vector<std::uint64_t> userOff; ///< CSR over ratings
    std::vector<std::uint32_t> items;   ///< rated item per rating

    Addr userOffA = 0, itemsA = 0, ratingsA = 0, featuresA = 0,
         profileA = 0, paramsA = 0, scoresA = 0;
    std::uint32_t profileFuncId = 0, topFuncId = 0, scoreFuncId = 0;

    std::uint32_t
    ratings(std::uint32_t u) const
    {
        return static_cast<std::uint32_t>(userOff[u + 1] - userOff[u]);
    }
};

/** Score one rating: read the item's features, accumulate. */
void
emitScore(ThreadCtx &ctx, const PreData &d, std::uint64_t r)
{
    ctx.ld(d.itemsA + 4ull * r, 4);
    ctx.ld(d.ratingsA + 4ull * r, 4);
    std::uint32_t item = d.items[r];
    ctx.ld(d.featuresA + static_cast<Addr>(kFeatureBytes) * item,
           kFeatureBytes);
    ctx.alu(10);
}

class PreScoreProgram : public KernelProgram
{
  public:
    PreScoreProgram(std::shared_ptr<const PreData> d, std::uint32_t user)
        : d_(std::move(d)), user_(user)
    {}

    std::string name() const override { return "pre_score"; }
    std::uint32_t functionId() const override { return d_->scoreFuncId; }
    std::uint32_t regsPerThread() const override { return 30; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const PreData &d = *d_;
        std::uint64_t base = d.userOff[user_];
        std::uint32_t count = d.ratings(user_);
        std::uint32_t stride = ctx.numTbs() * ctx.threadsPerTb();
        ctx.ld(d.paramsA + 16ull * user_, 16);
        ctx.ld(d.profileA + 64ull * user_, 64); // parent-written profile
        for (std::uint32_t r = ctx.globalThreadIndex(); r < count;
             r += stride) {
            emitScore(ctx, d, base + r);
        }
        ctx.st(d.scoresA + 64ull * user_ +
                   4ull * (ctx.globalThreadIndex() % 16),
               4);
    }

  private:
    std::shared_ptr<const PreData> d_;
    std::uint32_t user_;
};

class PreTopProgram : public KernelProgram
{
  public:
    explicit PreTopProgram(std::shared_ptr<const PreData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "pre_recommend"; }
    std::uint32_t functionId() const override { return d_->topFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const PreData &d = *d_;
        std::uint32_t u = ctx.globalThreadIndex();
        if (u >= d.numUsers)
            return;
        ctx.ld(d.userOffA + 8ull * u, 8);
        ctx.ld(d.profileA + 64ull * u, 64);
        ctx.alu(6);
        std::uint32_t count = d.ratings(u);
        if (count > kUserSpawn) {
            ctx.st(d.paramsA + 16ull * u, 16);
            std::uint32_t tbs =
                std::min(4u, (count + kPreThreads - 1) / kPreThreads);
            ctx.launch({std::make_shared<PreScoreProgram>(d_, u), tbs,
                        kPreThreads});
        } else {
            std::uint64_t base = d.userOff[u];
            for (std::uint32_t r = 0; r < count; ++r)
                emitScore(ctx, d, base + r);
            ctx.st(d.scoresA + 64ull * u, 4);
        }
    }

  private:
    std::shared_ptr<const PreData> d_;
};

/** First wave: build user profiles from their ratings. */
class PreProfileProgram : public KernelProgram
{
  public:
    explicit PreProfileProgram(std::shared_ptr<const PreData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "pre_profile"; }
    std::uint32_t functionId() const override
    {
        return d_->profileFuncId;
    }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const PreData &d = *d_;
        std::uint32_t u = ctx.globalThreadIndex();
        if (u >= d.numUsers)
            return;
        ctx.ld(d.userOffA + 8ull * u, 8);
        std::uint64_t base = d.userOff[u];
        std::uint32_t count = std::min(d.ratings(u), 8u);
        for (std::uint32_t r = 0; r < count; ++r)
            ctx.ld(d.ratingsA + 4ull * (base + r), 4);
        ctx.alu(8);
        ctx.st(d.profileA + 64ull * u, 64);
    }

  private:
    std::shared_ptr<const PreData> d_;
};

} // namespace

void
PreWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto d = std::make_shared<PreData>();
    std::uint32_t avg_ratings;
    switch (scale) {
      case Scale::Tiny:
        d->numUsers = 1000;
        d->numItems = 400;
        avg_ratings = 12;
        break;
      case Scale::Small:
        d->numUsers = 30000;
        d->numItems = 6000;
        avg_ratings = 24;
        break;
      case Scale::Huge:
        d->numUsers = 250000;
        d->numItems = 40000;
        avg_ratings = 32;
        break;
      default:
        d->numUsers = 100000;
        d->numItems = 16000;
        avg_ratings = 32;
        break;
    }

    // MovieLens-like skew: user activity and item popularity are both
    // heavy-tailed.
    Rng rng(seed);
    d->userOff.assign(d->numUsers + 1, 0);
    std::vector<std::uint32_t> counts(d->numUsers);
    for (std::uint32_t u = 0; u < d->numUsers; ++u) {
        double boost =
            1.0 + 8.0 * static_cast<double>(
                            rng.nextZipf(100, 1.3)) / 100.0;
        counts[u] = 2 + static_cast<std::uint32_t>(
                            rng.nextBounded(
                                static_cast<std::uint64_t>(
                                    avg_ratings * boost)));
    }
    for (std::uint32_t u = 0; u < d->numUsers; ++u)
        d->userOff[u + 1] = d->userOff[u] + counts[u];
    d->items.resize(d->userOff[d->numUsers]);
    for (auto &item : d->items)
        item = static_cast<std::uint32_t>(
            rng.nextZipf(d->numItems, 1.3));

    std::uint64_t m = d->items.size();
    d->userOffA = mem_.allocArray(d->numUsers + 1, 8, "userOff");
    d->itemsA = mem_.allocArray(m, 4, "items");
    d->ratingsA = mem_.allocArray(m, 4, "ratings");
    d->featuresA =
        mem_.allocArray(d->numItems, kFeatureBytes, "features");
    d->profileA = mem_.allocArray(d->numUsers, 64, "profiles");
    d->paramsA = mem_.allocArray(d->numUsers, 16, "params");
    d->scoresA = mem_.allocArray(d->numUsers, 64, "scores");
    d->profileFuncId = allocateFunctionId();
    d->topFuncId = allocateFunctionId();
    d->scoreFuncId = allocateFunctionId();

    std::uint32_t tbs = (d->numUsers + 127) / 128;
    waves_.clear();
    waves_.push_back({std::make_shared<PreProfileProgram>(d), tbs, 128});
    waves_.push_back({std::make_shared<PreTopProgram>(d), tbs, 128});
}

} // namespace laperm
