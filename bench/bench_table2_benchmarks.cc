/**
 * @file
 * Table II: the benchmark suite. Instantiates every application/input
 * pair, prints its generated-input statistics and the dynamic-
 * parallelism launch profile (a trace-level walk, no timing).
 */

#include <cstdio>

#include "analysis/footprint.hh"
#include "common/log.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    std::printf("Table II: benchmark applications and inputs "
                "(scale '%s', synthetic substitutes per DESIGN.md)\n\n",
                toString(scale));

    Table t({"workload", "waves", "host TBs", "device launches",
             "child TBs", "footprint"});
    for (const auto &name : workloadNames()) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        FootprintReport rep = analyzeFootprint(*w);
        t.addRow({name, fmtU(w->waves().size()), fmtU(rep.hostTbs),
                  fmtU(rep.deviceLaunches), fmtU(rep.childTbs),
                  fmtF(static_cast<double>(w->footprintBytes()) / 1e6,
                       1) +
                      " MB"});
    }
    t.print();
    return 0;
}
