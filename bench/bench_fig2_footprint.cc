/**
 * @file
 * Figure 2: shared footprint ratio for parent-child and child-sibling
 * TBs (plus the parent-parent average quoted in Section III-A).
 *
 * Paper anchors: parent-child avg 38.4%, child-sibling avg ~30%
 * (higher for citation/cage than graph500; amr and join lowest),
 * parent-parent avg 9.3%.
 */

#include <cstdio>

#include "analysis/footprint.hh"
#include "common/log.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    std::printf("Figure 2: shared footprint ratio (scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "parent-child", "child-sibling (cos/cs)",
             "child-sibling (cos/co)", "parent-parent",
             "direct parents", "child TBs"});
    double pc_sum = 0, cs_sum = 0, co_sum = 0, pp_sum = 0;
    std::uint32_t n = 0;
    for (const auto &name : workloadNames()) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        FootprintReport rep = analyzeFootprint(*w);
        t.addRow({name, fmtPct(rep.parentChild),
                  fmtPct(rep.childSibling),
                  fmtPct(rep.childSiblingOwn),
                  fmtPct(rep.parentParent), fmtU(rep.directParents),
                  fmtU(rep.childTbs)});
        pc_sum += rep.parentChild;
        cs_sum += rep.childSibling;
        co_sum += rep.childSiblingOwn;
        pp_sum += rep.parentParent;
        ++n;
    }
    t.addRule();
    t.addRow({"average", fmtPct(pc_sum / n), fmtPct(cs_sum / n),
              fmtPct(co_sum / n), fmtPct(pp_sum / n), "", ""});
    t.addRow({"paper", "38.4%", "~30%", "(n/a)", "9.3%", "", ""});
    t.print();
    std::printf(
        "\nNote: the cos/cs column is the literal Section III-A\n"
        "formula; our benchmarks launch many small children per\n"
        "parent TB, so the union normalization deflates it. The\n"
        "cos/co column (fraction of each child's own footprint shared\n"
        "with siblings) is the size-independent measure; see\n"
        "EXPERIMENTS.md.\n");
    return 0;
}
