#include "obs/locality.hh"

#include <cstdio>

namespace laperm {
namespace obs {

const char *
toString(ReuseClass c)
{
    switch (c) {
      case ReuseClass::Self:
        return "self";
      case ReuseClass::Parent:
        return "parent";
      case ReuseClass::Child:
        return "child";
      case ReuseClass::Sibling:
        return "sibling";
      case ReuseClass::Other:
        return "other";
    }
    return "unknown";
}

LocalityTracker::LocalityTracker(std::uint32_t num_l1)
    : l1Lines_(num_l1)
{
}

ReuseClass
LocalityTracker::classify(const Toucher &prev, const MemAccessor &who)
{
    if (prev.uid == who.uid)
        return ReuseClass::Self;
    if (who.isDynamic && prev.uid == who.directParent)
        return ReuseClass::Parent;
    if (prev.parent == who.uid)
        return ReuseClass::Child;
    if (who.isDynamic && prev.parent == who.directParent)
        return ReuseClass::Sibling;
    return ReuseClass::Other;
}

void
LocalityTracker::account(LineMap &lines, LocalityCounters &counters,
                         Addr line, bool hit, const MemAccessor &who)
{
    Toucher &prev = lines[line];
    if (hit) {
        // First-touch hits cannot happen (a hit implies an earlier
        // access installed the line, which recorded a toucher), so
        // prev is always meaningful here.
        ReuseClass c = classify(prev, who);
        ++counters.byClass[static_cast<std::uint32_t>(c)];
    }
    prev.uid = who.uid;
    prev.parent = who.directParent;
}

void
LocalityTracker::onL1Access(std::uint32_t l1_index, Addr line, bool hit,
                            const MemAccessor &who)
{
    account(l1Lines_[l1_index], l1_, line, hit, who);
}

void
LocalityTracker::onL2Access(Addr line, bool hit, const MemAccessor &who)
{
    account(l2Lines_, l2_, line, hit, who);
}

bool
LocalityTracker::writeTsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "level\tclass\thits\tshare\n");
    const struct
    {
        const char *level;
        const LocalityCounters &c;
    } levels[] = {{"l1", l1_}, {"l2", l2_}};
    for (const auto &lv : levels) {
        const std::uint64_t total = lv.c.total();
        for (std::uint32_t i = 0; i < kNumReuseClasses; ++i) {
            const std::uint64_t n = lv.c.byClass[i];
            const double share =
                total ? static_cast<double>(n) /
                            static_cast<double>(total)
                      : 0.0;
            std::fprintf(f, "%s\t%s\t%llu\t%.4f\n", lv.level,
                         toString(static_cast<ReuseClass>(i)),
                         static_cast<unsigned long long>(n), share);
        }
    }
    std::fclose(f);
    return true;
}

} // namespace obs
} // namespace laperm
