#include "gpu/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

Gpu::Gpu(const GpuConfig &cfg)
    : cfg_(cfg), mem_(cfg), kdu_(cfg.kduEntries)
{
    cfg_.validate();
    sched_ = TbScheduler::create(cfg_, *this);
    launcher_ = std::make_unique<Launcher>(cfg_, kdu_, *sched_, stats_,
                                           undispatchedTbs_, hub_);
    for (SmxId i = 0; i < cfg_.numSmx; ++i)
        smxs_.push_back(std::make_unique<Smx>(i, cfg_, mem_, *this));
    stats_.smx.resize(cfg_.numSmx);
    activeSmxs_.reserve(cfg_.numSmx);
    smxActive_.assign(cfg_.numSmx, false);
}

Gpu::~Gpu() = default;

void
Gpu::addDispatchHook(DispatchHook hook, void *ctx)
{
    dispatchHooks_.emplace_back(hook, ctx);
}

void
Gpu::setLocalityTracker(obs::LocalityTracker *tracker)
{
    mem_.setLocalityTracker(tracker);
}

void
Gpu::launchHostKernel(const LaunchRequest &req)
{
    launcher_->hostLaunch(req, cycle_);
}

bool
Gpu::idle() const
{
    return undispatchedTbs_ == 0 && activeTbs_ == 0 && launcher_->idle();
}

void
Gpu::noteSmxBusy(SmxId id)
{
    if (smxActive_[id])
        return;
    smxActive_[id] = true;
    activeSmxs_.insert(
        std::lower_bound(activeSmxs_.begin(), activeSmxs_.end(), id),
        id);
}

void
Gpu::tick()
{
    bool launched = launcher_->tick(cycle_);
    bool dispatched = sched_->dispatchOne(cycle_);
    bool progress = launched || dispatched;

    // Tick only SMXs with resident TBs (ticking a drained SMX is a
    // no-op), compacting ones that drained this cycle. dispatchOne
    // above is the only way an SMX gains work, so the list is stable
    // during this loop.
    std::size_t out = 0;
    for (std::size_t i = 0; i < activeSmxs_.size(); ++i) {
        const SmxId id = activeSmxs_[i];
        Smx &smx = *smxs_[id];
        progress |= smx.tick(cycle_);
        if (smx.drained())
            smxActive_[id] = false;
        else
            activeSmxs_[out++] = id;
    }
    activeSmxs_.resize(out);

    // Periodically drop MSHR entries no cache client can merge with
    // anymore. cycle_ lower-bounds every future access timestamp (LSU
    // issue and downstream latencies only add to it), so trimming at
    // the device clock is invisible to the timing model — unlike
    // trimming at access time, where out-of-order L2 timestamps would
    // turn some merges into misses.
    if (cycle_ >= nextMshrTrimAt_) {
        mem_.trimMshrs(cycle_);
        nextMshrTrimAt_ = cycle_ + kMshrTrimInterval;
    }

    if (progress) {
        ++cycle_;
        return;
    }

    // Nothing happened: jump to the next event (warp wakeup, launch
    // readiness, or an overflow-fetch completion).
    Cycle next = kNoCycle;
    for (SmxId id : activeSmxs_)
        next = std::min(next, smxs_[id]->nextEventAt(cycle_));
    next = std::min(next, launcher_->nextReadyAt(cycle_));
    next = std::min(next, sched_->nextReadyAt(cycle_));
    if (next == kNoCycle || next <= cycle_)
        ++cycle_;
    else
        cycle_ = next;
}

void
Gpu::runToIdle(Cycle max_cycles)
{
    Cycle start = cycle_;
    while (!idle()) {
        tick();
        if (cycle_ - start > max_cycles) {
            laperm_panic("simulation exceeded %llu cycles "
                         "(undispatched=%llu active=%llu pending=%zu)",
                         static_cast<unsigned long long>(max_cycles),
                         static_cast<unsigned long long>(undispatchedTbs_),
                         static_cast<unsigned long long>(activeTbs_),
                         launcher_->kmu().size());
        }
    }
}

void
Gpu::runWaves(const std::vector<LaunchRequest> &waves)
{
    for (const LaunchRequest &wave : waves) {
        launchHostKernel(wave);
        runToIdle();
    }
}

const GpuStats &
Gpu::stats()
{
    stats_.cycles = cycle_;
    for (SmxId i = 0; i < cfg_.numSmx; ++i)
        stats_.smx[i] = smxs_[i]->stats();
    mem_.exportStats(stats_);
    return stats_;
}

bool
Gpu::fits(SmxId smx, const DispatchUnit &unit) const
{
    return smxs_[smx]->canAccommodate(unit.threadsPerTb, unit.regsPerTb,
                                      unit.smemPerTb);
}

void
Gpu::dispatchTb(DispatchUnit &unit, SmxId smx, Cycle now)
{
    laperm_assert(!unit.exhausted(), "dispatching an exhausted unit");
    const std::uint32_t ix = unit.nextTb++;

    auto tb = buildThreadBlock(*unit.program, ix, unit.threadsPerTb,
                               unit.count);
    tb->uid = nextTbUid_++;
    tb->kernel = unit.kernel;
    tb->priority = unit.priority;
    tb->directParent = unit.directParent;
    tb->isDynamic = unit.directParent != kNoTb;

    ++unit.kernel->dispatchedTbs;
    laperm_assert(undispatchedTbs_ > 0, "undispatched TB underflow");
    --undispatchedTbs_;
    ++activeTbs_;

    tb->smx = smx;
    tb->dispatchCycle = now;
    for (const auto &[hook, ctx] : dispatchHooks_)
        hook(ctx, *tb);
    if (hub_.enabled()) {
        hub_.tbDispatch({now, tb->uid, tb->kernel->id, tb->tbIndex, smx,
                         tb->priority, tb->isDynamic, tb->directParent,
                         now});
    }
    smxs_[smx]->acceptTb(std::move(tb), now);
    // A TB whose warps are all empty completes inside acceptTb; only
    // track the SMX while it actually holds work.
    if (!smxs_[smx]->drained())
        noteSmxBusy(smx);
}

void
Gpu::deviceLaunch(const LaunchRequest &req, const ThreadBlock &parent,
                  Cycle now)
{
    if (req.threadsPerTb > cfg_.maxThreadsPerSmx)
        laperm_fatal("device launch TB of %u threads exceeds SMX limit",
                     req.threadsPerTb);
    launcher_->deviceLaunch(req, parent, now);
}

void
Gpu::tbCompleted(ThreadBlock &tb, Cycle now)
{
    if (hub_.enabled()) {
        hub_.tbRetire({now, tb.uid, tb.kernel->id, tb.tbIndex, tb.smx,
                       tb.priority, tb.isDynamic, tb.directParent,
                       tb.dispatchCycle});
    }
    kdu_.tbFinished(tb.kernel);
    laperm_assert(activeTbs_ > 0, "active TB underflow");
    --activeTbs_;
}

} // namespace laperm
