/**
 * @file
 * Kernel Management Unit: buffers device-side launches while their
 * launch latency elapses and selects which to admit next (FCFS for the
 * baseline, priority order under LaPerm).
 */

#ifndef LAPERM_GPU_KMU_HH
#define LAPERM_GPU_KMU_HH

#include <cstdint>
#include <list>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "kernels/isa.hh"

namespace laperm {

/** A device launch waiting for its latency to elapse / a KDU entry. */
struct PendingLaunch
{
    LaunchRequest req;
    std::uint32_t priority = 0;
    TbUid directParent = kNoTb;
    SmxId parentSmx = kNoSmx;
    Cycle queuedAt = 0; ///< when the launch op reached the KMU
    Cycle readyAt = 0;
    std::uint64_t seq = 0;
    bool stallCounted = false; ///< already counted a KDU-full stall
};

/**
 * Pending-launch buffer. Launches sit in a latency heap until their
 * readyAt elapses, then move to per-priority FCFS ready queues. Under
 * LaPerm the KMU admits the highest-priority ready kernel first; the
 * baseline admits in FCFS order. All operations are O(log n) or
 * O(priority levels), keeping the per-cycle cost flat even with large
 * CDP launch backlogs.
 */
class Kmu
{
  public:
    void push(PendingLaunch launch);

    /**
     * The launch to admit next at @p now, honouring @p priority_order;
     * nullptr if none is ready.
     */
    PendingLaunch *peekReady(Cycle now, bool priority_order);

    /** Remove @p launch (after successful admission). It must be the
     *  entry last returned by peekReady. */
    void pop(PendingLaunch *launch);

    /** Earliest readyAt among latent launches; now if any is ready;
     *  kNoCycle if empty. */
    Cycle nextReadyAt() const;

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

  private:
    using Iter = std::list<PendingLaunch>::iterator;

    void promote(Cycle now);

    std::list<PendingLaunch> store_;
    /** (readyAt, iterator) min-heap of latent launches. */
    struct HeapEntry
    {
        Cycle readyAt;
        std::uint64_t seq;
        Iter it;
        bool operator>(const HeapEntry &o) const
        {
            return readyAt != o.readyAt ? readyAt > o.readyAt
                                        : seq > o.seq;
        }
    };
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        latent_;
    /** Ready launches, FCFS within priority level. */
    std::vector<std::list<Iter>> ready_;
    std::size_t count_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace laperm

#endif // LAPERM_GPU_KMU_HH
