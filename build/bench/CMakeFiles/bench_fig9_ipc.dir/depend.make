# Empty dependencies file for bench_fig9_ipc.
# This may be replaced when dependencies are built.
