#!/usr/bin/env bash
# docs-check: keep the docs and the build in lockstep.
#
# Forward rule: every bench target (bench/CMakeLists.txt) and example
# (examples/CMakeLists.txt) must be mentioned in EXPERIMENTS.md or
# DESIGN.md — an undocumented binary is a doc gap.
#
# Reverse rules: every `bench_*` token and every `examples/<name>`
# reference in the docs must name a real build target, and every
# `--flag` inside a laperm_sim fenced code block in the docs must be a
# real laperm_sim flag — a stale doc reference is a doc bug.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
    echo "docs-check: $*" >&2
    fail=1
}

docs="EXPERIMENTS.md DESIGN.md"
all_docs="README.md EXPERIMENTS.md DESIGN.md"

# --- Collect build targets ---------------------------------------------
bench_targets=$(grep -oE '\bbench_[a-z0-9_]+\b' bench/CMakeLists.txt |
    sort -u)
# The examples CMakeLists declares its targets in one foreach(example
# ...) list, possibly spanning lines.
example_targets=$(tr '\n' ' ' <examples/CMakeLists.txt |
    sed -E 's/.*foreach\(example ([a-z0-9_ ]+)\).*/\1/' |
    tr -s ' ' '\n' | grep -vE '^$' | sort -u)

[ -n "$bench_targets" ] || err "could not extract bench targets"
[ -n "$example_targets" ] || err "could not extract example targets"

# --- Forward: every binary is documented -------------------------------
for t in $bench_targets; do
    if ! grep -q "$t" $docs; then
        err "bench target '$t' is not mentioned in EXPERIMENTS.md or DESIGN.md"
    fi
done
for e in $example_targets; do
    if ! grep -qE "(examples/)?$e" $docs; then
        err "example '$e' is not mentioned in EXPERIMENTS.md or DESIGN.md"
    fi
done

# --- Reverse: every documented binary exists ---------------------------
# A trailing dot means a data file ("bench_output.txt"), not a target.
doc_bench=$(grep -ohP '\bbench_[a-z0-9_]+\b(?!\.)' $all_docs | sort -u)
for t in $doc_bench; do
    if ! echo "$bench_targets" | grep -qx "$t"; then
        err "docs reference unknown bench target '$t'"
    fi
done
doc_examples=$(grep -ohE '\bexamples/[a-z0-9_]+\b' $all_docs |
    sed 's#examples/##' | sort -u)
for e in $doc_examples; do
    # Accept source-file references (examples/foo.cpp strips to foo).
    if ! echo "$example_targets" | grep -qx "$e"; then
        err "docs reference unknown example '$e'"
    fi
done

# --- Reverse: documented laperm_sim flags exist ------------------------
# Flags mentioned in fenced code blocks that invoke laperm_sim must
# appear as string literals in the driver source.
sim_flags=$(grep -ohE '"--[a-z0-9-]+"' src/tools/laperm_sim.cc |
    tr -d '"' | sort -u)
doc_flags=$(awk '
    /^```/ {
        if (inblock && block ~ /laperm_sim/) print block
        inblock = !inblock
        block = ""
        next
    }
    inblock { block = block "\n" $0 }
    ' $all_docs | grep -oE '(^|[[:space:]])--[a-z0-9-]+' |
    tr -d ' \t' | sort -u)
for f in $doc_flags; do
    if ! echo "$sim_flags" | grep -qx -- "$f"; then
        err "docs reference unknown laperm_sim flag '$f'"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED" >&2
    exit 1
fi
echo "docs-check: OK ($(echo "$bench_targets" | wc -l) bench targets, \
$(echo "$example_targets" | wc -l) examples, \
$(echo "$doc_flags" | grep -c -- --) documented flags checked)"
