/**
 * @file
 * sim-lint event-discipline pass (DESIGN.md §12.4): call-site rules
 * for the event-driven core's EventQueue (src/sim/event_queue.hh).
 * The queue's runtime asserts catch a past-cycle schedule when the
 * offending input happens to run; these rules catch the *construct*
 * statically:
 *
 *  - event-past   a schedule() call whose cycle argument contains a
 *                 subtraction — deadlines must be now + delta, never
 *                 now - delta (unsigned wrap turns a past cycle into
 *                 a far-future one and the run silently stalls);
 *  - event-kind   manufacturing event kinds outside the closed,
 *                 phase-ordered SimEventKind set: casting an integer
 *                 to SimEventKind or brace-constructing a SimEvent
 *                 anywhere but the queue's own header;
 *  - event-tick   calling Gpu::tick() directly instead of going
 *                 through Gpu::run/runWaves — bypassing runEventLoop
 *                 desynchronizes the event heap from machine state
 *                 (legal only inside gpu.cc, which owns both loops).
 *
 * Scope: restricted simulator directories (sim, sched, mem, gpu,
 * dynpar, obs).
 */

#ifndef LAPERM_TOOLS_LINT_EVENT_HH
#define LAPERM_TOOLS_LINT_EVENT_HH

#include <string>
#include <vector>

#include "tools/sim_lint.hh"

namespace laperm {
namespace simlint {

/** Event-discipline pass over one translation unit. */
std::vector<Finding> lintEventDiscipline(const std::string &path,
                                         const std::string &content);

} // namespace simlint
} // namespace laperm

#endif // LAPERM_TOOLS_LINT_EVENT_HH
