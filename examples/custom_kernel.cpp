/**
 * @file
 * Writing a custom dynamic-parallelism kernel against the public API:
 * a producer/consumer pattern where each parent TB writes a tile of
 * data and launches a child TB group that reduces the tile it just
 * produced — the parent-child locality pattern LaPerm exploits.
 *
 * Run: ./custom_kernel
 */

#include <cstdio>
#include <memory>

#include "common/bump_alloc.hh"
#include "common/log.hh"
#include "gpu/gpu.hh"
#include "harness/experiment.hh"
#include "kernels/lambda_program.hh"

using namespace laperm;

int
main()
{
    setVerbose(false);

    // 1. Lay out simulated device memory.
    BumpAllocator mem;
    constexpr std::uint32_t kTiles = 512;
    constexpr std::uint32_t kTileElems = 1024;
    Addr input = mem.allocArray(kTiles * kTileElems, 4, "input");
    Addr tiles = mem.allocArray(kTiles * kTileElems, 4, "tiles");
    Addr sums = mem.allocArray(kTiles, 4, "sums");

    // 2. The child kernel: reduce the tile its parent TB produced.
    //    It re-reads both the parent's input (read-shared: reusable in
    //    the parent SMX's L1) and the parent's output (write-shared:
    //    reusable through the L2 — the L1 is write-evict).
    auto reduce = [=](std::uint32_t tile) {
        return std::make_shared<LambdaProgram>(
            "reduce", 9001, [=](ThreadCtx &t) {
                for (std::uint32_t i = t.globalThreadIndex();
                     i < kTileElems;
                     i += t.numTbs() * t.threadsPerTb()) {
                    t.ld(input + 4ull * (tile * kTileElems + i), 4);
                    t.ld(tiles + 4ull * (tile * kTileElems + i), 4);
                    t.alu(2);
                }
                t.bar(); // tree reduction step
                t.alu(8);
                if (t.globalThreadIndex() == 0)
                    t.st(sums + 4ull * tile, 4);
            });
    };

    // 3. The parent kernel: each TB transforms one tile, then spawns
    //    the reduction of the data it just wrote.
    auto produce = std::make_shared<LambdaProgram>(
        "produce", 9000, [=](ThreadCtx &t) {
            std::uint32_t tile = t.tbIndex();
            for (std::uint32_t i = t.threadIndex(); i < kTileElems;
                 i += t.threadsPerTb()) {
                t.ld(input + 4ull * (tile * kTileElems + i), 4);
                t.alu(4);
                t.st(tiles + 4ull * (tile * kTileElems + i), 4);
            }
            t.bar();
            if (t.threadIndex() == 0)
                t.launch({reduce(tile), /*numTbs=*/2,
                          /*threadsPerTb=*/128});
        });

    // 4. Run it under RR and under LaPerm and compare.
    for (TbPolicy policy : {TbPolicy::RR, TbPolicy::AdaptiveBind}) {
        GpuConfig cfg = paperConfig();
        cfg.dynParModel = DynParModel::DTBL;
        cfg.tbPolicy = policy;
        Gpu gpu(cfg);
        gpu.launchHostKernel({produce, kTiles, 256});
        gpu.runToIdle();
        const GpuStats &s = gpu.stats();
        std::printf("%-14s cycles=%-8llu IPC=%-6.2f L1=%5.1f%% "
                    "L2=%5.1f%% (dynamic TBs: %llu)\n",
                    toString(policy),
                    static_cast<unsigned long long>(s.cycles), s.ipc(),
                    100.0 * s.l1Total().hitRate(),
                    100.0 * s.l2.hitRate(),
                    static_cast<unsigned long long>(s.dynamicTbs));
    }
    return 0;
}
