#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>


namespace laperm {
namespace serve {

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {}

Client::~Client()
{
    close();
}

void
Client::close()
{
    conn_.reset();
}

bool
Client::connect(std::string &err)
{
    close();
    std::uint64_t backoff = opts_.backoffMs;
    for (unsigned attempt = 0;; ++attempt) {
        conn_ = connectTo(opts_.endpoint, err);
        if (conn_) {
            if (opts_.recvTimeoutMs)
                conn_->setRecvTimeout(opts_.recvTimeoutMs);
            return true;
        }
        if (attempt >= opts_.connectRetries)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, opts_.maxBackoffMs);
    }
}

bool
Client::call(const std::string &request, JsonObject &response,
             std::string &err)
{
    if (!conn_) {
        err = "not connected";
        return false;
    }
    if (!conn_->writeAll(request + "\n")) {
        err = "write failed";
        close();
        return false;
    }
    std::string line;
    if (!conn_->readLine(line)) {
        err = "connection closed before response";
        close();
        return false;
    }
    response.clear();
    return parseJsonObject(line, response, err);
}

bool
Client::callWithRetry(const std::string &request, JsonObject &response,
                      std::string &err)
{
    std::uint64_t backoff = opts_.backoffMs;
    for (unsigned attempt = 0;; ++attempt) {
        bool ok = connected() || connect(err);
        if (ok)
            ok = call(request, response, err);

        if (ok) {
            std::string status;
            getString(response, "status", status);
            if (status != kStatusOverloaded)
                return true;
            // Honor the server's backoff hint on the first retry.
            std::uint64_t hint = 0;
            if (attempt == 0 && getU64(response, "retry_ms", hint) &&
                hint > 0) {
                backoff = std::min(hint, opts_.maxBackoffMs);
            }
            err = "overloaded";
        }

        if (attempt >= opts_.overloadRetries)
            return ok; // ok==true means a (still overloaded) response
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, opts_.maxBackoffMs);
    }
}

} // namespace serve
} // namespace laperm
