/**
 * @file
 * Reference CPU implementations of the graph algorithms used by the
 * workloads. The simulator is timing-only: these compute the functional
 * results (levels, distances, colors, per-iteration worklists) that the
 * kernel programs replay as memory-access traces.
 */

#ifndef LAPERM_GRAPH_ALGORITHMS_HH
#define LAPERM_GRAPH_ALGORITHMS_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.hh"

namespace laperm {

constexpr std::uint32_t kUnreached =
    std::numeric_limits<std::uint32_t>::max();

/** Level-synchronous BFS decomposition. */
struct BfsResult
{
    std::vector<std::uint32_t> level;               ///< per vertex
    std::vector<std::vector<std::uint32_t>> frontiers; ///< per level
};

BfsResult bfs(const Csr &csr, std::uint32_t source);

/** Bellman-Ford with per-round active worklists (GPU-style SSSP). */
struct SsspResult
{
    std::vector<std::uint32_t> dist;                 ///< per vertex
    std::vector<std::vector<std::uint32_t>> rounds;  ///< active per round
};

SsspResult sssp(const Csr &csr, const std::vector<std::uint32_t> &weights,
                std::uint32_t source, std::uint32_t max_rounds = 64);

/** Jones-Plassmann greedy coloring with per-round colored sets. */
struct ColoringResult
{
    std::vector<std::uint32_t> color;                ///< per vertex
    std::vector<std::vector<std::uint32_t>> rounds;  ///< colored per round
};

ColoringResult jpColoring(const Csr &csr, std::uint64_t seed,
                          std::uint32_t max_rounds = 128);

/** True iff no edge connects two equal colors (test helper). */
bool coloringValid(const Csr &csr, const std::vector<std::uint32_t> &color);

} // namespace laperm

#endif // LAPERM_GRAPH_ALGORITHMS_HH
