file(REMOVE_RECURSE
  "CMakeFiles/laperm_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/laperm_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/laperm_graph.dir/graph/csr.cc.o"
  "CMakeFiles/laperm_graph.dir/graph/csr.cc.o.d"
  "CMakeFiles/laperm_graph.dir/graph/generators.cc.o"
  "CMakeFiles/laperm_graph.dir/graph/generators.cc.o.d"
  "liblaperm_graph.a"
  "liblaperm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
