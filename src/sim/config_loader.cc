#include "sim/config_loader.hh"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/hash.hh"
#include "common/log.hh"

namespace laperm {
namespace {

// ---------------------------------------------------------------------
// Checked scalar parsers. The config surface is user-supplied (files,
// service requests), so every conversion rejects junk and overflow
// instead of truncating the way a bare strtoul would.
// ---------------------------------------------------------------------

bool
parseUIntChecked(const std::string &raw, std::uint64_t max,
                 std::uint64_t &out)
{
    if (raw.empty())
        return false;
    std::uint64_t v = 0;
    for (const char c : raw) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (max - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

bool
parseDoubleChecked(const std::string &raw, double &out)
{
    if (raw.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end != raw.c_str() + raw.size())
        return false;
    if (!std::isfinite(v))
        return false;
    out = v;
    return true;
}

/**
 * Shortest decimal spelling that round-trips exactly through strtod.
 * Gives "0.9" rather than "0.90000000000000002" while still keeping
 * emit -> parse -> emit a byte-identity.
 */
std::string
canonicalDouble(double v)
{
    for (int prec = 1; prec <= 17; ++prec) {
        const std::string s = logFormat("%.*g", prec, v);
        double back = 0.0;
        if (parseDoubleChecked(s, back) && back == v)
            return s;
    }
    return logFormat("%.17g", v);
}

std::string
badValue(const char *key, const char *expect, const std::string &raw)
{
    return logFormat("'%s': expected %s, got '%s'", key, expect,
                     raw.c_str());
}

// ---------------------------------------------------------------------
// Field registry. One row per machine field; the macros keep each row a
// single declaration so docs_check/grep can see the whole key list.
// ---------------------------------------------------------------------

struct FieldDef
{
    const char *key;
    const char *doc;
    bool quoted; ///< string-valued in TOML emission (enums, bools stay bare)
    bool (*set)(GpuConfig &, const std::string &, std::string &);
    std::string (*get)(const GpuConfig &);
};

#define LAPERM_FIELD_U32(KEY, MEMBER, DOC)                                   \
    {KEY, DOC, false,                                                        \
     [](GpuConfig &c, const std::string &raw, std::string &err) {            \
         std::uint64_t v = 0;                                                \
         if (!parseUIntChecked(raw, 0xffffffffull, v)) {                     \
             err = badValue(KEY, "unsigned 32-bit integer", raw);            \
             return false;                                                   \
         }                                                                   \
         c.MEMBER = static_cast<std::uint32_t>(v);                           \
         return true;                                                        \
     },                                                                      \
     [](const GpuConfig &c) { return std::to_string(c.MEMBER); }}

#define LAPERM_FIELD_U64(KEY, MEMBER, DOC)                                   \
    {KEY, DOC, false,                                                        \
     [](GpuConfig &c, const std::string &raw, std::string &err) {            \
         std::uint64_t v = 0;                                                \
         if (!parseUIntChecked(raw, 0xffffffffffffffffull, v)) {             \
             err = badValue(KEY, "unsigned 64-bit integer", raw);            \
             return false;                                                   \
         }                                                                   \
         c.MEMBER = v;                                                       \
         return true;                                                        \
     },                                                                      \
     [](const GpuConfig &c) { return std::to_string(c.MEMBER); }}

#define LAPERM_FIELD_DBL(KEY, MEMBER, DOC)                                   \
    {KEY, DOC, false,                                                        \
     [](GpuConfig &c, const std::string &raw, std::string &err) {            \
         double v = 0.0;                                                     \
         if (!parseDoubleChecked(raw, v)) {                                  \
             err = badValue(KEY, "finite real number", raw);                 \
             return false;                                                   \
         }                                                                   \
         c.MEMBER = v;                                                       \
         return true;                                                        \
     },                                                                      \
     [](const GpuConfig &c) { return canonicalDouble(c.MEMBER); }}

#define LAPERM_FIELD_BOOL(KEY, MEMBER, DOC)                                  \
    {KEY, DOC, false,                                                        \
     [](GpuConfig &c, const std::string &raw, std::string &err) {            \
         if (raw == "true") {                                                \
             c.MEMBER = true;                                                \
             return true;                                                    \
         }                                                                   \
         if (raw == "false") {                                               \
             c.MEMBER = false;                                               \
             return true;                                                    \
         }                                                                   \
         err = badValue(KEY, "true|false", raw);                             \
         return false;                                                       \
     },                                                                      \
     [](const GpuConfig &c) {                                                \
         return std::string(c.MEMBER ? "true" : "false");                    \
     }}

const FieldDef kFields[] = {
    // --- Compute resources ---
    LAPERM_FIELD_U32("num_smx", numSmx, "streaming multiprocessors"),
    LAPERM_FIELD_U32("max_threads_per_smx", maxThreadsPerSmx,
                     "resident thread limit per SMX"),
    LAPERM_FIELD_U32("max_tbs_per_smx", maxTbsPerSmx,
                     "resident thread-block limit per SMX"),
    LAPERM_FIELD_U32("regs_per_smx", regsPerSmx, "register file entries"),
    LAPERM_FIELD_U32("smem_per_smx", smemPerSmx, "shared memory bytes"),
    LAPERM_FIELD_U32("warp_schedulers_per_smx", warpSchedulersPerSmx,
                     "warp schedulers per SMX"),
    {"warp_sched", "warp scheduling policy: gto|lrr|tbaware", true,
     [](GpuConfig &c, const std::string &raw, std::string &err) {
         if (raw == "gto") {
             c.warpPolicy = WarpPolicy::GTO;
             return true;
         }
         if (raw == "lrr") {
             c.warpPolicy = WarpPolicy::LRR;
             return true;
         }
         if (raw == "tbaware") {
             c.warpPolicy = WarpPolicy::TbAware;
             return true;
         }
         err = badValue("warp_sched", "gto|lrr|tbaware", raw);
         return false;
     },
     [](const GpuConfig &c) {
         switch (c.warpPolicy) {
           case WarpPolicy::GTO: return std::string("gto");
           case WarpPolicy::LRR: return std::string("lrr");
           case WarpPolicy::TbAware: return std::string("tbaware");
         }
         return std::string("gto");
     }},
    LAPERM_FIELD_U32("smx_per_cluster", smxPerCluster,
                     "SMXs sharing one L1 cluster"),

    // --- Memory hierarchy ---
    LAPERM_FIELD_U32("l1_size", l1Size, "L1 data cache bytes per cluster"),
    LAPERM_FIELD_U32("l1_assoc", l1Assoc, "L1 associativity"),
    LAPERM_FIELD_U64("l1_hit_latency", l1HitLatency, "L1 hit cycles"),
    LAPERM_FIELD_U32("l2_size", l2Size, "shared L2 cache bytes"),
    LAPERM_FIELD_U32("l2_assoc", l2Assoc, "L2 associativity"),
    LAPERM_FIELD_U32("l2_banks", l2Banks, "L2 banks"),
    LAPERM_FIELD_U64("l2_hit_latency", l2HitLatency,
                     "load-to-use cycles on L1 miss / L2 hit"),
    LAPERM_FIELD_U64("l2_service_interval", l2ServiceInterval,
                     "per-bank occupancy cycles per L2 access"),
    LAPERM_FIELD_U32("dram_channels", dramChannels, "DRAM channels"),
    LAPERM_FIELD_U32("dram_banks_per_channel", dramBanksPerChannel,
                     "DRAM banks per channel"),
    LAPERM_FIELD_U64("dram_latency", dramLatency,
                     "extra cycles beyond L2 on miss"),
    LAPERM_FIELD_U64("dram_service_interval", dramServiceInterval,
                     "per-bank occupancy cycles per 128B access"),
    LAPERM_FIELD_U64("mshr_trim_interval", mshrTrimInterval,
                     "cycles between MSHR garbage-collection sweeps"),
    LAPERM_FIELD_U32("mshr_trim_watermark", mshrTrimWatermark,
                     "MSHR count below which a trim sweep is skipped"),

    // --- Kernel management and execution timing ---
    LAPERM_FIELD_U32("kdu_entries", kduEntries,
                     "kernel distributor entries (max concurrent kernels)"),
    LAPERM_FIELD_U64("bar_latency", barLatency,
                     "TB barrier release cycles"),
    LAPERM_FIELD_U64("launch_issue_cycles", launchIssueCycles,
                     "SMX-side cost of issuing a device launch"),
    LAPERM_FIELD_U32("warp_mlp_window", warpMlpWindow,
                     "independent loads issued before a warp stalls"),

    // --- Dynamic parallelism launch costs ---
    LAPERM_FIELD_U64("cdp_launch_latency", cdpLaunchLatency,
                     "CDP device-kernel launch cycles"),
    LAPERM_FIELD_U64("dtbl_launch_latency", dtblLaunchLatency,
                     "DTBL TB-group launch cycles"),

    // --- LaPerm scheduler hardware ---
    LAPERM_FIELD_U32("max_priority_levels", maxPriorityLevels,
                     "nested-launch priority level clamp L"),
    LAPERM_FIELD_U32("onchip_queue_entries", onchipQueueEntries,
                     "on-chip priority-queue entries per SMX"),
    LAPERM_FIELD_U32("shared_queue_entries", sharedQueueEntries,
                     "shared level-0 queue entries"),
    LAPERM_FIELD_U64("overflow_fetch_latency", overflowFetchLatency,
                     "cycles to fetch an overflowed queue entry"),
    {"backup_policy", "Adaptive-Bind stage-3 policy: recorded|random", true,
     [](GpuConfig &c, const std::string &raw, std::string &err) {
         if (raw == "recorded") {
             c.backupPolicy = BackupPolicy::Recorded;
             return true;
         }
         if (raw == "random") {
             c.backupPolicy = BackupPolicy::Random;
             return true;
         }
         err = badValue("backup_policy", "recorded|random", raw);
         return false;
     },
     [](const GpuConfig &c) {
         return std::string(
             c.backupPolicy == BackupPolicy::Random ? "random" : "recorded");
     }},

    // --- Contention-based TB throttling ---
    LAPERM_FIELD_BOOL("tb_throttle", tbThrottleEnabled,
                      "enable L1-contention TB throttling"),
    LAPERM_FIELD_U64("throttle_window", throttleWindow,
                     "L1 accesses between throttle evaluations"),
    LAPERM_FIELD_DBL("throttle_high_miss", throttleHighMiss,
                     "miss rate above which residency shrinks"),
    LAPERM_FIELD_DBL("throttle_low_miss", throttleLowMiss,
                     "miss rate below which residency grows back"),
    LAPERM_FIELD_U32("throttle_min_tbs", throttleMinTbs,
                     "floor on throttled TB residency"),
};

#undef LAPERM_FIELD_U32
#undef LAPERM_FIELD_U64
#undef LAPERM_FIELD_DBL
#undef LAPERM_FIELD_BOOL

const FieldDef *
findField(const std::string &key)
{
    for (const FieldDef &f : kFields)
        if (key == f.key)
            return &f;
    return nullptr;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip one layer of double quotes; false on an unterminated quote. */
bool
unquote(std::string &v)
{
    if (v.size() >= 1 && v[0] == '"') {
        if (v.size() < 2 || v[v.size() - 1] != '"')
            return false;
        v = v.substr(1, v.size() - 2);
    }
    return true;
}

bool
validKey(const std::string &k)
{
    if (k.empty())
        return false;
    for (const char c : k) {
        if (!(c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')))
            return false;
    }
    return !(k[0] >= '0' && k[0] <= '9');
}

} // namespace

std::vector<MachineFieldInfo>
machineFields()
{
    std::vector<MachineFieldInfo> out;
    for (const FieldDef &f : kFields)
        out.push_back(MachineFieldInfo{f.key, f.doc});
    return out;
}

bool
setMachineField(GpuConfig &cfg, const std::string &key,
                const std::string &raw, std::string &err)
{
    const FieldDef *f = findField(key);
    if (!f) {
        err = logFormat("unknown machine config key '%s'", key.c_str());
        return false;
    }
    return f->set(cfg, raw, err);
}

std::string
machineFieldValue(const GpuConfig &cfg, const std::string &key)
{
    const FieldDef *f = findField(key);
    return f ? f->get(cfg) : std::string();
}

bool
parseMachineToml(const std::string &text, GpuConfig &cfg, std::string &err)
{
    GpuConfig scratch = cfg;
    std::set<std::string> seen;
    std::istringstream in(text);
    std::string raw_line;
    int lineno = 0;
    while (std::getline(in, raw_line)) {
        ++lineno;
        // Comments run to end of line; values never contain '#'.
        const std::size_t hash = raw_line.find('#');
        if (hash != std::string::npos)
            raw_line = raw_line.substr(0, hash);
        const std::string line = trim(raw_line);
        if (line.empty())
            continue;
        if (line[0] == '[') {
            if (line != "[machine]") {
                err = logFormat("line %d: unknown section %s (only "
                                "[machine] is recognized)",
                                lineno, line.c_str());
                return false;
            }
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            err = logFormat("line %d: expected 'key = value'", lineno);
            return false;
        }
        const std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (!validKey(key)) {
            err = logFormat("line %d: malformed key '%s'", lineno,
                            key.c_str());
            return false;
        }
        if (!seen.insert(key).second) {
            err = logFormat("line %d: duplicate key '%s'", lineno,
                            key.c_str());
            return false;
        }
        if (!unquote(value)) {
            err = logFormat("line %d: unterminated string for '%s'",
                            lineno, key.c_str());
            return false;
        }
        std::string field_err;
        if (!setMachineField(scratch, key, value, field_err)) {
            err = logFormat("line %d: %s", lineno, field_err.c_str());
            return false;
        }
    }
    cfg = scratch;
    return true;
}

bool
loadMachineToml(const std::string &path, GpuConfig &cfg, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = logFormat("cannot read config file '%s'", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parse_err;
    if (!parseMachineToml(text.str(), cfg, parse_err)) {
        err = logFormat("%s: %s", path.c_str(), parse_err.c_str());
        return false;
    }
    return true;
}

std::string
emitMachineToml(const GpuConfig &cfg)
{
    std::string out = "# laperm machine configuration (canonical form)\n"
                      "[machine]\n";
    for (const FieldDef &f : kFields) {
        out += f.key;
        out += " = ";
        if (f.quoted) {
            out += '"';
            out += f.get(cfg);
            out += '"';
        } else {
            out += f.get(cfg);
        }
        out += '\n';
    }
    return out;
}

std::string
canonicalMachine(const GpuConfig &cfg)
{
    std::string out;
    for (const FieldDef &f : kFields) {
        if (!out.empty())
            out += ' ';
        out += f.key;
        out += '=';
        out += f.get(cfg);
    }
    return out;
}

std::string
machineHash(const GpuConfig &cfg)
{
    return contentKey(canonicalMachine(cfg));
}

const std::string &
defaultMachineHash()
{
    static const std::string hash = machineHash(GpuConfig());
    return hash;
}

} // namespace laperm
