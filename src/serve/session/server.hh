/**
 * @file
 * Session layer of the serving stack (DESIGN.md §15.2): an accept loop
 * plus one thread per live connection, each reading newline-delimited
 * frames off a transport Connection and answering through a
 * LineHandler. Transport-agnostic — the same Server speaks UDS and TCP
 * because listenOn() hides the difference — and service-agnostic: the
 * handler decides what the bytes mean.
 *
 * Connection-thread lifecycle: a finished connection parks its thread
 * handle on a reap list that the accept loop drains before every
 * accept (and stop() drains last), so a long-lived daemon holds
 * O(live connections) thread handles, not O(all connections ever) —
 * the unbounded-growth bug the pre-§15 server had.
 *
 * Embeddable: tests and the cluster bench run Servers in-process;
 * laperm_served is a thin main() around one.
 */

#ifndef LAPERM_SERVE_SESSION_SERVER_HH
#define LAPERM_SERVE_SESSION_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/session/handler.hh"
#include "serve/transport/transport.hh"

namespace laperm {
namespace serve {

struct SessionOptions
{
    Endpoint endpoint = Endpoint::unixAt("laperm_served.sock");
    int backlog = 64;
};

class Server
{
  public:
    /** @p handler is borrowed and must outlive the server. */
    Server(SessionOptions opts, LineHandler &handler);

    /** stop() if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the accept thread. Installs this
     * server's requestShutdown as the handler's shutdown hook.
     */
    bool start(std::string &err);

    /**
     * Block until a shutdown request arrives or @p ms elapses
     * (0 = wait forever). True when shutdown was requested.
     */
    bool waitShutdown(std::uint64_t ms = 0);

    /** Ask the server to stop (also triggered by the shutdown verb). */
    void requestShutdown();

    /** Stop accepting, unblock and join every connection thread. */
    void stop();

    /**
     * Endpoint actually bound (valid after start(); tcp:HOST:0 carries
     * the kernel-assigned port).
     */
    const Endpoint &boundEndpoint() const;

  private:
    /**
     * One live connection. The node owns the Connection so the socket
     * is closed only when the node is erased, which happens strictly
     * after its thread has been joined; the thread itself only flips
     * `finished` on exit.
     */
    struct Conn
    {
        std::thread thread;
        std::unique_ptr<Connection> connection;
        bool finished = false;
    };

    void acceptLoop();
    void handleConnection(Connection &conn,
                          std::list<Conn>::iterator slot);

    SessionOptions opts_;
    LineHandler &handler_;

    std::unique_ptr<Listener> listener_;
    std::thread acceptThread_;

    std::mutex mu_; ///< guards conns_ and the shutdown flags
    std::list<Conn> conns_;
    bool shutdownRequested_ = false;
    bool stopped_ = false;
    std::condition_variable shutdownCv_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SESSION_SERVER_HH
