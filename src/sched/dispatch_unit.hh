/**
 * @file
 * A dispatch unit: the scheduler-visible handle on a contiguous range
 * of TBs awaiting dispatch. A host kernel is one unit; a CDP device
 * kernel is one unit; a DTBL TB group coalesced onto a KDU kernel is
 * one unit. This matches the paper's priority-queue entries (PC /
 * configuration / parameters / NextTB, 24 bytes each).
 */

#ifndef LAPERM_SCHED_DISPATCH_UNIT_HH
#define LAPERM_SCHED_DISPATCH_UNIT_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "kernels/kernel_program.hh"

namespace laperm {

struct KernelInstance;

/** Scheduler-visible record of a pending TB range. */
struct DispatchUnit
{
    KernelInstance *kernel = nullptr;
    /** The launch's own program instance (kernel arguments). */
    std::shared_ptr<const KernelProgram> program;

    /** First TB of this unit within the kernel's global TB pool. */
    std::uint32_t firstTb = 0;
    /** TBs in this unit (the launch's gridDim). */
    std::uint32_t count = 0;
    /** Next TB (relative) to dispatch; == count when exhausted. */
    std::uint32_t nextTb = 0;
    std::uint32_t threadsPerTb = 0;
    /**
     * Per-TB resource demand, hoisted from the program at unit
     * creation: fit probes run per unit x per SMX x per cycle and must
     * not pay two virtual calls each time.
     */
    std::uint32_t regsPerTb = 0;
    std::uint32_t smemPerTb = 0;

    /** Priority level: 0 = host kernel, children = parent + 1 (<= L). */
    std::uint32_t priority = 0;
    /** Owning tenant stream (inherited by device-launched children). */
    std::uint32_t tenant = 0;
    /** Direct parent TB uid (kNoTb for host kernels). */
    TbUid directParent = kNoTb;
    /** SMX that executed the direct parent (binding target). */
    SmxId boundSmx = kNoSmx;

    /** Not dispatchable before this cycle (launch latency, fetches). */
    Cycle readyAt = 0;
    /** Entry spilled to the global-memory overflow queue. */
    bool overflowed = false;
    /** FCFS sequence number within a priority level. */
    std::uint64_t seq = 0;

    bool exhausted() const { return nextTb >= count; }
    std::uint32_t remaining() const { return count - nextTb; }
};

} // namespace laperm

#endif // LAPERM_SCHED_DISPATCH_UNIT_HH
