#include "serve/service/service.hh"

#include <chrono>
#include <exception>
#include <thread>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/tenant_sweep.hh"
#include "tenant/mixes.hh"
#include "tenant/tenant_manager.hh"
#include "workloads/registry.hh"

namespace laperm {
namespace serve {

namespace {

std::uint64_t
nowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
bumpPeak(std::atomic<std::uint64_t> &peak, std::uint64_t v)
{
    std::uint64_t cur = peak.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace

std::string
ServiceMetrics::jsonFields() const
{
    return logFormat(
        "\"requests\":%llu,\"executed\":%llu,\"cache_hits\":%llu,"
        "\"cache_misses\":%llu,\"cache_mem_hits\":%llu,"
        "\"cache_shared_hits\":%llu,\"deduped\":%llu,\"shed\":%llu,"
        "\"timeouts\":%llu,\"errors\":%llu,\"queue_depth\":%llu,"
        "\"queue_depth_peak\":%llu,\"queue_us\":%llu,\"exec_us\":%llu,"
        "\"total_us\":%llu",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(executed),
        static_cast<unsigned long long>(cacheHits),
        static_cast<unsigned long long>(cacheMisses),
        static_cast<unsigned long long>(cacheMemHits),
        static_cast<unsigned long long>(cacheSharedHits),
        static_cast<unsigned long long>(deduped),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(timeouts),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(queueDepth),
        static_cast<unsigned long long>(queueDepthPeak),
        static_cast<unsigned long long>(queueUs),
        static_cast<unsigned long long>(execUs),
        static_cast<unsigned long long>(totalUs));
}

std::string
ServiceMetrics::toTsv() const
{
    return logFormat(
        "requests\t%llu\nexecuted\t%llu\ncache_hits\t%llu\n"
        "cache_misses\t%llu\ncache_mem_hits\t%llu\n"
        "cache_shared_hits\t%llu\ndeduped\t%llu\nshed\t%llu\n"
        "timeouts\t%llu\nerrors\t%llu\nqueue_depth\t%llu\n"
        "queue_depth_peak\t%llu\nqueue_us\t%llu\nexec_us\t%llu\n"
        "total_us\t%llu\n",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(executed),
        static_cast<unsigned long long>(cacheHits),
        static_cast<unsigned long long>(cacheMisses),
        static_cast<unsigned long long>(cacheMemHits),
        static_cast<unsigned long long>(cacheSharedHits),
        static_cast<unsigned long long>(deduped),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(timeouts),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(queueDepth),
        static_cast<unsigned long long>(queueDepthPeak),
        static_cast<unsigned long long>(queueUs),
        static_cast<unsigned long long>(execUs),
        static_cast<unsigned long long>(totalUs));
}

SimService::SimService(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheDir, opts_.fingerprint),
      pool_(std::make_unique<ThreadPool>(
          opts_.jobs ? opts_.jobs : ThreadPool::defaultJobs()))
{
}

SimService::~SimService()
{
    // ThreadPool's destructor drains the queue, which completes every
    // flight; no waiter can outlive the service by contract (the
    // server joins its connection threads first).
    pool_.reset();
}

RunOutcome
SimService::run(const SimRequest &req)
{
    const std::uint64_t t0 = nowUs();
    requests_.fetch_add(1, std::memory_order_relaxed);

    RunOutcome out;
    std::string err;
    if (!req.validate(err)) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        out.status = RunStatus::Error;
        out.error = err;
        totalUs_.fetch_add(nowUs() - t0, std::memory_order_relaxed);
        return out;
    }
    out.key = req.key();

    // Cache probe. Skipped for trace requests: a hit would return the
    // right stats but produce none of the requested artifacts.
    if (req.traceDir.empty()) {
        const TieredResultCache::Tier tier =
            cache_.probe(out.key, out.payload);
        if (tier != TieredResultCache::Tier::Miss) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            if (tier == TieredResultCache::Tier::Memory)
                cacheMemHits_.fetch_add(1, std::memory_order_relaxed);
            else
                cacheSharedHits_.fetch_add(1,
                                           std::memory_order_relaxed);
            out.status = RunStatus::Ok;
            out.cached = true;
            totalUs_.fetch_add(nowUs() - t0, std::memory_order_relaxed);
            return out;
        }
    }

    // Single-flight join or admission-controlled enqueue.
    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = flights_.find(out.key);
        if (it != flights_.end()) {
            flight = it->second;
        } else {
            if (pending_ >= opts_.queueCapacity) {
                shed_.fetch_add(1, std::memory_order_relaxed);
                out.status = RunStatus::Shed;
                totalUs_.fetch_add(nowUs() - t0,
                                   std::memory_order_relaxed);
                return out;
            }
            flight = std::make_shared<Flight>();
            flights_.emplace(out.key, flight);
            ++pending_;
            bumpPeak(queueDepthPeak_, pending_);
            owner = true;
        }
    }

    if (owner) {
        pool_->submit([this, req, key = out.key, flight, t0] {
            execute(req, key, flight, t0);
        });
    } else {
        deduped_.fetch_add(1, std::memory_order_relaxed);
        out.deduped = true;
    }

    {
        std::unique_lock<std::mutex> lock(flight->mu);
        if (!flight->cv.wait_for(lock,
                                 std::chrono::milliseconds(opts_.timeoutMs),
                                 [&] { return flight->done; })) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            out.status = RunStatus::Timeout;
            totalUs_.fetch_add(nowUs() - t0, std::memory_order_relaxed);
            return out;
        }
        if (flight->error.empty()) {
            out.status = RunStatus::Ok;
            out.payload = flight->payload;
        } else {
            errors_.fetch_add(1, std::memory_order_relaxed);
            out.status = RunStatus::Error;
            out.error = flight->error;
        }
    }
    totalUs_.fetch_add(nowUs() - t0, std::memory_order_relaxed);
    return out;
}

void
SimService::execute(const SimRequest &req, const std::string &key,
                    const std::shared_ptr<Flight> &flight,
                    std::uint64_t enqueuedUs)
{
    const std::uint64_t tStart = nowUs();
    queueUs_.fetch_add(tStart - enqueuedUs, std::memory_order_relaxed);

    if (opts_.testExecDelayMs) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.testExecDelayMs));
    }

    std::string payload;
    std::string error;
    try {
        if (!req.tenants.empty()) {
            // Tenant-mix request: the payload is the same TSV
            // laperm_sim --tenants MIX --tenants-tsv writes, so a
            // served mix study byte-compares against a direct run.
            const tenant::MixSpec mix = tenant::builtinMix(req.tenants);
            const tenant::MixStudy study =
                tenant::runMixStudy(mix, req.cfg);
            std::vector<TenantSweepRow> rows;
            for (const tenant::TenantMetrics &tm :
                 study.metrics.perTenant) {
                TenantSweepRow r;
                r.mix = mix.name;
                r.preset = req.presetName;
                r.policy = req.cfg.tbPolicy;
                r.tenant = tm.name;
                r.tenantId = tm.tenant;
                r.jobs = tm.jobs;
                r.antt = tm.antt;
                r.p50 = tm.p50;
                r.p95 = tm.p95;
                r.p99 = tm.p99;
                r.retiredTbs = tm.retiredTbs;
                r.mixAntt = study.metrics.antt;
                r.mixStp = study.metrics.stp;
                r.mixJain = study.metrics.jain;
                r.makespan = study.metrics.makespan;
                rows.push_back(std::move(r));
            }
            payload = encodeTenantSweepTsv(rows);
        } else {
            auto w = createWorkload(req.workload);
            w->setup(req.scale, req.seed);
            payload = runOneRecord(*w, req.cfg, req.traceDir).encode();
        }
    } catch (const std::exception &e) {
        error = e.what();
    }

    executed_.fetch_add(1, std::memory_order_relaxed);
    if (error.empty()) {
        if (!cache_.store(key, payload))
            laperm_warn("result cache store failed for key %s",
                        key.c_str());
        // Counted after the store completes: an observed miss implies
        // the cached result is already readable by a retry.
        cacheMisses_.fetch_add(1, std::memory_order_relaxed);
    }
    execUs_.fetch_add(nowUs() - tStart, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(mu_);
        flights_.erase(key);
        --pending_;
    }
    {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->payload = std::move(payload);
        flight->error = std::move(error);
        flight->done = true;
    }
    flight->cv.notify_all();
}

ServiceMetrics
SimService::metrics() const
{
    ServiceMetrics m;
    m.requests = requests_.load(std::memory_order_relaxed);
    m.executed = executed_.load(std::memory_order_relaxed);
    m.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    m.cacheMisses = cacheMisses_.load(std::memory_order_relaxed);
    m.cacheMemHits = cacheMemHits_.load(std::memory_order_relaxed);
    m.cacheSharedHits =
        cacheSharedHits_.load(std::memory_order_relaxed);
    m.deduped = deduped_.load(std::memory_order_relaxed);
    m.shed = shed_.load(std::memory_order_relaxed);
    m.timeouts = timeouts_.load(std::memory_order_relaxed);
    m.errors = errors_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        m.queueDepth = pending_;
    }
    m.queueDepthPeak = queueDepthPeak_.load(std::memory_order_relaxed);
    m.queueUs = queueUs_.load(std::memory_order_relaxed);
    m.execUs = execUs_.load(std::memory_order_relaxed);
    m.totalUs = totalUs_.load(std::memory_order_relaxed);
    return m;
}

} // namespace serve
} // namespace laperm
