// sim-lint fixture: wall-clock reads inside simulator code must be
// flagged. Not compiled — parsed by test_sim_lint.cc.
#include <chrono>
#include <ctime>

long
now()
{
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::high_resolution_clock::now();
    (void)t0;
    (void)t1;
    return time(nullptr);
}
