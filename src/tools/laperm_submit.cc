/**
 * @file
 * Client for laperm_served (DESIGN.md §10): builds a canonical
 * simulation request from laperm_sim-style flags, submits it over the
 * daemon's Unix socket, and renders the returned record through the
 * same formatter laperm_sim --csv uses — served output is byte-
 * identical to a direct run.
 *
 * Usage:
 *   laperm_submit [options]
 *     --connect ENDPOINT  unix:PATH | tcp:HOST:PORT | bare path
 *                         (default unix:laperm_served.sock)
 *     --socket PATH     legacy alias for --connect unix:PATH
 *     --workload NAME   bfs-citation, join-gaussian, ...
 *     --policy P        rr | tbpri | smxbind | adaptive (default rr)
 *     --model M         cdp | dtbl (default dtbl)
 *     --scale S         tiny | small | full (default small)
 *     --seed N          input-generator seed (default 1)
 *     --preset NAME     hardware preset (k20c | gtx1080 | p100 | v100)
 *     --config FILE     machine TOML applied on top of the preset
 *     --smx N           override SMX count
 *     --l1-kb N         override L1 size
 *     --l2-kb N         override L2 size
 *     --levels N        max priority levels L
 *     --cdp-latency N   CDP launch latency in cycles
 *     --dtbl-latency N  DTBL launch latency in cycles
 *     --warp-sched W    gto | lrr
 *     --trace-dir DIR   server-side observability artifact directory
 *     --tenants MIX     run a builtin multi-tenant mix server-side and
 *                       print the tenant-sweep TSV (same bytes as
 *                       laperm_sim --tenants MIX --tenants-tsv)
 *     --batch FILE      submit one JSON request per line of FILE and
 *                       print the sweep-format TSV (input order)
 *     --stats           print service metrics as "metric\tvalue" TSV
 *     --ping            liveness check; prints daemon fingerprint
 *     --shutdown        ask the daemon to exit
 *     --retries N       overload/transport retry budget (default 5)
 *     --backoff-ms N    initial retry backoff (default 50)
 *     --timeout-ms N    client receive timeout, 0 = none (default 0)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "serve/client.hh"
#include "serve/service/sim_request.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"
#include "tools/cli_parse.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

enum class Mode
{
    Run,
    Batch,
    Stats,
    Ping,
    Shutdown,
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--connect ENDPOINT] [--socket PATH] "
        "[--workload NAME] "
        "[--policy rr|tbpri|smxbind|adaptive] [--model cdp|dtbl] "
        "[--scale tiny|small|full|huge] [--seed N] [--preset NAME] "
        "[--config FILE] [--smx N] [--l1-kb N] "
        "[--l2-kb N] [--levels N] [--cdp-latency N] [--dtbl-latency N] "
        "[--warp-sched gto|lrr] [--trace-dir DIR] [--tenants MIX] "
        "[--batch FILE] "
        "[--stats] [--ping] [--shutdown] [--retries N] "
        "[--backoff-ms N] [--timeout-ms N]\n",
        argv0);
    std::exit(2);
}

int
fail(const std::string &msg)
{
    std::fprintf(stderr, "laperm_submit: %s\n", msg.c_str());
    return 1;
}

/** Non-ok responses share one rendering across all modes. */
int
failResponse(const JsonObject &response)
{
    std::string status;
    std::string message;
    getString(response, "status", status);
    getString(response, "message", message);
    return fail("status=" + status +
                (message.empty() ? "" : ": " + message));
}

/**
 * Submit one run request and decode the canonical record out of the
 * response. Returns false (with @p err set) on any failure.
 */
bool
submitRun(Client &client, const SimRequest &req, ResultRecord &rec,
          std::string &err)
{
    JsonObject response;
    if (!client.callWithRetry(req.toJson(), response, err))
        return false;
    std::string status;
    getString(response, "status", status);
    if (status != kStatusOk) {
        std::string message;
        getString(response, "message", message);
        err = "status=" + status +
              (message.empty() ? "" : ": " + message);
        return false;
    }
    std::string payload;
    if (!getString(response, "result", payload)) {
        err = "response missing 'result'";
        return false;
    }
    if (!ResultRecord::decode(payload, rec)) {
        err = "malformed result payload: " + payload;
        return false;
    }
    return true;
}

int
runBatch(Client &client, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return fail("cannot open batch file '" + path + "'");

    std::vector<RunResult> rows;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        JsonObject obj;
        std::string err;
        if (!parseJsonObject(line, obj, err)) {
            return fail(logFormat("%s:%zu: %s", path.c_str(), lineNo,
                                  err.c_str()));
        }
        SimRequest req;
        if (!SimRequest::fromJson(obj, req, err)) {
            return fail(logFormat("%s:%zu: %s", path.c_str(), lineNo,
                                  err.c_str()));
        }
        // Validate locally before submitting so a bad batch line (e.g.
        // an unknown workload) fails with the structured known-names
        // error instead of a server round-trip per bad line.
        if (!req.validate(err)) {
            return fail(logFormat("%s:%zu: %s", path.c_str(), lineNo,
                                  err.c_str()));
        }
        ResultRecord rec;
        if (!submitRun(client, req, rec, err)) {
            return fail(logFormat("%s:%zu: %s", path.c_str(), lineNo,
                                  err.c_str()));
        }
        rows.push_back(rec.toRunResult());
    }
    // Same serializer — and therefore the same bytes — as the sweep
    // harness TSV cache.
    std::fputs(encodeSweepTsv(rows).c_str(), stdout);
    return 0;
}

int
runStats(Client &client)
{
    JsonObject response;
    std::string err;
    if (!client.callWithRetry("{\"op\":\"stats\"}", response, err))
        return fail(err);
    std::string status;
    getString(response, "status", status);
    if (status != kStatusOk)
        return failResponse(response);

    std::string fingerprint;
    getString(response, "fingerprint", fingerprint);
    std::printf("fingerprint\t%s\n", fingerprint.c_str());
    // Field order mirrors ServiceMetrics::toTsv().
    static const char *kMetrics[] = {
        "requests",   "executed", "cache_hits",  "cache_misses",
        "cache_mem_hits", "cache_shared_hits",
        "deduped",    "shed",     "timeouts",    "errors",
        "queue_depth", "queue_depth_peak", "queue_us", "exec_us",
        "total_us",
    };
    for (const char *name : kMetrics) {
        std::uint64_t v = 0;
        getU64(response, name, v);
        std::printf("%s\t%llu\n", name,
                    static_cast<unsigned long long>(v));
    }
    // Cluster balancers append a worker count; single daemons do not.
    std::uint64_t workers = 0;
    if (getU64(response, "workers", workers)) {
        std::printf("workers\t%llu\n",
                    static_cast<unsigned long long>(workers));
    }
    return 0;
}

int
runPing(Client &client)
{
    JsonObject response;
    std::string err;
    if (!client.callWithRetry("{\"op\":\"ping\"}", response, err))
        return fail(err);
    std::string status;
    getString(response, "status", status);
    if (status != kStatusOk)
        return failResponse(response);
    std::string fingerprint;
    std::uint64_t protocol = 0;
    getString(response, "fingerprint", fingerprint);
    getU64(response, "protocol", protocol);
    std::printf("ok fingerprint=%s protocol=%llu\n", fingerprint.c_str(),
                static_cast<unsigned long long>(protocol));
    return 0;
}

int
runShutdown(Client &client)
{
    JsonObject response;
    std::string err;
    if (!client.call("{\"op\":\"shutdown\"}", response, err))
        return fail(err);
    std::string status;
    getString(response, "status", status);
    if (status != kStatusOk)
        return failResponse(response);
    std::printf("shutdown acknowledged\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ClientOptions copts;
    SimRequest req;
    req.cfg = paperConfig();
    Mode mode = Mode::Run;
    std::string batchPath;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    auto parse_u32 = [&](const char *s, const char *what) {
        std::uint32_t v = 0;
        if (!cli::parseU32(s, v)) {
            std::fprintf(stderr, "bad %s value '%s'\n", what, s);
            std::exit(2);
        }
        return v;
    };
    auto parse_u64 = [&](const char *s, const char *what) {
        std::uint64_t v = 0;
        if (!cli::parseU64(s, v)) {
            std::fprintf(stderr, "bad %s value '%s'\n", what, s);
            std::exit(2);
        }
        return v;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--connect") ||
            !std::strcmp(a, "--socket")) {
            const bool legacy = !std::strcmp(a, "--socket");
            const char *text = next_arg(i);
            if (legacy) {
                copts.endpoint = Endpoint::unixAt(text);
            } else {
                std::string ep_err;
                if (!parseEndpoint(text, copts.endpoint, ep_err)) {
                    std::fprintf(stderr, "laperm_submit: %s\n",
                                 ep_err.c_str());
                    return 2;
                }
            }
        } else if (!std::strcmp(a, "--workload")) {
            req.workload = next_arg(i);
        } else if (!std::strcmp(a, "--policy")) {
            std::string p = next_arg(i);
            if (p == "rr")
                req.policy = TbPolicy::RR;
            else if (p == "tbpri")
                req.policy = TbPolicy::TbPri;
            else if (p == "smxbind")
                req.policy = TbPolicy::SmxBind;
            else if (p == "adaptive" || p == "laperm")
                req.policy = TbPolicy::AdaptiveBind;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--model")) {
            std::string m = next_arg(i);
            if (m == "cdp")
                req.model = DynParModel::CDP;
            else if (m == "dtbl")
                req.model = DynParModel::DTBL;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--scale")) {
            std::string s = next_arg(i);
            if (s == "tiny")
                req.scale = Scale::Tiny;
            else if (s == "small")
                req.scale = Scale::Small;
            else if (s == "full")
                req.scale = Scale::Full;
            else if (s == "huge")
                req.scale = Scale::Huge;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--seed")) {
            req.seed = parse_u64(next_arg(i), "--seed");
        } else if (!std::strcmp(a, "--preset")) {
            const TickMode tick = req.cfg.tickMode;
            req.presetName = next_arg(i);
            req.cfg = presetConfig(req.presetName.c_str());
            req.cfg.tickMode = tick;
        } else if (!std::strcmp(a, "--config")) {
            std::string cfg_err;
            if (!loadMachineToml(next_arg(i), req.cfg, cfg_err))
                laperm_fatal("%s", cfg_err.c_str());
        } else if (!std::strcmp(a, "--smx")) {
            req.cfg.numSmx = parse_u32(next_arg(i), "--smx");
        } else if (!std::strcmp(a, "--l1-kb")) {
            req.cfg.l1Size = parse_u32(next_arg(i), "--l1-kb") * 1024;
        } else if (!std::strcmp(a, "--l2-kb")) {
            req.cfg.l2Size = parse_u32(next_arg(i), "--l2-kb") * 1024;
        } else if (!std::strcmp(a, "--levels")) {
            req.cfg.maxPriorityLevels =
                parse_u32(next_arg(i), "--levels");
        } else if (!std::strcmp(a, "--cdp-latency")) {
            req.cfg.cdpLaunchLatency =
                parse_u64(next_arg(i), "--cdp-latency");
        } else if (!std::strcmp(a, "--dtbl-latency")) {
            req.cfg.dtblLaunchLatency =
                parse_u64(next_arg(i), "--dtbl-latency");
        } else if (!std::strcmp(a, "--warp-sched")) {
            std::string w = next_arg(i);
            if (w == "gto")
                req.cfg.warpPolicy = WarpPolicy::GTO;
            else if (w == "lrr")
                req.cfg.warpPolicy = WarpPolicy::LRR;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--trace-dir")) {
            req.traceDir = next_arg(i);
        } else if (!std::strcmp(a, "--tenants")) {
            req.tenants = next_arg(i);
        } else if (!std::strcmp(a, "--batch")) {
            mode = Mode::Batch;
            batchPath = next_arg(i);
        } else if (!std::strcmp(a, "--stats")) {
            mode = Mode::Stats;
        } else if (!std::strcmp(a, "--ping")) {
            mode = Mode::Ping;
        } else if (!std::strcmp(a, "--shutdown")) {
            mode = Mode::Shutdown;
        } else if (!std::strcmp(a, "--retries")) {
            copts.overloadRetries = parse_u32(next_arg(i), "--retries");
        } else if (!std::strcmp(a, "--backoff-ms")) {
            copts.backoffMs = parse_u64(next_arg(i), "--backoff-ms");
        } else if (!std::strcmp(a, "--timeout-ms")) {
            copts.recvTimeoutMs =
                parse_u64(next_arg(i), "--timeout-ms");
        } else {
            usage(argv[0]);
        }
    }
    req.cfg.dynParModel = req.model;
    req.cfg.tbPolicy = req.policy;
    req.cfg.seed = req.seed;

    Client client(copts);
    std::string err;
    if (!client.connect(err))
        return fail(err);

    switch (mode) {
    case Mode::Batch:
        return runBatch(client, batchPath);
    case Mode::Stats:
        return runStats(client);
    case Mode::Ping:
        return runPing(client);
    case Mode::Shutdown:
        return runShutdown(client);
    case Mode::Run:
        break;
    }

    if (!req.tenants.empty()) {
        // Tenant payloads are a complete TSV document, not a record
        // line: print the raw bytes (they already end in a newline) so
        // the output cmp-matches laperm_sim --tenants-tsv.
        JsonObject response;
        if (!client.callWithRetry(req.toJson(), response, err))
            return fail(err);
        std::string status;
        getString(response, "status", status);
        if (status != kStatusOk)
            return failResponse(response);
        std::string payload;
        if (!getString(response, "result", payload))
            return fail("response missing 'result'");
        std::fputs(payload.c_str(), stdout);
        return 0;
    }

    ResultRecord rec;
    if (!submitRun(client, req, rec, err))
        return fail(err);
    // Byte-identical to `laperm_sim --csv`: non-default machines get
    // the config column, default machines the legacy 13 columns.
    if (rec.customMachine()) {
        std::printf("%s\n%s\n", statsCsvHeaderWithConfig(),
                    rec.csvRowWithConfig().c_str());
    } else {
        std::printf("%s\n%s\n", statsCsvHeader(), rec.csvRow().c_str());
    }
    return 0;
}
