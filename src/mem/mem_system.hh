/**
 * @file
 * The full memory hierarchy: per-SMX-cluster L1s, a shared banked L2,
 * and DRAM. Exposes analytic load/store completion-cycle queries used
 * by the SMX load/store units.
 */

#ifndef LAPERM_MEM_MEM_SYSTEM_HH
#define LAPERM_MEM_MEM_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/config.hh"
#include "sim/observer.hh"

namespace laperm {

/**
 * Memory hierarchy per Figure 1 of the paper: L1/shared-memory per SMX,
 * L2 shared across SMXs, memory controllers to DRAM.
 */
class MemSystem
{
  public:
    explicit MemSystem(const GpuConfig &cfg);

    /**
     * Issue a coalesced 128B load from @p smx at @p now.
     * @param who optional accessor identity for locality attribution;
     *   ignored unless a tracker is attached.
     * @return cycle at which the requesting warp can proceed.
     */
    Cycle load(SmxId smx, Addr line, Cycle now,
               const obs::MemAccessor *who = nullptr);

    /**
     * Issue a coalesced 128B store from @p smx at @p now. Stores are
     * fire-and-forget for the warp but consume L2/DRAM bandwidth.
     * @return completion cycle (for memory-fence modeling/tests).
     */
    Cycle store(SmxId smx, Addr line, Cycle now,
                const obs::MemAccessor *who = nullptr);

    /**
     * Attach a per-access observer (nullptr to detach). Pure
     * observation: timing is unaffected. The observer must expect
     * numL1() L1 instances and outlive this object.
     */
    void setLocalityTracker(obs::MemObserver *tracker) { loc_ = tracker; }

    void reset();

    /**
     * Drop dead MSHR records in every cache. @p safe_now must
     * lower-bound all future load/store timestamps; the Gpu calls this
     * with its clock on an amortized interval.
     */
    void trimMshrs(Cycle safe_now);

    const Cache &l1(SmxId smx) const { return *l1s_[l1Index(smx)]; }
    const Cache &l2() const { return *l2_; }
    const Dram &dram() const { return dram_.value(); }

    std::uint32_t numL1() const
    {
        return static_cast<std::uint32_t>(l1s_.size());
    }

    /** Copy cache/DRAM counters into @p stats. */
    void exportStats(struct GpuStats &stats) const;

  private:
    std::uint32_t l1Index(SmxId smx) const
    {
        return smx / cfg_.smxPerCluster;
    }

    /** L2 access shared by loads and stores; returns data-ready cycle. */
    Cycle l2Access(Addr line, Cycle now, bool is_store,
                   const obs::MemAccessor *who);

    GpuConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::optional<Dram> dram_;
    std::vector<Cycle> l2BankFreeAt_;
    obs::MemObserver *loc_ = nullptr;
};

} // namespace laperm

#endif // LAPERM_MEM_MEM_SYSTEM_HH
