/**
 * @file
 * sim-lint v2 tests: layering, cycle-safety and event-discipline
 * passes, the suppression audit, the baseline gate and the SARIF
 * report. Pass-level tests parse fixtures under tests/tools/fixtures/
 * directly; driver-level tests run the same pipeline the sim_lint CLI
 * (and the sim_lint_repo ctest gate) runs, rooted at the fixture tree
 * so fixtures/layering.toml is picked up exactly like the repo spec.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint_cycle.hh"
#include "tools/lint_driver.hh"
#include "tools/lint_event.hh"
#include "tools/lint_layering.hh"
#include "tools/sim_lint.hh"

namespace {

using namespace laperm::simlint;

std::string
fixture(const std::string &rel)
{
    return std::string(SIM_LINT_FIXTURE_DIR) + "/" + rel;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "unreadable: " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countRule(const std::vector<Finding> &fs, Rule rule)
{
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(),
                      [rule](const Finding &f) { return f.rule == rule; }));
}

LayerSpec
fixtureSpec()
{
    LayerSpec spec;
    std::string err;
    EXPECT_TRUE(loadLayerSpec(fixture("layering.toml"), spec, err)) << err;
    return spec;
}

/** RAII temp file under the test working directory. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string &name) : path(name) {}
    ~TempFile() { std::remove(path.c_str()); }
};

// ---------------------------------------------------------------- spec

TEST(LayerSpec, ParsesTablesGroupsAndQueries)
{
    const LayerSpec spec = fixtureSpec();
    EXPECT_TRUE(spec.declared("mem"));
    EXPECT_TRUE(spec.declared("obs"));
    EXPECT_FALSE(spec.declared("nosuchmod"));
    EXPECT_TRUE(spec.allows("mem", "sim"));
    EXPECT_TRUE(spec.allows("mem", "mem")); // self edge
    EXPECT_FALSE(spec.allows("mem", "obs"));
    EXPECT_FALSE(spec.allows("sim", "harness"));
    // gpu <-> dynpar are one group: both directions legal.
    EXPECT_TRUE(spec.sameGroup("gpu", "dynpar"));
    EXPECT_TRUE(spec.allows("gpu", "dynpar"));
    EXPECT_TRUE(spec.allows("dynpar", "gpu"));
}

TEST(LayerSpec, RejectsUndeclaredDependency)
{
    LayerSpec spec;
    std::string err;
    EXPECT_FALSE(parseLayerSpec("[layers]\na = [\"ghost\"]\n", spec, err));
    EXPECT_NE(err.find("ghost"), std::string::npos) << err;
}

TEST(LayerSpec, RejectsDependencyCycle)
{
    LayerSpec spec;
    std::string err;
    const char *cyclic = "[layers]\n"
                         "a = [\"b\"]\n"
                         "b = [\"a\"]\n";
    EXPECT_FALSE(parseLayerSpec(cyclic, spec, err));
    EXPECT_NE(err.find("cycle"), std::string::npos) << err;

    // The same mutual dependency is legal once declared as a group —
    // the collapsed graph is a single node.
    const char *grouped = "[layers]\n"
                          "a = [\"b\"]\n"
                          "b = [\"a\"]\n"
                          "[groups]\n"
                          "ab = [\"a\", \"b\"]\n";
    EXPECT_TRUE(parseLayerSpec(grouped, spec, err)) << err;
    EXPECT_TRUE(spec.allows("a", "b"));
}

TEST(LayerSpec, ModuleOfPathUsesLastDirectoryComponent)
{
    const LayerSpec spec = fixtureSpec();
    EXPECT_EQ(moduleOfPath("src/mem/cache.cc", spec), "mem");
    EXPECT_EQ(moduleOfPath("tests/tools/fixtures/mem/x.cc", spec), "mem");
    // The filename itself never names a module.
    EXPECT_EQ(moduleOfPath("src/harness/mem.cc", spec), "harness");
    EXPECT_EQ(moduleOfPath("src/unknown/x.cc", spec), "");
}

TEST(LayerSpec, NestedModulesMapToTheirSublayer)
{
    const LayerSpec spec = fixtureSpec();
    // Last declared component wins: a serve/transport file is in
    // `transport`, a plain serve/ file stays in the umbrella module.
    EXPECT_EQ(moduleOfPath("src/serve/transport/endpoint.cc", spec),
              "transport");
    EXPECT_EQ(moduleOfPath("src/serve/session/server.hh", spec),
              "session");
    EXPECT_EQ(moduleOfPath("src/serve/client.cc", spec), "serve");
    // Include targets resolve the same way (no trailing slash).
    EXPECT_EQ(moduleOfPath("serve/transport/endpoint.hh", spec),
              "transport");
}

// ------------------------------------------------------------ layering

TEST(LayeringPass, UpwardIncludesAreFlagged)
{
    const std::string path = fixture("mem/bad_layering.cc");
    auto fs = lintLayering(path, readAll(path), fixtureSpec());
    // obs/, harness/ (disallowed edges) and nosuchmod/ (undeclared).
    EXPECT_EQ(countRule(fs, Rule::Layering), 3u);
    EXPECT_EQ(fs.size(), 3u);
}

TEST(LayeringPass, DeclaredEdgesPassClean)
{
    const std::string path = fixture("mem/good_layering.cc");
    EXPECT_TRUE(lintLayering(path, readAll(path), fixtureSpec()).empty());
}

TEST(LayeringPass, NestedSublayerEdgesAreEnforced)
{
    // A transport file reaching up into session (or the umbrella
    // serve module) through nested include paths is flagged: both the
    // including file's module and the include target resolve through
    // the last declared path component.
    const std::string bad = fixture("serve/transport/bad_nested.cc");
    auto fs = lintLayering(bad, readAll(bad), fixtureSpec());
    EXPECT_EQ(countRule(fs, Rule::Layering), 2u);
    EXPECT_EQ(fs.size(), 2u);
}

TEST(LayeringPass, NestedSelfAndDeclaredEdgesPassClean)
{
    // Self edge spelled via the nested path (transport including
    // serve/transport/...) and the umbrella module including its own
    // sublayers are both declared-legal.
    const std::string good = fixture("serve/transport/good_nested.cc");
    EXPECT_TRUE(lintLayering(good, readAll(good), fixtureSpec()).empty());
    const std::string umb = fixture("serve/good_umbrella.cc");
    EXPECT_TRUE(lintLayering(umb, readAll(umb), fixtureSpec()).empty());
}

// -------------------------------------------------------- cycle-safety

TEST(CyclePass, FloatNarrowAndSignedUsesAreFlagged)
{
    const std::string path = fixture("sim/bad_cycle_float.cc");
    auto fs = lintCycleSafety(path, readAll(path));
    EXPECT_EQ(countRule(fs, Rule::CycleFloat), 2u);
    EXPECT_EQ(countRule(fs, Rule::CycleNarrow), 1u);
    EXPECT_EQ(countRule(fs, Rule::CycleSign), 1u);
}

TEST(CyclePass, IntegerArithmeticAndMemberAccessPassClean)
{
    const std::string path = fixture("sim/good_cycle.cc");
    EXPECT_TRUE(lintCycleSafety(path, readAll(path)).empty());
}

TEST(CyclePass, OnlyRestrictedDirectoriesAreScanned)
{
    const char *src = "double ipc(Cycle cycles) {\n"
                      "    return static_cast<double>(cycles);\n"
                      "}\n";
    EXPECT_EQ(lintCycleSafety("src/sim/x.cc", src).size(), 1u);
    // harness/ may average cycles into doubles for reporting.
    EXPECT_TRUE(lintCycleSafety("src/harness/x.cc", src).empty());
}

TEST(CyclePass, CycleNameHeuristic)
{
    EXPECT_TRUE(isCycleName("cycle"));
    EXPECT_TRUE(isCycleName("readyAt"));
    EXPECT_TRUE(isCycleName("nextEventAt"));
    EXPECT_TRUE(isCycleName("l2BankFreeAt_"));
    EXPECT_TRUE(isCycleName("maxCycles"));
    EXPECT_FALSE(isCycleName("format"));   // no bare "at" substring
    EXPECT_FALSE(isCycleName("recycled")); // suffix, not substring
    EXPECT_FALSE(isCycleName("count"));
}

// ---------------------------------------------------- event-discipline

TEST(EventPass, PastScheduleMintedKindAndDirectTickAreFlagged)
{
    const std::string path = fixture("sched/bad_event_discipline.cc");
    auto fs = lintEventDiscipline(path, readAll(path));
    EXPECT_EQ(countRule(fs, Rule::EventPast), 1u);
    EXPECT_EQ(countRule(fs, Rule::EventKind), 1u);
    EXPECT_EQ(countRule(fs, Rule::EventTick), 1u);
}

TEST(EventPass, DisciplinedUsagePassesClean)
{
    const std::string path = fixture("sched/good_event_discipline.cc");
    EXPECT_TRUE(lintEventDiscipline(path, readAll(path)).empty());
}

TEST(EventPass, OwningFilesAreExempt)
{
    // The queue header may construct SimEvents; gpu.cc owns tick().
    const char *mint = "SimEvent e{static_cast<SimEventKind>(k)};\n";
    EXPECT_FALSE(
        lintEventDiscipline("src/sched/other.cc", mint).empty());
    EXPECT_TRUE(
        lintEventDiscipline("src/sim/event_queue.hh", mint).empty());

    const char *tick = "void Gpu::run() { gpu->tick(); }\n";
    EXPECT_FALSE(lintEventDiscipline("src/dynpar/x.cc", tick).empty());
    EXPECT_TRUE(lintEventDiscipline("src/gpu/gpu.cc", tick).empty());
}

// ------------------------------------------------------------- driver

DriverOptions
fixtureDriver(std::initializer_list<const char *> rels)
{
    DriverOptions opts;
    opts.root = SIM_LINT_FIXTURE_DIR;
    for (const char *rel : rels)
        opts.files.push_back(fixture(rel));
    return opts;
}

TEST(Driver, RunsAllPassesOverExplicitFiles)
{
    const DriverResult r = runDriver(fixtureDriver(
        {"mem/bad_layering.cc", "sim/bad_cycle_float.cc",
         "sched/bad_event_discipline.cc"}));
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.filesScanned, 3u);
    EXPECT_EQ(countRule(r.findings, Rule::Layering), 3u);
    EXPECT_EQ(countRule(r.findings, Rule::CycleFloat), 2u);
    EXPECT_EQ(countRule(r.findings, Rule::CycleNarrow), 1u);
    EXPECT_EQ(countRule(r.findings, Rule::CycleSign), 1u);
    EXPECT_EQ(countRule(r.findings, Rule::EventPast), 1u);
    EXPECT_EQ(countRule(r.findings, Rule::EventKind), 1u);
    EXPECT_EQ(countRule(r.findings, Rule::EventTick), 1u);
    // One timing entry per pass, in pipeline order.
    ASSERT_EQ(r.timings.size(), 4u);
    EXPECT_EQ(r.timings[0].pass, "token");
    EXPECT_EQ(r.timings[1].pass, "layering");
    EXPECT_EQ(r.timings[2].pass, "cycle-safety");
    EXPECT_EQ(r.timings[3].pass, "event-discipline");
}

TEST(Driver, DeterministicAcrossRuns)
{
    const auto opts = fixtureDriver(
        {"mem/bad_layering.cc", "sim/bad_cycle_float.cc"});
    const DriverResult a = runDriver(opts);
    const DriverResult b = runDriver(opts);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].path, b.findings[i].path);
        EXPECT_EQ(a.findings[i].line, b.findings[i].line);
        EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
    }
}

TEST(Driver, UnusedAllowFailsTheGate)
{
    const DriverResult r =
        runDriver(fixtureDriver({"sim/bad_unused_allow.cc"}));
    ASSERT_TRUE(r.error.empty()) << r.error;
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, Rule::UnusedAllow);
}

TEST(Driver, UsedAllowSatisfiesTheAudit)
{
    // good_allowed.cc carries real violations, each waived: the audit
    // must accept every marker and report nothing.
    const DriverResult r =
        runDriver(fixtureDriver({"mem/good_allowed.cc"}));
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.findings.empty());
}

TEST(Driver, AuditCanBeDisabledForDebugging)
{
    auto opts = fixtureDriver({"sim/bad_unused_allow.cc"});
    opts.audit = false;
    EXPECT_TRUE(runDriver(opts).findings.empty());
}

TEST(Driver, BaselineRoundTripSuppressesLegacyFindings)
{
    TempFile baseline("test_v2_baseline_roundtrip.tsv");

    // Bootstrap: grandfather every current finding.
    auto write = fixtureDriver({"sim/bad_cycle_float.cc"});
    write.writeBaselinePath = baseline.path;
    const DriverResult bootstrap = runDriver(write);
    ASSERT_TRUE(bootstrap.error.empty()) << bootstrap.error;
    EXPECT_EQ(bootstrap.findings.size(), 4u);

    // Gate: the same tree is now clean, every entry consumed.
    auto gate = fixtureDriver({"sim/bad_cycle_float.cc"});
    gate.baselinePath = baseline.path;
    const DriverResult r = runDriver(gate);
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.baselineMatched, 4u);
}

TEST(Driver, BaselineDoesNotHideNewFindings)
{
    TempFile baseline("test_v2_baseline_partial.tsv");
    {
        // Baseline only the narrowing finding; the float/sign findings
        // must still gate.
        std::ofstream out(baseline.path);
        // Keys squeeze the RAW flagged line, trailing comment included.
        out << "cycle-narrow\tsim/bad_cycle_float.cc\t"
               "return static_cast<unsigned>(deadline); // cycle-narrow\n";
    }
    auto gate = fixtureDriver({"sim/bad_cycle_float.cc"});
    gate.baselinePath = baseline.path;
    const DriverResult r = runDriver(gate);
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.baselineMatched, 1u);
    EXPECT_EQ(countRule(r.findings, Rule::CycleNarrow), 0u);
    EXPECT_EQ(countRule(r.findings, Rule::CycleFloat), 2u);
    EXPECT_EQ(countRule(r.findings, Rule::CycleSign), 1u);
}

TEST(Driver, StaleBaselineEntryFailsTheGate)
{
    TempFile baseline("test_v2_baseline_stale.tsv");
    {
        std::ofstream out(baseline.path);
        out << "# comment lines are ignored\n"
            << "cycle-float\tsim/good_cycle.cc\treturn gone();\n";
    }
    auto gate = fixtureDriver({"sim/good_cycle.cc"});
    gate.baselinePath = baseline.path;
    const DriverResult r = runDriver(gate);
    ASSERT_TRUE(r.error.empty()) << r.error;
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, Rule::StaleBaseline);
}

TEST(Driver, SarifReportListsRulesAndResults)
{
    TempFile sarif("test_v2_report.sarif");
    auto opts = fixtureDriver({"sim/bad_cycle_float.cc"});
    opts.sarifPath = sarif.path;
    const DriverResult r = runDriver(opts);
    ASSERT_TRUE(r.error.empty()) << r.error;
    const std::string doc = readAll(sarif.path);
    EXPECT_NE(doc.find("sarif-schema-2.1.0"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"sim-lint\""), std::string::npos);
    EXPECT_NE(doc.find("cycle-float"), std::string::npos);
    EXPECT_NE(doc.find("cycle-narrow"), std::string::npos);
    EXPECT_NE(doc.find("bad_cycle_float.cc"), std::string::npos);
}

TEST(Driver, MissingSpecIsAConfigurationError)
{
    auto opts = fixtureDriver({"sim/good_cycle.cc"});
    opts.layeringSpec = fixture("no_such_spec.toml");
    const DriverResult r = runDriver(opts);
    EXPECT_FALSE(r.error.empty());
}

// Mirror of the sim_lint_repo CLI gate, in-process: the real tree is
// clean under all four passes with the repo spec and baseline.
TEST(DriverRepo, FullPipelineOverRealTreeIsClean)
{
    DriverOptions opts;
    opts.root = SIM_LINT_REPO_ROOT;
    const DriverResult r = runDriver(opts);
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_GE(r.filesScanned, 100u);
    for (const auto &f : r.findings) {
        ADD_FAILURE() << f.path << ":" << f.line << ": ["
                      << ruleName(f.rule) << "] " << f.message;
    }
}

} // namespace
