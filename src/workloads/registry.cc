#include "workloads/registry.hh"

#include "common/log.hh"
#include "workloads/amr.hh"
#include "workloads/bfs.hh"
#include "workloads/bht.hh"
#include "workloads/chase.hh"
#include "workloads/clr.hh"
#include "workloads/join.hh"
#include "workloads/pre.hh"
#include "workloads/regx.hh"
#include "workloads/sssp.hh"

namespace laperm {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "amr-combustion",
        "bht-points",
        "bfs-citation",
        "bfs-graph500",
        "bfs-cage",
        "clr-citation",
        "clr-graph500",
        "clr-cage",
        "regx-darpa",
        "regx-strings",
        "pre-movielens",
        "join-uniform",
        "join-gaussian",
        "sssp-citation",
        "sssp-graph500",
        "sssp-cage",
    };
    return names;
}

std::unique_ptr<Workload>
createWorkload(const std::string &name)
{
    auto split = name.find('-');
    if (split == std::string::npos)
        laperm_fatal("workload name '%s' is not app-input", name.c_str());
    std::string app = name.substr(0, split);
    std::string input = name.substr(split + 1);

    if (app == "amr")
        return std::make_unique<AmrWorkload>();
    if (app == "bht")
        return std::make_unique<BhtWorkload>();
    // Latency microbenchmark, intentionally absent from workloadNames()
    // so the Table II sweeps and result caches stay paper-faithful.
    if (app == "chase")
        return std::make_unique<ChaseWorkload>(input);
    if (app == "bfs")
        return std::make_unique<BfsWorkload>(input);
    if (app == "clr")
        return std::make_unique<ClrWorkload>(input);
    if (app == "regx")
        return std::make_unique<RegxWorkload>(input);
    if (app == "pre")
        return std::make_unique<PreWorkload>();
    if (app == "join")
        return std::make_unique<JoinWorkload>(input);
    if (app == "sssp")
        return std::make_unique<SsspWorkload>(input);
    laperm_fatal("unknown workload '%s' (known: %s)", name.c_str(),
                 workloadNameList().c_str());
}

bool
isKnownWorkload(const std::string &name)
{
    for (const auto &known : workloadNames()) {
        if (known == name)
            return true;
    }
    return false;
}

std::string
workloadNameList()
{
    std::string out;
    for (const auto &name : workloadNames()) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

std::vector<std::string>
workloadNamesForApp(const std::string &app)
{
    std::vector<std::string> out;
    for (const auto &name : workloadNames()) {
        if (name.rfind(app + "-", 0) == 0)
            out.push_back(name);
    }
    return out;
}

} // namespace laperm
