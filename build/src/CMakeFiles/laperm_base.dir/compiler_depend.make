# Empty compiler generated dependencies file for laperm_base.
# This may be replaced when dependencies are built.
