/**
 * @file
 * Invariants of the event queue at the heart of the event-driven core
 * (DESIGN.md §11): pops are monotone in cycle, ties break in dense
 * phase order (kind, then id, then insertion), the past is
 * unschedulable, and same-cycle scheduling after a pop stays legal
 * (the dispatch → SMX hand-off depends on it).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace laperm;

TEST(EventQueue, PopsInCycleOrder)
{
    EventQueue q;
    for (Cycle c : {Cycle{5}, Cycle{3}, Cycle{9}, Cycle{3}, Cycle{7}})
        q.schedule(c, SimEventKind::SmxTick, 0);
    ASSERT_EQ(q.size(), 5u);

    std::vector<Cycle> popped;
    while (!q.empty()) {
        const Cycle at_top = q.top().cycle;
        EXPECT_EQ(at_top, q.pop().cycle); // top agrees with pop
        popped.push_back(q.lastPopCycle());
    }
    const std::vector<Cycle> expect = {3, 3, 5, 7, 9};
    EXPECT_EQ(popped, expect);
}

TEST(EventQueue, TieBreakMirrorsDensePhaseOrder)
{
    // One cycle, scheduled in deliberately scrambled order: pops must
    // replay a dense tick — front end, SMXs ascending, maintenance.
    EventQueue q;
    q.schedule(10, SimEventKind::Maintenance, 0);
    q.schedule(10, SimEventKind::SmxTick, 2);
    q.schedule(10, SimEventKind::SmxTick, 0);
    q.schedule(10, SimEventKind::FrontEnd, 0);

    SimEvent ev = q.pop();
    EXPECT_EQ(ev.kind, SimEventKind::FrontEnd);
    ev = q.pop();
    EXPECT_EQ(ev.kind, SimEventKind::SmxTick);
    EXPECT_EQ(ev.id, 0u);
    ev = q.pop();
    EXPECT_EQ(ev.kind, SimEventKind::SmxTick);
    EXPECT_EQ(ev.id, 2u);
    ev = q.pop();
    EXPECT_EQ(ev.kind, SimEventKind::Maintenance);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualKeysPopInScheduleOrder)
{
    EventQueue q;
    q.schedule(4, SimEventKind::SmxTick, 7);
    q.schedule(4, SimEventKind::SmxTick, 7);
    q.schedule(4, SimEventKind::SmxTick, 7);
    std::uint64_t last_seq = 0;
    bool first = true;
    while (!q.empty()) {
        const SimEvent ev = q.pop();
        if (!first) {
            EXPECT_GT(ev.seq, last_seq);
        }
        last_seq = ev.seq;
        first = false;
    }
}

TEST(EventQueue, SameCycleSchedulingAfterPopIsLegal)
{
    // Dispatching a TB arms its SMX for the cycle being processed;
    // the queue must accept an event at exactly lastPopCycle().
    EventQueue q;
    q.schedule(10, SimEventKind::FrontEnd, 0);
    (void)q.pop();
    EXPECT_EQ(q.lastPopCycle(), 10u);
    q.schedule(10, SimEventKind::SmxTick, 1);
    EXPECT_EQ(q.top().cycle, 10u);
    EXPECT_EQ(q.pop().id, 1u);
}

TEST(EventQueue, InterleavedScheduleAndPopStaysMonotone)
{
    // Deterministic pseudo-random interleaving: every pop must be
    // >= the previous one no matter how schedules and pops mix.
    EventQueue q;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    Cycle last = 0;
    std::size_t pops = 0;
    for (int round = 0; round < 200; ++round) {
        const Cycle base = q.lastPopCycle();
        for (int i = 0; i < 3; ++i) {
            q.schedule(base + next() % 50,
                       SimEventKind::SmxTick,
                       static_cast<std::uint32_t>(next() % 13));
        }
        for (int i = 0; i < 2 && !q.empty(); ++i) {
            const SimEvent ev = q.pop();
            EXPECT_GE(ev.cycle, last);
            last = ev.cycle;
            ++pops;
        }
    }
    while (!q.empty()) {
        const SimEvent ev = q.pop();
        EXPECT_GE(ev.cycle, last);
        last = ev.cycle;
        ++pops;
    }
    EXPECT_EQ(pops, 600u);
}

using EventQueueDeathTest = ::testing::Test;

TEST(EventQueueDeathTest, RefusesPastScheduling)
{
    EventQueue q;
    q.schedule(10, SimEventKind::SmxTick, 0);
    (void)q.pop();
    EXPECT_DEATH(q.schedule(9, SimEventKind::SmxTick, 0),
                 "scheduled in the past");
}

TEST(EventQueueDeathTest, RefusesTheNeverCycle)
{
    EventQueue q;
    EXPECT_DEATH(q.schedule(kNoCycle, SimEventKind::SmxTick, 0),
                 "never-cycle");
}
