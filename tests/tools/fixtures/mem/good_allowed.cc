// sim-lint fixture: violations carrying justification comments must be
// suppressed. Not compiled — parsed by test_sim_lint.cc.
#include <unordered_map>
#include <vector>

unsigned long
trimExpired(std::unordered_map<unsigned long, unsigned long> &mshr,
            unsigned long now)
{
    unsigned long erased = 0;
    // Order-independent erase filter: the surviving set is the same
    // whatever order buckets are visited. sim-lint: allow(unordered-iter)
    for (auto it = mshr.begin(); it != mshr.end();) {
        if (it->second <= now) {
            it = mshr.erase(it);
            ++erased;
        } else {
            ++it;
        }
    }
    return erased;
}

double
meanOverVector(const std::vector<double> &xs)
{
    double sum = 0.0;
    // Vector order is the declared, deterministic iteration order.
    for (double x : xs)
        sum += x; // sim-lint: allow(fp-accum)
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}
