#include <gtest/gtest.h>

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

TEST(Harness, PaperConfigMatchesTable1)
{
    GpuConfig cfg = paperConfig();
    EXPECT_EQ(cfg.numSmx, 13u);
    EXPECT_EQ(cfg.maxThreadsPerSmx, 2048u);
    EXPECT_EQ(cfg.maxTbsPerSmx, 16u);
    EXPECT_EQ(cfg.regsPerSmx, 65536u);
    EXPECT_EQ(cfg.l1Size, 32u * 1024);
    EXPECT_EQ(cfg.l2Size, 1536u * 1024);
    EXPECT_EQ(cfg.kduEntries, 32u);
    EXPECT_EQ(cfg.warpPolicy, WarpPolicy::GTO);
}

TEST(Harness, RunOneProducesMetrics)
{
    auto w = createWorkload("bfs-cage");
    w->setup(Scale::Tiny, 1);
    GpuConfig cfg = paperConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    RunResult r = runOne(*w, cfg);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GE(r.l1HitRate, 0.0);
    EXPECT_LE(r.l1HitRate, 1.0);
    EXPECT_EQ(r.workload, "bfs-cage");
}

TEST(Harness, MatrixCacheRoundTrip)
{
    setenv("LAPERM_NO_CACHE", "0", 1);
    const std::string cache = sweepCachePath(Scale::Tiny, 99);
    std::remove(cache.c_str());
    std::vector<std::string> names = {"bfs-cage"};
    auto first = runMatrix(names, Scale::Tiny, 99, true);
    ASSERT_EQ(first.size(), 8u); // 2 models x 4 policies
    auto second = runMatrix(names, Scale::Tiny, 99, true);
    ASSERT_EQ(second.size(), 8u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].workload, second[i].workload);
        EXPECT_NEAR(first[i].ipc, second[i].ipc, 1e-3);
        EXPECT_NEAR(first[i].cycles, second[i].cycles, 1.0);
    }
    std::remove(cache.c_str());
}

TEST(Harness, FindResultAndMean)
{
    std::vector<RunResult> rs(2);
    // std::string(...) dodges GCC 12's spurious -Wrestrict on the
    // inlined const char* assignment (PR105329).
    rs[0].workload = std::string("a");
    rs[0].model = DynParModel::CDP;
    rs[0].policy = TbPolicy::RR;
    rs[0].ipc = 2.0;
    rs[1].workload = std::string("b");
    rs[1].model = DynParModel::CDP;
    rs[1].policy = TbPolicy::RR;
    rs[1].ipc = 4.0;
    EXPECT_EQ(&findResult(rs, "a", DynParModel::CDP, TbPolicy::RR),
              &rs[0]);
    EXPECT_DOUBLE_EQ(
        meanOver(rs, DynParModel::CDP, TbPolicy::RR, &RunResult::ipc),
        3.0);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmtPct(0.123), "12.3%");
    EXPECT_EQ(fmtPct(0.5, 0), "50%");
    EXPECT_EQ(fmtF(1.2345), "1.23");
    EXPECT_EQ(fmtU(42), "42");
}

TEST(Table, PrintDoesNotCrash)
{
    Table t({"a", "b"});
    t.addRow({"1", "22"});
    t.addRule();
    t.addRow({"333", "4"});
    t.print();
}
