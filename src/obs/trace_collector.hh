/**
 * @file
 * TraceCollector: the standard observer. Accumulates the full event
 * stream of a run and exports it as (a) Chrome-trace/Perfetto JSON for
 * timeline visualization, (b) a per-interval metrics TSV for
 * time-series plots, and (c) launch-latency records and histograms for
 * the Section IV-D analysis. All outputs are deterministic functions
 * of the event stream: integer cycle timestamps, fixed field order,
 * no wall-clock reads.
 */

#ifndef LAPERM_OBS_TRACE_COLLECTOR_HH
#define LAPERM_OBS_TRACE_COLLECTOR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/observer.hh"

namespace laperm {
namespace obs {

/** One launch's latency decomposition (Section IV-D). */
struct LaunchLatency
{
    KernelId kernel = 0;
    std::uint32_t priority = 0;
    bool isDevice = false;
    bool coalesced = false;
    Cycle queuedAt = 0;
    Cycle admittedAt = 0;
    /** First TB dispatch of this kernel at/after admission; kNoCycle
     *  if the kernel never dispatched (should not happen after a
     *  drained run). */
    Cycle firstDispatchAt = kNoCycle;

    /** KMU time: modeled launch latency + KDU-full stall. */
    Cycle queueCycles() const { return admittedAt - queuedAt; }
    /** Scheduler time: admission to first TB on an SMX. */
    Cycle dispatchCycles() const
    {
        return firstDispatchAt == kNoCycle ? 0
                                           : firstDispatchAt - admittedAt;
    }
    Cycle totalCycles() const
    {
        return queueCycles() + dispatchCycles();
    }
};

class TraceCollector : public SimObserver
{
  public:
    TraceCollector() = default;

    // --- SimObserver ---
    void onTbDispatch(const TbEvent &e) override;
    void onTbRetire(const TbEvent &e) override;
    void onLaunchQueued(const LaunchEvent &e) override;
    void onLaunchAdmitted(const LaunchEvent &e) override;
    void onSteal(const StealEvent &e) override;

    /** Raw accumulated events, in emission order. */
    const std::vector<TbEvent> &dispatches() const { return dispatches_; }
    const std::vector<TbEvent> &retires() const { return retires_; }
    const std::vector<StealEvent> &steals() const { return steals_; }
    const std::vector<LaunchEvent> &launchesQueued() const
    {
        return queued_;
    }

    /**
     * Per-launch latency decomposition, in admission order. For DTBL
     * groups coalesced onto a running kernel the first-dispatch match
     * is by kernel id, so a group's "first TB" may belong to a sibling
     * group admitted at the same cycle — an approximation documented
     * in DESIGN.md §8.
     */
    std::vector<LaunchLatency> launchLatencies() const;

    /**
     * Chrome-trace JSON (open in Perfetto / chrome://tracing). One
     * process per SMX; TBs are duration events on residency lanes,
     * per-SMX occupancy is a counter track, steals and admissions are
     * instant events on a device-level process. ts/dur are simulated
     * cycles (displayed as microseconds by the viewers).
     */
    bool writeChromeTrace(const std::string &path) const;

    /**
     * Per-interval metrics TSV: interval start, TB dispatches/retires,
     * kernel admissions, steals, and the occupancy integral
     * (TB-cycles) per interval — the raw material for time-series
     * plots of scheduler behaviour.
     */
    bool writeIntervalTsv(const std::string &path,
                          Cycle interval = 1000) const;

    /**
     * Launch-latency histogram TSV: power-of-two buckets over the
     * queue (KMU), dispatch (scheduler) and total components, plus a
     * trailing summary row with counts and means.
     */
    bool writeLaunchLatencyTsv(const std::string &path) const;

  private:
    std::vector<TbEvent> dispatches_;
    std::vector<TbEvent> retires_;
    std::vector<LaunchEvent> queued_;
    std::vector<LaunchEvent> admitted_;
    std::vector<StealEvent> steals_;
    /** Dispatch cycles per kernel, ascending (emission order). Point
     *  lookups only — never iterated. */
    std::unordered_map<KernelId, std::vector<Cycle>> kernelDispatches_;
    SmxId maxSmx_ = 0;
    Cycle lastCycle_ = 0;

    void noteCycle(Cycle c) { lastCycle_ = c > lastCycle_ ? c : lastCycle_; }
};

} // namespace obs
} // namespace laperm

#endif // LAPERM_OBS_TRACE_COLLECTOR_HH
