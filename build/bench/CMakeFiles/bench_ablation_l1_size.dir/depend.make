# Empty dependencies file for bench_ablation_l1_size.
# This may be replaced when dependencies are built.
