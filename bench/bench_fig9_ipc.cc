/**
 * @file
 * Figure 9: IPC normalized to the RR baseline, (a) CDP and (b) DTBL.
 *
 * Paper anchors: TB-Pri +4% (CDP) / +13% (DTBL); the full LaPerm
 * scheduler (Adaptive-Bind) averages +27% over RR.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(true);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);
    auto results = runMatrix(workloadNames(), scale, 1);
    setVerbose(false);

    const char *panel[] = {"(a) CDP", "(b) DTBL"};
    int panel_ix = 0;
    std::printf("\nFigure 9: normalized IPC (scale '%s')\n\n",
                toString(scale));

    for (DynParModel model : {DynParModel::CDP, DynParModel::DTBL}) {
        std::printf("Figure 9%s — IPC normalized to RR:\n",
                    panel[panel_ix++]);
        Table t({"workload", "RR", "TB-Pri", "SMX-Bind",
                 "Adaptive-Bind"});
        double geo[4] = {0, 0, 0, 0};
        std::uint32_t n = 0;
        for (const auto &name : workloadNames()) {
            double rr =
                findResult(results, name, model, TbPolicy::RR).ipc;
            std::vector<std::string> row = {name};
            int c = 0;
            for (TbPolicy p : {TbPolicy::RR, TbPolicy::TbPri,
                               TbPolicy::SmxBind,
                               TbPolicy::AdaptiveBind}) {
                double norm =
                    rr > 0
                        ? findResult(results, name, model, p).ipc / rr
                        : 0.0;
                row.push_back(fmtF(norm));
                geo[c++] += norm;
            }
            ++n;
            t.addRow(std::move(row));
        }
        t.addRule();
        t.addRow({"average", fmtF(geo[0] / n), fmtF(geo[1] / n),
                  fmtF(geo[2] / n), fmtF(geo[3] / n)});
        t.print();
        if (model == DynParModel::CDP)
            std::printf("paper: TB-Pri averages ~1.04x under CDP\n\n");
        else
            std::printf("paper: TB-Pri averages ~1.13x under DTBL; "
                        "LaPerm (Adaptive-Bind) averages 1.27x\n\n");
    }
    return 0;
}
