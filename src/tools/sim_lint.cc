#include "tools/sim_lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace laperm {
namespace simlint {

const char *
ruleName(Rule rule)
{
    switch (rule) {
    case Rule::BannedRng:
        return "banned-rng";
    case Rule::WallClock:
        return "wall-clock";
    case Rule::UnorderedIter:
        return "unordered-iter";
    case Rule::FpAccum:
        return "fp-accum";
    case Rule::Layering:
        return "layering";
    case Rule::CycleFloat:
        return "cycle-float";
    case Rule::CycleNarrow:
        return "cycle-narrow";
    case Rule::CycleSign:
        return "cycle-sign";
    case Rule::EventPast:
        return "event-past";
    case Rule::EventKind:
        return "event-kind";
    case Rule::EventTick:
        return "event-tick";
    case Rule::UnusedAllow:
        return "unused-allow";
    case Rule::StaleBaseline:
        return "stale-baseline";
    }
    return "unknown";
}

bool
ruleFromName(const std::string &name, Rule &out)
{
    static const Rule all[] = {
        Rule::BannedRng,   Rule::WallClock,  Rule::UnorderedIter,
        Rule::FpAccum,     Rule::Layering,   Rule::CycleFloat,
        Rule::CycleNarrow, Rule::CycleSign,  Rule::EventPast,
        Rule::EventKind,   Rule::EventTick,  Rule::UnusedAllow,
        Rule::StaleBaseline,
    };
    for (Rule r : all) {
        if (name == ruleName(r)) {
            out = r;
            return true;
        }
    }
    return false;
}

FileScope
classifyPath(const std::string &path)
{
    // Split into components on either separator so the same logic
    // covers absolute, relative, and fixture paths.
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty())
                parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);

    FileScope scope;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        const std::string &p = parts[i];
        if (p == "sim" || p == "sched" || p == "mem" || p == "gpu" ||
            p == "dynpar" || p == "obs" || p == "tenant") {
            scope.restricted = true;
        }
        if (p == "common" && i + 1 < parts.size() &&
            (parts[i + 1] == "rng.hh" || parts[i + 1] == "rng.cc")) {
            scope.rngExempt = true;
        }
    }
    return scope;
}

namespace {

/**
 * Shared strip state machine. @p keepStrings preserves string/char
 * literal text (the layering pass needs `#include "mem/cache.hh"`
 * paths); comments are always blanked. Newlines survive either way so
 * line numbers are stable.
 */
std::string
stripImpl(const std::string &src, bool keepStrings)
{
    enum class St { Code, LineComment, BlockComment, Str, Chr, RawStr };
    std::string out;
    out.reserve(src.size());
    St st = St::Code;
    std::string rawDelim; // for R"delim( ... )delim"
    for (std::size_t i = 0; i < src.size(); ++i) {
        char c = src[i];
        char next = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && next == '/') {
                st = St::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                st = St::BlockComment;
                out += "  ";
                ++i;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                       src[i - 1])) &&
                                   src[i - 1] != '_'))) {
                st = St::RawStr;
                rawDelim.clear();
                std::size_t j = i + 2;
                while (j < src.size() && src[j] != '(')
                    rawDelim += src[j++];
                if (keepStrings) {
                    out.append(src, i, j - i + 1);
                } else {
                    out += ' ';
                    out.append(j - i, ' ');
                }
                i = j; // now at '('
            } else if (c == '"') {
                st = St::Str;
                out += keepStrings ? '"' : ' ';
            } else if (c == '\'') {
                st = St::Chr;
                out += keepStrings ? '\'' : ' ';
            } else {
                out += c;
            }
            break;
        case St::LineComment:
            if (c == '\n') {
                st = St::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
        case St::BlockComment:
            if (c == '*' && next == '/') {
                st = St::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Str:
            if (c == '\\' && next != '\0') {
                if (keepStrings) {
                    out += c;
                    out += next;
                } else {
                    out += "  ";
                }
                ++i;
            } else if (c == '"') {
                st = St::Code;
                out += keepStrings ? '"' : ' ';
            } else if (keepStrings) {
                out += c;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Chr:
            if (c == '\\' && next != '\0') {
                if (keepStrings) {
                    out += c;
                    out += next;
                } else {
                    out += "  ";
                }
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                out += keepStrings ? '\'' : ' ';
            } else if (keepStrings) {
                out += c;
            } else {
                out += ' ';
            }
            break;
        case St::RawStr: {
            const std::string close = ")" + rawDelim + "\"";
            if (src.compare(i, close.size(), close) == 0) {
                st = St::Code;
                if (keepStrings)
                    out += close;
                else
                    out.append(close.size(), ' ');
                i += close.size() - 1;
            } else if (keepStrings) {
                out += c;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        }
    }
    return out;
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &src)
{
    return stripImpl(src, false);
}

std::string
stripComments(const std::string &src)
{
    return stripImpl(src, true);
}

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : s) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

std::vector<Allow>
collectAllows(const std::vector<std::string> &rawLines)
{
    std::vector<Allow> allows;
    static const std::regex marker(
        R"(sim-lint:\s*(allow|allow-file)\(([a-z-]+)\))");
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        const std::string &l = rawLines[i];
        for (auto it = std::sregex_iterator(l.begin(), l.end(), marker);
             it != std::sregex_iterator(); ++it) {
            Rule rule;
            if (!ruleFromName((*it)[2].str(), rule))
                continue; // unknown rule names never suppress
            allows.push_back(
                Allow{i + 1, rule, (*it)[1].str() == "allow-file", false});
        }
    }
    return allows;
}

std::vector<Finding>
applySuppressions(std::vector<Finding> findings, std::vector<Allow> &allows)
{
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (const Finding &f : findings) {
        // Audit rules cannot be waived: a waiver must not be able to
        // waive the check that audits waivers.
        bool suppressed = false;
        if (f.rule != Rule::UnusedAllow && f.rule != Rule::StaleBaseline) {
            for (Allow &a : allows) {
                if (a.rule != f.rule)
                    continue;
                const bool covers =
                    a.fileWide ||
                    a.line == f.line ||
                    a.line + 1 == f.line;
                if (covers) {
                    a.used = true;
                    suppressed = true;
                    // keep scanning: every marker covering this
                    // finding counts as used (no false unused-allow
                    // when two markers overlap).
                }
            }
        }
        if (!suppressed)
            kept.push_back(f);
    }
    return kept;
}

namespace {

struct Pattern
{
    std::regex re;
    const char *what;
};

const std::vector<Pattern> &
bannedRngPatterns()
{
    static const std::vector<Pattern> pats = {
        {std::regex(R"(\bstd\s*::\s*rand\b)"),
         "std::rand is stdlib-dependent; use laperm::Rng (common/rng.hh)"},
        {std::regex(R"(\bsrand\s*\()"),
         "srand seeds hidden global state; use laperm::Rng (common/rng.hh)"},
        {std::regex(R"((^|[^:\w])rand\s*\(\s*\))"),
         "rand() is stdlib-dependent; use laperm::Rng (common/rng.hh)"},
        {std::regex(R"(\brandom_device\b)"),
         "random_device is nondeterministic by design; seed laperm::Rng "
         "from GpuConfig::seed instead"},
        {std::regex(R"(\bmt19937)"),
         "mt19937 range mapping is implementation-defined; use "
         "laperm::Rng (common/rng.hh)"},
        {std::regex(R"(\b(?:default_random_engine|minstd_rand)\b)"),
         "stdlib engines are implementation-defined; use laperm::Rng"},
        {std::regex(
             R"(\b(?:uniform_int_distribution|uniform_real_distribution|normal_distribution|bernoulli_distribution)\b)"),
         "stdlib distributions map values in implementation-defined "
         "ways; use laperm::Rng helpers"},
        {std::regex(R"(#\s*include\s*<random>)"),
         "<random> is banned outside common/rng.*; use laperm::Rng"},
    };
    return pats;
}

const std::vector<Pattern> &
wallClockPatterns()
{
    static const std::vector<Pattern> pats = {
        {std::regex(
             R"(\b(?:system_clock|steady_clock|high_resolution_clock)\b)"),
         "wall-clock time in simulator code breaks reproducibility; "
         "model time is Gpu cycle counters"},
        {std::regex(R"(\bstd\s*::\s*chrono\b)"),
         "std::chrono in simulator code breaks reproducibility; model "
         "time is Gpu cycle counters"},
        {std::regex(R"(\b(?:gettimeofday|clock_gettime)\b)"),
         "OS time in simulator code breaks reproducibility"},
        {std::regex(R"(\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"),
         "time() in simulator code breaks reproducibility"},
        {std::regex(R"((^|[^:\w])clock\s*\(\s*\))"),
         "clock() in simulator code breaks reproducibility"},
    };
    return pats;
}

void
collectNames(const std::vector<std::string> &lines, const std::regex &decl,
             std::vector<std::string> &names)
{
    for (const auto &l : lines) {
        auto begin = std::sregex_iterator(l.begin(), l.end(), decl);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            names.push_back((*it)[1].str());
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
}

bool
known(const std::vector<std::string> &names, const std::string &n)
{
    return std::binary_search(names.begin(), names.end(), n);
}

} // namespace

std::vector<Finding>
scanTokenRules(const std::string &path, const std::string &content)
{
    const FileScope scope = classifyPath(path);
    const std::vector<std::string> lines =
        splitLines(stripCommentsAndStrings(content));

    std::vector<Finding> findings;
    auto flag = [&](std::size_t line1, Rule rule, const char *what) {
        findings.push_back(Finding{path, line1, rule, what});
    };

    // banned-rng: everywhere except the sanctioned wrapper itself.
    if (!scope.rngExempt) {
        for (std::size_t i = 0; i < lines.size(); ++i) {
            for (const auto &p : bannedRngPatterns()) {
                if (std::regex_search(lines[i], p.re))
                    flag(i + 1, Rule::BannedRng, p.what);
            }
        }
    }

    // The remaining rules only bind inside the simulator proper.
    if (!scope.restricted)
        return findings;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        for (const auto &p : wallClockPatterns()) {
            if (std::regex_search(lines[i], p.re))
                flag(i + 1, Rule::WallClock, p.what);
        }
    }

    // unordered-iter: collect identifiers declared as unordered
    // containers, then flag range-for or begin()-family traversal of
    // them. Point lookups (find / count / erase(key) / operator[])
    // stay legal — only order-exposing traversal is the hazard.
    {
        static const std::regex decl(
            R"(\bunordered_(?:map|set)\s*<[^;{]*>\s*[&*]?\s*(\w+))");
        static const std::regex rangeFor(R"(\bfor\s*\([^;()]*:\s*(\w+)\s*\))");
        static const std::regex beginCall(
            R"((\w+)\s*\.\s*c?r?begin\s*\()");
        static const std::regex inlineUnordered(
            R"(\bfor\s*\([^;()]*:\s*[^)]*unordered_(?:map|set))");
        std::vector<std::string> names;
        collectNames(lines, decl, names);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::string &l = lines[i];
            std::smatch m;
            if (std::regex_search(l, m, rangeFor) && known(names, m[1])) {
                flag(i + 1, Rule::UnorderedIter,
                     "iteration order over unordered containers is "
                     "unspecified; use an ordered container or a sorted "
                     "snapshot, or justify with sim-lint: allow");
            } else if (std::regex_search(l, m, beginCall) &&
                       known(names, m[1])) {
                flag(i + 1, Rule::UnorderedIter,
                     "iterator traversal of an unordered container has "
                     "unspecified order; use an ordered container or "
                     "justify with sim-lint: allow");
            } else if (std::regex_search(l, inlineUnordered)) {
                flag(i + 1, Rule::UnorderedIter,
                     "range-for over an unordered container expression "
                     "has unspecified order");
            }
        }
    }

    // fp-accum: += / -= into a float/double-declared identifier needs
    // a documented iteration order (non-associative addition).
    {
        static const std::regex decl(R"(\b(?:double|float)\s+(\w+)\b)");
        static const std::regex accum(R"((\w+)\s*[+\-]=)");
        std::vector<std::string> names;
        collectNames(lines, decl, names);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            auto begin = std::sregex_iterator(lines[i].begin(),
                                              lines[i].end(), accum);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                if (known(names, (*it)[1].str())) {
                    flag(i + 1, Rule::FpAccum,
                         "floating-point accumulation is "
                         "non-associative; document the iteration "
                         "order with an allow(fp-accum) waiver "
                         "comment stating why it is deterministic");
                }
            }
        }
    }

    return findings;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    std::vector<Allow> allows = collectAllows(splitLines(content));
    return applySuppressions(scanTokenRules(path, content), allows);
}

bool
lintFile(const std::string &path, std::vector<Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<Finding> f = lintSource(path, ss.str());
    out.insert(out.end(), f.begin(), f.end());
    return true;
}

std::vector<std::string>
listSources(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".hh" || ext == ".cc" || ext == ".hpp" || ext == ".cpp")
            paths.push_back(it->path().generic_string());
    }
    // directory_iterator order is unspecified — the linter holds
    // itself to the determinism bar it enforces.
    std::sort(paths.begin(), paths.end());
    return paths;
}

std::size_t
lintTree(const std::string &root, std::vector<Finding> &out)
{
    std::size_t scanned = 0;
    for (const auto &p : listSources(root)) {
        if (lintFile(p, out))
            ++scanned;
    }
    return scanned;
}

} // namespace simlint
} // namespace laperm
