// sim-lint fixture: idiomatic simulator code that must pass every rule.
// Not compiled — parsed by test_sim_lint.cc.
#include <cstdint>
#include <map>
#include <vector>

std::uint64_t
tick(const std::vector<std::uint64_t> &active,
     const std::map<std::uint64_t, std::uint64_t> &ready)
{
    std::uint64_t issued = 0;
    for (std::uint64_t smx : active)
        issued += smx & 1;
    // Ordered map: deterministic traversal, legal.
    for (const auto &kv : ready)
        issued += kv.second;
    return issued;
}
