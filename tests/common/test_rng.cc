#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hh"

using namespace laperm;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    const int n = 100000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ZipfSkewed)
{
    Rng r(5);
    const int n = 50000;
    int first_decile = 0;
    for (int i = 0; i < n; ++i) {
        auto v = r.nextZipf(1000, 1.0);
        EXPECT_LT(v, 1000u);
        if (v < 100)
            ++first_decile;
    }
    // With s=1 the first 10% of ranks should carry well over half the
    // mass (H(100)/H(1000) ~ 0.67).
    EXPECT_GT(first_decile, n / 2);
}

TEST(Rng, ZipfDegenerate)
{
    Rng r(5);
    EXPECT_EQ(r.nextZipf(1, 1.2), 0u);
}

TEST(Rng, ZipfDeterministicAcrossInstances)
{
    // Two generators with one seed emit identical Zipf streams (the
    // serve-cluster bench replays a Zipf request mix and depends on
    // this); a different seed diverges quickly.
    Rng a(123), b(123), c(124);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a.nextZipf(512, 1.1);
        EXPECT_EQ(va, b.nextZipf(512, 1.1));
        same += (va == c.nextZipf(512, 1.1));
    }
    EXPECT_LT(same, 200); // collisions only by chance on the hot head
}

TEST(Rng, ZipfRankFrequencyShape)
{
    // Rank-frequency must fall off like 1/rank^s: with s=1 the count
    // ratio between rank 0 and rank 9 is ~10, and the head dominates
    // every later decade. Generous slack keeps this a shape test, not
    // a distribution-exactness test.
    Rng r(9);
    const int n = 200000;
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(r.nextZipf(1000, 1.0))];
    EXPECT_GT(counts[0], counts[9] * 5);
    EXPECT_LT(counts[0], counts[9] * 20);
    int head = 0, second = 0;
    for (int i = 0; i < 10; ++i)
        head += counts[static_cast<std::size_t>(i)];
    for (int i = 10; i < 100; ++i)
        second += counts[static_cast<std::size_t>(i)];
    EXPECT_GT(head, second / 3); // H(10) vs H(100)-H(10), wide margin
    EXPECT_GT(second, head / 3);
}

TEST(Rng, ZipfRegressionPin)
{
    // Exact first 16 draws of the (seed 42, n=1000, s=1.1) stream.
    // These bytes feed cache keys in bench_serve_cluster's request
    // mix; an implementation change that reshuffles them silently
    // invalidates recorded benchmarks, so it must fail here first.
    const std::uint64_t expected[16] = {0,   7,  62, 484, 920, 126,
                                        84,  247, 117, 30, 63,  3,
                                        163, 4,   78,  316};
    Rng r(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(r.nextZipf(1000, 1.1), expected[i]) << "draw " << i;
}
