#include "graph/generators.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace laperm {

Csr
genCitation(std::uint32_t n, std::uint32_t avg_degree, std::uint64_t seed)
{
    laperm_assert(n >= 2, "citation graph needs >= 2 vertices");
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(static_cast<std::size_t>(n) * avg_degree);

    // A paper cites mostly recent work (ids close to its own) plus a
    // few influential older papers chosen preferentially (approximated
    // by a Zipf over the id range, favouring a heavy head).
    const std::uint32_t window = std::max<std::uint32_t>(64, n / 50);
    for (std::uint32_t v = 1; v < n; ++v) {
        std::uint32_t cites =
            1 + static_cast<std::uint32_t>(rng.nextBounded(2 * avg_degree));
        for (std::uint32_t i = 0; i < cites; ++i) {
            std::uint32_t u;
            if (rng.nextDouble() < 0.8) {
                // Local citation within the recency window.
                std::uint32_t w = std::min(window, v);
                u = v - 1 - static_cast<std::uint32_t>(rng.nextBounded(w));
            } else {
                // Influential classic: skewed towards small ids.
                u = static_cast<std::uint32_t>(rng.nextZipf(v, 1.1));
            }
            edges.emplace_back(v, u);
        }
    }
    return Csr::fromEdges(n, std::move(edges), true);
}

Csr
genRmat(std::uint32_t scale_log2, std::uint32_t avg_degree,
        std::uint64_t seed)
{
    laperm_assert(scale_log2 >= 2 && scale_log2 <= 28, "bad RMAT scale");
    const std::uint32_t n = 1u << scale_log2;
    const std::uint64_t m = static_cast<std::uint64_t>(n) * avg_degree / 2;
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(m);

    const double a = 0.57, b = 0.19, c = 0.19; // Graph500 parameters
    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint32_t u = 0, v = 0;
        for (std::uint32_t bit = 0; bit < scale_log2; ++bit) {
            double p = rng.nextDouble();
            if (p < a) {
                // top-left: nothing set
            } else if (p < a + b) {
                v |= 1u << bit;
            } else if (p < a + b + c) {
                u |= 1u << bit;
            } else {
                u |= 1u << bit;
                v |= 1u << bit;
            }
        }
        edges.emplace_back(u, v);
    }
    return Csr::fromEdges(n, std::move(edges), true);
}

Csr
genCage(std::uint32_t n, std::uint32_t bandwidth, std::uint32_t avg_degree,
        std::uint64_t seed)
{
    laperm_assert(bandwidth >= 1, "cage bandwidth must be >= 1");
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(static_cast<std::size_t>(n) * avg_degree);
    for (std::uint32_t v = 0; v < n; ++v) {
        std::uint32_t deg = avg_degree / 2 +
            static_cast<std::uint32_t>(rng.nextBounded(avg_degree / 2 + 1));
        for (std::uint32_t i = 0; i < deg; ++i) {
            std::int64_t off = static_cast<std::int64_t>(
                                   rng.nextBounded(2 * bandwidth + 1)) -
                               bandwidth;
            std::int64_t u = static_cast<std::int64_t>(v) + off;
            if (u < 0 || u >= static_cast<std::int64_t>(n) ||
                u == static_cast<std::int64_t>(v)) {
                continue;
            }
            edges.emplace_back(v, static_cast<std::uint32_t>(u));
        }
    }
    return Csr::fromEdges(n, std::move(edges), true);
}

Csr
genUniform(std::uint32_t n, std::uint32_t avg_degree, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    const std::uint64_t m = static_cast<std::uint64_t>(n) * avg_degree / 2;
    edges.reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
        auto u = static_cast<std::uint32_t>(rng.nextBounded(n));
        auto v = static_cast<std::uint32_t>(rng.nextBounded(n));
        edges.emplace_back(u, v);
    }
    return Csr::fromEdges(n, std::move(edges), true);
}

std::vector<std::uint32_t>
genEdgeWeights(const Csr &csr, std::uint32_t max_weight,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> w(csr.numEdges());
    for (auto &x : w)
        x = 1 + static_cast<std::uint32_t>(rng.nextBounded(max_weight));
    return w;
}

} // namespace laperm
