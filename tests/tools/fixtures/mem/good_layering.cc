// sim-lint fixture: mem/ including only its declared dependencies
// (common, sim), system headers, and path-free generated headers must
// pass the layering pass clean. Not compiled — parsed by
// test_sim_lint_v2.cc.
#include <vector>

#include "common/log.hh"
#include "sim/config.hh"
#include "mem/dram.hh"          // self edge: always legal
#include "sim_fingerprint.hh"   // no path component: generated, exempt

void
touch2()
{
}
