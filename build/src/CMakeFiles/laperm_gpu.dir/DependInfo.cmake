
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynpar/launcher.cc" "src/CMakeFiles/laperm_gpu.dir/dynpar/launcher.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/dynpar/launcher.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/kdu.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/kdu.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/kdu.cc.o.d"
  "/root/repo/src/gpu/kmu.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/kmu.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/kmu.cc.o.d"
  "/root/repo/src/gpu/smx.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/smx.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/smx.cc.o.d"
  "/root/repo/src/gpu/thread_block.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/thread_block.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/thread_block.cc.o.d"
  "/root/repo/src/gpu/trace.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/trace.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/trace.cc.o.d"
  "/root/repo/src/gpu/warp.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/warp.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/warp.cc.o.d"
  "/root/repo/src/gpu/warp_scheduler.cc" "src/CMakeFiles/laperm_gpu.dir/gpu/warp_scheduler.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/gpu/warp_scheduler.cc.o.d"
  "/root/repo/src/sched/adaptive_bind_scheduler.cc" "src/CMakeFiles/laperm_gpu.dir/sched/adaptive_bind_scheduler.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/adaptive_bind_scheduler.cc.o.d"
  "/root/repo/src/sched/dispatch_unit.cc" "src/CMakeFiles/laperm_gpu.dir/sched/dispatch_unit.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/dispatch_unit.cc.o.d"
  "/root/repo/src/sched/priority_queues.cc" "src/CMakeFiles/laperm_gpu.dir/sched/priority_queues.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/priority_queues.cc.o.d"
  "/root/repo/src/sched/rr_scheduler.cc" "src/CMakeFiles/laperm_gpu.dir/sched/rr_scheduler.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/rr_scheduler.cc.o.d"
  "/root/repo/src/sched/smx_bind_scheduler.cc" "src/CMakeFiles/laperm_gpu.dir/sched/smx_bind_scheduler.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/smx_bind_scheduler.cc.o.d"
  "/root/repo/src/sched/tb_pri_scheduler.cc" "src/CMakeFiles/laperm_gpu.dir/sched/tb_pri_scheduler.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/tb_pri_scheduler.cc.o.d"
  "/root/repo/src/sched/tb_scheduler.cc" "src/CMakeFiles/laperm_gpu.dir/sched/tb_scheduler.cc.o" "gcc" "src/CMakeFiles/laperm_gpu.dir/sched/tb_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/laperm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
