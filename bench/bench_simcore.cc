/**
 * @file
 * Wall-clock self-benchmark of the simulator core: for each
 * workload x policy cell, runs the identical simulation under the dense
 * reference loop and the event-driven core (DESIGN.md §11), timing only
 * Gpu::runWaves (workload setup is amortized outside the timer), and
 * writes BENCH_simcore.json with simulated cycles/sec per mode and the
 * event/dense speedup. A final phase measures cold laperm-serve
 * throughput (every request simulates) since the cold path *is* the
 * simulator.
 *
 * Environment:
 *   LAPERM_BENCH_SCALE     tiny | small | full (default small)
 *   LAPERM_BENCH_REQUESTS  cold serve requests (default 16)
 *
 * Exits nonzero if any cell's statistics diverge between modes.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "harness/experiment.hh"
#include "serve/service/service.hh"
#include "serve/service/sim_request.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

/**
 * A spread over Table II — launch-heavy (bfs), barrier/compute (bht,
 * amr), and memory-streaming (clr, pre, join) behaviors — plus the
 * chase-ring latency microbenchmark (not in Table II), whose
 * stall-dominated cycles are the event core's showcase: nearly every
 * cycle has all SMXs parked on DRAM returns, which the dense loop must
 * poll through and the event queue skips.
 */
const char *const kWorkloads[] = {
    "amr-combustion", "bht-points",    "bfs-citation", "clr-cage",
    "pre-movielens",  "join-uniform",  "chase-ring",
};

constexpr TbPolicy kPolicies[] = {TbPolicy::RR, TbPolicy::AdaptiveBind};

struct Cell
{
    std::string workload;
    TbPolicy policy;
    Cycle cycles = 0;
    double denseSec = 0.0;
    double eventSec = 0.0;
    double speedup() const
    {
        return eventSec > 0.0 ? denseSec / eventSec : 0.0;
    }
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Simulate one cell in one mode; returns stats cycles. */
Cycle
simulate(const Workload &w, TbPolicy policy, TickMode mode,
         std::uint64_t seed, double &seconds)
{
    GpuConfig cfg = paperConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = policy;
    cfg.seed = seed;
    cfg.tickMode = mode;
    Gpu gpu(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    gpu.runWaves(w.waves());
    seconds = secondsSince(t0);
    return gpu.stats().cycles;
}

} // namespace

int
main()
{
    setVerbose(false);

    const Scale scale = [] {
        if (const char *env = std::getenv("LAPERM_BENCH_SCALE"))
            return scaleFromString(env);
        return Scale::Small;
    }();
    std::uint64_t requests = 16;
    if (const char *env = std::getenv("LAPERM_BENCH_REQUESTS")) {
        long v = std::atol(env);
        if (v > 0)
            requests = static_cast<std::uint64_t>(v);
    }
    const std::uint64_t seed = 1;

    bool identical = true;
    std::vector<Cell> cells;
    for (const char *name : kWorkloads) {
        auto w = createWorkload(name);
        w->setup(scale, seed);
        for (TbPolicy policy : kPolicies) {
            Cell cell;
            cell.workload = name;
            cell.policy = policy;
            const Cycle dense = simulate(*w, policy, TickMode::Dense,
                                         seed, cell.denseSec);
            cell.cycles = simulate(*w, policy, TickMode::Event, seed,
                                   cell.eventSec);
            if (dense != cell.cycles) {
                std::fprintf(stderr,
                             "FAIL: %s/%s cycles diverge "
                             "(dense %llu, event %llu)\n",
                             name, toString(policy),
                             static_cast<unsigned long long>(dense),
                             static_cast<unsigned long long>(cell.cycles));
                identical = false;
            }
            std::printf("%-14s %-13s %9llu cyc  dense %.3fs  "
                        "event %.3fs  %.2fx\n",
                        name, toString(policy),
                        static_cast<unsigned long long>(cell.cycles),
                        cell.denseSec, cell.eventSec, cell.speedup());
            cells.push_back(std::move(cell));
        }
    }

    // Cold-serve throughput: a fresh cache directory per run, so every
    // request takes the simulate path.
    const std::string cacheDir = "bench_simcore_cache.tmp";
    std::filesystem::remove_all(cacheDir);
    double coldSec = 0.0;
    {
        serve::ServiceOptions opts;
        opts.jobs = 1;
        opts.cacheDir = cacheDir;
        opts.fingerprint = "bench-simcore";
        opts.queueCapacity = requests + 1;
        serve::SimService svc(opts);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < requests; ++i) {
            serve::SimRequest req;
            req.workload = "bfs-cage";
            req.scale = Scale::Tiny;
            req.seed = i + 1;
            req.cfg = paperConfig();
            req.cfg.dynParModel = req.model;
            req.cfg.tbPolicy = req.policy;
            req.cfg.seed = req.seed;
            const serve::RunOutcome out = svc.run(req);
            if (out.status != serve::RunStatus::Ok || out.cached) {
                std::fprintf(stderr, "cold request %llu failed\n",
                             static_cast<unsigned long long>(i));
                identical = false;
            }
        }
        coldSec = secondsSince(t0);
    }
    std::filesystem::remove_all(cacheDir);

    double maxSpeedup = 0.0;
    double denseTotal = 0.0;
    double eventTotal = 0.0;
    for (const Cell &c : cells) {
        maxSpeedup = std::max(maxSpeedup, c.speedup());
        denseTotal += c.denseSec;
        eventTotal += c.eventSec;
    }

    std::ofstream json("BENCH_simcore.json");
    json << "{\n"
         << "  \"bench\": \"simcore_tick_modes\",\n"
         << "  \"scale\": \"" << toString(scale) << "\",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const double cyc = static_cast<double>(c.cycles);
        json << "    {\"workload\": \"" << c.workload
             << "\", \"policy\": \"" << toString(c.policy)
             << "\", \"cycles\": " << c.cycles
             << ", \"seconds_dense\": " << c.denseSec
             << ", \"seconds_event\": " << c.eventSec
             << ", \"cycles_per_sec_dense\": " << cyc / c.denseSec
             << ", \"cycles_per_sec_event\": " << cyc / c.eventSec
             << ", \"speedup\": " << c.speedup() << "}"
             << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"seconds_dense_total\": " << denseTotal << ",\n"
         << "  \"seconds_event_total\": " << eventTotal << ",\n"
         << "  \"speedup_total\": "
         << (eventTotal > 0.0 ? denseTotal / eventTotal : 0.0) << ",\n"
         << "  \"speedup_max\": " << maxSpeedup << ",\n"
         << "  \"serve_cold_requests\": " << requests << ",\n"
         << "  \"serve_seconds_cold\": " << coldSec << ",\n"
         << "  \"serve_req_per_sec_cold\": "
         << static_cast<double>(requests) / coldSec << ",\n"
         << "  \"stats_identical\": " << (identical ? "true" : "false")
         << "\n"
         << "}\n";
    json.close();

    std::printf("cold serve: %llu requests in %.3f s (%.1f req/s)\n",
                static_cast<unsigned long long>(requests), coldSec,
                static_cast<double>(requests) / coldSec);
    std::printf("total: dense %.3fs, event %.3fs (%.2fx, max %.2fx)\n",
                denseTotal, eventTotal,
                eventTotal > 0.0 ? denseTotal / eventTotal : 0.0,
                maxSpeedup);
    std::printf("wrote BENCH_simcore.json\n");

    if (!identical) {
        std::fprintf(stderr, "FAIL: tick modes diverged\n");
        return 1;
    }
    return 0;
}
