#include "workloads/regx.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "common/rng.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

constexpr std::uint32_t kScanThreads = 128;
constexpr std::uint32_t kTableLines = 64; ///< 8KB transition table

struct RegxData
{
    std::uint32_t numPackets = 0;
    std::vector<std::uint32_t> payloadLen;   ///< bytes
    std::vector<std::uint64_t> payloadOff;   ///< bytes into the pool
    std::vector<bool> prefilterHit;
    /** Per packet: pseudo-random but deterministic table walk seed. */
    std::vector<std::uint32_t> walkSeed;

    Addr headersA = 0, payloadA = 0, tableA = 0, paramsA = 0,
         resultsA = 0;
    std::uint32_t topFuncId = 0, scanFuncId = 0;

    Addr
    tableLine(std::uint32_t state) const
    {
        return tableA + kLineBytes * (state % kTableLines);
    }
};

class RegxScanProgram : public KernelProgram
{
  public:
    RegxScanProgram(std::shared_ptr<const RegxData> d, std::uint32_t pkt)
        : d_(std::move(d)), pkt_(pkt)
    {}

    std::string name() const override { return "regx_scan"; }
    std::uint32_t functionId() const override { return d_->scanFuncId; }
    std::uint32_t regsPerThread() const override { return 28; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const RegxData &d = *d_;
        const std::uint32_t len = d.payloadLen[pkt_];
        const std::uint32_t stride =
            ctx.numTbs() * ctx.threadsPerTb() * 4;
        ctx.ld(d.paramsA + 16ull * pkt_, 16);

        // Each thread scans a strided slice of the payload; every few
        // bytes the NFA indexes the shared transition table. The table
        // walk is Zipf-hot: most transitions stay in a few states.
        Rng walk(d.walkSeed[pkt_] + ctx.globalThreadIndex());
        for (std::uint32_t pos = ctx.globalThreadIndex() * 4; pos < len;
             pos += stride) {
            ctx.ld(d.payloadA + d.payloadOff[pkt_] + pos, 4);
            std::uint32_t state =
                static_cast<std::uint32_t>(walk.nextZipf(kTableLines, 1.2));
            ctx.ld(d.tableLine(state), 4);
            ctx.alu(4);
        }
        if (ctx.globalThreadIndex() == 0) {
            ctx.alu(4);
            ctx.st(d.resultsA + 4ull * pkt_, 4);
        }
    }

  private:
    std::shared_ptr<const RegxData> d_;
    std::uint32_t pkt_;
};

class RegxTopProgram : public KernelProgram
{
  public:
    explicit RegxTopProgram(std::shared_ptr<const RegxData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "regx_prefilter"; }
    std::uint32_t functionId() const override { return d_->topFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const RegxData &d = *d_;
        std::uint32_t pkt = ctx.globalThreadIndex();
        if (pkt >= d.numPackets)
            return;
        ctx.ld(d.headersA + 16ull * pkt, 16);
        // Peek at the payload head for the prefilter signature.
        ctx.ld(d.payloadA + d.payloadOff[pkt], 4);
        ctx.ld(d.tableLine(0), 4); // NFA start state
        ctx.alu(6);
        if (d.prefilterHit[pkt]) {
            ctx.st(d.paramsA + 16ull * pkt, 16);
            std::uint32_t tbs = std::max(
                1u, std::min(4u, d.payloadLen[pkt] /
                                     (kScanThreads * 4)));
            ctx.launch({std::make_shared<RegxScanProgram>(d_, pkt), tbs,
                        kScanThreads});
        } else {
            ctx.st(d.resultsA + 4ull * pkt, 4);
        }
    }

  private:
    std::shared_ptr<const RegxData> d_;
};

} // namespace

void
RegxWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto d = std::make_shared<RegxData>();
    switch (scale) {
      case Scale::Tiny: d->numPackets = 600; break;
      case Scale::Small: d->numPackets = 48000; break;
      case Scale::Huge: d->numPackets = 160000; break;
      default: d->numPackets = 64000; break;
    }

    const bool darpa = input_ == "darpa";
    Rng rng(seed);
    d->payloadLen.resize(d->numPackets);
    d->payloadOff.resize(d->numPackets);
    d->prefilterHit.resize(d->numPackets);
    d->walkSeed.resize(d->numPackets);
    std::uint64_t pool = 0;
    for (std::uint32_t p = 0; p < d->numPackets; ++p) {
        std::uint32_t len;
        bool hit;
        if (darpa) {
            // Bimodal: many small control packets, some MTU-sized ones;
            // attacks arrive in bursts (clustered prefilter hits).
            len = rng.nextDouble() < 0.6
                      ? 64 + static_cast<std::uint32_t>(
                                 rng.nextBounded(192))
                      : 1024 + static_cast<std::uint32_t>(
                                   rng.nextBounded(476));
            bool burst = ((p / 64) % 5) == 0;
            hit = rng.nextDouble() < (burst ? 0.8 : 0.1);
        } else {
            len = 128 + static_cast<std::uint32_t>(rng.nextBounded(896));
            hit = rng.nextDouble() < 0.3;
        }
        d->payloadLen[p] = len;
        d->payloadOff[p] = pool;
        pool += (len + kLineBytes - 1) / kLineBytes * kLineBytes;
        d->prefilterHit[p] = hit;
        d->walkSeed[p] = static_cast<std::uint32_t>(rng.next());
    }

    d->headersA = mem_.allocArray(d->numPackets, 16, "headers");
    d->payloadA = mem_.alloc(pool, "payload");
    d->tableA = mem_.alloc(kTableLines * kLineBytes, "nfa_table");
    d->paramsA = mem_.allocArray(d->numPackets, 16, "params");
    d->resultsA = mem_.allocArray(d->numPackets, 4, "results");
    d->topFuncId = allocateFunctionId();
    d->scanFuncId = allocateFunctionId();

    waves_.clear();
    waves_.push_back({std::make_shared<RegxTopProgram>(d),
                      (d->numPackets + 127) / 128, 128});
}

} // namespace laperm
