#include <gtest/gtest.h>

#include "tenant/metrics.hh"
#include "tenant/predictor.hh"

using namespace laperm;
using namespace laperm::tenant;

TEST(TenantMetrics, JainIsExactlyOneForIdenticalTenants)
{
    // Identical progress must finalize to exactly 1.0, not 0.999...:
    // the sums stay integer and the single division is (n*x)^2 over
    // n * n * x^2.
    EXPECT_EQ(jainIndex({7, 7, 7, 7}), 1.0);
    EXPECT_EQ(jainIndex({123456789, 123456789}), 1.0);
    EXPECT_EQ(jainIndex({1}), 1.0);
}

TEST(TenantMetrics, JainPenalizesSkew)
{
    const double skewed = jainIndex({100, 1});
    EXPECT_LT(skewed, 1.0);
    EXPECT_GT(skewed, 0.0);
    // n tenants, one hog: index approaches 1/n.
    EXPECT_NEAR(jainIndex({1000, 0, 0, 0}), 0.25, 1e-12);
}

TEST(TenantMetrics, JainDegenerateInputs)
{
    EXPECT_EQ(jainIndex({}), 0.0);
    EXPECT_EQ(jainIndex({0, 0, 0}), 0.0);
}

TEST(TenantMetrics, PercentileNearestRank)
{
    const std::vector<Cycle> v = {50, 10, 40, 20, 30};
    // Nearest rank over the sorted {10,20,30,40,50}: ceil(p/100*5).
    EXPECT_EQ(percentileNearestRank(v, 50), 30u);
    EXPECT_EQ(percentileNearestRank(v, 95), 50u);
    EXPECT_EQ(percentileNearestRank(v, 99), 50u);
    EXPECT_EQ(percentileNearestRank(v, 1), 10u);
    EXPECT_EQ(percentileNearestRank(v, 100), 50u);
    EXPECT_EQ(percentileNearestRank({}, 50), 0u);
    // Always an observed sample, never interpolated.
    EXPECT_EQ(percentileNearestRank({10, 20}, 50), 10u);
    EXPECT_EQ(percentileNearestRank({10, 20}, 51), 20u);
}

TEST(TenantMetrics, PercentilesAreMonotone)
{
    std::vector<Cycle> v;
    for (Cycle i = 0; i < 101; ++i)
        v.push_back(i * 7 + (i % 3));
    const Cycle p50 = percentileNearestRank(v, 50);
    const Cycle p95 = percentileNearestRank(v, 95);
    const Cycle p99 = percentileNearestRank(v, 99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
}

namespace {

TenantRunResult
makeRun(const std::string &name, std::uint32_t tenant,
        std::vector<Cycle> turnarounds, std::uint64_t retired)
{
    TenantRunResult r;
    r.name = name;
    r.tenant = tenant;
    r.jobTurnarounds = std::move(turnarounds);
    r.waveLatencies = r.jobTurnarounds;
    r.retiredTbs = retired;
    return r;
}

} // namespace

TEST(TenantMetrics, AnttIsExactlyOneWhenSharedEqualsSolo)
{
    // The solo-baseline degenerate case: a run compared against itself
    // must come out at exactly ANTT 1.0 and STP n.
    MultiTenantResult shared;
    shared.perTenant.push_back(makeRun("a", 0, {1000, 3000}, 10));
    shared.perTenant.push_back(makeRun("b", 1, {777}, 10));
    shared.makespan = 4000;

    const MixMetrics m =
        computeMixMetrics(shared, shared.perTenant);
    ASSERT_EQ(m.perTenant.size(), 2u);
    EXPECT_EQ(m.perTenant[0].antt, 1.0);
    EXPECT_EQ(m.perTenant[1].antt, 1.0);
    EXPECT_EQ(m.antt, 1.0);
    EXPECT_EQ(m.stp, 2.0);
    EXPECT_EQ(m.jain, 1.0);
    EXPECT_EQ(m.makespan, 4000u);
}

TEST(TenantMetrics, AnttAndStpReflectSlowdown)
{
    MultiTenantResult shared;
    shared.perTenant.push_back(makeRun("a", 0, {2000}, 30));
    std::vector<TenantRunResult> solo = {makeRun("a", 0, {1000}, 30)};

    const MixMetrics m = computeMixMetrics(shared, solo);
    EXPECT_EQ(m.perTenant[0].antt, 2.0); // shared twice as slow
    EXPECT_EQ(m.stp, 0.5);               // half the solo throughput
}

TEST(TenantMetrics, PerTenantPercentilesComeFromWaveLatencies)
{
    MultiTenantResult shared;
    TenantRunResult r = makeRun("a", 0, {100}, 5);
    r.waveLatencies = {40, 10, 30, 20, 50};
    shared.perTenant.push_back(r);
    std::vector<TenantRunResult> solo = {makeRun("a", 0, {100}, 5)};

    const MixMetrics m = computeMixMetrics(shared, solo);
    EXPECT_EQ(m.perTenant[0].p50, 30u);
    EXPECT_EQ(m.perTenant[0].p95, 50u);
    EXPECT_EQ(m.perTenant[0].p99, 50u);
}

TEST(TenantPredictor, SeedsWithFirstSampleThenTracks)
{
    RuntimePredictor p(2); // shift 2: move by a quarter of the error
    EXPECT_EQ(p.predictedTbRuntime(), 0u);
    EXPECT_EQ(p.predictedDrain(10), 0u);

    p.observe(1000);
    EXPECT_EQ(p.predictedTbRuntime(), 1000u); // seeded, not decayed
    p.observe(2000);
    EXPECT_EQ(p.predictedTbRuntime(), 1250u); // 1000 + (1000 >> 2)
    p.observe(250);
    EXPECT_EQ(p.predictedTbRuntime(), 1000u); // 1250 - (1000 >> 2)
    EXPECT_EQ(p.predictedDrain(4), 4000u);
    EXPECT_EQ(p.samples(), 3u);
}

TEST(TenantPredictor, ConvergesToConstantStream)
{
    RuntimePredictor p(3);
    for (int i = 0; i < 100; ++i)
        p.observe(640);
    EXPECT_EQ(p.predictedTbRuntime(), 640u);
}
