# Empty dependencies file for laperm_tests.
# This may be replaced when dependencies are built.
