#include "serve/service/service_handler.hh"

#include "common/log.hh"
#include "serve/service/protocol.hh"
#include "serve/service/sim_request.hh"

namespace laperm {
namespace serve {

ServiceHandler::ServiceHandler(ServiceOptions opts)
    : service_(std::make_unique<SimService>(std::move(opts)))
{
}

std::string
ServiceHandler::handleLine(const std::string &line)
{
    JsonObject obj;
    std::string err;
    if (!parseJsonObject(line, obj, err))
        return errorResponse(kStatusError, "bad request: " + err);

    std::string op;
    if (!getString(obj, "op", op))
        return errorResponse(kStatusError, "missing 'op'");

    if (op == kVerbPing) {
        return logFormat(
            "{\"status\":\"ok\",\"op\":\"ping\",\"fingerprint\":\"%s\","
            "\"protocol\":%d}",
            service_->fingerprint().c_str(), kProtocolVersion);
    }
    if (op == kVerbStats) {
        return "{\"status\":\"ok\",\"op\":\"stats\",\"fingerprint\":\"" +
               service_->fingerprint() + "\"," +
               service_->metrics().jsonFields() + "}";
    }
    if (op == kVerbShutdown) {
        requestShutdown();
        return "{\"status\":\"ok\",\"op\":\"shutdown\"}";
    }
    if (op != kVerbRun)
        return errorResponse(kStatusError, "unknown op '" + op + "'");

    SimRequest req;
    if (!SimRequest::fromJson(obj, req, err))
        return errorResponse(kStatusError, err);

    const RunOutcome outcome = service_->run(req);
    switch (outcome.status) {
    case RunStatus::Ok:
        return logFormat(
            "{\"status\":\"ok\",\"cached\":%s,\"deduped\":%s,"
            "\"key\":\"%s\",\"result\":\"%s\"}",
            outcome.cached ? "true" : "false",
            outcome.deduped ? "true" : "false", outcome.key.c_str(),
            jsonEscape(outcome.payload).c_str());
    case RunStatus::Shed:
        // Structured load-shed: the client backs off and retries
        // (serve/client.cc honors retry_ms).
        return logFormat(
            "{\"status\":\"overloaded\",\"key\":\"%s\",\"retry_ms\":100}",
            outcome.key.c_str());
    case RunStatus::Timeout:
        return logFormat("{\"status\":\"timeout\",\"key\":\"%s\"}",
                         outcome.key.c_str());
    case RunStatus::Error:
        break;
    }
    return errorResponse(kStatusError, outcome.error);
}

} // namespace serve
} // namespace laperm
