#include <gtest/gtest.h>

#include "gpu/warp_scheduler.hh"

using namespace laperm;

namespace {

Warp
makeWarp(std::uint64_t age, Cycle ready = 0)
{
    Warp w;
    w.age = age;
    w.readyAt = ready;
    w.ops.resize(1); // non-empty so finishedOps() is false
    return w;
}

} // namespace

TEST(WarpScheduler, RoundRobinSlotAssignment)
{
    WarpScheduler sched(4, WarpPolicy::GTO);
    std::vector<Warp> warps(8);
    for (std::size_t i = 0; i < warps.size(); ++i) {
        warps[i] = makeWarp(i);
        sched.addWarp(&warps[i]);
    }
    for (std::size_t i = 0; i < warps.size(); ++i)
        EXPECT_EQ(warps[i].slot, i % 4);
    EXPECT_EQ(sched.liveWarps(), 8u);
}

TEST(WarpScheduler, GtoSticksToGreedyWarp)
{
    WarpScheduler sched(1, WarpPolicy::GTO);
    Warp a = makeWarp(0), b = makeWarp(1);
    sched.addWarp(&a);
    sched.addWarp(&b);
    Warp *first = sched.pick(0, 0);
    ASSERT_EQ(first, &a); // oldest first
    sched.issued(0, first, 0);
    // Both ready: the greedy warp keeps issuing.
    EXPECT_EQ(sched.pick(0, 1), &a);
    // Greedy stalls (its op pushed readyAt forward): re-file it into
    // the pending heap and fall back to the oldest ready warp.
    a.readyAt = 100;
    sched.requeue(&a);
    EXPECT_EQ(sched.pick(0, 1), &b);
}

TEST(WarpScheduler, LrrRotatesAmongReadyWarps)
{
    WarpScheduler sched(1, WarpPolicy::LRR);
    Warp a = makeWarp(0), b = makeWarp(1), c = makeWarp(2);
    for (Warp *w : {&a, &b, &c})
        sched.addWarp(w);
    Warp *w1 = sched.pick(0, 10);
    sched.issued(0, w1, 10);
    Warp *w2 = sched.pick(0, 11);
    sched.issued(0, w2, 11);
    Warp *w3 = sched.pick(0, 12);
    sched.issued(0, w3, 12);
    EXPECT_NE(w1, w2);
    EXPECT_NE(w2, w3);
    EXPECT_NE(w1, w3);
}

TEST(WarpScheduler, SkipsBarrierAndDoneWarps)
{
    WarpScheduler sched(1, WarpPolicy::GTO);
    Warp a = makeWarp(0), b = makeWarp(1);
    sched.addWarp(&a);
    sched.addWarp(&b);
    // a issues its barrier op and parks: it leaves the ready list
    // until the TB releases it.
    ASSERT_EQ(sched.pick(0, 0), &a);
    a.atBarrier = true;
    sched.parkAtBarrier(&a);
    EXPECT_EQ(sched.pick(0, 0), &b);
    // b runs out of ops and retires.
    b.done = true;
    sched.removeWarp(&b);
    EXPECT_EQ(sched.pick(0, 0), nullptr);
}

TEST(WarpScheduler, NextWakeupIgnoresBlockedWarps)
{
    WarpScheduler sched(2, WarpPolicy::GTO);
    // Slots round-robin: a, c land in slot 0; b in slot 1.
    Warp a = makeWarp(0, 50), b = makeWarp(1, 30), c = makeWarp(2, 10);
    for (Warp *w : {&a, &b, &c})
        sched.addWarp(w);
    // c becomes ready at 10 and parks at its barrier.
    ASSERT_EQ(sched.pick(0, 10), &c);
    c.atBarrier = true;
    sched.parkAtBarrier(&c);
    EXPECT_EQ(sched.nextWakeup(0), 30u);
    // b retires while still stalled.
    b.done = true;
    sched.removeWarp(&b);
    EXPECT_EQ(sched.nextWakeup(0), 50u);
    // A warp that's already ready wakes "now".
    ASSERT_EQ(sched.pick(0, 50), &a);
    EXPECT_EQ(sched.nextWakeup(7), 7u);
}

TEST(WarpScheduler, RemoveWarpClearsGreedy)
{
    WarpScheduler sched(1, WarpPolicy::GTO);
    Warp a = makeWarp(0);
    sched.addWarp(&a);
    sched.issued(0, &a, 0);
    sched.removeWarp(&a);
    EXPECT_EQ(sched.liveWarps(), 0u);
    EXPECT_EQ(sched.pick(0, 10), nullptr);
}
