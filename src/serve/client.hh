/**
 * @file
 * Client for the laperm_served protocol (DESIGN.md §10.2): connects to
 * the daemon's endpoint (UDS or TCP, serve/transport), sends one JSON
 * line per call, reads one JSON line back. callWithRetry() layers
 * deterministic exponential backoff on top for `overloaded` responses
 * and transport errors, so laperm_submit degrades gracefully when the
 * daemon sheds load.
 */

#ifndef LAPERM_SERVE_CLIENT_HH
#define LAPERM_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/service/protocol.hh"
#include "serve/transport/transport.hh"

namespace laperm {
namespace serve {

struct ClientOptions
{
    Endpoint endpoint = Endpoint::unixAt("laperm_served.sock");
    unsigned connectRetries = 0;     ///< extra connect attempts
    std::uint64_t backoffMs = 50;    ///< initial retry backoff
    std::uint64_t maxBackoffMs = 2000;
    std::uint64_t recvTimeoutMs = 0; ///< 0 = wait forever
    unsigned overloadRetries = 5;    ///< callWithRetry budget
};

class Client
{
  public:
    explicit Client(ClientOptions opts);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect (with connectRetries x backoff). False on failure. */
    bool connect(std::string &err);

    bool connected() const { return conn_ != nullptr; }
    void close();

    /**
     * Send @p request as one line and parse the one-line response
     * into @p response. False on transport or parse failure.
     */
    bool call(const std::string &request, JsonObject &response,
              std::string &err);

    /**
     * call(), but on an `overloaded` status (or a dropped connection)
     * sleep an exponentially growing backoff — seeded from the
     * response's retry_ms when present — reconnect if needed, and try
     * again, up to overloadRetries times. The final response (of any
     * status) lands in @p response.
     */
    bool callWithRetry(const std::string &request, JsonObject &response,
                       std::string &err);

  private:
    ClientOptions opts_;
    std::unique_ptr<Connection> conn_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_CLIENT_HH
