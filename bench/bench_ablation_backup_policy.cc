/**
 * @file
 * Ablation: Adaptive-Bind's fixed (recorded) backup-queue rule vs.
 * random stealing (Section IV-C motivates the recorded scheme: stolen
 * TBs keep landing on the same SMX, preserving their mutual locality
 * and avoiding reconfiguration overhead).
 */

#include <cstdio>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"join-gaussian", "bht-points",
                           "bfs-citation"};

    std::printf("Ablation: backup-queue selection "
                "(Adaptive-Bind, DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "backup policy", "IPC", "L1 hit",
             "stolen TBs", "adoptions"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (BackupPolicy bp :
             {BackupPolicy::Recorded, BackupPolicy::Random}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            cfg.backupPolicy = bp;
            Gpu gpu(cfg);
            gpu.runWaves(w->waves());
            const GpuStats &s = gpu.stats();
            t.addRow({name,
                      bp == BackupPolicy::Recorded ? "recorded (paper)"
                                                   : "random",
                      fmtF(s.ipc()), fmtPct(s.l1Total().hitRate()),
                      fmtU(s.unboundDispatches),
                      fmtU(s.backupAdoptions)});
        }
        t.addRule();
    }
    t.print();
    return 0;
}
