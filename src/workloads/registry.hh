/**
 * @file
 * Registry of the benchmark instances of Table II.
 */

#ifndef LAPERM_WORKLOADS_REGISTRY_HH
#define LAPERM_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace laperm {

/** All "app-input" instance names, in the paper's Table II order. */
const std::vector<std::string> &workloadNames();

/** Instantiate a workload by "app-input" name; fatal if unknown. */
std::unique_ptr<Workload> createWorkload(const std::string &name);

/** Names filtered to one application, e.g. "bfs". */
std::vector<std::string> workloadNamesForApp(const std::string &app);

/** Whether @p name is a Table II instance (chase-* is intentionally not). */
bool isKnownWorkload(const std::string &name);

/** Comma-separated Table II names for structured unknown-name errors. */
std::string workloadNameList();

} // namespace laperm

#endif // LAPERM_WORKLOADS_REGISTRY_HH
