/**
 * @file
 * Cluster-layer tests (DESIGN.md §15.4): consistent-hash ring
 * determinism, distribution and resize stability, and an in-process
 * balancer over two real worker Servers — routing stability, verbatim
 * run forwarding, stats aggregation, shutdown fan-out, and the
 * structured overload response for an unreachable worker.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "serve/client.hh"
#include "serve/cluster/balancer.hh"
#include "serve/cluster/hash_ring.hh"
#include "serve/service/service_handler.hh"
#include "serve/service/sim_request.hh"
#include "serve/session/server.hh"
#include "sim/presets.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "laperm_cluster_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

SimRequest
tinyRequest(std::uint64_t seed)
{
    SimRequest req;
    req.workload = "bfs-cage";
    req.scale = Scale::Tiny;
    req.seed = seed;
    req.cfg = paperConfig();
    req.cfg.dynParModel = req.model;
    req.cfg.tbPolicy = req.policy;
    req.cfg.seed = seed;
    return req;
}

ServiceOptions
workerOptions(const std::string &cacheDir)
{
    ServiceOptions o;
    o.jobs = 2;
    o.cacheDir = cacheDir;
    o.fingerprint = "fp-cluster";
    return o;
}

/**
 * In-process cluster: N worker Servers on ephemeral-path UDS
 * endpoints, one BalancerHandler routing onto them. What laperm_served
 * --cluster assembles from processes, built from objects.
 */
struct MiniCluster
{
    std::vector<std::unique_ptr<ServiceHandler>> handlers;
    std::vector<std::unique_ptr<Server>> servers;
    std::unique_ptr<BalancerHandler> balancer;

    MiniCluster(std::size_t n, const std::string &cacheDir,
                const std::string &tag)
    {
        BalancerOptions bopts;
        for (std::size_t i = 0; i < n; ++i) {
            SessionOptions sopts;
            sopts.endpoint = Endpoint::unixAt(
                ::testing::TempDir() + "laperm_mc_" + tag + "_" +
                std::to_string(i) + ".sock");
            handlers.push_back(std::make_unique<ServiceHandler>(
                workerOptions(cacheDir)));
            servers.push_back(
                std::make_unique<Server>(sopts, *handlers.back()));
            std::string err;
            EXPECT_TRUE(servers.back()->start(err)) << err;
            bopts.workers.push_back(sopts.endpoint);
        }
        // Tests that take a worker down shouldn't wait out the full
        // respawn-sized budget.
        bopts.connectRetries = 2;
        bopts.backoffMs = 10;
        balancer = std::make_unique<BalancerHandler>(std::move(bopts));
    }

    ~MiniCluster()
    {
        for (auto &s : servers)
            s->stop();
    }
};

} // namespace

// ---------------------------------------------------------- hash ring

TEST(HashRing, DeterministicAcrossInstances)
{
    const HashRing a(4), b(4);
    EXPECT_EQ(a.points(), 4u * 64u);
    for (int i = 0; i < 200; ++i) {
        const std::string key = "key-" + std::to_string(i);
        EXPECT_EQ(a.workerFor(key), b.workerFor(key)) << key;
    }
}

TEST(HashRing, SpreadsKeysAcrossAllWorkers)
{
    const std::size_t n = 4;
    const HashRing ring(n);
    std::map<std::size_t, int> counts;
    const int keys = 4000;
    for (int i = 0; i < keys; ++i)
        ++counts[ring.workerFor("content-key-" + std::to_string(i))];
    ASSERT_EQ(counts.size(), n); // every worker owns some keys
    for (const auto &kv : counts) {
        // 64 vnodes keep the imbalance well under 2x of fair share.
        EXPECT_GT(kv.second, keys / static_cast<int>(n) / 2);
        EXPECT_LT(kv.second, keys * 2 / static_cast<int>(n));
    }
}

TEST(HashRing, ResizeMovesOnlyAFractionOfTheKeySpace)
{
    // The consistent-hashing contract: growing 3 -> 4 workers remaps
    // roughly 1/4 of keys, not all of them. That is what keeps worker
    // L1 caches warm across a cluster resize.
    const HashRing before(3), after(4);
    const int keys = 4000;
    int moved = 0;
    for (int i = 0; i < keys; ++i) {
        const std::string key = "content-key-" + std::to_string(i);
        moved += (before.workerFor(key) != after.workerFor(key));
    }
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, keys / 2); // ~1000 expected; far below a reshuffle
}

TEST(HashRing, SingleWorkerOwnsEverything)
{
    const HashRing ring(1);
    for (int i = 0; i < 50; ++i) {
        // Built with += : GCC 12's -Werror=restrict false-positives on
        // the (const char* + string&&) operator+ overload here.
        std::string key = "k";
        key += std::to_string(i);
        EXPECT_EQ(ring.workerFor(key), 0u) << key;
    }
}

// ------------------------------------------------------ balancer

TEST(ClusterBalancer, RunRoutesByKeyAndForwardsVerbatim)
{
    const std::string cacheDir = tempDir("route");
    MiniCluster cluster(2, cacheDir, "route");

    // A direct single-service run of the same request pins the
    // expected response bytes (same cache dir must not be shared, so
    // use a fresh one).
    ServiceHandler direct(workerOptions(tempDir("route_direct")));
    const SimRequest req = tinyRequest(7);
    const std::string expected = direct.handleLine(req.toJson());

    // Cold through the balancer: byte-identical except cached flag...
    const std::string cold = cluster.balancer->handleLine(req.toJson());
    EXPECT_EQ(cold, expected);
    // ...and the warm replay only flips "cached" to true.
    const std::string warm = cluster.balancer->handleLine(req.toJson());
    JsonObject obj;
    std::string err, s;
    ASSERT_TRUE(parseJsonObject(warm, obj, err)) << err;
    ASSERT_TRUE(getString(obj, "status", s));
    EXPECT_EQ(s, kStatusOk);
    EXPECT_EQ(obj.at("cached").type, JsonValue::Type::Bool);
    EXPECT_TRUE(obj.at("cached").boolean);

    // Exactly one worker executed it — the ring sent both calls to
    // the same place.
    std::uint64_t executed = 0;
    for (auto &h : cluster.handlers)
        executed += h->service().metrics().executed;
    EXPECT_EQ(executed, 1u);
}

TEST(ClusterBalancer, StatsAggregateAcrossWorkersAndCountThem)
{
    MiniCluster cluster(2, tempDir("stats"), "stats");

    // Seed distinct requests until both workers have executed work.
    std::set<std::size_t> hit;
    const HashRing ring(2);
    for (std::uint64_t seed = 1; hit.size() < 2 && seed < 64; ++seed) {
        const SimRequest req = tinyRequest(seed);
        if (!hit.insert(ring.workerFor(req.key())).second)
            continue;
        const std::string resp =
            cluster.balancer->handleLine(req.toJson());
        ASSERT_NE(resp.find(kStatusOk), std::string::npos) << resp;
    }
    ASSERT_EQ(hit.size(), 2u);

    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonObject(
        cluster.balancer->handleLine(R"({"op":"stats"})"), obj, err))
        << err;
    std::uint64_t n = 0;
    ASSERT_TRUE(getU64(obj, "workers", n));
    EXPECT_EQ(n, 2u);
    ASSERT_TRUE(getU64(obj, "executed", n));
    EXPECT_EQ(n, 2u); // summed over both workers
    ASSERT_TRUE(getU64(obj, "requests", n));
    EXPECT_EQ(n, 2u);
    std::string fp;
    ASSERT_TRUE(getString(obj, "fingerprint", fp));
    EXPECT_EQ(fp, "fp-cluster");
}

TEST(ClusterBalancer, PingProxiesAndShutdownFansOut)
{
    MiniCluster cluster(2, tempDir("lifecycle"), "lifecycle");

    JsonObject obj;
    std::string err, s;
    ASSERT_TRUE(parseJsonObject(
        cluster.balancer->handleLine(R"({"op":"ping"})"), obj, err))
        << err;
    ASSERT_TRUE(getString(obj, "status", s));
    EXPECT_EQ(s, kStatusOk);
    ASSERT_TRUE(getString(obj, "fingerprint", s));
    EXPECT_EQ(s, "fp-cluster");

    ASSERT_TRUE(parseJsonObject(
        cluster.balancer->handleLine(R"({"op":"shutdown"})"), obj, err))
        << err;
    ASSERT_TRUE(getString(obj, "status", s));
    EXPECT_EQ(s, kStatusOk);
    // Every worker's session saw the shutdown verb.
    for (auto &srv : cluster.servers)
        EXPECT_TRUE(srv->waitShutdown(10000));
}

TEST(ClusterBalancer, UnreachableWorkerDegradesToStructuredOverload)
{
    const std::string cacheDir = tempDir("downed");
    MiniCluster cluster(2, cacheDir, "downed");

    // Find a request owned by worker 0, then take worker 0 down.
    const HashRing ring(2);
    std::uint64_t seed = 1;
    while (ring.workerFor(tinyRequest(seed).key()) != 0)
        ++seed;
    cluster.servers[0]->stop();

    const std::string resp =
        cluster.balancer->handleLine(tinyRequest(seed).toJson());
    JsonObject obj;
    std::string err, s;
    ASSERT_TRUE(parseJsonObject(resp, obj, err)) << err << ": " << resp;
    ASSERT_TRUE(getString(obj, "status", s));
    EXPECT_EQ(s, kStatusOverloaded);
    std::uint64_t retryMs = 0;
    EXPECT_TRUE(getU64(obj, "retry_ms", retryMs));
    EXPECT_GT(retryMs, 0u);

    // The other worker keeps serving its share of the key space.
    while (ring.workerFor(tinyRequest(seed).key()) != 1)
        ++seed;
    const std::string ok =
        cluster.balancer->handleLine(tinyRequest(seed).toJson());
    ASSERT_TRUE(parseJsonObject(ok, obj, err)) << err;
    ASSERT_TRUE(getString(obj, "status", s));
    EXPECT_EQ(s, kStatusOk);
}
