#include "sched/policies.hh"

// Adaptive-Bind shares its implementation with SMX-Bind (the adaptive
// flag enables stage 3 of Figure 6); see smx_bind_scheduler.cc. This
// translation unit exists to host the factory.

namespace laperm {

std::unique_ptr<TbScheduler>
TbScheduler::create(const GpuConfig &cfg, DispatchContext &ctx)
{
    switch (cfg.tbPolicy) {
      case TbPolicy::RR:
        return std::make_unique<RrScheduler>(cfg, ctx);
      case TbPolicy::TbPri:
        return std::make_unique<TbPriScheduler>(cfg, ctx);
      case TbPolicy::SmxBind:
        return std::make_unique<SmxBindScheduler>(cfg, ctx, false);
      case TbPolicy::AdaptiveBind:
        return std::make_unique<SmxBindScheduler>(cfg, ctx, true);
    }
    return nullptr;
}

} // namespace laperm
