// sim-lint fixture: a file directly under the umbrella directory (no
// nested component) stays in module `serve`; its include of a nested
// sublayer header must resolve to `transport` — a declared edge. Not
// compiled — parsed by test_sim_lint_v2.cc.
#include "common/log.hh"                  // declared edge: legal
#include "serve/transport/endpoint.hh"    // serve -> transport: declared
#include "serve/session/server.hh"        // serve -> session: declared

void
touchUmbrella()
{
}
