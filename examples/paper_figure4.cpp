/**
 * @file
 * Reproduces Figure 4 of the paper literally: 8 parent TBs (P0-P7) on
 * a 4-SMX device holding one TB each; P2 launches children C0-C1 and
 * P4 launches C2-C5. Prints the per-SMX dispatch timeline under each
 * scheduling policy — compare with Figures 4(b) through 4(e).
 *
 * Run: ./paper_figure4
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "kernels/lambda_program.hh"

using namespace laperm;

namespace {

struct Placement
{
    std::string label;
    SmxId smx;
    Cycle cycle;
};

std::vector<Placement> g_placements;
std::map<TbUid, std::string> g_names;

void
hook(void *, const ThreadBlock &tb)
{
    // Built with += rather than operator+ to dodge the GCC 12 -Wrestrict
    // false positive on inlined std::string concatenation (GCC PR105329).
    std::string label;
    if (!tb.isDynamic) {
        label += 'P';
        label += std::to_string(tb.tbIndex);
    } else {
        // Children of P2 come first (C0, C1), then P4's (C2..C5).
        const std::string &parent = g_names[tb.directParent];
        std::uint32_t base = parent == "P2" ? 0 : 2;
        label += 'C';
        label += std::to_string(base + tb.tbIndex);
    }
    g_names[tb.uid] = label;
    g_placements.push_back({label, tb.smx, tb.dispatchCycle});
}

void
runPolicy(TbPolicy policy)
{
    g_placements.clear();
    g_names.clear();

    GpuConfig cfg;
    cfg.numSmx = 4;
    cfg.maxThreadsPerSmx = 64;
    cfg.maxTbsPerSmx = 1;
    cfg.regsPerSmx = 16384;
    cfg.smemPerSmx = 16 * 1024;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 64 * 1024;
    cfg.l2Assoc = 8;
    cfg.kduEntries = 8;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.dtblLaunchLatency = 5;
    cfg.launchIssueCycles = 4;
    cfg.tbPolicy = policy;

    auto child = std::make_shared<LambdaProgram>(
        "child", 101, [](ThreadCtx &c) { c.alu(200); });
    auto parent = std::make_shared<LambdaProgram>(
        "parent", 100, [child](ThreadCtx &c) {
            if (c.threadIndex() == 0 && c.tbIndex() == 2)
                c.launch({child, 2, 32});
            if (c.threadIndex() == 0 && c.tbIndex() == 4)
                c.launch({child, 4, 32});
            c.alu(200);
        });

    Gpu gpu(cfg);
    gpu.setDispatchHook(&hook, nullptr);
    gpu.launchHostKernel({parent, 8, 32});
    gpu.runToIdle();

    std::printf("--- %s (total %llu cycles) ---\n", toString(policy),
                static_cast<unsigned long long>(gpu.stats().cycles));
    for (SmxId smx = 0; smx < 4; ++smx) {
        std::vector<Placement> row;
        for (const auto &p : g_placements) {
            if (p.smx == smx)
                row.push_back(p);
        }
        std::sort(row.begin(), row.end(),
                  [](const Placement &a, const Placement &b) {
                      return a.cycle < b.cycle;
                  });
        std::printf("  SMX%u:", smx);
        for (const auto &p : row)
            std::printf(" %-3s", p.label.c_str());
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Figure 4: parent-child TB scheduling example\n"
                "(P2 launches C0-C1; P4 launches C2-C5)\n\n");
    runPolicy(TbPolicy::RR);           // Figure 4(b)
    runPolicy(TbPolicy::TbPri);        // Figure 4(c)
    runPolicy(TbPolicy::SmxBind);      // Figure 4(d)
    runPolicy(TbPolicy::AdaptiveBind); // Figure 4(e)
    return 0;
}
