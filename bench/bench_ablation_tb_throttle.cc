/**
 * @file
 * Ablation: contention-based TB throttling (Section IV-F cites [12]'s
 * dynamic dispatch control as a complementary optimization — the small
 * L1 "may result in not fitting enough reusable data of the parent and
 * child TBs, which can benefit from the incorporation of such
 * contention-based TB control strategies"). Runs LaPerm with and
 * without the throttle.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"bfs-citation", "clr-cage", "bht-points"};

    std::printf("Ablation: contention-based TB throttle on LaPerm "
                "(DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "throttle", "IPC", "L1 hit", "L2 hit",
             "cycles"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (bool throttle : {false, true}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            cfg.tbThrottleEnabled = throttle;
            RunResult r = runOne(*w, cfg);
            t.addRow({name, throttle ? "on" : "off", fmtF(r.ipc),
                      fmtPct(r.l1HitRate), fmtPct(r.l2HitRate),
                      fmtF(r.cycles, 0)});
        }
        t.addRule();
    }
    t.print();
    return 0;
}
