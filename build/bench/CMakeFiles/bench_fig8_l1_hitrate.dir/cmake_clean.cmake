file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_l1_hitrate.dir/bench_fig8_l1_hitrate.cc.o"
  "CMakeFiles/bench_fig8_l1_hitrate.dir/bench_fig8_l1_hitrate.cc.o.d"
  "bench_fig8_l1_hitrate"
  "bench_fig8_l1_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_l1_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
