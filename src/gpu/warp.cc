#include "gpu/warp.hh"

// Warp is a plain state record; logic lives in Smx and WarpScheduler.
