#include "serve/server.hh"

#include <algorithm>
#include <chrono>

#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hh"
#include "serve/protocol.hh"
#include "serve/socket_util.hh"

namespace laperm {
namespace serve {

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      service_(std::make_unique<SimService>(opts_.service))
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string &err)
{
    listenFd_ = unixListen(opts_.socketPath, opts_.backlog, err);
    if (listenFd_ < 0)
        return false;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

bool
Server::waitShutdown(std::uint64_t ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (ms == 0) {
        shutdownCv_.wait(lock, [&] { return shutdownRequested_; });
        return true;
    }
    return shutdownCv_.wait_for(lock, std::chrono::milliseconds(ms),
                                [&] { return shutdownRequested_; });
}

void
Server::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_)
            return;
        stopped_ = true;
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();

    // Wake the accept loop: shutdown() forces accept() to return even
    // where a plain close() would leave it blocked.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opts_.socketPath.c_str());
    }

    // Unblock connection readers, then join them.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connThreads_);
    }
    for (auto &t : threads) {
        if (t.joinable())
            t.join();
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopped_ || shutdownRequested_)
                return;
            continue; // transient accept error
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_ || shutdownRequested_) {
            ::close(fd);
            return;
        }
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    std::string carry;
    std::string line;
    while (readLine(fd, carry, line)) {
        const std::string response = handleLine(line);
        if (!writeAll(fd, response + "\n"))
            break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    connFds_.erase(std::remove(connFds_.begin(), connFds_.end(), fd),
                   connFds_.end());
}

std::string
Server::handleLine(const std::string &line)
{
    JsonObject obj;
    std::string err;
    if (!parseJsonObject(line, obj, err))
        return errorResponse(kStatusError, "bad request: " + err);

    std::string op;
    if (!getString(obj, "op", op))
        return errorResponse(kStatusError, "missing 'op'");

    if (op == kVerbPing) {
        return logFormat(
            "{\"status\":\"ok\",\"op\":\"ping\",\"fingerprint\":\"%s\","
            "\"protocol\":%d}",
            service_->fingerprint().c_str(), kProtocolVersion);
    }
    if (op == kVerbStats) {
        return "{\"status\":\"ok\",\"op\":\"stats\",\"fingerprint\":\"" +
               service_->fingerprint() + "\"," +
               service_->metrics().jsonFields() + "}";
    }
    if (op == kVerbShutdown) {
        requestShutdown();
        return "{\"status\":\"ok\",\"op\":\"shutdown\"}";
    }
    if (op != kVerbRun)
        return errorResponse(kStatusError, "unknown op '" + op + "'");

    SimRequest req;
    if (!SimRequest::fromJson(obj, req, err))
        return errorResponse(kStatusError, err);

    const RunOutcome outcome = service_->run(req);
    switch (outcome.status) {
    case RunStatus::Ok:
        return logFormat(
            "{\"status\":\"ok\",\"cached\":%s,\"deduped\":%s,"
            "\"key\":\"%s\",\"result\":\"%s\"}",
            outcome.cached ? "true" : "false",
            outcome.deduped ? "true" : "false", outcome.key.c_str(),
            jsonEscape(outcome.payload).c_str());
    case RunStatus::Shed:
        // Structured load-shed: the client backs off and retries
        // (serve/client.cc honors retry_ms).
        return logFormat(
            "{\"status\":\"overloaded\",\"key\":\"%s\",\"retry_ms\":100}",
            outcome.key.c_str());
    case RunStatus::Timeout:
        return logFormat(
            "{\"status\":\"timeout\",\"key\":\"%s\"}",
            outcome.key.c_str());
    case RunStatus::Error:
        break;
    }
    return errorResponse(kStatusError, outcome.error);
}

} // namespace serve
} // namespace laperm
