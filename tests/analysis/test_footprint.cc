#include <gtest/gtest.h>

#include <memory>

#include "analysis/footprint.hh"
#include "kernels/lambda_program.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

/** A minimal synthetic workload with known footprint overlap. */
class SyntheticWorkload : public WorkloadBase
{
  public:
    /**
     * @param shared_lines lines every child shares with its parent.
     * @param private_lines lines unique to each child.
     */
    SyntheticWorkload(std::uint32_t shared_lines,
                      std::uint32_t private_lines)
        : shared_(shared_lines), private_(private_lines)
    {}

    std::string app() const override { return "synthetic"; }
    std::string input() const override { return "unit"; }

    void
    setup(Scale, std::uint64_t) override
    {
        const std::uint32_t shared = shared_;
        const std::uint32_t priv = private_;
        auto child = [shared, priv](std::uint32_t ix) {
            return std::make_shared<LambdaProgram>(
                "child", 7000, [shared, priv, ix](ThreadCtx &c) {
                    if (c.threadIndex() != 0)
                        return;
                    for (std::uint32_t i = 0; i < shared; ++i)
                        c.ld(0x100000 + i * kLineBytes, 4);
                    for (std::uint32_t i = 0; i < priv; ++i)
                        c.ld(0x900000 + (ix * priv + i) * kLineBytes, 4);
                });
        };
        auto parent = std::make_shared<LambdaProgram>(
            "parent", 7001, [shared, child](ThreadCtx &c) {
                if (c.threadIndex() != 0)
                    return;
                // The parent touches exactly the shared lines.
                for (std::uint32_t i = 0; i < shared; ++i)
                    c.ld(0x100000 + i * kLineBytes, 4);
                c.launch({child(0), 1, 32});
                c.launch({child(1), 1, 32});
            });
        waves_.push_back({parent, 1, 32});
    }

  private:
    std::uint32_t shared_;
    std::uint32_t private_;
};

} // namespace

TEST(Footprint, FullyShared)
{
    SyntheticWorkload w(8, 0);
    w.setup(Scale::Tiny, 1);
    FootprintReport rep = analyzeFootprint(w);
    // Children == parent footprint: pc/c = 1; siblings identical.
    EXPECT_DOUBLE_EQ(rep.parentChild, 1.0);
    EXPECT_DOUBLE_EQ(rep.childSibling, 1.0);
    EXPECT_DOUBLE_EQ(rep.childSiblingOwn, 1.0);
    EXPECT_EQ(rep.directParents, 1u);
    EXPECT_EQ(rep.childTbs, 2u);
}

TEST(Footprint, HalfShared)
{
    // Each child: 8 shared + 8 private lines. Union c = 8 + 16 = 24.
    // Parent overlap pc = 8 -> pc/c = 1/3.
    SyntheticWorkload w(8, 8);
    w.setup(Scale::Tiny, 1);
    FootprintReport rep = analyzeFootprint(w);
    EXPECT_NEAR(rep.parentChild, 8.0 / 24.0, 1e-9);
    // Sibling: cos = 8 (shared lines), co = 16 -> cos/co = 0.5;
    // cs = union minus own-exclusive = 24 - 8 = 16 -> cos/cs = 0.5.
    EXPECT_NEAR(rep.childSiblingOwn, 0.5, 1e-9);
    EXPECT_NEAR(rep.childSibling, 0.5, 1e-9);
}

TEST(Footprint, NoSharing)
{
    SyntheticWorkload w(0, 4);
    w.setup(Scale::Tiny, 1);
    FootprintReport rep = analyzeFootprint(w);
    EXPECT_DOUBLE_EQ(rep.parentChild, 0.0);
    EXPECT_DOUBLE_EQ(rep.childSibling, 0.0);
}

TEST(Footprint, CountsLaunchTree)
{
    SyntheticWorkload w(2, 2);
    w.setup(Scale::Tiny, 1);
    FootprintReport rep = analyzeFootprint(w);
    EXPECT_EQ(rep.hostTbs, 1u);
    EXPECT_EQ(rep.deviceLaunches, 2u);
}

TEST(Footprint, PaperShapeOnRealWorkloads)
{
    // The qualitative Figure 2 claims, checked at tiny scale:
    // join has the lowest child-sibling sharing of the suite.
    auto join = createWorkload("join-gaussian");
    join->setup(Scale::Tiny, 1);
    auto bfs = createWorkload("bfs-citation");
    bfs->setup(Scale::Tiny, 1);
    FootprintReport jr = analyzeFootprint(*join);
    FootprintReport br = analyzeFootprint(*bfs);
    EXPECT_LT(jr.childSiblingOwn, br.childSiblingOwn);
    EXPECT_GT(br.parentChild, 0.1);
}
