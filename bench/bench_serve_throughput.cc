/**
 * @file
 * Wall-clock self-benchmark of the serving subsystem: drives an
 * in-process SimService with tiny-scale requests and writes
 * BENCH_serve.json with
 *   - cold throughput (every request simulates),
 *   - cached throughput (every request is a cache hit),
 *   - the shed rate under deliberate overload (capacity 1, slow
 *     executions, a burst of distinct requests).
 *
 * Environment:
 *   LAPERM_BENCH_REQUESTS  requests per phase (default 32)
 *   LAPERM_JOBS            service worker threads (default 2)
 *
 * Exits nonzero if any served payload diverges from the direct run or
 * the overload burst fails to shed.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "serve/service/service.hh"
#include "serve/service/sim_request.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

SimRequest
tinyRequest(std::uint64_t seed)
{
    SimRequest req;
    req.workload = "bfs-cage";
    req.scale = Scale::Tiny;
    req.seed = seed;
    req.cfg = paperConfig();
    req.cfg.dynParModel = req.model;
    req.cfg.tbPolicy = req.policy;
    req.cfg.seed = seed;
    return req;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    setVerbose(false);

    std::uint64_t requests = 32;
    if (const char *env = std::getenv("LAPERM_BENCH_REQUESTS")) {
        long v = std::atol(env);
        if (v > 0)
            requests = static_cast<std::uint64_t>(v);
    }
    unsigned jobs = 2;
    if (const char *env = std::getenv("LAPERM_JOBS")) {
        long v = std::atol(env);
        if (v > 0)
            jobs = static_cast<unsigned>(v);
    }

    const std::string cacheDir = "bench_serve_cache.tmp";
    std::filesystem::remove_all(cacheDir);

    bool identical = true;

    // Phase 1+2: cold then cached, same service, same request set.
    double coldSec = 0.0;
    double cachedSec = 0.0;
    {
        ServiceOptions opts;
        opts.jobs = jobs;
        opts.cacheDir = cacheDir;
        opts.fingerprint = "bench";
        opts.queueCapacity = requests + 1;
        SimService svc(opts);

        auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < requests; ++i) {
            const SimRequest req = tinyRequest(i + 1);
            const RunOutcome out = svc.run(req);
            if (out.status != RunStatus::Ok || out.cached) {
                std::fprintf(stderr, "cold request %llu failed\n",
                             static_cast<unsigned long long>(i));
                identical = false;
            }
        }
        coldSec = secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < requests; ++i) {
            const SimRequest req = tinyRequest(i + 1);
            const RunOutcome out = svc.run(req);
            if (out.status != RunStatus::Ok || !out.cached) {
                std::fprintf(stderr, "cached request %llu missed\n",
                             static_cast<unsigned long long>(i));
                identical = false;
            }
        }
        cachedSec = secondsSince(t0);

        // Spot-check the determinism contract against a direct run.
        const SimRequest probe = tinyRequest(1);
        auto w = createWorkload(probe.workload);
        w->setup(probe.scale, probe.seed);
        const std::string direct =
            runOneRecord(*w, probe.cfg, std::string()).encode();
        const RunOutcome served = svc.run(probe);
        if (served.status != RunStatus::Ok || served.payload != direct) {
            std::fprintf(stderr,
                         "FAIL: served payload differs from direct\n");
            identical = false;
        }
    }

    // Phase 3: overload. One slow worker, capacity 1, concurrent burst
    // of distinct requests -> most must shed, none may crash or hang.
    std::uint64_t shedCount = 0;
    std::uint64_t okCount = 0;
    {
        ServiceOptions opts;
        opts.jobs = 1;
        opts.cacheDir = cacheDir + "/overload";
        opts.fingerprint = "bench";
        opts.queueCapacity = 1;
        opts.testExecDelayMs = 100;
        SimService svc(opts);

        std::vector<std::thread> burst;
        std::vector<RunStatus> status(requests, RunStatus::Error);
        for (std::uint64_t i = 0; i < requests; ++i) {
            burst.emplace_back([&, i] {
                status[i] = svc.run(tinyRequest(1000 + i)).status;
            });
        }
        for (auto &t : burst)
            t.join();
        for (const RunStatus s : status) {
            if (s == RunStatus::Shed)
                ++shedCount;
            else if (s == RunStatus::Ok)
                ++okCount;
        }
    }
    const double shedRate =
        static_cast<double>(shedCount) / static_cast<double>(requests);

    std::filesystem::remove_all(cacheDir);

    const double n = static_cast<double>(requests);
    std::ofstream json("BENCH_serve.json");
    json << "{\n"
         << "  \"bench\": \"serve_throughput\",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"seconds_cold\": " << coldSec << ",\n"
         << "  \"req_per_sec_cold\": " << n / coldSec << ",\n"
         << "  \"seconds_cached\": " << cachedSec << ",\n"
         << "  \"req_per_sec_cached\": " << n / cachedSec << ",\n"
         << "  \"cache_speedup\": " << coldSec / cachedSec << ",\n"
         << "  \"overload_ok\": " << okCount << ",\n"
         << "  \"overload_shed\": " << shedCount << ",\n"
         << "  \"shed_rate\": " << shedRate << ",\n"
         << "  \"payload_identical\": " << (identical ? "true" : "false")
         << "\n"
         << "}\n";
    json.close();

    std::printf("serve: %llu requests, %u jobs\n",
                static_cast<unsigned long long>(requests), jobs);
    std::printf("  cold  : %.3f s  (%.1f req/s)\n", coldSec, n / coldSec);
    std::printf("  cached: %.3f s  (%.1f req/s, %.1fx)\n", cachedSec,
                n / cachedSec, coldSec / cachedSec);
    std::printf("  overload: %llu ok, %llu shed (rate %.2f)\n",
                static_cast<unsigned long long>(okCount),
                static_cast<unsigned long long>(shedCount), shedRate);
    std::printf("  wrote BENCH_serve.json\n");

    if (!identical) {
        std::fprintf(stderr, "FAIL: determinism contract violated\n");
        return 1;
    }
    if (shedCount == 0 && requests > 2) {
        std::fprintf(stderr, "FAIL: overload burst never shed\n");
        return 1;
    }
    return 0;
}
