#include "workloads/amr.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/log.hh"
#include "common/rng.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

/** Subcells per refined patch edge (patch = kRefine^2 subcells). */
constexpr std::uint32_t kRefine = 16;
constexpr std::uint32_t kPatchThreads = 128;
constexpr std::uint32_t kPatchTbs =
    (kRefine * kRefine + kPatchThreads - 1) / kPatchThreads;

struct AmrData
{
    std::uint32_t w = 0, h = 0;
    std::vector<float> field;
    std::vector<std::uint32_t> patch1; ///< cell -> L1 patch id or ~0
    std::vector<std::uint32_t> patch1Cell; ///< L1 patch id -> cell
    std::vector<std::uint32_t> patch2; ///< L1 patch -> L2 patch or ~0
    std::uint32_t numPatch2 = 0;

    Addr fieldA = 0, errorA = 0;
    Addr params1A = 0, refined1A = 0;
    Addr params2A = 0, refined2A = 0;

    std::uint32_t flagFuncId = 0;
    std::uint32_t refine1FuncId = 0;
    std::uint32_t refine2FuncId = 0;

    Addr cellAddr(std::uint32_t idx) const { return fieldA + 4ull * idx; }
    Addr errAddr(std::uint32_t idx) const { return errorA + 4ull * idx; }
    Addr refined1Addr(std::uint32_t p, std::uint32_t sub) const
    {
        return refined1A + 4ull * (p * kRefine * kRefine + sub);
    }
    Addr refined2Addr(std::uint32_t p, std::uint32_t sub) const
    {
        return refined2A + 4ull * (p * kRefine * kRefine + sub);
    }
};

/** Level-2 refinement of one L1 patch: reads what its parent wrote. */
class AmrRefine2Program : public KernelProgram
{
  public:
    AmrRefine2Program(std::shared_ptr<const AmrData> d, std::uint32_t p1,
                      std::uint32_t p2)
        : d_(std::move(d)), p1_(p1), p2_(p2)
    {}

    std::string name() const override { return "amr_refine2"; }
    std::uint32_t functionId() const override
    {
        return d_->refine2FuncId;
    }
    std::uint32_t regsPerThread() const override { return 30; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const AmrData &d = *d_;
        std::uint32_t sub = ctx.globalThreadIndex();
        if (sub >= kRefine * kRefine)
            return;
        ctx.ld(d.params2A + 16ull * p2_, 16);
        // Read the L1 patch data the direct parent produced.
        ctx.ld(d.refined1Addr(p1_, sub), 4);
        ctx.ld(d.refined1Addr(p1_, (sub + 1) % (kRefine * kRefine)), 4);
        ctx.alu(12);
        ctx.st(d.refined2Addr(p2_, sub), 4);
    }

  private:
    std::shared_ptr<const AmrData> d_;
    std::uint32_t p1_, p2_;
};

/** Level-1 refinement of one coarse cell's neighborhood. */
class AmrRefine1Program : public KernelProgram
{
  public:
    AmrRefine1Program(std::shared_ptr<const AmrData> d, std::uint32_t cell,
                      std::uint32_t p1)
        : d_(std::move(d)), cell_(cell), p1_(p1)
    {}

    std::string name() const override { return "amr_refine1"; }
    std::uint32_t functionId() const override
    {
        return d_->refine1FuncId;
    }
    std::uint32_t regsPerThread() const override { return 30; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const AmrData &d = *d_;
        std::uint32_t sub = ctx.globalThreadIndex();
        if (sub >= kRefine * kRefine)
            return;
        ctx.ld(d.params1A + 16ull * p1_, 16);
        // Interpolate from the parent's coarse stencil block: the same
        // field lines the flagging kernel just read (parent-child
        // temporal locality).
        std::uint32_t x = cell_ % d.w, y = cell_ / d.w;
        std::uint32_t sx = sub % kRefine, sy = sub / kRefine;
        std::uint32_t cx = std::min(d.w - 1, x + (sx > kRefine / 2));
        std::uint32_t cy = std::min(d.h - 1, y + (sy > kRefine / 2));
        ctx.ld(d.cellAddr(cy * d.w + cx), 4);
        ctx.ld(d.cellAddr(y * d.w + x), 4);
        ctx.alu(10);
        ctx.st(d.refined1Addr(p1_, sub), 4);

        // Nested refinement: thread 0 flags and launches level 2.
        if (sub == 0 && d.patch2[p1_] != 0xFFFFFFFFu) {
            ctx.alu(8);
            ctx.st(d.params2A + 16ull * d.patch2[p1_], 16);
            ctx.launch({std::make_shared<AmrRefine2Program>(
                            d_, p1_, d.patch2[p1_]),
                        kPatchTbs, kPatchThreads});
        }
    }

  private:
    std::shared_ptr<const AmrData> d_;
    std::uint32_t cell_, p1_;
};

/** Error flagging over the coarse grid; hot cells spawn refinements. */
class AmrFlagProgram : public KernelProgram
{
  public:
    explicit AmrFlagProgram(std::shared_ptr<const AmrData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "amr_flag"; }
    std::uint32_t functionId() const override { return d_->flagFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const AmrData &d = *d_;
        std::uint32_t idx = ctx.globalThreadIndex();
        if (idx >= d.w * d.h)
            return;
        std::uint32_t x = idx % d.w, y = idx / d.w;
        // 5-point stencil over the coarse field.
        ctx.ld(d.cellAddr(idx), 4);
        if (x > 0)
            ctx.ld(d.cellAddr(idx - 1), 4);
        if (x + 1 < d.w)
            ctx.ld(d.cellAddr(idx + 1), 4);
        if (y > 0)
            ctx.ld(d.cellAddr(idx - d.w), 4);
        if (y + 1 < d.h)
            ctx.ld(d.cellAddr(idx + d.w), 4);
        ctx.alu(8);
        ctx.st(d.errAddr(idx), 4);

        std::uint32_t p1 = d.patch1[idx];
        if (p1 != 0xFFFFFFFFu) {
            ctx.st(d.params1A + 16ull * p1, 16);
            ctx.launch({std::make_shared<AmrRefine1Program>(d_, idx, p1),
                        kPatchTbs, kPatchThreads});
        }
    }

  private:
    std::shared_ptr<const AmrData> d_;
};

} // namespace

void
AmrWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto d = std::make_shared<AmrData>();
    switch (scale) {
      case Scale::Tiny:
        d->w = d->h = 48;
        break;
      case Scale::Small:
        d->w = d->h = 176;
        break;
      case Scale::Huge:
        d->w = d->h = 512;
        break;
      default:
        d->w = d->h = 352;
        break;
    }

    // Combustion-like field: a smooth background with Gaussian flame
    // kernels whose steep flanks trigger refinement.
    Rng rng(seed);
    const std::uint32_t cells = d->w * d->h;
    d->field.assign(cells, 0.0f);
    const std::size_t hotspots = 6 + rng.nextBounded(4);
    std::vector<double> hx(hotspots), hy(hotspots), hs(hotspots);
    for (std::size_t i = 0; i < hotspots; ++i) {
        hx[i] = rng.nextDouble() * d->w;
        hy[i] = rng.nextDouble() * d->h;
        hs[i] = d->w * (0.03 + 0.05 * rng.nextDouble());
    }
    for (std::uint32_t y = 0; y < d->h; ++y) {
        for (std::uint32_t x = 0; x < d->w; ++x) {
            double v = 0.0;
            for (std::size_t i = 0; i < hotspots; ++i) {
                double dx = x - hx[i], dy = y - hy[i];
                v += std::exp(-(dx * dx + dy * dy) / (2 * hs[i] * hs[i]));
            }
            d->field[y * d->w + x] = static_cast<float>(v);
        }
    }

    // Flag cells with a steep gradient (the flame front).
    d->patch1.assign(cells, 0xFFFFFFFFu);
    for (std::uint32_t y = 1; y + 1 < d->h; ++y) {
        for (std::uint32_t x = 1; x + 1 < d->w; ++x) {
            std::uint32_t idx = y * d->w + x;
            float gx = d->field[idx + 1] - d->field[idx - 1];
            float gy = d->field[idx + d->w] - d->field[idx - d->w];
            if (gx * gx + gy * gy > 0.02f) {
                d->patch1[idx] =
                    static_cast<std::uint32_t>(d->patch1Cell.size());
                d->patch1Cell.push_back(idx);
            }
        }
    }
    // The steepest third of the L1 patches refines again.
    std::uint32_t num_p1 =
        static_cast<std::uint32_t>(d->patch1Cell.size());
    d->patch2.assign(num_p1, 0xFFFFFFFFu);
    for (std::uint32_t p = 0; p < num_p1; ++p) {
        if (rng.nextDouble() < 0.33)
            d->patch2[p] = d->numPatch2++;
    }

    d->fieldA = mem_.allocArray(cells, 4, "field");
    d->errorA = mem_.allocArray(cells, 4, "error");
    d->params1A = mem_.allocArray(std::max(1u, num_p1), 16, "params1");
    d->refined1A = mem_.allocArray(
        std::max<std::size_t>(1, std::size_t(num_p1) * kRefine * kRefine),
        4, "refined1");
    d->params2A =
        mem_.allocArray(std::max(1u, d->numPatch2), 16, "params2");
    d->refined2A = mem_.allocArray(
        std::max<std::size_t>(1, std::size_t(d->numPatch2) * kRefine *
                                     kRefine),
        4, "refined2");
    d->flagFuncId = allocateFunctionId();
    d->refine1FuncId = allocateFunctionId();
    d->refine2FuncId = allocateFunctionId();

    std::uint32_t tbs = (cells + 127) / 128;
    waves_.clear();
    waves_.push_back({std::make_shared<AmrFlagProgram>(d), tbs, 128});
}

} // namespace laperm
