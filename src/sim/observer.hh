/**
 * @file
 * Observability *interface*: the flat, cycle-stamped records the
 * simulator emits plus the abstract observer types it emits them into
 * (DESIGN.md §8, §12). This header lives in sim/ — below every engine
 * module — so gpu/mem/sched/dynpar can publish events without
 * depending on the collector implementations in src/obs/. The include
 * direction is enforced by sim-lint's layering pass (layering.toml):
 * the engine may include sim/, obs/ may include sim/, but the engine
 * must never include obs/.
 *
 * The types keep the `obs` namespace: the namespace names the
 * observability *contract*, which spans this interface header and the
 * collectors that implement it.
 *
 * Every timestamp is a simulated cycle — observers never read
 * wall-clock time, so attaching one cannot perturb determinism.
 */

#ifndef LAPERM_SIM_OBSERVER_HH
#define LAPERM_SIM_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace laperm {
namespace obs {

/** A TB lifecycle event (dispatch or retire). */
struct TbEvent
{
    Cycle cycle = 0;          ///< when the event happened
    TbUid uid = 0;
    KernelId kernel = 0;
    std::uint32_t tbIndex = 0;
    SmxId smx = kNoSmx;
    std::uint32_t priority = 0;
    bool isDynamic = false;
    TbUid directParent = kNoTb;
    Cycle dispatchCycle = 0;  ///< == cycle for dispatches
    std::uint32_t tenant = 0; ///< owning tenant stream
};

/**
 * A kernel/TB-group launch event. Admission events are self-contained:
 * they carry the queue timestamp so launch-latency analysis (paper
 * Section IV-D) needs no cross-event matching.
 */
struct LaunchEvent
{
    Cycle cycle = 0;          ///< when queued / admitted
    KernelId kernel = 0;      ///< admitted kernel id (0 while queued)
    std::uint32_t priority = 0;
    TbUid parent = kNoTb;     ///< launching TB (kNoTb for host)
    std::uint32_t numTbs = 0;
    bool isDevice = false;
    bool coalesced = false;   ///< DTBL group merged onto a running kernel
    Cycle queuedAt = 0;       ///< when the launch op reached the KMU
    Cycle latencyReadyAt = 0; ///< queuedAt + modeled launch latency
    std::uint32_t tenant = 0; ///< owning tenant stream
};

/** An Adaptive-Bind stage-3 event (Figure 6). */
struct StealEvent
{
    Cycle cycle = 0;
    SmxId smx = kNoSmx;            ///< the idle SMX doing the stealing
    std::uint32_t cluster = 0;     ///< its own (empty) cluster
    std::uint32_t backupCluster = 0; ///< the cluster it drains
    bool adoption = false; ///< true: backup recorded; false: TB stolen
};

/**
 * Observer interface. All callbacks default to no-ops so observers
 * override only what they consume. Implementations must be pure
 * observation: no simulator state may depend on an observer's
 * behaviour, and all output must be a deterministic function of the
 * event stream (see DESIGN.md §8 determinism rules).
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    virtual void onTbDispatch(const TbEvent &) {}
    virtual void onTbRetire(const TbEvent &) {}
    virtual void onLaunchQueued(const LaunchEvent &) {}
    virtual void onLaunchAdmitted(const LaunchEvent &) {}
    virtual void onSteal(const StealEvent &) {}
};

/**
 * Fan-out point the simulator emits into. One hub per Gpu; any number
 * of observers. With no observers attached every emit is a single
 * empty-vector test, which keeps the tracing-disabled hot path free of
 * observable overhead.
 */
class ObserverHub
{
  public:
    void attach(SimObserver *observer) { observers_.push_back(observer); }

    bool enabled() const { return !observers_.empty(); }

    void tbDispatch(const TbEvent &e)
    {
        for (SimObserver *o : observers_)
            o->onTbDispatch(e);
    }
    void tbRetire(const TbEvent &e)
    {
        for (SimObserver *o : observers_)
            o->onTbRetire(e);
    }
    void launchQueued(const LaunchEvent &e)
    {
        for (SimObserver *o : observers_)
            o->onLaunchQueued(e);
    }
    void launchAdmitted(const LaunchEvent &e)
    {
        for (SimObserver *o : observers_)
            o->onLaunchAdmitted(e);
    }
    void steal(const StealEvent &e)
    {
        for (SimObserver *o : observers_)
            o->onSteal(e);
    }

  private:
    std::vector<SimObserver *> observers_;
};

/** Identity of the TB performing a memory access. */
struct MemAccessor
{
    TbUid uid = kNoTb;
    TbUid directParent = kNoTb;
    bool isDynamic = false;
};

/**
 * Interface the memory system publishes per-access observations
 * through (the locality-attribution hook, DESIGN.md §8.3). Like
 * SimObserver, implementations must be pure observation: the memory
 * system calls these *after* timing is decided, and detaching the
 * observer must never change any simulated result.
 */
class MemObserver
{
  public:
    virtual ~MemObserver() = default;

    /** An L1 access on instance @p l1_index resolved as hit/miss. */
    virtual void onL1Access(std::uint32_t l1_index, Addr line, bool hit,
                            const MemAccessor &who) = 0;

    /** An L2 access resolved as hit/miss. */
    virtual void onL2Access(Addr line, bool hit,
                            const MemAccessor &who) = 0;
};

} // namespace obs
} // namespace laperm

#endif // LAPERM_SIM_OBSERVER_HH
