# Empty dependencies file for laperm_gpu.
# This may be replaced when dependencies are built.
