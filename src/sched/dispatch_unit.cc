#include "sched/dispatch_unit.hh"

// DispatchUnit is a plain record; behaviour lives in the schedulers.
