# Empty compiler generated dependencies file for laperm_mem.
# This may be replaced when dependencies are built.
