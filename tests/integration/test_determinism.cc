/**
 * @file
 * Determinism and conservation properties across the whole stack:
 * identical configurations reproduce cycle-exact results; instruction
 * and TB counts are invariant under scheduling policy; clock-skipping
 * never changes what executes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

struct RunDigest
{
    Cycle cycles = 0;
    std::uint64_t threadInsts = 0;
    std::uint64_t tbs = 0;
    std::uint64_t launches = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;

    bool
    operator==(const RunDigest &o) const
    {
        return cycles == o.cycles && threadInsts == o.threadInsts &&
               tbs == o.tbs && launches == o.launches &&
               l1Accesses == o.l1Accesses && l2Accesses == o.l2Accesses;
    }
};

RunDigest
digest(const GpuConfig &cfg, const Workload &w)
{
    Gpu gpu(cfg);
    gpu.runWaves(w.waves());
    // stats() is non-const; Gpu is local so this is fine.
    const GpuStats &s = gpu.stats();
    RunDigest d;
    d.cycles = s.cycles;
    for (const auto &smx : s.smx) {
        d.threadInsts += smx.threadInstructions;
        d.tbs += smx.tbsExecuted;
    }
    d.launches = s.deviceLaunches;
    d.l1Accesses = s.l1Total().accesses;
    d.l2Accesses = s.l2.accesses;
    return d;
}

} // namespace

using Param = std::tuple<TbPolicy, DynParModel>;

class Determinism : public ::testing::TestWithParam<Param>
{
};

TEST_P(Determinism, CycleExactRepeatability)
{
    auto [policy, model] = GetParam();
    auto w = createWorkload("bfs-cage");
    w->setup(Scale::Tiny, 3);
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = policy;
    cfg.dynParModel = model;
    RunDigest a = digest(cfg, *w);
    RunDigest b = digest(cfg, *w);
    EXPECT_TRUE(a == b);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Determinism,
    ::testing::Combine(
        ::testing::Values(TbPolicy::RR, TbPolicy::TbPri, TbPolicy::SmxBind,
                          TbPolicy::AdaptiveBind),
        ::testing::Values(DynParModel::CDP, DynParModel::DTBL)),
    [](const ::testing::TestParamInfo<Param> &param_info) {
        std::string n =
            std::string(toString(std::get<0>(param_info.param))) + "_" +
            toString(std::get<1>(param_info.param));
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    });

TEST(Conservation, WorkIsPolicyInvariant)
{
    // Scheduling changes *when/where*, never *what*: thread
    // instructions, TBs, launches and L1 access counts must match
    // across all four policies (same model).
    auto w = createWorkload("clr-citation");
    w->setup(Scale::Tiny, 5);
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;

    cfg.tbPolicy = TbPolicy::RR;
    RunDigest base = digest(cfg, *w);
    for (TbPolicy p : {TbPolicy::TbPri, TbPolicy::SmxBind,
                       TbPolicy::AdaptiveBind}) {
        cfg.tbPolicy = p;
        RunDigest d = digest(cfg, *w);
        EXPECT_EQ(d.threadInsts, base.threadInsts) << toString(p);
        EXPECT_EQ(d.tbs, base.tbs) << toString(p);
        EXPECT_EQ(d.launches, base.launches) << toString(p);
        EXPECT_EQ(d.l1Accesses, base.l1Accesses) << toString(p);
    }
}

TEST(Conservation, WorkIsModelInvariant)
{
    // CDP and DTBL run the same program: identical instruction and
    // launch counts, different timing.
    auto w = createWorkload("sssp-cage");
    w->setup(Scale::Tiny, 5);
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = TbPolicy::RR;
    cfg.dynParModel = DynParModel::CDP;
    RunDigest cdp = digest(cfg, *w);
    cfg.dynParModel = DynParModel::DTBL;
    RunDigest dtbl = digest(cfg, *w);
    EXPECT_EQ(cdp.threadInsts, dtbl.threadInsts);
    EXPECT_EQ(cdp.tbs, dtbl.tbs);
    EXPECT_EQ(cdp.launches, dtbl.launches);
    EXPECT_NE(cdp.cycles, dtbl.cycles); // latency models differ
}

TEST(Conservation, SeedChangesInputsButNotInvariants)
{
    auto a = createWorkload("bfs-graph500");
    auto b = createWorkload("bfs-graph500");
    a->setup(Scale::Tiny, 1);
    b->setup(Scale::Tiny, 2);
    GpuConfig cfg = tinyConfig();
    RunDigest da = digest(cfg, *a);
    RunDigest db = digest(cfg, *b);
    // Different graphs, so different work...
    EXPECT_NE(da.threadInsts, db.threadInsts);
    // ...but both complete.
    EXPECT_GT(da.tbs, 0u);
    EXPECT_GT(db.tbs, 0u);
}
