/**
 * @file
 * Regular-expression matching workload (Table II: DARPA network
 * packets / random string collection).
 */

#ifndef LAPERM_WORKLOADS_REGX_HH
#define LAPERM_WORKLOADS_REGX_HH

#include "workloads/workload.hh"

namespace laperm {

/**
 * NFA-based packet payload scanning [32][33]: a prefilter kernel reads
 * packet headers and the payload head; matching packets spawn a child
 * launch that walks the payload against the shared transition table —
 * the hot table lines drive high child-sibling footprint reuse.
 *
 * Inputs: "darpa" (bimodal packet sizes, bursty match clusters) and
 * "strings" (uniform random strings, uniform match probability).
 */
class RegxWorkload : public WorkloadBase
{
  public:
    explicit RegxWorkload(std::string input) : input_(std::move(input)) {}

    std::string app() const override { return "regx"; }
    std::string input() const override { return input_; }
    void setup(Scale scale, std::uint64_t seed) override;

  private:
    std::string input_;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_REGX_HH
