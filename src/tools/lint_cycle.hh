/**
 * @file
 * sim-lint cycle-safety pass (DESIGN.md §12.3): LaPerm's determinism
 * story rests on simulated time being an integer (`Cycle`, a uint64)
 * end-to-end — the event queue, every readyAt/nextEventAt deadline,
 * and every latency sum. This pass tracks identifiers that denote
 * cycle quantities and flags the constructs that silently leave the
 * integer domain:
 *
 *  - cycle-float   float/double arithmetic, casts, or initialization
 *                  involving a cycle identifier (non-associative FP
 *                  rounding on timing is how byte-identity dies);
 *  - cycle-narrow  casts of a cycle identifier to a narrower integer
 *                  (uint32 wraps after ~4G cycles — long full-scale
 *                  runs exceed that);
 *  - cycle-sign    arithmetic/comparison mixing a cycle identifier
 *                  with an identifier declared as a *signed* integer
 *                  (usual-arithmetic-conversion wraparound on
 *                  subtraction).
 *
 * An identifier denotes a cycle quantity when it is declared with type
 * `Cycle` anywhere in the file, or matches the documented naming
 * convention for deadlines: exactly `cycle`/`cycles`/`now` (plus the
 * `_`-suffixed member forms), or ending in `Cycle`, `Cycles`, `At`,
 * or `At_` (readyAt, nextEventAt, l2BankFreeAt_, ...).
 *
 * Scope: restricted simulator directories only (sim, sched, mem, gpu,
 * dynpar, obs) — harness and bench code may average cycles into
 * doubles for reporting. End-of-run *reporting* inside the simulator
 * (IPC, utilization) is legal but must be justified with an
 * allow(cycle-float) waiver comment, which the suppression audit
 * keeps honest.
 */

#ifndef LAPERM_TOOLS_LINT_CYCLE_HH
#define LAPERM_TOOLS_LINT_CYCLE_HH

#include <string>
#include <vector>

#include "tools/sim_lint.hh"

namespace laperm {
namespace simlint {

/** True when @p name denotes a cycle quantity by naming convention. */
bool isCycleName(const std::string &name);

/**
 * Cycle-safety pass over one translation unit. Only fires inside
 * restricted directories (FileScope::restricted).
 */
std::vector<Finding> lintCycleSafety(const std::string &path,
                                     const std::string &content);

} // namespace simlint
} // namespace laperm

#endif // LAPERM_TOOLS_LINT_CYCLE_HH
