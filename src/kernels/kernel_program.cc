#include "kernels/kernel_program.hh"

#include <atomic>

namespace laperm {

std::uint32_t
allocateFunctionId()
{
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace laperm
