#include "sched/policies.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/observer.hh"

namespace laperm {

namespace {

std::uint32_t
clusterCapacity(const GpuConfig &cfg)
{
    if (cfg.dynParModel == DynParModel::DTBL)
        return cfg.onchipQueueEntries * cfg.smxPerCluster;
    // CDP: per-SMX on-chip queues are bounded by the KDU entry count
    // (Section IV-E), which the KDU already enforces globally, so no
    // additional overflow modeling applies here.
    return 0;
}

} // namespace

SmxBindScheduler::SmxBindScheduler(const GpuConfig &cfg,
                                   DispatchContext &ctx, bool adaptive)
    : TbScheduler(cfg, ctx), adaptive_(adaptive),
      hostQueue_(1, 0),
      backup_(cfg.numSmx / cfg.smxPerCluster, -1),
      rng_(cfg.seed ^ 0xB1D0F00Dull)
{
    const std::uint32_t clusters = cfg.numSmx / cfg.smxPerCluster;
    perCluster_.reserve(clusters);
    for (std::uint32_t c = 0; c < clusters; ++c)
        perCluster_.emplace_back(cfg.maxPriorityLevels + 1,
                                 clusterCapacity(cfg));
}

void
SmxBindScheduler::enqueue(DispatchUnit *unit, Cycle now)
{
    if (unit->priority == 0 || unit->boundSmx == kNoSmx) {
        hostQueue_.push(unit, ctx_.mutableStats());
        return;
    }
    laperm_assert(unit->boundSmx < cfg_.numSmx, "bad bound SMX");
    perCluster_[cluster(unit->boundSmx)].push(
        unit, ctx_.mutableStats(), now, cfg_.overflowFetchLatency);
}

bool
SmxBindScheduler::dispatchOne(Cycle now)
{
    // One SMX examined per cycle (Figure 6).
    const SmxId smx = cursor_;
    cursor_ = (cursor_ + 1) % cfg_.numSmx;
    const std::uint32_t c = cluster(smx);

    // Stage 1: highest-priority TB bound to this SMX's cluster.
    const DispatchGate *gate = ctx_.gate();
    bool blocked = false;
    if (DispatchUnit *unit = perCluster_[c].front(now, blocked, gate)) {
        if (!ctx_.fits(smx, *unit))
            return false; // the SMX is full; the TB stays bound
        ctx_.dispatchTb(*unit, smx, now);
        ++ctx_.mutableStats().boundDispatches;
        perCluster_[c].popIfExhausted(unit);
        return true;
    }

    // Stage 2: the shared level-0 queue of host-kernel TBs.
    bool host_blocked = false;
    if (DispatchUnit *unit = hostQueue_.front(now, host_blocked, gate)) {
        if (!ctx_.fits(smx, *unit))
            return false;
        ctx_.dispatchTb(*unit, smx, now);
        hostQueue_.popIfExhausted(unit);
        return true;
    }

    if (!adaptive_)
        return false; // SMX-Bind idles here (the imbalance of Fig. 4d)

    // Stage 3 (Adaptive-Bind): adopt a backup SMX's queues.
    const std::uint32_t clusters =
        static_cast<std::uint32_t>(perCluster_.size());
    int b = backup_[c];
    if (cfg_.backupPolicy == BackupPolicy::Random) {
        b = -1; // always re-pick (ablation variant)
    }
    if (b >= 0 && perCluster_[static_cast<std::size_t>(b)].empty())
        b = -1;
    if (b < 0) {
        if (cfg_.backupPolicy == BackupPolicy::Random) {
            std::vector<std::uint32_t> nonempty;
            for (std::uint32_t i = 0; i < clusters; ++i) {
                if (i != c && !perCluster_[i].empty())
                    nonempty.push_back(i);
            }
            if (!nonempty.empty())
                b = static_cast<int>(
                    nonempty[rng_.nextBounded(nonempty.size())]);
        } else {
            // Find and record the next non-empty cluster (Figure 6).
            for (std::uint32_t j = 1; j < clusters; ++j) {
                std::uint32_t cand = (c + j) % clusters;
                if (!perCluster_[cand].empty()) {
                    b = static_cast<int>(cand);
                    break;
                }
            }
        }
        if (b >= 0) {
            backup_[c] = b;
            ++ctx_.mutableStats().backupAdoptions;
            if (ctx_.observers().enabled()) {
                ctx_.observers().steal(
                    {now, smx, c, static_cast<std::uint32_t>(b), true});
            }
        }
    }
    if (b < 0)
        return false;

    const std::size_t bi = static_cast<std::size_t>(b);
    bool backup_blocked = false;
    DispatchUnit *unit = perCluster_[bi].front(now, backup_blocked, gate);
    if (!unit)
        return false;
    if (!ctx_.fits(smx, *unit))
        return false;
    ctx_.dispatchTb(*unit, smx, now);
    ++ctx_.mutableStats().unboundDispatches;
    if (ctx_.observers().enabled()) {
        ctx_.observers().steal(
            {now, smx, c, static_cast<std::uint32_t>(bi), false});
    }
    perCluster_[bi].popIfExhausted(unit);
    return true;
}

Cycle
SmxBindScheduler::nextReadyAt(Cycle now) const
{
    Cycle best = hostQueue_.nextReadyAt(now);
    for (const auto &q : perCluster_)
        best = std::min(best, q.nextReadyAt(now));
    return best;
}

} // namespace laperm
