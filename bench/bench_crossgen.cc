/**
 * @file
 * Cross-generation study (EXPERIMENTS.md): the full workload x model x
 * policy matrix on every hardware preset (sim/presets.hh), Kepler
 * K20c through Volta V100. The question the study answers: does
 * Adaptive-Bind's advantage over RR grow or shrink as the machine
 * gains SMXs and cache?
 *
 * Per preset and model the console table reports suite-average IPC
 * normalized to that preset's own RR baseline (the paper's Figure 9
 * treatment) plus the absolute L1/L2 hit-rate deltas RR ->
 * Adaptive-Bind. BENCH_crossgen.json captures the same cells for
 * tooling.
 *
 * Environment: LAPERM_SCALE (tiny|small|full, default small); argv[1]
 * overrides. Sweeps cache per (preset, scale, seed), so reruns are
 * free.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/presets.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

constexpr TbPolicy kPolicies[] = {TbPolicy::RR, TbPolicy::TbPri,
                                  TbPolicy::SmxBind,
                                  TbPolicy::AdaptiveBind};

/** Suite-average of per-workload IPC normalized to the RR cell. */
double
normIpc(const std::vector<RunResult> &results,
        const std::vector<std::string> &names, DynParModel model,
        TbPolicy policy)
{
    double sum = 0.0;
    std::uint32_t n = 0;
    for (const auto &name : names) {
        const double rr =
            findResult(results, name, model, TbPolicy::RR).ipc;
        if (rr > 0.0) {
            sum += findResult(results, name, model, policy).ipc / rr;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(true);
    const Scale scale = argc > 1 ? scaleFromString(argv[1])
                                 : scaleFromEnv(Scale::Small);
    const std::uint64_t seed = 1;
    const std::vector<std::string> names = workloadNames();

    struct PresetSweep
    {
        std::string name;
        std::vector<RunResult> results;
    };
    std::vector<PresetSweep> sweeps;
    for (const PresetInfo &p : presets())
        sweeps.push_back({p.name, runMatrixPreset(names, p.name, scale,
                                                  seed)});
    setVerbose(false);

    std::printf("\nCross-generation study (scale '%s', %zu workloads)\n",
                toString(scale), names.size());

    std::ofstream json("BENCH_crossgen.json");
    json << "{\n"
         << "  \"bench\": \"crossgen\",\n"
         << "  \"scale\": \"" << toString(scale) << "\",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"cells\": [\n";
    bool first = true;

    for (DynParModel model : {DynParModel::CDP, DynParModel::DTBL}) {
        std::printf("\n%s — suite-mean IPC normalized to each "
                    "preset's RR (dL1/dL2: absolute hit-rate delta "
                    "RR -> Adaptive-Bind):\n",
                    model == DynParModel::CDP ? "CDP" : "DTBL");
        Table t({"preset", "smx", "RR", "TB-Pri", "SMX-Bind",
                 "Adaptive-Bind", "dL1", "dL2"});
        for (const PresetSweep &s : sweeps) {
            const double rrL1 =
                meanOver(s.results, model, TbPolicy::RR,
                         &RunResult::l1HitRate);
            const double abL1 =
                meanOver(s.results, model, TbPolicy::AdaptiveBind,
                         &RunResult::l1HitRate);
            const double rrL2 =
                meanOver(s.results, model, TbPolicy::RR,
                         &RunResult::l2HitRate);
            const double abL2 =
                meanOver(s.results, model, TbPolicy::AdaptiveBind,
                         &RunResult::l2HitRate);
            std::vector<std::string> row = {
                s.name,
                std::to_string(presetConfig(s.name).numSmx)};
            for (TbPolicy p : kPolicies) {
                const double norm = normIpc(s.results, names, model, p);
                row.push_back(fmtF(norm));
                if (!first)
                    json << ",\n";
                first = false;
                json << "    {\"preset\": \"" << s.name
                     << "\", \"model\": \""
                     << (model == DynParModel::CDP ? "cdp" : "dtbl")
                     << "\", \"policy\": \"" << toString(p)
                     << "\", \"norm_ipc\": " << norm
                     << ", \"mean_ipc\": "
                     << meanOver(s.results, model, p, &RunResult::ipc)
                     << ", \"mean_l1\": "
                     << meanOver(s.results, model, p,
                                 &RunResult::l1HitRate)
                     << ", \"mean_l2\": "
                     << meanOver(s.results, model, p,
                                 &RunResult::l2HitRate)
                     << "}";
            }
            row.push_back(fmtF(abL1 - rrL1));
            row.push_back(fmtF(abL2 - rrL2));
            t.addRow(std::move(row));
        }
        t.print();
    }

    json << "\n  ]\n}\n";
    json.close();
    std::printf("\nwrote BENCH_crossgen.json\n");
    return 0;
}
