/**
 * @file
 * Minimal aligned-column table printer for the bench binaries.
 */

#ifndef LAPERM_HARNESS_TABLE_HH
#define LAPERM_HARNESS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace laperm {

/** Collects rows of strings and prints them as an aligned table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Append a separator line. */
    void addRule();

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; ///< empty row = rule
};

/** Format helpers. */
std::string fmtPct(double fraction, int decimals = 1);
std::string fmtF(double value, int decimals = 2);
std::string fmtU(std::uint64_t value);

} // namespace laperm

#endif // LAPERM_HARNESS_TABLE_HH
