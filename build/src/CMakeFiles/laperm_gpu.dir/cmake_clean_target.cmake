file(REMOVE_RECURSE
  "liblaperm_gpu.a"
)
