#!/usr/bin/env bash
# Differential tick-mode gate (DESIGN.md §11): the event-driven core
# must be an observably invisible optimization of the dense reference
# loop. Runs the shipped CLI in both --tick-mode settings over a
# launch-heavy and a stall-heavy workload, with the full observability
# surface enabled, and byte-compares every artifact. Any divergence —
# a single cycle count, trace event, or histogram bucket — fails.
#
# Usage: scripts/tick_diff.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SIM="$BUILD/src/laperm_sim"
if [ ! -x "$SIM" ]; then
    echo "tick_diff.sh: $SIM not built" >&2
    exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
export LAPERM_NO_CACHE=1
unset LAPERM_TICK_MODE

run_mode() { # mode -> writes $TMP/<mode>/
    local mode="$1" out="$TMP/$1"
    mkdir -p "$out"
    # Launch-heavy CDP workload with every observability artifact on.
    "$SIM" --workload bfs-citation --scale tiny --policy adaptive \
        --tick-mode "$mode" --csv \
        --trace "$out/dispatch.csv" \
        --trace-json "$out/trace.json" \
        --trace-intervals "$out/intervals.tsv" \
        --latency-hist "$out/latency.tsv" \
        --locality "$out/locality.tsv" >"$out/bfs.csv"
    # Stall-heavy workload where the event loop skips almost every
    # cycle — the path most likely to drift from the dense loop.
    "$SIM" --workload chase-ring --scale tiny --tick-mode "$mode" \
        --csv >"$out/chase.csv"
}

run_mode dense
run_mode event

fail=0
for f in bfs.csv chase.csv dispatch.csv trace.json intervals.tsv \
    latency.tsv locality.tsv; do
    if ! cmp -s "$TMP/dense/$f" "$TMP/event/$f"; then
        echo "tick_diff.sh: $f diverges between tick modes" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1

echo "tick_diff.sh: all artifacts byte-identical across tick modes"
