/**
 * @file
 * Config subsystem tests (DESIGN.md §13): TOML-subset parsing with
 * strict rejection, canonical emission/round-tripping, machine
 * hashing, and the preset registry's k20c byte-identity invariant.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/config.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"

using namespace laperm;

TEST(ConfigLoaderTest, EveryFieldRoundTripsThroughEmitAndParse)
{
    // A deliberately non-default machine touching every value kind.
    GpuConfig a;
    a.numSmx = 80;
    a.maxTbsPerSmx = 32;
    a.l1Size = 96 * 1024;
    a.l2ServiceInterval = 7;
    a.warpPolicy = WarpPolicy::TbAware;
    a.backupPolicy = BackupPolicy::Random;
    a.tbThrottleEnabled = true;
    a.throttleHighMiss = 0.95;
    a.throttleLowMiss = 1.0 / 3.0; // needs full-precision emission

    const std::string toml = emitMachineToml(a);
    GpuConfig b;
    std::string err;
    ASSERT_TRUE(parseMachineToml(toml, b, err)) << err;
    EXPECT_EQ(canonicalMachine(a), canonicalMachine(b));
    EXPECT_EQ(machineHash(a), machineHash(b));
    // emit(parse(emit(x))) is a byte-identity.
    EXPECT_EQ(emitMachineToml(b), toml);
}

TEST(ConfigLoaderTest, PartialTomlOnlyChangesMentionedKeys)
{
    GpuConfig cfg = presetConfig("v100");
    std::string err;
    ASSERT_TRUE(parseMachineToml("num_smx = 40\n", cfg, err)) << err;
    EXPECT_EQ(cfg.numSmx, 40u);
    // Everything else is still the preset, not the default.
    EXPECT_EQ(cfg.l2Size, 6144u * 1024u);
    EXPECT_EQ(cfg.kduEntries, 128u);
}

TEST(ConfigLoaderTest, ParserAcceptsCommentsSectionAndQuotes)
{
    GpuConfig cfg;
    std::string err;
    const std::string text = "# a machine\n"
                             "[machine]\n"
                             "  num_smx = 20   # inline comment\n"
                             "warp_sched = \"lrr\"\n"
                             "\n"
                             "tb_throttle = true\n";
    ASSERT_TRUE(parseMachineToml(text, cfg, err)) << err;
    EXPECT_EQ(cfg.numSmx, 20u);
    EXPECT_EQ(cfg.warpPolicy, WarpPolicy::LRR);
    EXPECT_TRUE(cfg.tbThrottleEnabled);
}

TEST(ConfigLoaderTest, ParserRejectsBadInputAndLeavesConfigUntouched)
{
    const struct
    {
        const char *text;
        const char *why;
    } kBad[] = {
        {"nonsense_key = 1\n", "unknown key"},
        {"num_smx = 1\nnum_smx = 2\n", "duplicate key"},
        {"num_smx = 4294967296\n", "u32 overflow"},
        {"num_smx = 12x\n", "trailing junk"},
        {"num_smx = -3\n", "negative"},
        {"warp_sched = greedy\n", "bad enum"},
        {"tb_throttle = yes\n", "bad bool"},
        {"throttle_high_miss = nanana\n", "bad double"},
        {"num_smx 13\n", "missing equals"},
        {"[device]\n", "unknown section"},
        {"warp_sched = \"gto\n", "unterminated string"},
        {"9lives = 1\n", "malformed key"},
    };
    for (const auto &bad : kBad) {
        GpuConfig cfg;
        cfg.numSmx = 99; // sentinel: must survive a failed parse
        std::string err;
        EXPECT_FALSE(parseMachineToml(bad.text, cfg, err)) << bad.why;
        EXPECT_FALSE(err.empty()) << bad.why;
        EXPECT_EQ(cfg.numSmx, 99u) << bad.why;
    }
}

TEST(ConfigLoaderTest, ErrorsCarryLineNumbers)
{
    GpuConfig cfg;
    std::string err;
    ASSERT_FALSE(parseMachineToml("num_smx = 13\nbogus = 1\n", cfg, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(ConfigLoaderTest, SetMachineFieldChecksAndSets)
{
    GpuConfig cfg;
    std::string err;
    EXPECT_TRUE(setMachineField(cfg, "l2_banks", "12", err)) << err;
    EXPECT_EQ(cfg.l2Banks, 12u);
    EXPECT_FALSE(setMachineField(cfg, "l2_banks", "lots", err));
    EXPECT_FALSE(setMachineField(cfg, "no_such_key", "1", err));
    EXPECT_EQ(machineFieldValue(cfg, "l2_banks"), "12");
    EXPECT_EQ(machineFieldValue(cfg, "no_such_key"), "");
}

TEST(ConfigLoaderTest, CanonicalizationIsSpellingInvariant)
{
    // Same machine, three spellings: preset, emitted TOML, terse TOML.
    const GpuConfig via_preset = presetConfig("p100");
    GpuConfig via_toml;
    std::string err;
    ASSERT_TRUE(
        parseMachineToml(emitMachineToml(via_preset), via_toml, err))
        << err;
    GpuConfig via_terse;
    ASSERT_TRUE(parseMachineToml("num_smx=56\nmax_tbs_per_smx=32\n"
                                 "smem_per_smx=65536\nl1_size=24576\n"
                                 "l2_size=4194304\nl2_banks=16\n"
                                 "dram_channels=32\n"
                                 "dram_service_interval=59\n"
                                 "kdu_entries=128\n",
                                 via_terse, err))
        << err;
    EXPECT_EQ(machineHash(via_preset), machineHash(via_toml));
    EXPECT_EQ(machineHash(via_preset), machineHash(via_terse));
    EXPECT_EQ(machineHash(via_preset).size(), 32u); // 128-bit hex
}

TEST(ConfigLoaderTest, RunLevelKnobsStayOutOfTheMachineHash)
{
    GpuConfig a;
    GpuConfig b;
    b.dynParModel = DynParModel::CDP;
    b.tbPolicy = TbPolicy::AdaptiveBind;
    b.seed = 999;
    b.tickMode = TickMode::Dense;
    EXPECT_EQ(machineHash(a), machineHash(b));
}

TEST(PresetsTest, K20cIsByteIdenticalToTheDefaultConfig)
{
    // The paper's Table I machine must never drift from the defaults.
    EXPECT_EQ(machineHash(presetConfig("k20c")), defaultMachineHash());
    EXPECT_EQ(canonicalMachine(presetConfig("k20c")),
              canonicalMachine(GpuConfig()));
}

TEST(PresetsTest, EveryPresetIsValidAndDistinct)
{
    const auto all = presets();
    ASSERT_EQ(all.size(), 4u);
    std::string prev_hash;
    for (const auto &p : all) {
        GpuConfig cfg;
        ASSERT_TRUE(findPreset(p.name, cfg)) << p.name;
        EXPECT_EQ(cfg.check(), "") << p.name;
        const std::string h = machineHash(cfg);
        EXPECT_NE(h, prev_hash) << p.name;
        prev_hash = h;
    }
    GpuConfig cfg;
    EXPECT_FALSE(findPreset("k40", cfg));
    EXPECT_NE(presetNameList().find("v100"), std::string::npos);
}

TEST(PresetsTest, GenerationsScaleMonotonically)
{
    // The cross-generation study leans on these axes actually growing.
    const GpuConfig k20c = presetConfig("k20c");
    const GpuConfig gtx1080 = presetConfig("gtx1080");
    const GpuConfig p100 = presetConfig("p100");
    const GpuConfig v100 = presetConfig("v100");
    EXPECT_LT(k20c.numSmx, gtx1080.numSmx);
    EXPECT_LT(gtx1080.numSmx, p100.numSmx);
    EXPECT_LT(p100.numSmx, v100.numSmx);
    EXPECT_LT(k20c.l2Size, gtx1080.l2Size);
    EXPECT_LT(gtx1080.l2Size, p100.l2Size);
    EXPECT_LT(p100.l2Size, v100.l2Size);
    // Latency model is deliberately held at the K20c values.
    EXPECT_EQ(k20c.l1HitLatency, v100.l1HitLatency);
    EXPECT_EQ(k20c.dramLatency, v100.dramLatency);
}

TEST(ConfigLoaderTest, MachineFieldListIsCompleteAndDocumented)
{
    const auto fields = machineFields();
    EXPECT_GE(fields.size(), 35u);
    const GpuConfig cfg;
    for (const auto &f : fields) {
        EXPECT_NE(std::string(f.doc), "") << f.key;
        // Every registered key has a canonical value spelling that the
        // checked setter accepts back (identity on defaults).
        const std::string v = machineFieldValue(cfg, f.key);
        EXPECT_NE(v, "") << f.key;
        GpuConfig copy = cfg;
        std::string err;
        EXPECT_TRUE(setMachineField(copy, f.key, v, err))
            << f.key << ": " << err;
        EXPECT_EQ(machineHash(copy), defaultMachineHash()) << f.key;
    }
}
