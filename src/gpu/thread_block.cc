#include "gpu/thread_block.hh"

#include "common/log.hh"
#include "kernels/thread_ctx.hh"
#include "kernels/warp_trace.hh"

namespace laperm {

std::unique_ptr<ThreadBlock>
buildThreadBlock(const KernelProgram &program, std::uint32_t tb_index,
                 std::uint32_t threads_per_tb, std::uint32_t num_tbs)
{
    laperm_assert(threads_per_tb > 0, "empty TB");

    auto tb = std::make_unique<ThreadBlock>();
    tb->tbIndex = tb_index;
    tb->numThreads = threads_per_tb;
    tb->regs = program.regsPerThread() * threads_per_tb;
    tb->smem = program.smemPerTb();

    std::vector<ThreadCtx> threads;
    threads.reserve(threads_per_tb);
    for (std::uint32_t t = 0; t < threads_per_tb; ++t) {
        threads.emplace_back(tb_index, t, threads_per_tb, num_tbs);
        program.emitThread(threads.back());
    }

    const std::uint32_t num_warps =
        (threads_per_tb + kWarpSize - 1) / kWarpSize;
    tb->warps.resize(num_warps);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        std::uint32_t first = w * kWarpSize;
        std::uint32_t count =
            std::min(kWarpSize, threads_per_tb - first);
        Warp &warp = tb->warps[w];
        warp.ops = buildWarpOps(threads, first, count);
        warp.numThreads = count;
        warp.tb = tb.get();
    }
    return tb;
}

} // namespace laperm
