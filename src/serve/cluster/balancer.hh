/**
 * @file
 * Cluster front end (DESIGN.md §15.4): a LineHandler that routes
 * protocol frames to worker daemons instead of answering locally.
 *
 * Routing contract: `run` requests canonicalize to a 128-bit content
 * key (serve/service sim_request) and the consistent-hash ring maps
 * each key to exactly one worker, so the worker's single-flight map
 * holds cluster-wide and its cache tiers stay key-partitioned. `stats`
 * fans out and aggregates; `shutdown` fans out then stops the local
 * session; `ping` proxies to worker 0 (all workers share one binary,
 * hence one fingerprint).
 *
 * Forwarding is byte-transparent: the original request line travels to
 * the worker verbatim and the worker's response line comes back
 * verbatim, so a served result is byte-identical whether the client
 * spoke to a worker directly or through the balancer.
 *
 * A worker that cannot be reached (crashed and not yet respawned by
 * the supervisor) degrades to a structured `overloaded` response after
 * the per-call reconnect budget — shedding composes across layers:
 * workers shed on admission, the balancer sheds on worker loss.
 */

#ifndef LAPERM_SERVE_CLUSTER_BALANCER_HH
#define LAPERM_SERVE_CLUSTER_BALANCER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cluster/hash_ring.hh"
#include "serve/session/handler.hh"
#include "serve/transport/transport.hh"

namespace laperm {
namespace serve {

struct BalancerOptions
{
    std::vector<Endpoint> workers;
    /**
     * Per-call (re)connect attempts x backoff. The default rides out a
     * worker respawn: the supervisor's poll interval plus exec time is
     * well under 40 x 50 ms.
     */
    unsigned connectRetries = 40;
    std::uint64_t backoffMs = 50;
};

class BalancerHandler : public LineHandler
{
  public:
    explicit BalancerHandler(BalancerOptions opts);
    ~BalancerHandler() override;

    std::string handleLine(const std::string &line) override;

    std::size_t workerCount() const { return workers_.size(); }

  private:
    struct Worker
    {
        Endpoint endpoint;
        std::mutex mu; ///< serializes request/response on the link
        std::unique_ptr<Connection> conn;
    };

    /**
     * Send @p line to worker @p idx and read one response line,
     * (re)connecting with the options' retry budget. False when the
     * worker stays unreachable.
     */
    bool callWorker(std::size_t idx, const std::string &line,
                    std::string &response);

    std::string handleRun(const std::string &line,
                          const std::string &key);
    std::string handleStats();
    std::string handleShutdown();

    BalancerOptions opts_;
    std::vector<std::unique_ptr<Worker>> workers_;
    HashRing ring_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_CLUSTER_BALANCER_HH
