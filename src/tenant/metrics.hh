/**
 * @file
 * Multi-tenant fairness and tail-latency metrics (DESIGN.md §14).
 *
 * The raw material is integer simulated cycles collected per tenant by
 * the manager: job turnaround times (job completion - job arrival) and
 * wave-completion latencies (wave drain - wave launch). The shared run
 * is compared against per-tenant solo baselines (same stream run alone
 * on the same device) to produce:
 *
 *  - ANTT  — average normalized turnaround time: per tenant the mean
 *    over jobs of TT_shared / TT_solo, 1.0 when sharing costs nothing
 *    (Eyerman & Eeckhout throughput/turnaround methodology).
 *  - STP   — system throughput: sum over tenants of
 *    (total TT_solo / total TT_shared), N when sharing is free.
 *  - Jain  — Jain fairness index over per-tenant retired-TB progress,
 *    1.0 when every tenant made identical progress.
 *  - p50/p95/p99 — nearest-rank percentiles of per-tenant wave
 *    completion latency, in simulated cycles.
 *
 * All accumulation is integer; doubles appear only in the final ratio
 * computations, never in cycle arithmetic.
 */

#ifndef LAPERM_TENANT_METRICS_HH
#define LAPERM_TENANT_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace laperm {
namespace tenant {

/** What one tenant stream measured during one run (shared or solo). */
struct TenantRunResult
{
    std::string name;
    std::uint32_t tenant = 0;
    /** Per-job turnaround: completion - arrival, simulated cycles. */
    std::vector<Cycle> jobTurnarounds;
    /** Per-wave completion latency: drain - launch, simulated cycles. */
    std::vector<Cycle> waveLatencies;
    /** Retired-TB progress over the run (the Jain input). */
    std::uint64_t retiredTbs = 0;
    std::uint64_t dispatchedTbs = 0;
    std::uint64_t kernelsAdmitted = 0;
};

/** One full run of a mix: every tenant plus the makespan. */
struct MultiTenantResult
{
    std::vector<TenantRunResult> perTenant;
    /** Cycle the last tenant drained. */
    Cycle makespan = 0;
};

/** Finalized per-tenant metrics. */
struct TenantMetrics
{
    std::string name;
    std::uint32_t tenant = 0;
    /** Mean over jobs of TT_shared / TT_solo (1.0 when run solo). */
    double antt = 0.0;
    Cycle p50 = 0; ///< median wave-completion latency
    Cycle p95 = 0;
    Cycle p99 = 0;
    std::uint64_t retiredTbs = 0;
    std::uint32_t jobs = 0;
};

/** Finalized mix-level metrics. */
struct MixMetrics
{
    std::vector<TenantMetrics> perTenant;
    /** Mean of the per-tenant ANTT values (lower is better, >= ~1). */
    double antt = 0.0;
    /** System throughput, sum of per-tenant solo/shared speedups. */
    double stp = 0.0;
    /** Jain fairness over per-tenant retired-TB progress. */
    double jain = 0.0;
    Cycle makespan = 0;
};

/**
 * Nearest-rank percentile: element ceil(p/100 * N) - 1 of the sorted
 * copy of @p samples. Pure integer selection — no interpolation, so
 * the result is always an observed latency. Returns 0 on empty input.
 */
Cycle percentileNearestRank(std::vector<Cycle> samples,
                            std::uint32_t pct);

/**
 * Jain fairness index (sum x)^2 / (n * sum x^2) over @p progress.
 * Exactly 1.0 for identical nonzero entries; 0 for empty/all-zero.
 */
double jainIndex(const std::vector<std::uint64_t> &progress);

/**
 * Fold a shared run and its per-tenant solo baselines into MixMetrics.
 * @p solo holds one entry per tenant, index-aligned with
 * @p shared.perTenant; each must have the same jobTurnarounds count as
 * its shared counterpart (the streams are deterministic, so solo and
 * shared runs always complete the same jobs).
 */
MixMetrics computeMixMetrics(const MultiTenantResult &shared,
                             const std::vector<TenantRunResult> &solo);

} // namespace tenant
} // namespace laperm

#endif // LAPERM_TENANT_METRICS_HH
