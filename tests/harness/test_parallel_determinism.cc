/**
 * @file
 * The parallel sweep executor's determinism contract: for a given
 * (names, scale, seed), runMatrix returns the identical RunResult
 * vector — every metric bit-exact, same ordering — and writes a
 * byte-identical TSV cache no matter how many worker threads ran it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"

using namespace laperm;

namespace {

const std::vector<std::string> kNames = {"bfs-cage", "join-uniform"};

void
expectIdentical(const std::vector<RunResult> &a,
                const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].model, b[i].model);
        EXPECT_EQ(a[i].policy, b[i].policy);
        // Exact equality on purpose: each cell is an independent,
        // fully deterministic simulation, so threading must not
        // perturb a single bit.
        EXPECT_EQ(a[i].ipc, b[i].ipc);
        EXPECT_EQ(a[i].l1HitRate, b[i].l1HitRate);
        EXPECT_EQ(a[i].l2HitRate, b[i].l2HitRate);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].smxUtilization, b[i].smxUtilization);
        EXPECT_EQ(a[i].smxImbalance, b[i].smxImbalance);
        EXPECT_EQ(a[i].boundFraction, b[i].boundFraction);
        EXPECT_EQ(a[i].queueOverflows, b[i].queueOverflows);
        EXPECT_EQ(a[i].kduFullStalls, b[i].kduFullStalls);
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(ParallelSweep, ResultsIdenticalAcrossJobCounts)
{
    auto serial = runMatrix(kNames, Scale::Tiny, 7, false, 1);
    ASSERT_EQ(serial.size(), kNames.size() * 8); // 2 models x 4 policies
    auto parallel = runMatrix(kNames, Scale::Tiny, 7, false, 8);
    expectIdentical(serial, parallel);
}

TEST(ParallelSweep, CellOrderIsWorkloadModelPolicyMajor)
{
    auto results = runMatrix(kNames, Scale::Tiny, 7, false, 8);
    ASSERT_EQ(results.size(), 16u);
    // Workload-major, then model, then policy — the serial loop order.
    EXPECT_EQ(results[0].workload, "bfs-cage");
    EXPECT_EQ(results[0].model, DynParModel::CDP);
    EXPECT_EQ(results[0].policy, TbPolicy::RR);
    EXPECT_EQ(results[3].policy, TbPolicy::AdaptiveBind);
    EXPECT_EQ(results[4].model, DynParModel::DTBL);
    EXPECT_EQ(results[8].workload, "join-uniform");
    EXPECT_EQ(results[8].model, DynParModel::CDP);
    EXPECT_EQ(results[8].policy, TbPolicy::RR);
}

TEST(ParallelSweep, TsvCacheByteIdenticalAcrossJobCounts)
{
    setenv("LAPERM_NO_CACHE", "0", 1);
    const std::string path = sweepCachePath(Scale::Tiny, 7);
    std::remove(path.c_str());

    runMatrix(kNames, Scale::Tiny, 7, true, 1);
    const std::string serialBytes = slurp(path);
    ASSERT_FALSE(serialBytes.empty());
    std::remove(path.c_str());

    runMatrix(kNames, Scale::Tiny, 7, true, 8);
    const std::string parallelBytes = slurp(path);
    std::remove(path.c_str());

    EXPECT_EQ(serialBytes, parallelBytes);
}

TEST(ParallelSweep, CacheReloadMatchesFreshRun)
{
    setenv("LAPERM_NO_CACHE", "0", 1);
    const std::string path = sweepCachePath(Scale::Tiny, 11);
    std::remove(path.c_str());
    auto fresh = runMatrix({"bfs-cage"}, Scale::Tiny, 11, true, 4);
    auto cached = runMatrix({"bfs-cage"}, Scale::Tiny, 11, true, 4);
    std::remove(path.c_str());
    ASSERT_EQ(fresh.size(), cached.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].workload, cached[i].workload);
        EXPECT_NEAR(fresh[i].ipc, cached[i].ipc, 1e-3);
        EXPECT_NEAR(fresh[i].cycles, cached[i].cycles, 1.0);
    }
}
