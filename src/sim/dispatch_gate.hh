/**
 * @file
 * Tenant-level dispatch gating interface. The multi-tenant preemption
 * machinery (src/tenant/) yields a low-priority tenant's pending TBs at
 * TB boundaries by gating its dispatch units; the TB schedulers consult
 * the gate and skip gated units exactly as they skip not-yet-ready
 * ones. The header lives in sim/ — below sched/ — so schedulers can
 * consume the interface without the engine ever including tenant/ (the
 * same inversion as sim/observer.hh, enforced by layering.toml).
 *
 * With no gate installed (the single-tenant case) every scheduler path
 * is byte-identical to the ungated code: the nullptr check is the only
 * added work.
 */

#ifndef LAPERM_SIM_DISPATCH_GATE_HH
#define LAPERM_SIM_DISPATCH_GATE_HH

#include <cstdint>

namespace laperm {

/**
 * Decides, per tenant, whether TB dispatch is currently yielded.
 * Implementations must be deterministic functions of simulated state:
 * the gate is consulted on the dispatch hot path and any wall-clock or
 * RNG dependence would break byte-identical replay. The gate only ever
 * changes between scheduler visits (the TenantManager flips it between
 * run slices and then calls Gpu::noteDispatchGateChanged), never inside
 * one.
 */
class DispatchGate
{
  public:
    virtual ~DispatchGate() = default;

    /** True when @p tenant's pending TBs must not be dispatched now. */
    virtual bool blocked(std::uint32_t tenant) const = 0;
};

} // namespace laperm

#endif // LAPERM_SIM_DISPATCH_GATE_HH
