/**
 * @file
 * Cluster worker supervisor (DESIGN.md §15.4): forks N single-process
 * daemons (fork + exec of this binary, never fork-and-run — the parent
 * is multi-threaded by the time workers spawn) on derived endpoints,
 * respawns any that die, and reaps them all at shutdown.
 *
 * Endpoint derivation from the public endpoint:
 *   unix:PATH        -> unix:PATH.w<i>
 *   tcp:HOST:PORT    -> tcp:127.0.0.1:<PORT+1+i>   (loopback only —
 *                       workers are an implementation detail, not a
 *                       public surface)
 *
 * Lifecycle lines ("laperm_served worker <i> pid <pid> listening on
 * <endpoint>") go to stdout on every spawn and respawn; the cluster
 * smoke test uses them to kill a worker and await its replacement.
 */

#ifndef LAPERM_SERVE_CLUSTER_SUPERVISOR_HH
#define LAPERM_SERVE_CLUSTER_SUPERVISOR_HH

#include <string>
#include <sys/types.h>
#include <vector>

#include "serve/transport/endpoint.hh"

namespace laperm {
namespace serve {

struct SupervisorOptions
{
    Endpoint publicEndpoint; ///< what the balancer listens on
    unsigned workers = 2;
    /**
     * Executable to spawn (normally /proc/self/exe resolved by the
     * caller) and the flags every worker shares (--jobs, --cache-dir,
     * ...). The supervisor appends `--listen <derived endpoint>`.
     */
    std::string exePath;
    std::vector<std::string> workerArgs;
};

class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions opts);

    /** Derived worker endpoints, index-aligned with worker ids. */
    const std::vector<Endpoint> &workerEndpoints() const
    {
        return endpoints_;
    }

    /** Spawn every worker. False with @p err set if a fork/exec fails. */
    bool startAll(std::string &err);

    /**
     * Reap exited workers (waitpid WNOHANG) and respawn them. Called
     * from the daemon's poll loop; stops being called once shutdown
     * begins, so workers that exit on a fanned-out `shutdown` verb are
     * not resurrected.
     */
    void pollRespawn();

    /** SIGTERM every live worker and wait for all of them. */
    void stopAll();

  private:
    bool spawn(std::size_t idx, std::string &err);

    SupervisorOptions opts_;
    std::vector<Endpoint> endpoints_;
    std::vector<pid_t> pids_; ///< -1 = not running
};

/**
 * Derive worker @p idx's endpoint from the public one (see file
 * comment). Exposed for the cluster bench and tests.
 */
Endpoint workerEndpoint(const Endpoint &publicEndpoint, std::size_t idx);

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_CLUSTER_SUPERVISOR_HH
