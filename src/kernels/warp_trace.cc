#include "kernels/warp_trace.hh"

#include <algorithm>
#include <array>

#include "common/log.hh"

namespace laperm {

void
buildWarpOpsInto(std::vector<WarpOp> &out,
                 const std::vector<ThreadCtx> &threads,
                 std::uint32_t first_thread, std::uint32_t count)
{
    laperm_assert(count > 0 && count <= kWarpSize,
                  "warp with %u threads", count);
    laperm_assert(first_thread + count <= threads.size(),
                  "warp range out of bounds");

    // Worst case (full serialization) emits one warp op per thread op;
    // reserving it makes the build realloc-free. The resize(used) at
    // the end keeps the capacity for the next build into this vector.
    std::size_t bound = 0;
    for (std::uint32_t l = 0; l < count; ++l)
        bound += threads[first_thread + l].ops().size();
    out.reserve(bound);

    std::array<std::uint32_t, kWarpSize> pc{};
    std::size_t used = 0;

    auto remaining = [&](std::uint32_t lane) {
        return pc[lane] < threads[first_thread + lane].ops().size();
    };
    auto cur = [&](std::uint32_t lane) -> const ThreadOp & {
        return threads[first_thread + lane].ops()[pc[lane]];
    };

    for (;;) {
        // Find the leader: the first lane with ops left that is not
        // waiting at a barrier. A barrier only issues when every live
        // lane has reached it (reconvergence), so a TB-wide barrier is
        // counted exactly once per warp.
        std::uint32_t leader = count;
        std::uint32_t first_live = count;
        for (std::uint32_t l = 0; l < count; ++l) {
            if (!remaining(l))
                continue;
            if (first_live == count)
                first_live = l;
            if (cur(l).kind != OpKind::Bar) {
                leader = l;
                break;
            }
        }
        if (first_live == count)
            break;
        if (leader == count)
            leader = first_live; // all live lanes at the barrier

        if (used == out.size())
            out.emplace_back();
        WarpOp &op = out[used++];
        const OpKind kind = cur(leader).kind;
        op.kind = kind;
        op.activeLanes = 0;
        op.aluCycles = 0;
        op.lines.clear();
        op.launches.clear();

        for (std::uint32_t l = leader; l < count; ++l) {
            if (!remaining(l) || cur(l).kind != kind)
                continue;
            const ThreadOp &top = cur(l);
            ++op.activeLanes;
            switch (kind) {
              case OpKind::Alu:
                op.aluCycles = std::max(op.aluCycles, top.aluCycles);
                break;
              case OpKind::Load:
              case OpKind::Store:
                op.lines.push_back(top.addr);
                break;
              case OpKind::Launch:
                op.launches.push_back(
                    threads[first_thread + l].launches()[top.launchIx]);
                break;
              case OpKind::Bar:
                break;
            }
            ++pc[l];
        }

        if (kind == OpKind::Load || kind == OpKind::Store) {
            std::sort(op.lines.begin(), op.lines.end());
            op.lines.erase(std::unique(op.lines.begin(), op.lines.end()),
                           op.lines.end());
        }
    }
    out.resize(used);
}

std::vector<WarpOp>
buildWarpOps(const std::vector<ThreadCtx> &threads,
             std::uint32_t first_thread, std::uint32_t count)
{
    std::vector<WarpOp> out;
    buildWarpOpsInto(out, threads, first_thread, count);
    return out;
}

} // namespace laperm
