/**
 * @file
 * Runtime state of a thread block resident on an SMX, and construction
 * of its warps from a kernel program.
 */

#ifndef LAPERM_GPU_THREAD_BLOCK_HH
#define LAPERM_GPU_THREAD_BLOCK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "gpu/warp.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

struct KernelInstance;

/** A resident thread block. */
class ThreadBlock
{
  public:
    TbUid uid = 0;
    KernelInstance *kernel = nullptr;
    /** blockIdx within its launch (CDP grid / DTBL group / host grid). */
    std::uint32_t tbIndex = 0;
    SmxId smx = kNoSmx;
    Cycle dispatchCycle = 0;

    /** Scheduling priority inherited from the dispatch unit. */
    std::uint32_t priority = 0;
    /** Direct parent TB (kNoTb for host-launched kernels). */
    TbUid directParent = kNoTb;
    /** True for dynamically launched (child) TBs. */
    bool isDynamic = false;
    /** Owning tenant stream, inherited from the dispatch unit. */
    std::uint32_t tenant = 0;

    std::uint32_t numThreads = 0;
    std::uint32_t regs = 0; ///< registers reserved on the SMX
    std::uint32_t smem = 0; ///< shared memory reserved on the SMX

    std::vector<Warp> warps;
    std::uint32_t warpsAtBarrier = 0;
    std::uint32_t warpsDone = 0;

    bool allWarpsDone() const { return warpsDone == warps.size(); }
};

/**
 * Instantiate a TB: emit per-thread traces from @p program and build the
 * warp instruction streams.
 *
 * @param tb_index blockIdx within the launch.
 * @param num_tbs gridDim of the launch.
 */
std::unique_ptr<ThreadBlock> buildThreadBlock(
    const KernelProgram &program, std::uint32_t tb_index,
    std::uint32_t threads_per_tb, std::uint32_t num_tbs);

/**
 * As buildThreadBlock, but (re)builds into @p tb — typically a recycled
 * block from an SMX arena — reusing its warps' op buffers and the
 * caller-provided @p thread_scratch contexts. Every ThreadBlock and
 * Warp field is reinitialized, so a recycled block is indistinguishable
 * from a freshly allocated one.
 */
void buildThreadBlockInto(ThreadBlock &tb, const KernelProgram &program,
                          std::uint32_t tb_index,
                          std::uint32_t threads_per_tb,
                          std::uint32_t num_tbs,
                          std::vector<ThreadCtx> &thread_scratch);

} // namespace laperm

#endif // LAPERM_GPU_THREAD_BLOCK_HH
