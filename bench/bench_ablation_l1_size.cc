/**
 * @file
 * Ablation: L1 cache size sensitivity (Section IV-F notes the small
 * 48KB-max L1 may not hold the reusable parent/child data; larger L1s
 * amplify what SMX binding can capture).
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"bfs-citation", "bht-points"};
    const std::uint32_t sizes[] = {16, 32, 48, 64};

    std::printf("Ablation: L1 size under RR vs LaPerm "
                "(DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "L1 KB", "RR L1 hit", "LaPerm L1 hit",
             "RR IPC", "LaPerm IPC"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (std::uint32_t kb : sizes) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.l1Size = kb * 1024;
            cfg.tbPolicy = TbPolicy::RR;
            RunResult rr = runOne(*w, cfg);
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            RunResult lp = runOne(*w, cfg);
            t.addRow({name, fmtU(kb), fmtPct(rr.l1HitRate),
                      fmtPct(lp.l1HitRate), fmtF(rr.ipc),
                      fmtF(lp.ipc)});
        }
        t.addRule();
    }
    t.print();
    return 0;
}
