#include "harness/result_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "sim/config_loader.hh"

#include "sim_fingerprint.hh"

namespace laperm {

namespace {

constexpr const char kHeaderPrefix[] = "# laperm-cache fingerprint=";

} // namespace

std::string
simFingerprint()
{
    const char *env = std::getenv("LAPERM_SIM_FINGERPRINT");
    if (env && *env)
        return env;
    return LAPERM_SIM_FINGERPRINT;
}

std::string
cacheRootDir()
{
    const char *dir = std::getenv("LAPERM_CACHE_DIR");
    return dir && *dir ? dir : "cache";
}

ResultRecord
ResultRecord::fromStats(const std::string &workload, DynParModel model,
                        TbPolicy policy, const GpuStats &stats,
                        const std::string &config_hash)
{
    ResultRecord r;
    r.workload = workload;
    r.config = config_hash;
    r.model = model;
    r.policy = policy;
    r.cycles = stats.cycles;
    r.launches = stats.deviceLaunches;
    r.dynamicTbs = stats.dynamicTbs;
    r.bound = stats.boundDispatches;
    r.overflows = stats.queueOverflows;
    r.kduStalls = stats.kduFullStalls;
    r.ipc = stats.ipc();
    r.l1 = stats.l1Total().hitRate();
    r.l2 = stats.l2.hitRate();
    r.util = stats.avgSmxUtilization();
    r.imbalance = stats.smxImbalance();
    return r;
}

std::string
ResultRecord::encode() const
{
    const std::string &cfg =
        config.empty() ? defaultMachineHash() : config;
    return logFormat(
        "v1 workload=%s config=%s model=%d policy=%d cycles=%llu "
        "launches=%llu "
        "dynamicTbs=%llu bound=%llu overflows=%llu kduStalls=%llu "
        "ipc=%.17g l1=%.17g l2=%.17g util=%.17g imbalance=%.17g",
        workload.c_str(), cfg.c_str(), static_cast<int>(model),
        static_cast<int>(policy),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(launches),
        static_cast<unsigned long long>(dynamicTbs),
        static_cast<unsigned long long>(bound),
        static_cast<unsigned long long>(overflows),
        static_cast<unsigned long long>(kduStalls), ipc, l1, l2, util,
        imbalance);
}

bool
ResultRecord::decode(const std::string &line, ResultRecord &out)
{
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok != "v1")
        return false;

    ResultRecord r;
    // Bitmask of the 15 required fields, in encode() order.
    unsigned seen = 0;
    auto mark = [&seen](unsigned bit) { seen |= 1u << bit; };

    while (ls >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string k = tok.substr(0, eq);
        const std::string v = tok.substr(eq + 1);
        char *end = nullptr;
        if (k == "workload") {
            r.workload = v;
            mark(0);
            continue;
        }
        if (k == "config") {
            r.config = v;
            mark(14);
            continue;
        }
        if (k == "model") {
            r.model = static_cast<DynParModel>(
                std::strtol(v.c_str(), &end, 10));
            mark(1);
        } else if (k == "policy") {
            r.policy =
                static_cast<TbPolicy>(std::strtol(v.c_str(), &end, 10));
            mark(2);
        } else if (k == "cycles") {
            r.cycles = std::strtoull(v.c_str(), &end, 10);
            mark(3);
        } else if (k == "launches") {
            r.launches = std::strtoull(v.c_str(), &end, 10);
            mark(4);
        } else if (k == "dynamicTbs") {
            r.dynamicTbs = std::strtoull(v.c_str(), &end, 10);
            mark(5);
        } else if (k == "bound") {
            r.bound = std::strtoull(v.c_str(), &end, 10);
            mark(6);
        } else if (k == "overflows") {
            r.overflows = std::strtoull(v.c_str(), &end, 10);
            mark(7);
        } else if (k == "kduStalls") {
            r.kduStalls = std::strtoull(v.c_str(), &end, 10);
            mark(8);
        } else if (k == "ipc") {
            r.ipc = std::strtod(v.c_str(), &end);
            mark(9);
        } else if (k == "l1") {
            r.l1 = std::strtod(v.c_str(), &end);
            mark(10);
        } else if (k == "l2") {
            r.l2 = std::strtod(v.c_str(), &end);
            mark(11);
        } else if (k == "util") {
            r.util = std::strtod(v.c_str(), &end);
            mark(12);
        } else if (k == "imbalance") {
            r.imbalance = std::strtod(v.c_str(), &end);
            mark(13);
        } else {
            return false; // unknown field: format drift, reject
        }
        if (end == v.c_str() || *end != '\0')
            return false;
    }
    if (seen != (1u << 15) - 1)
        return false;
    out = std::move(r);
    return true;
}

std::string
ResultRecord::csvRow() const
{
    return logFormat(
        "%s,%s,%s,%llu,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%llu,%llu,%llu",
        workload.c_str(), toString(model), toString(policy),
        static_cast<unsigned long long>(cycles), ipc, l1, l2, util,
        imbalance, static_cast<unsigned long long>(launches),
        static_cast<unsigned long long>(dynamicTbs),
        static_cast<unsigned long long>(bound),
        static_cast<unsigned long long>(overflows));
}

std::string
ResultRecord::csvRowWithConfig() const
{
    const std::string &cfg =
        config.empty() ? defaultMachineHash() : config;
    return csvRow() + "," + cfg;
}

bool
ResultRecord::customMachine() const
{
    return !config.empty() && config != defaultMachineHash();
}

RunResult
ResultRecord::toRunResult() const
{
    RunResult r;
    r.workload = workload;
    r.model = model;
    r.policy = policy;
    r.ipc = ipc;
    r.l1HitRate = l1;
    r.l2HitRate = l2;
    r.cycles = static_cast<double>(cycles);
    r.smxUtilization = util;
    r.smxImbalance = imbalance;
    r.boundFraction = dynamicTbs ? static_cast<double>(bound) /
                                       static_cast<double>(dynamicTbs)
                                 : 0.0;
    r.queueOverflows = static_cast<double>(overflows);
    r.kduFullStalls = static_cast<double>(kduStalls);
    return r;
}

const char *
statsCsvHeader()
{
    return "workload,model,policy,cycles,ipc,l1,l2,util,"
           "imbalance,launches,dynamicTbs,bound,overflows";
}

const char *
statsCsvHeaderWithConfig()
{
    return "workload,model,policy,cycles,ipc,l1,l2,util,"
           "imbalance,launches,dynamicTbs,bound,overflows,config";
}

std::string
encodeSweepTsv(const std::vector<RunResult> &rows)
{
    // The preset column only appears when some row actually needs it,
    // so an all-default sweep stays byte-identical to older releases
    // (and to the caches those releases wrote).
    bool extended = false;
    for (const auto &r : rows)
        extended = extended || r.preset != "k20c";

    std::ostringstream out;
    out << (extended ? "# preset workload" : "# workload")
        << " model policy ipc l1 l2 cycles util imbalance "
           "bound overflows kduStalls\n";
    for (const auto &r : rows) {
        if (extended)
            out << r.preset << ' ';
        out << r.workload << ' ' << static_cast<int>(r.model) << ' '
            << static_cast<int>(r.policy) << ' ' << r.ipc << ' '
            << r.l1HitRate << ' ' << r.l2HitRate << ' ' << r.cycles
            << ' ' << r.smxUtilization << ' ' << r.smxImbalance << ' '
            << r.boundFraction << ' ' << r.queueOverflows << ' '
            << r.kduFullStalls << '\n';
    }
    return out.str();
}

bool
decodeSweepTsv(const std::string &tsv, std::vector<RunResult> &out)
{
    std::istringstream in(tsv);
    std::vector<RunResult> rows;
    std::string line;
    bool extended = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') {
            if (line.rfind("# preset ", 0) == 0)
                extended = true;
            continue;
        }
        std::istringstream ls(line);
        RunResult r;
        int mi, pi;
        if (extended && !(ls >> r.preset))
            return false;
        if (!(ls >> r.workload >> mi >> pi >> r.ipc >> r.l1HitRate >>
              r.l2HitRate >> r.cycles >> r.smxUtilization >>
              r.smxImbalance >> r.boundFraction >> r.queueOverflows >>
              r.kduFullStalls)) {
            return false;
        }
        r.model = static_cast<DynParModel>(mi);
        r.policy = static_cast<TbPolicy>(pi);
        rows.push_back(std::move(r));
    }
    out = std::move(rows);
    return true;
}

ResultCache::ResultCache(std::string dir, std::string fingerprint)
    : dir_(dir.empty() ? cacheRootDir() : std::move(dir)),
      fingerprint_(fingerprint.empty() ? simFingerprint()
                                       : std::move(fingerprint))
{
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dir_ + "/results/" + key + ".rec";
}

bool
ResultCache::load(const std::string &key, std::string &payload) const
{
    return loadFile(entryPath(key), payload);
}

bool
ResultCache::store(const std::string &key, const std::string &payload) const
{
    return storeFile(entryPath(key), payload);
}

bool
ResultCache::loadFile(const std::string &path, std::string &payload) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;
    if (header.rfind(kHeaderPrefix, 0) != 0)
        return false;
    if (header.substr(sizeof(kHeaderPrefix) - 1) != fingerprint_)
        return false; // written by a different simulator: stale
    std::ostringstream body;
    body << in.rdbuf();
    payload = body.str();
    return true;
}

bool
ResultCache::storeFile(const std::string &path,
                       const std::string &payload) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path p(path);
    if (p.has_parent_path())
        fs::create_directories(p.parent_path(), ec);
    // Write-then-rename so a concurrent reader (another bench process
    // sharing the sweep cache) never sees a truncated file. The temp
    // name carries the pid: cluster workers share one cache directory,
    // and two processes storing the same key must not interleave
    // writes into one temp file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << kHeaderPrefix << fingerprint_ << '\n' << payload;
        if (!out.good())
            return false;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

TieredResultCache::TieredResultCache(std::string dir,
                                     std::string fingerprint)
    : disk_(std::move(dir), std::move(fingerprint))
{
}

TieredResultCache::Tier
TieredResultCache::probe(const std::string &key, std::string &payload)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = mem_.find(key);
        if (it != mem_.end()) {
            payload = it->second;
            return Tier::Memory;
        }
    }
    if (!disk_.load(key, payload))
        return Tier::Miss;
    // Promote: the next probe of this key is a memory hit, and the
    // Shared tier is only ever credited once per key per incarnation.
    std::lock_guard<std::mutex> lock(mu_);
    mem_.emplace(key, payload);
    return Tier::Shared;
}

bool
TieredResultCache::store(const std::string &key,
                         const std::string &payload)
{
    const bool ok = disk_.store(key, payload);
    std::lock_guard<std::mutex> lock(mu_);
    mem_[key] = payload;
    return ok;
}

void
TieredResultCache::dropMemory()
{
    std::lock_guard<std::mutex> lock(mu_);
    mem_.clear();
}

std::size_t
TieredResultCache::memorySize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mem_.size();
}

} // namespace laperm
