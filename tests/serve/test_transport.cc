/**
 * @file
 * Transport-layer tests (DESIGN.md §15.1): endpoint parsing, UDS and
 * TCP round trips through listenOn/connectTo, framing across partial
 * reads, ephemeral-port reporting, stale-socket recovery, and the
 * wake() contract the session layer's shutdown path relies on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/transport/transport.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

std::string
sockPath(const std::string &name)
{
    const std::string p = ::testing::TempDir() + "laperm_tx_" + name;
    std::filesystem::remove(p);
    return p;
}

/** One echo exchange over an established listener/client pair. */
void
expectEcho(Listener &listener, const Endpoint &ep)
{
    std::thread serverSide([&] {
        auto conn = listener.accept();
        ASSERT_NE(conn, nullptr);
        std::string line;
        ASSERT_TRUE(conn->readLine(line));
        ASSERT_TRUE(conn->writeAll("echo:" + line + "\n"));
    });
    std::string err;
    auto client = connectTo(ep, err);
    ASSERT_NE(client, nullptr) << err;
    ASSERT_TRUE(client->writeAll("hello\n"));
    std::string reply;
    ASSERT_TRUE(client->readLine(reply));
    EXPECT_EQ(reply, "echo:hello");
    serverSide.join();
}

} // namespace

// ---------------------------------------------------------- endpoints

TEST(Endpoint, ParsesSchemesAndBarePaths)
{
    Endpoint ep;
    std::string err;

    ASSERT_TRUE(parseEndpoint("unix:/tmp/x.sock", ep, err)) << err;
    EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(ep.path, "/tmp/x.sock");
    EXPECT_EQ(ep.toString(), "unix:/tmp/x.sock");

    ASSERT_TRUE(parseEndpoint("tcp:127.0.0.1:9000", ep, err)) << err;
    EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 9000);
    EXPECT_EQ(ep.toString(), "tcp:127.0.0.1:9000");

    // A bare string keeps the pre-cluster --socket semantics.
    ASSERT_TRUE(parseEndpoint("laperm_served.sock", ep, err)) << err;
    EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(ep.path, "laperm_served.sock");

    EXPECT_EQ(ep, Endpoint::unixAt("laperm_served.sock"));
    EXPECT_EQ(Endpoint::tcpAt("localhost", 80).toString(),
              "tcp:localhost:80");
}

TEST(Endpoint, RejectsMalformedSpellings)
{
    Endpoint ep;
    std::string err;
    for (const char *bad :
         {"", "unix:", "tcp:", "tcp:127.0.0.1", "tcp::9000",
          "tcp:127.0.0.1:", "tcp:127.0.0.1:notaport",
          "tcp:127.0.0.1:70000", "tcp:127.0.0.1:-1"}) {
        err.clear();
        EXPECT_FALSE(parseEndpoint(bad, ep, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

// ----------------------------------------------------------- streams

TEST(Transport, UnixRoundTrip)
{
    const Endpoint ep = Endpoint::unixAt(sockPath("uds_rt.sock"));
    std::string err;
    auto listener = listenOn(ep, 4, err);
    ASSERT_NE(listener, nullptr) << err;
    EXPECT_EQ(listener->boundEndpoint(), ep);
    expectEcho(*listener, ep);
}

TEST(Transport, TcpRoundTripOnEphemeralPort)
{
    // Port 0: the kernel picks; boundEndpoint() must report the real
    // port so clients can be pointed at it.
    std::string err;
    auto listener = listenOn(Endpoint::tcpAt("127.0.0.1", 0), 4, err);
    ASSERT_NE(listener, nullptr) << err;
    const Endpoint bound = listener->boundEndpoint();
    EXPECT_EQ(bound.kind, Endpoint::Kind::Tcp);
    EXPECT_GT(bound.port, 0);
    expectEcho(*listener, bound);
}

TEST(Transport, FramingSurvivesCoalescedAndSplitWrites)
{
    const Endpoint ep = Endpoint::unixAt(sockPath("framing.sock"));
    std::string err;
    auto listener = listenOn(ep, 4, err);
    ASSERT_NE(listener, nullptr) << err;

    std::thread serverSide([&] {
        auto conn = listener->accept();
        ASSERT_NE(conn, nullptr);
        // Two frames in one write, then one frame in two writes.
        ASSERT_TRUE(conn->writeAll("first\nsecond\n"));
        ASSERT_TRUE(conn->writeAll("thi"));
        ASSERT_TRUE(conn->writeAll("rd\n"));
    });
    auto client = connectTo(ep, err);
    ASSERT_NE(client, nullptr) << err;
    std::string line;
    ASSERT_TRUE(client->readLine(line));
    EXPECT_EQ(line, "first");
    ASSERT_TRUE(client->readLine(line));
    EXPECT_EQ(line, "second");
    ASSERT_TRUE(client->readLine(line));
    EXPECT_EQ(line, "third");
    // EOF with no buffered frame: readLine reports failure.
    serverSide.join();
    EXPECT_FALSE(client->readLine(line));
}

TEST(Transport, StaleUnixSocketFileIsRecovered)
{
    const Endpoint ep = Endpoint::unixAt(sockPath("stale.sock"));
    std::string err;
    {
        auto first = listenOn(ep, 4, err);
        ASSERT_NE(first, nullptr) << err;
        // While the listener is live, a second bind must be refused.
        auto second = listenOn(ep, 4, err);
        EXPECT_EQ(second, nullptr);
        EXPECT_FALSE(err.empty());
    }
    // Simulate a crashed daemon: a socket file with no listener behind
    // it (raw bind, fd closed without unlink). listenOn must detect
    // that nobody answers, unlink, and rebind.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      ep.path.c_str());
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // file stays behind, nothing accepts on it
    }
    ASSERT_TRUE(std::filesystem::exists(ep.path));
    {
        auto reborn = listenOn(ep, 4, err);
        EXPECT_NE(reborn, nullptr) << err;
    }
    // ...and the destructor cleaned the path up again.
    EXPECT_FALSE(std::filesystem::exists(ep.path));
}

TEST(Transport, TcpRebindsImmediatelyAfterRestart)
{
    // SO_REUSEADDR: a restarted daemon re-binds the same port without
    // waiting out TIME_WAIT from the previous incarnation's sockets.
    std::string err;
    auto first = listenOn(Endpoint::tcpAt("127.0.0.1", 0), 4, err);
    ASSERT_NE(first, nullptr) << err;
    const Endpoint bound = first->boundEndpoint();

    std::thread serverSide([&] {
        auto conn = first->accept();
        ASSERT_NE(conn, nullptr);
        std::string line;
        conn->readLine(line); // wait for client close
    });
    {
        auto client = connectTo(bound, err);
        ASSERT_NE(client, nullptr) << err;
    }
    serverSide.join();
    first.reset();

    auto second = listenOn(bound, 4, err);
    EXPECT_NE(second, nullptr) << err;
}

TEST(Transport, WakeUnblocksAPendingAccept)
{
    const Endpoint ep = Endpoint::unixAt(sockPath("wake.sock"));
    std::string err;
    auto listener = listenOn(ep, 4, err);
    ASSERT_NE(listener, nullptr) << err;

    std::thread accepting([&] {
        EXPECT_EQ(listener->accept(), nullptr);
        // wake() is permanent: later accepts fail too, so a shutdown
        // race (wake before the loop re-enters accept) cannot hang.
        EXPECT_EQ(listener->accept(), nullptr);
    });
    listener->wake();
    accepting.join();
}
