#include "workloads/join.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/log.hh"
#include "common/rng.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

constexpr std::uint32_t kJoinThreads = 128;
constexpr std::uint32_t kBucketSpawn = 24; ///< S tuples above -> child
constexpr std::uint32_t kProbeCap = 16;    ///< R tuples probed per S

struct JoinData
{
    std::uint32_t numR = 0, numS = 0, buckets = 0;
    std::vector<std::uint32_t> bucketOfR, bucketOfS;
    std::vector<std::uint32_t> rStart, sStart; ///< CSR over buckets
    std::vector<std::uint32_t> rSorted, sSorted;

    Addr rKeysA = 0, sKeysA = 0;
    Addr rPartA = 0, sPartA = 0; ///< partitioned tuple arrays
    Addr headersA = 0, paramsA = 0, outA = 0;
    std::uint32_t partRFuncId = 0, partSFuncId = 0, probeFuncId = 0,
                  matchFuncId = 0;

    std::uint32_t rCount(std::uint32_t b) const
    {
        return rStart[b + 1] - rStart[b];
    }
    std::uint32_t sCount(std::uint32_t b) const
    {
        return sStart[b + 1] - sStart[b];
    }
};

/** Child: match one bucket's S tuples against its R tuples. */
class JoinMatchProgram : public KernelProgram
{
  public:
    JoinMatchProgram(std::shared_ptr<const JoinData> d, std::uint32_t b)
        : d_(std::move(d)), b_(b)
    {}

    std::string name() const override { return "join_match"; }
    std::uint32_t functionId() const override { return d_->matchFuncId; }
    std::uint32_t regsPerThread() const override { return 32; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const JoinData &d = *d_;
        std::uint32_t s_count = d.sCount(b_);
        std::uint32_t r_count = std::min(d.rCount(b_), kProbeCap);
        std::uint32_t stride = ctx.numTbs() * ctx.threadsPerTb();
        ctx.ld(d.paramsA + 16ull * b_, 16);
        ctx.ld(d.headersA + 16ull * b_, 16);
        for (std::uint32_t s = ctx.globalThreadIndex(); s < s_count;
             s += stride) {
            // The partitioned tuples this child reads were written by
            // the partition waves (parent-side data generation).
            ctx.ld(d.sPartA + 8ull * (d.sStart[b_] + s), 8);
            for (std::uint32_t r = 0; r < r_count; ++r)
                ctx.ld(d.rPartA + 8ull * (d.rStart[b_] + r), 8);
            ctx.alu(4 + r_count);
            ctx.st(d.outA + 8ull * ((d.sStart[b_] + s) %
                                    (d.numS ? d.numS : 1)),
                   8);
        }
    }

  private:
    std::shared_ptr<const JoinData> d_;
    std::uint32_t b_;
};

/** Probe wave: one thread per bucket decides inline vs. child. */
class JoinProbeProgram : public KernelProgram
{
  public:
    explicit JoinProbeProgram(std::shared_ptr<const JoinData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "join_probe"; }
    std::uint32_t functionId() const override { return d_->probeFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const JoinData &d = *d_;
        std::uint32_t b = ctx.globalThreadIndex();
        if (b >= d.buckets)
            return;
        ctx.ld(d.headersA + 16ull * b, 16);
        ctx.alu(4);
        std::uint32_t s_count = d.sCount(b);
        if (s_count == 0)
            return;
        if (s_count > kBucketSpawn) {
            ctx.st(d.paramsA + 16ull * b, 16);
            std::uint32_t tbs = std::min(
                8u, (s_count + kJoinThreads - 1) / kJoinThreads);
            ctx.launch({std::make_shared<JoinMatchProgram>(d_, b), tbs,
                        kJoinThreads});
        } else {
            std::uint32_t r_count = std::min(d.rCount(b), 4u);
            for (std::uint32_t s = 0; s < std::min(s_count, 8u); ++s) {
                ctx.ld(d.sPartA + 8ull * (d.sStart[b] + s), 8);
                for (std::uint32_t r = 0; r < r_count; ++r)
                    ctx.ld(d.rPartA + 8ull * (d.rStart[b] + r), 8);
                ctx.alu(4);
            }
            ctx.st(d.outA + 8ull * (d.sStart[b] % (d.numS ? d.numS : 1)),
                   8);
        }
    }

  private:
    std::shared_ptr<const JoinData> d_;
};

/** Partition wave: scatter a relation's tuples into buckets. */
class JoinPartitionProgram : public KernelProgram
{
  public:
    JoinPartitionProgram(std::shared_ptr<const JoinData> d, bool is_r)
        : d_(std::move(d)), isR_(is_r)
    {}

    std::string name() const override
    {
        return isR_ ? "join_partition_r" : "join_partition_s";
    }
    std::uint32_t functionId() const override
    {
        return isR_ ? d_->partRFuncId : d_->partSFuncId;
    }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const JoinData &d = *d_;
        std::uint32_t t = ctx.globalThreadIndex();
        std::uint32_t n = isR_ ? d.numR : d.numS;
        if (t >= n)
            return;
        ctx.ld((isR_ ? d.rKeysA : d.sKeysA) + 8ull * t, 8);
        ctx.alu(4); // hash
        // Scatter into the partitioned array and bump the header.
        std::uint32_t b = isR_ ? d.bucketOfR[t] : d.bucketOfS[t];
        ctx.st(d.headersA + 16ull * b, 4);
        if (isR_) {
            std::uint32_t pos = d.rStart[b] + (t % d.rCount(b));
            ctx.st(d.rPartA + 8ull * pos, 8);
        } else {
            std::uint32_t pos = d.sStart[b] + (t % d.sCount(b));
            ctx.st(d.sPartA + 8ull * pos, 8);
        }
    }

  private:
    std::shared_ptr<const JoinData> d_;
    bool isR_;
};

/** CSR over buckets for one relation. */
void
buildBucketCsr(const std::vector<std::uint32_t> &bucket_of,
               std::uint32_t buckets, std::vector<std::uint32_t> &start,
               std::vector<std::uint32_t> &sorted)
{
    start.assign(buckets + 1, 0);
    for (std::uint32_t b : bucket_of)
        ++start[b + 1];
    for (std::uint32_t b = 0; b < buckets; ++b)
        start[b + 1] += start[b];
    sorted.resize(bucket_of.size());
    std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
    for (std::uint32_t t = 0; t < bucket_of.size(); ++t)
        sorted[cursor[bucket_of[t]]++] = t;
}

} // namespace

void
JoinWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto d = std::make_shared<JoinData>();
    switch (scale) {
      case Scale::Tiny:
        d->numR = d->numS = 6000;
        d->buckets = 128;
        break;
      case Scale::Small:
        d->numR = d->numS = 200000;
        d->buckets = 4096;
        break;
      case Scale::Huge:
        d->numR = d->numS = 1500000;
        d->buckets = 16384;
        break;
      default:
        d->numR = d->numS = 600000;
        d->buckets = 8192;
        break;
    }

    const bool gaussian = input_ == "gaussian";
    // The gaussian input concentrates tuples; more partitions keep the
    // per-bucket peak workable while leaving heavy skew (the same
    // radix-width choice a real partitioner would make).
    if (gaussian)
        d->buckets *= 8;
    Rng rng(seed);
    auto draw_bucket = [&]() -> std::uint32_t {
        if (!gaussian)
            return static_cast<std::uint32_t>(rng.nextBounded(d->buckets));
        double g = rng.nextGaussian() * d->buckets / 20.0 +
                   d->buckets / 2.0;
        double clamped =
            std::clamp(g, 0.0, static_cast<double>(d->buckets - 1));
        return static_cast<std::uint32_t>(clamped);
    };
    d->bucketOfR.resize(d->numR);
    d->bucketOfS.resize(d->numS);
    for (auto &b : d->bucketOfR)
        b = draw_bucket();
    for (auto &b : d->bucketOfS)
        b = draw_bucket();
    buildBucketCsr(d->bucketOfR, d->buckets, d->rStart, d->rSorted);
    buildBucketCsr(d->bucketOfS, d->buckets, d->sStart, d->sSorted);

    d->rKeysA = mem_.allocArray(d->numR, 8, "rKeys");
    d->sKeysA = mem_.allocArray(d->numS, 8, "sKeys");
    d->rPartA = mem_.allocArray(d->numR, 8, "rPart");
    d->sPartA = mem_.allocArray(d->numS, 8, "sPart");
    d->headersA = mem_.allocArray(d->buckets, 16, "headers");
    d->paramsA = mem_.allocArray(d->buckets, 16, "params");
    d->outA = mem_.allocArray(d->numS, 8, "out");
    d->partRFuncId = allocateFunctionId();
    d->partSFuncId = allocateFunctionId();
    d->probeFuncId = allocateFunctionId();
    d->matchFuncId = allocateFunctionId();

    waves_.clear();
    waves_.push_back({std::make_shared<JoinPartitionProgram>(d, true),
                      (d->numR + 127) / 128, 128});
    waves_.push_back({std::make_shared<JoinPartitionProgram>(d, false),
                      (d->numS + 127) / 128, 128});
    waves_.push_back({std::make_shared<JoinProbeProgram>(d),
                      (d->buckets + 127) / 128, 128});
}

} // namespace laperm
