/**
 * @file
 * Plain-main concurrency smoke for the parallel sweep executor. This
 * is the binary the ThreadSanitizer CTest configuration runs (see
 * scripts/verify.sh): it deliberately avoids gtest so every linked
 * object is TSan-instrumented, keeping the race report clean.
 *
 * Exercises: parallel workload setup, concurrent cells sharing one
 * workload, logging from workers, and pool exception propagation.
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/thread_pool.hh"

using namespace laperm;

int
main()
{
    setVerbose(true); // force worker-thread inform() traffic

    // Exception propagation under contention.
    {
        ThreadPool pool(4);
        for (int i = 0; i < 32; ++i) {
            pool.submit([i] {
                if (i == 13)
                    throw std::runtime_error("expected");
                laperm_inform("pool job %d", i);
            });
        }
        bool threw = false;
        try {
            pool.wait();
        } catch (const std::runtime_error &) {
            threw = true;
        }
        if (!threw) {
            std::fprintf(stderr, "FAIL: pool swallowed the exception\n");
            return 1;
        }
    }

    // Two workloads x 8 cells, 8 workers vs 1 worker must agree.
    const std::vector<std::string> names = {"bfs-cage", "join-uniform"};
    auto serial = runMatrix(names, Scale::Tiny, 3, false, 1);
    auto parallel = runMatrix(names, Scale::Tiny, 3, false, 8);
    if (serial.size() != parallel.size()) {
        std::fprintf(stderr, "FAIL: sweep size mismatch\n");
        return 1;
    }
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].cycles != parallel[i].cycles ||
            serial[i].ipc != parallel[i].ipc ||
            serial[i].workload != parallel[i].workload) {
            std::fprintf(stderr, "FAIL: cell %zu diverged\n", i);
            return 1;
        }
    }
    std::printf("harness_parallel_smoke: ok (%zu cells)\n",
                serial.size());
    return 0;
}
