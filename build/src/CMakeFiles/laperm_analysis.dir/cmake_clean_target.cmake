file(REMOVE_RECURSE
  "liblaperm_analysis.a"
)
