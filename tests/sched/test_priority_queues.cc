#include <gtest/gtest.h>

#include "sched/priority_queues.hh"

using namespace laperm;

namespace {

DispatchUnit
makeUnit(std::uint32_t priority, std::uint32_t count = 1)
{
    DispatchUnit u;
    u.priority = priority;
    u.count = count;
    u.threadsPerTb = 32;
    return u;
}

} // namespace

TEST(PriorityQueues, HighestPriorityFirst)
{
    GpuStats stats;
    PriorityQueues q(4, 0);
    DispatchUnit a = makeUnit(1), b = makeUnit(3), c = makeUnit(2);
    q.push(&a, stats);
    q.push(&b, stats);
    q.push(&c, stats);
    bool blocked = false;
    EXPECT_EQ(q.front(0, blocked), &b);
}

TEST(PriorityQueues, FcfsWithinLevel)
{
    GpuStats stats;
    PriorityQueues q(4, 0);
    DispatchUnit a = makeUnit(2), b = makeUnit(2);
    q.push(&a, stats);
    q.push(&b, stats);
    bool blocked = false;
    EXPECT_EQ(q.front(0, blocked), &a);
    a.nextTb = a.count; // exhaust
    EXPECT_EQ(q.front(0, blocked), &b);
}

TEST(PriorityQueues, PriorityClampsToTopLevel)
{
    GpuStats stats;
    PriorityQueues q(3, 0); // levels 0..2
    DispatchUnit a = makeUnit(7); // clamped into level 2
    q.push(&a, stats);
    bool blocked = false;
    EXPECT_EQ(q.front(0, blocked), &a);
}

TEST(PriorityQueues, ExhaustedUnitsPruned)
{
    GpuStats stats;
    PriorityQueues q(4, 0);
    DispatchUnit a = makeUnit(1);
    q.push(&a, stats);
    a.nextTb = a.count;
    bool blocked = false;
    EXPECT_EQ(q.front(0, blocked), nullptr);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.entries(), 0u);
}

TEST(PriorityQueues, DelayedHeadIsInvisibleUntilReady)
{
    // An entry still in flight from the overflow buffer has not
    // arrived: lower-priority ready entries dispatch meanwhile.
    GpuStats stats;
    PriorityQueues q(4, 0);
    DispatchUnit hi = makeUnit(3), lo = makeUnit(1);
    hi.readyAt = 100;
    q.push(&hi, stats);
    q.push(&lo, stats);
    bool blocked = false;
    EXPECT_EQ(q.front(50, blocked), &lo);
    EXPECT_TRUE(blocked); // something is pending above
    EXPECT_EQ(q.front(100, blocked), &hi);
    EXPECT_FALSE(blocked);
}

TEST(PriorityQueues, OverflowDelaysVisibility)
{
    GpuStats stats;
    PriorityQueues q(4, 1);
    DispatchUnit a = makeUnit(1), b = makeUnit(1);
    q.push(&a, stats, 10, 350);
    q.push(&b, stats, 10, 350); // spills: visible at 360
    EXPECT_FALSE(a.overflowed);
    EXPECT_TRUE(b.overflowed);
    EXPECT_EQ(b.readyAt, 360u);
    EXPECT_EQ(q.nextReadyAt(10), 360u);
    a.nextTb = a.count;
    bool blocked = false;
    EXPECT_EQ(q.front(100, blocked), nullptr);
    EXPECT_TRUE(blocked);
    EXPECT_EQ(q.front(360, blocked), &b);
}

TEST(PriorityQueues, OverflowBeyondCapacity)
{
    GpuStats stats;
    PriorityQueues q(4, 2);
    DispatchUnit a = makeUnit(1), b = makeUnit(1), c = makeUnit(1);
    q.push(&a, stats);
    q.push(&b, stats);
    EXPECT_FALSE(a.overflowed);
    EXPECT_FALSE(b.overflowed);
    q.push(&c, stats);
    EXPECT_TRUE(c.overflowed);
    EXPECT_EQ(stats.queueOverflows, 1u);
}

TEST(PriorityQueues, EmptyReflectsRemainingWork)
{
    GpuStats stats;
    PriorityQueues q(2, 0);
    EXPECT_TRUE(q.empty());
    DispatchUnit a = makeUnit(1, 3);
    q.push(&a, stats);
    EXPECT_FALSE(q.empty());
    a.nextTb = 3;
    EXPECT_TRUE(q.empty());
}
