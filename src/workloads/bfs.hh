/**
 * @file
 * BFS workload (Table II: citation / graph500 / cage inputs).
 */

#ifndef LAPERM_WORKLOADS_BFS_HH
#define LAPERM_WORKLOADS_BFS_HH

#include "workloads/workload.hh"

namespace laperm {

/** Level-synchronous BFS with per-heavy-vertex child launches. */
class BfsWorkload : public WorkloadBase
{
  public:
    explicit BfsWorkload(std::string input) : input_(std::move(input)) {}

    std::string app() const override;
    std::string input() const override;
    void setup(Scale scale, std::uint64_t seed) override;

  private:
    std::string input_;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_BFS_HH
