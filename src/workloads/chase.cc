#include "workloads/chase.hh"

#include <memory>
#include <numeric>

#include "common/log.hh"
#include "common/rng.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

struct ChaseData
{
    std::uint32_t numTbs = 0;
    std::uint32_t steps = 0;
    /** Successor table of one ring per thread, rings back to back. */
    std::vector<std::uint32_t> next;
    Addr ringA = 0;
    Addr outA = 0;
    std::uint32_t funcId = 0;
};

/**
 * One thread per TB so a TB occupies a whole warp slot with a single
 * lane: the least concurrency the machine can hold while every SMX
 * still has resident work to poll.
 */
class ChaseProgram : public KernelProgram
{
  public:
    explicit ChaseProgram(std::shared_ptr<const ChaseData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "chase_ring"; }
    std::uint32_t functionId() const override { return d_->funcId; }
    std::uint32_t regsPerThread() const override { return 16; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const ChaseData &d = *d_;
        const std::uint32_t t = ctx.globalThreadIndex();
        // Desynchronize the warps so their DRAM returns interleave
        // instead of arriving in lockstep.
        ctx.alu(1 + (t * 7) % 97);
        std::uint32_t pos = t * d.steps;
        for (std::uint32_t i = 0; i < d.steps; ++i) {
            // Each ring entry owns a full line; every step is a cold
            // miss and the next address depends on the loaded value.
            ctx.ld(d.ringA + static_cast<Addr>(pos) * kLineBytes, 8);
            ctx.alu(1);
            pos = d.next[pos];
        }
        ctx.st(d.outA + 8ull * t, 8);
    }

  private:
    std::shared_ptr<const ChaseData> d_;
};

/** Sattolo's algorithm: one cycle over [first, first+n). */
void
buildRing(std::vector<std::uint32_t> &next, std::uint32_t first,
          std::uint32_t n, Rng &rng)
{
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), first);
    for (std::uint32_t i = n - 1; i > 0; --i) {
        std::uint32_t j =
            static_cast<std::uint32_t>(rng.nextBounded(i));
        std::swap(order[i], order[j]);
    }
    for (std::uint32_t i = 0; i < n; ++i)
        next[order[i]] = order[(i + 1) % n];
}

} // namespace

void
ChaseWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;
    if (input_ != "ring")
        laperm_fatal("unknown chase input '%s'", input_.c_str());

    auto d = std::make_shared<ChaseData>();
    switch (scale) {
      case Scale::Tiny:
        d->numTbs = 26;
        d->steps = 120;
        break;
      case Scale::Small:
        d->numTbs = 26;
        d->steps = 5000;
        break;
      case Scale::Huge:
        d->numTbs = 26;
        d->steps = 48000;
        break;
      default:
        d->numTbs = 26;
        d->steps = 16000;
        break;
    }

    const std::uint32_t entries = d->numTbs * d->steps;
    d->next.resize(entries);
    Rng rng(seed);
    for (std::uint32_t t = 0; t < d->numTbs; ++t)
        buildRing(d->next, t * d->steps, d->steps, rng);

    d->ringA = mem_.allocArray(entries, kLineBytes, "ring");
    d->outA = mem_.allocArray(d->numTbs, 8, "out");
    d->funcId = allocateFunctionId();

    waves_.clear();
    waves_.push_back({std::make_shared<ChaseProgram>(d), d->numTbs, 1});
}

} // namespace laperm
