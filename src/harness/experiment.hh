/**
 * @file
 * Experiment driver: runs workload x model x policy configurations on
 * the Table I device and collects the metrics the paper plots. Results
 * are cached on disk (per scale/seed) so the per-figure bench binaries
 * can share one simulation sweep.
 */

#ifndef LAPERM_HARNESS_EXPERIMENT_HH
#define LAPERM_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "harness/result_cache.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace laperm {

/** The Table I configuration (K20c / GK110). */
GpuConfig paperConfig();

/** Metrics of one simulation run. */
struct RunResult
{
    std::string workload;
    DynParModel model = DynParModel::CDP;
    TbPolicy policy = TbPolicy::RR;
    /** Hardware preset the cell ran on (sim/presets.hh). */
    std::string preset = "k20c";

    double ipc = 0.0;
    double l1HitRate = 0.0;
    double l2HitRate = 0.0;
    double cycles = 0.0;
    double smxUtilization = 0.0;
    double smxImbalance = 0.0;
    double boundFraction = 0.0; ///< bound / dynamic TB dispatches
    double queueOverflows = 0.0;
    double kduFullStalls = 0.0;
};

/** Run one configuration (workload must be set up). */
RunResult runOne(const Workload &workload, const GpuConfig &cfg);

/**
 * Run one configuration and return the full canonical record (every
 * counter the CSV report and sweep TSV derive from). When @p trace_dir
 * is non-empty, the observability artifacts of DESIGN.md §8 are
 * written there under "<workload>_<model>_<policy>.*". This is the
 * execution path the serving subsystem (src/serve) uses; runOne is a
 * thin wrapper that honors LAPERM_TRACE_DIR instead.
 */
ResultRecord runOneRecord(const Workload &workload, const GpuConfig &cfg,
                          const std::string &trace_dir);

/**
 * Full sweep: every workload in @p names under every model x policy.
 *
 * Cells are independent simulations and execute on a thread pool, one
 * job per cell; results (and the TSV cache) are emitted in the same
 * deterministic order regardless of worker count.
 *
 * @param use_cache read/write "laperm_results_<scale>_<seed>.tsv"
 *        under the cache directory — $LAPERM_CACHE_DIR, default
 *        "cache/" in the working directory — so the figure benches
 *        share one sweep (disable with LAPERM_NO_CACHE=1). Entries
 *        embed the simulator fingerprint (harness/result_cache.hh);
 *        a TSV written by a different simulator build is ignored and
 *        regenerated rather than served stale.
 * @param jobs worker threads; 0 selects LAPERM_JOBS from the
 *        environment, falling back to hardware_concurrency().
 */
std::vector<RunResult> runMatrix(const std::vector<std::string> &names,
                                 Scale scale, std::uint64_t seed,
                                 bool use_cache = true,
                                 unsigned jobs = 0);

/**
 * runMatrix on a named hardware preset (sim/presets.hh): the preset is
 * a fourth sweep axis with its own TSV cache cell per (preset, scale,
 * seed). "k20c" is exactly runMatrix — same cache file, same bytes.
 * The cross-generation study (EXPERIMENTS.md) drives this per preset.
 */
std::vector<RunResult> runMatrixPreset(
    const std::vector<std::string> &names, const std::string &preset,
    Scale scale, std::uint64_t seed, bool use_cache = true,
    unsigned jobs = 0);

/**
 * Path of the TSV sweep cache runMatrix reads/writes for this
 * (scale, seed): "$LAPERM_CACHE_DIR/laperm_results_<scale>_<seed>.tsv",
 * default cache dir "cache". Exposed so tests and benches address the
 * cache without duplicating the layout.
 */
std::string sweepCachePath(Scale scale, std::uint64_t seed);

/**
 * Per-preset sweep cache path. The "k20c" preset maps to the legacy
 * sweepCachePath(scale, seed) file; other presets get
 * "laperm_results_<preset>_<scale>_<seed>.tsv" so preset sweeps never
 * collide with (or invalidate) the default matrix.
 */
std::string sweepCachePath(const std::string &preset, Scale scale,
                           std::uint64_t seed);

/** Find a result in a sweep; fatal if missing. */
const RunResult &findResult(const std::vector<RunResult> &results,
                            const std::string &workload,
                            DynParModel model, TbPolicy policy);

/** Arithmetic mean of @p metric over a sweep subset. */
double meanOver(const std::vector<RunResult> &results, DynParModel model,
                TbPolicy policy, double RunResult::*metric);

} // namespace laperm

#endif // LAPERM_HARNESS_EXPERIMENT_HH
