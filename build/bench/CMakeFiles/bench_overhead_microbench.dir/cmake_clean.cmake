file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_microbench.dir/bench_overhead_microbench.cc.o"
  "CMakeFiles/bench_overhead_microbench.dir/bench_overhead_microbench.cc.o.d"
  "bench_overhead_microbench"
  "bench_overhead_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
