#include "graph/csr.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

Csr
Csr::fromEdges(std::uint32_t num_vertices,
               std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
               bool symmetric)
{
    if (symmetric) {
        std::size_t n = edges.size();
        edges.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    Csr g;
    g.offsets_.assign(num_vertices + 1, 0);
    for (const auto &[u, v] : edges) {
        laperm_assert(u < num_vertices && v < num_vertices,
                      "edge (%u,%u) out of range", u, v);
        if (u == v)
            continue;
        ++g.offsets_[u + 1];
    }
    for (std::uint32_t v = 0; v < num_vertices; ++v)
        g.offsets_[v + 1] += g.offsets_[v];
    g.cols_.reserve(edges.size());
    for (const auto &[u, v] : edges) {
        if (u == v)
            continue;
        g.cols_.push_back(v);
    }
    return g;
}

std::uint32_t
Csr::maxDegree() const
{
    std::uint32_t best = 0;
    for (std::uint32_t v = 0; v < numVertices(); ++v)
        best = std::max(best, degree(v));
    return best;
}

} // namespace laperm
