#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace laperm;

namespace {

CacheParams
smallParams(bool write_evict = false)
{
    CacheParams p;
    p.name = "test";
    p.size = 4 * 1024; // 32 lines
    p.assoc = 4;       // 8 sets
    p.writeEvict = write_evict;
    return p;
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallParams());
    auto r1 = c.lookupLoad(0, 0);
    EXPECT_FALSE(r1.hit);
    c.allocate(0, 100, 0, false);
    auto r2 = c.lookupLoad(0, 200);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, MshrMergeWhileFillPending)
{
    Cache c(smallParams());
    c.lookupLoad(0, 0);
    c.allocate(0, 500, 0, false);
    // A second access before the fill completes merges.
    auto r = c.lookupLoad(0, 100);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.mshrMerge);
    EXPECT_EQ(r.fillReady, 500u);
    EXPECT_EQ(c.stats().mshrMerges, 1u);
}

TEST(Cache, LruEviction)
{
    CacheParams p = smallParams();
    p.size = 512; // 4 lines, 1 set of assoc 4
    p.assoc = 4;
    Cache c(p);
    // Fill the set: lines 0..3 (all map to set 0 since numSets == 1).
    for (Addr i = 0; i < 4; ++i) {
        c.lookupLoad(i * kLineBytes, i);
        c.allocate(i * kLineBytes, i, i, false);
    }
    // Touch line 0 to make line 1 the LRU victim.
    c.lookupLoad(0, 10);
    c.lookupLoad(4 * kLineBytes, 11);
    c.allocate(4 * kLineBytes, 20, 11, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(kLineBytes)); // line 1 evicted
    EXPECT_TRUE(c.contains(4 * kLineBytes));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WriteEvictStoreInvalidatesLine)
{
    Cache c(smallParams(true));
    c.lookupLoad(0, 0);
    c.allocate(0, 0, 0, false);
    EXPECT_TRUE(c.contains(0));
    c.lookupStore(0, 1);
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.stats().storeEvicts, 1u);
    // Stores do not count in L1 access statistics.
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, WriteBackDirtyEviction)
{
    CacheParams p = smallParams(false);
    p.size = 512;
    p.assoc = 4;
    Cache c(p);
    c.lookupStore(0, 0);
    c.allocate(0, 0, 0, true); // dirty allocate
    for (Addr i = 1; i <= 4; ++i) {
        c.lookupLoad(i * kLineBytes, i);
        bool victim_dirty = c.allocate(i * kLineBytes, i, i, false);
        if (i == 4) {
            EXPECT_TRUE(victim_dirty); // line 0 was dirty
        }
    }
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, StoreHitMarksDirty)
{
    Cache c(smallParams(false));
    c.lookupLoad(0, 0);
    c.allocate(0, 0, 0, false);
    auto r = c.lookupStore(0, 1);
    EXPECT_TRUE(r.hit);
    // Evicting it must report dirty: fill the set.
    CacheParams p = smallParams(false);
    (void)p;
}

TEST(Cache, MshrSurvivesEviction)
{
    CacheParams p = smallParams();
    p.size = 512;
    p.assoc = 4;
    Cache c(p);
    c.lookupLoad(0, 0);
    c.allocate(0, 1000, 0, false); // fill pending until cycle 1000
    // Evict line 0 while its fill is outstanding.
    for (Addr i = 1; i <= 4; ++i) {
        c.lookupLoad(i * kLineBytes, i);
        c.allocate(i * kLineBytes, i, i, false);
    }
    EXPECT_FALSE(c.contains(0));
    auto r = c.lookupLoad(0, 50);
    EXPECT_TRUE(r.mshrMerge);
    EXPECT_EQ(r.fillReady, 1000u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(smallParams());
    c.lookupLoad(0, 0);
    c.allocate(0, 0, 0, false);
    c.reset();
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(smallParams()); // 8 sets
    // Lines mapping to different sets never evict each other.
    for (Addr s = 0; s < 8; ++s) {
        Addr line = s * kLineBytes;
        c.lookupLoad(line, s);
        c.allocate(line, s, s, false);
    }
    for (Addr s = 0; s < 8; ++s)
        EXPECT_TRUE(c.contains(s * kLineBytes));
}
