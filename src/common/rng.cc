#include "common/rng.hh"

#include <cmath>

namespace laperm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &w : s_)
        w = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveGauss_) {
        haveGauss_ = false;
        return gauss_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    while (u1 <= 1e-300)
        u1 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    haveGauss_ = true;
    return r * std::cos(theta);
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    // Inverse-CDF on the bounded Pareto approximation of the Zipf law,
    // then clamp into range. Accurate enough for workload skew modeling.
    if (n <= 1)
        return 0;
    double u = nextDouble();
    double v;
    if (s == 1.0) {
        v = std::exp(u * std::log(static_cast<double>(n)));
    } else {
        double t = std::pow(static_cast<double>(n), 1.0 - s);
        v = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    std::uint64_t k = static_cast<std::uint64_t>(v) - (v >= 1.0 ? 1 : 0);
    return k >= n ? n - 1 : k;
}

} // namespace laperm
