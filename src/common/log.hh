/**
 * @file
 * Error/status reporting helpers following the gem5 idiom: panic() for
 * simulator bugs, fatal() for user errors, warn()/inform() for status.
 */

#ifndef LAPERM_COMMON_LOG_HH
#define LAPERM_COMMON_LOG_HH

#include <cstdio>
#include <string>

namespace laperm {

/** Terminate with abort(); use for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with exit(1); use for user-caused errors (bad config). */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string logFormat(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace laperm

#define laperm_panic(...) \
    ::laperm::panicImpl(__FILE__, __LINE__, ::laperm::logFormat(__VA_ARGS__))
#define laperm_fatal(...) \
    ::laperm::fatalImpl(__FILE__, __LINE__, ::laperm::logFormat(__VA_ARGS__))
#define laperm_warn(...) ::laperm::warnImpl(::laperm::logFormat(__VA_ARGS__))
#define laperm_inform(...) ::laperm::informImpl(::laperm::logFormat(__VA_ARGS__))

/** Panic unless @p cond holds; used for internal invariants. */
#define laperm_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::laperm::panicImpl(__FILE__, __LINE__,                         \
                std::string("assertion failed: " #cond " — ") +            \
                ::laperm::logFormat(__VA_ARGS__));                          \
        }                                                                   \
    } while (0)

#endif // LAPERM_COMMON_LOG_HH
