// sim-lint fixture: a mem/ translation unit reaching UP the stack —
// into the observability and harness layers — must be flagged by the
// layering pass. Not compiled — parsed by test_sim_lint_v2.cc.
#include "common/log.hh"      // declared edge: legal
#include "sim/config.hh"      // declared edge: legal
#include "obs/locality.hh"    // mem -> obs: collectors sit ABOVE the engine
#include "harness/table.hh"   // mem -> harness: inverted dependency
#include "nosuchmod/foo.hh"   // undeclared target module

void
touch()
{
}
