#include "serve/transport/endpoint.hh"

namespace laperm {
namespace serve {

namespace {

/** Strict base-10 port parse: `[0-9]+` within [0, 65535] only. */
bool
parsePort(const std::string &s, std::uint16_t &out)
{
    if (s.empty())
        return false;
    std::uint32_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint32_t>(c - '0');
        if (v > 65535)
            return false;
    }
    out = static_cast<std::uint16_t>(v);
    return true;
}

} // namespace

std::string
Endpoint::toString() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint
Endpoint::unixAt(std::string p)
{
    Endpoint e;
    e.kind = Kind::Unix;
    e.path = std::move(p);
    return e;
}

Endpoint
Endpoint::tcpAt(std::string host, std::uint16_t port)
{
    Endpoint e;
    e.kind = Kind::Tcp;
    e.host = std::move(host);
    e.port = port;
    return e;
}

bool
parseEndpoint(const std::string &text, Endpoint &out, std::string &err)
{
    if (text.empty()) {
        err = "empty endpoint";
        return false;
    }
    if (text.rfind("unix:", 0) == 0) {
        const std::string path = text.substr(5);
        if (path.empty()) {
            err = "endpoint '" + text + "': empty unix path";
            return false;
        }
        out = Endpoint::unixAt(path);
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string rest = text.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos) {
            err = "endpoint '" + text + "': expected tcp:HOST:PORT";
            return false;
        }
        const std::string host = rest.substr(0, colon);
        const std::string portStr = rest.substr(colon + 1);
        if (host.empty()) {
            err = "endpoint '" + text + "': empty host";
            return false;
        }
        std::uint16_t port = 0;
        if (!parsePort(portStr, port)) {
            err = "endpoint '" + text + "': bad port '" + portStr +
                  "' (need 0-65535)";
            return false;
        }
        out = Endpoint::tcpAt(host, port);
        return true;
    }
    if (text.find(':') != std::string::npos &&
        text.find('/') == std::string::npos) {
        // "tpc:host:80" and friends: a colon with no scheme and no
        // path separator is almost certainly a typo'd scheme, not a
        // Unix socket literally named that.
        err = "endpoint '" + text +
              "': unknown scheme (use unix:PATH or tcp:HOST:PORT)";
        return false;
    }
    out = Endpoint::unixAt(text); // bare path: legacy --socket spelling
    return true;
}

} // namespace serve
} // namespace laperm
