/**
 * @file
 * sim-lint layering pass (DESIGN.md §12.2): parses the `#include`
 * edges of every translation unit and enforces the module DAG declared
 * in the checked-in layering spec (layering.toml at the repo root).
 *
 * Spec format — a small TOML subset, two tables:
 *
 *   [layers]
 *   common = []                 # module -> allowed module deps
 *   sim    = ["common"]
 *
 *   [groups]
 *   engine = ["gpu", "dynpar"]  # mutually-recursive modules that form
 *                               # one layer; intra-group includes legal
 *
 * Rules enforced:
 *  - every quoted project include must target a declared module, and
 *    the (source module -> target module) edge must be declared (self
 *    edges and intra-group edges are always legal);
 *  - every file under src/ must belong to a declared module (a new
 *    directory forces a spec decision);
 *  - the declared graph itself, collapsed over groups, must be a DAG —
 *    a spec edit cannot smuggle a dependency cycle in.
 *
 * Angle-bracket includes (system headers) and quoted includes with no
 * path component (generated headers like sim_fingerprint.hh) are out
 * of scope.
 */

#ifndef LAPERM_TOOLS_LINT_LAYERING_HH
#define LAPERM_TOOLS_LINT_LAYERING_HH

#include <map>
#include <string>
#include <vector>

#include "tools/sim_lint.hh"

namespace laperm {
namespace simlint {

/** Parsed layering spec. */
struct LayerSpec
{
    /** module -> sorted allowed dependency modules. */
    std::map<std::string, std::vector<std::string>> deps;
    /** module -> group name (only for grouped modules). */
    std::map<std::string, std::string> groupOf;

    bool declared(const std::string &module) const
    {
        return deps.count(module) != 0;
    }

    /** Same group (and both actually grouped)? */
    bool sameGroup(const std::string &a, const std::string &b) const;

    /** Is the edge from -> to allowed? (self/group edges always are) */
    bool allows(const std::string &from, const std::string &to) const;
};

/**
 * Parse spec text. On failure returns false and sets @p err (line
 * numbers included). Validation: every dep names a declared module,
 * every grouped module is declared, and the group-collapsed declared
 * graph is acyclic.
 */
bool parseLayerSpec(const std::string &text, LayerSpec &spec,
                    std::string &err);

/** Read and parse a spec file. */
bool loadLayerSpec(const std::string &path, LayerSpec &spec,
                   std::string &err);

/**
 * Module a path belongs to: the last path component that names a
 * declared module ("src/mem/cache.cc" -> "mem"; fixture trees mimic
 * the same shape). Empty when no component matches.
 */
std::string moduleOfPath(const std::string &path, const LayerSpec &spec);

/**
 * Lint one translation unit's include edges against @p spec. Findings
 * use Rule::Layering.
 */
std::vector<Finding> lintLayering(const std::string &path,
                                  const std::string &content,
                                  const LayerSpec &spec);

} // namespace simlint
} // namespace laperm

#endif // LAPERM_TOOLS_LINT_LAYERING_HH
