#include "sim/presets.hh"

#include "common/log.hh"

namespace laperm {
namespace {

/**
 * NVIDIA Tesla K20c (Kepler GK110, CC 3.5) — the paper's Table I
 * machine, byte-identical to a default-constructed GpuConfig.
 */
GpuConfig
makeK20c()
{
    return GpuConfig();
}

/**
 * NVIDIA GeForce GTX 1080 (Pascal GP104, CC 6.1). 20 SMs, 48KB L1,
 * 2MB L2, 8x32-bit GDDR5X. DRAM service interval: 64 banks * 128B *
 * 1.607GHz / 320GB/s ~= 41 cycles/access per bank.
 */
GpuConfig
makeGtx1080()
{
    GpuConfig c;
    c.numSmx = 20;
    c.maxTbsPerSmx = 32;           // CC 6.x raises the residency limit
    c.smemPerSmx = 96 * 1024;
    c.l1Size = 48 * 1024;
    c.l2Size = 2048 * 1024;
    c.l2Banks = 8;
    c.dramChannels = 8;
    c.dramServiceInterval = 41;
    c.kduEntries = 32;             // CC 6.1 keeps 32 concurrent kernels
    return c;
}

/**
 * NVIDIA Tesla P100 (Pascal GP100, CC 6.0). 56 SMs, 24KB L1, 4MB L2,
 * HBM2 (4 stacks, 32 channels). DRAM service interval: 256 banks *
 * 128B * 1.328GHz / 732GB/s ~= 59 cycles/access per bank.
 */
GpuConfig
makeP100()
{
    GpuConfig c;
    c.numSmx = 56;
    c.maxTbsPerSmx = 32;
    c.smemPerSmx = 64 * 1024;
    c.l1Size = 24 * 1024;
    c.l2Size = 4096 * 1024;
    c.l2Banks = 16;
    c.dramChannels = 32;
    c.dramServiceInterval = 59;
    c.kduEntries = 128;            // CC 6.0 lifts the concurrency cap
    return c;
}

/**
 * NVIDIA Tesla V100 (Volta GV100, CC 7.0). 80 SMs, 128KB combined
 * L1/shared (modeled as 96KB L1 + 96KB smem carve-outs), 6MB L2, HBM2.
 * DRAM service interval: 256 banks * 128B * 1.380GHz / 900GB/s ~= 50
 * cycles/access per bank.
 */
GpuConfig
makeV100()
{
    GpuConfig c;
    c.numSmx = 80;
    c.maxTbsPerSmx = 32;
    c.smemPerSmx = 96 * 1024;
    c.l1Size = 96 * 1024;
    c.l2Size = 6144 * 1024;
    c.l2Banks = 16;
    c.dramChannels = 32;
    c.dramServiceInterval = 50;
    c.kduEntries = 128;
    return c;
}

struct PresetDef
{
    const char *name;
    const char *description;
    GpuConfig (*build)();
};

// One entry per line: scripts/docs_check.sh greps this table to keep
// the documented preset list in sync with the registry.
const PresetDef kPresets[] = {
    {"k20c", "Tesla K20c (Kepler GK110, CC 3.5) - the paper's Table I machine", makeK20c},
    {"gtx1080", "GeForce GTX 1080 (Pascal GP104, CC 6.1) - 20 SMs, GDDR5X", makeGtx1080},
    {"p100", "Tesla P100 (Pascal GP100, CC 6.0) - 56 SMs, HBM2", makeP100},
    {"v100", "Tesla V100 (Volta GV100, CC 7.0) - 80 SMs, HBM2", makeV100},
};

} // namespace

std::vector<PresetInfo>
presets()
{
    std::vector<PresetInfo> out;
    for (const PresetDef &p : kPresets)
        out.push_back(PresetInfo{p.name, p.description});
    return out;
}

bool
findPreset(const std::string &name, GpuConfig &out)
{
    for (const PresetDef &p : kPresets) {
        if (name == p.name) {
            out = p.build();
            return true;
        }
    }
    return false;
}

GpuConfig
presetConfig(const std::string &name)
{
    GpuConfig cfg;
    if (!findPreset(name, cfg)) {
        laperm_fatal("unknown preset '%s' (known: %s)", name.c_str(),
                     presetNameList().c_str());
    }
    return cfg;
}

std::string
presetNameList()
{
    std::string out;
    for (const PresetDef &p : kPresets) {
        if (!out.empty())
            out += ", ";
        out += p.name;
    }
    return out;
}

} // namespace laperm
