#include "sched/policies.hh"

namespace laperm {

namespace {

/** On-chip capacity for a queue set under the active model (0 = none). */
std::uint32_t
queueCapacity(const GpuConfig &cfg)
{
    // CDP keeps its priority queues in global memory managed by the
    // KMU (Section IV-A); DTBL reuses the on-chip TB-group SRAM with
    // global-memory overflow (Section IV-E).
    if (cfg.dynParModel == DynParModel::DTBL)
        return cfg.onchipQueueEntries;
    return 0;
}

} // namespace

TbPriScheduler::TbPriScheduler(const GpuConfig &cfg, DispatchContext &ctx)
    : TbScheduler(cfg, ctx),
      queues_(cfg.maxPriorityLevels + 1, queueCapacity(cfg))
{
}

void
TbPriScheduler::enqueue(DispatchUnit *unit, Cycle now)
{
    queues_.push(unit, ctx_.mutableStats(), now,
                 cfg_.overflowFetchLatency);
}

bool
TbPriScheduler::dispatchOne(Cycle now)
{
    bool blocked = false;
    DispatchUnit *unit = queues_.front(now, blocked, ctx_.gate());
    if (!unit)
        return false;
    const std::uint32_t n = ctx_.numSmx();
    for (std::uint32_t j = 0; j < n; ++j) {
        SmxId smx = (cursor_ + j) % n;
        if (ctx_.fits(smx, *unit)) {
            ctx_.dispatchTb(*unit, smx, now);
            cursor_ = (smx + 1) % n;
            queues_.popIfExhausted(unit);
            return true;
        }
    }
    // Strict priority: the highest-priority TB waits for capacity
    // rather than letting lower-priority TBs overtake it.
    return false;
}

Cycle
TbPriScheduler::nextReadyAt(Cycle now) const
{
    return queues_.nextReadyAt(now);
}

} // namespace laperm
