#include "harness/experiment.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "workloads/registry.hh"

namespace laperm {

GpuConfig
paperConfig()
{
    // Defaults already encode Table I; spelled out for documentation.
    GpuConfig cfg;
    cfg.numSmx = 13;
    cfg.maxThreadsPerSmx = 2048;
    cfg.maxTbsPerSmx = 16;
    cfg.regsPerSmx = 65536;
    cfg.smemPerSmx = 32 * 1024;
    cfg.l1Size = 32 * 1024;
    cfg.l2Size = 1536 * 1024;
    cfg.kduEntries = 32;
    cfg.warpPolicy = WarpPolicy::GTO;
    return cfg;
}

RunResult
runOne(const Workload &workload, const GpuConfig &cfg)
{
    Gpu gpu(cfg);
    gpu.runWaves(workload.waves());
    const GpuStats &s = gpu.stats();

    RunResult r;
    r.workload = workload.fullName();
    r.model = cfg.dynParModel;
    r.policy = cfg.tbPolicy;
    r.ipc = s.ipc();
    r.l1HitRate = s.l1Total().hitRate();
    r.l2HitRate = s.l2.hitRate();
    r.cycles = static_cast<double>(s.cycles);
    r.smxUtilization = s.avgSmxUtilization();
    r.smxImbalance = s.smxImbalance();
    r.boundFraction =
        s.dynamicTbs
            ? static_cast<double>(s.boundDispatches) / s.dynamicTbs
            : 0.0;
    r.queueOverflows = static_cast<double>(s.queueOverflows);
    r.kduFullStalls = static_cast<double>(s.kduFullStalls);
    return r;
}

namespace {

constexpr TbPolicy kPolicies[] = {TbPolicy::RR, TbPolicy::TbPri,
                                  TbPolicy::SmxBind,
                                  TbPolicy::AdaptiveBind};
constexpr DynParModel kModels[] = {DynParModel::CDP, DynParModel::DTBL};

std::string
cachePath(Scale scale, std::uint64_t seed)
{
    return logFormat("laperm_results_%s_%llu.tsv", toString(scale),
                     static_cast<unsigned long long>(seed));
}

bool
loadCache(const std::string &path,
          const std::vector<std::string> &names,
          std::vector<RunResult> &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::vector<RunResult> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        RunResult r;
        std::string model, policy;
        int mi, pi;
        if (!(ls >> r.workload >> mi >> pi >> r.ipc >> r.l1HitRate >>
              r.l2HitRate >> r.cycles >> r.smxUtilization >>
              r.smxImbalance >> r.boundFraction >> r.queueOverflows >>
              r.kduFullStalls)) {
            return false;
        }
        r.model = static_cast<DynParModel>(mi);
        r.policy = static_cast<TbPolicy>(pi);
        rows.push_back(std::move(r));
    }
    // The cache is usable only if it covers the full request.
    for (const auto &name : names) {
        for (DynParModel m : kModels) {
            for (TbPolicy p : kPolicies) {
                bool found = false;
                for (const auto &r : rows) {
                    if (r.workload == name && r.model == m &&
                        r.policy == p) {
                        found = true;
                        break;
                    }
                }
                if (!found)
                    return false;
            }
        }
    }
    out = std::move(rows);
    return true;
}

void
saveCache(const std::string &path, const std::vector<RunResult> &rows)
{
    std::ofstream outf(path);
    if (!outf)
        return;
    outf << "# workload model policy ipc l1 l2 cycles util imbalance "
            "bound overflows kduStalls\n";
    for (const auto &r : rows) {
        outf << r.workload << ' ' << static_cast<int>(r.model) << ' '
             << static_cast<int>(r.policy) << ' ' << r.ipc << ' '
             << r.l1HitRate << ' ' << r.l2HitRate << ' ' << r.cycles
             << ' ' << r.smxUtilization << ' ' << r.smxImbalance << ' '
             << r.boundFraction << ' ' << r.queueOverflows << ' '
             << r.kduFullStalls << '\n';
    }
}

} // namespace

std::vector<RunResult>
runMatrix(const std::vector<std::string> &names, Scale scale,
          std::uint64_t seed, bool use_cache)
{
    const char *no_cache = std::getenv("LAPERM_NO_CACHE");
    if (no_cache && *no_cache == '1')
        use_cache = false;

    const std::string path = cachePath(scale, seed);
    std::vector<RunResult> results;
    if (use_cache && loadCache(path, names, results))
        return results;
    results.clear();

    for (const auto &name : names) {
        auto workload = createWorkload(name);
        workload->setup(scale, seed);
        for (DynParModel model : kModels) {
            for (TbPolicy policy : kPolicies) {
                GpuConfig cfg = paperConfig();
                cfg.dynParModel = model;
                cfg.tbPolicy = policy;
                cfg.seed = seed;
                results.push_back(runOne(*workload, cfg));
                laperm_inform("%s %s/%s: ipc=%.2f l1=%.3f l2=%.3f",
                              name.c_str(), toString(model),
                              toString(policy), results.back().ipc,
                              results.back().l1HitRate,
                              results.back().l2HitRate);
            }
        }
    }
    if (use_cache)
        saveCache(path, results);
    return results;
}

const RunResult &
findResult(const std::vector<RunResult> &results,
           const std::string &workload, DynParModel model,
           TbPolicy policy)
{
    for (const auto &r : results) {
        if (r.workload == workload && r.model == model &&
            r.policy == policy) {
            return r;
        }
    }
    laperm_fatal("no result for %s %s/%s", workload.c_str(),
                 toString(model), toString(policy));
}

double
meanOver(const std::vector<RunResult> &results, DynParModel model,
         TbPolicy policy, double RunResult::*metric)
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &r : results) {
        if (r.model == model && r.policy == policy) {
            sum += r.*metric;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace laperm
