/**
 * @file
 * Compressed Sparse Row graph representation — the data structure the
 * paper's graph benchmarks (BFS, SSSP, CLR) operate on, whose memory
 * layout drives the locality behaviour analyzed in Section III.
 */

#ifndef LAPERM_GRAPH_CSR_HH
#define LAPERM_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace laperm {

/** Directed graph in CSR form (stored edges both ways if undirected). */
class Csr
{
  public:
    Csr() = default;

    /**
     * Build from an edge list; duplicates and self-loops are removed.
     * @param symmetric also insert the reverse of every edge.
     */
    static Csr fromEdges(std::uint32_t num_vertices,
                         std::vector<std::pair<std::uint32_t,
                                               std::uint32_t>> edges,
                         bool symmetric);

    std::uint32_t numVertices() const
    {
        return static_cast<std::uint32_t>(offsets_.size()) - 1;
    }

    std::uint64_t numEdges() const { return cols_.size(); }

    std::uint32_t degree(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    std::uint64_t offset(std::uint32_t v) const { return offsets_[v]; }

    std::span<const std::uint32_t> neighbors(std::uint32_t v) const
    {
        return {cols_.data() + offsets_[v],
                cols_.data() + offsets_[v + 1]};
    }

    const std::vector<std::uint64_t> &offsets() const { return offsets_; }
    const std::vector<std::uint32_t> &cols() const { return cols_; }

    /** Max degree over all vertices (0 for the empty graph). */
    std::uint32_t maxDegree() const;

  private:
    std::vector<std::uint64_t> offsets_; ///< size numVertices + 1
    std::vector<std::uint32_t> cols_;
};

} // namespace laperm

#endif // LAPERM_GRAPH_CSR_HH
