#!/usr/bin/env bash
# Tier-1 verification pipeline, staged and fail-fast:
#
#   lint         scripts/lint.sh (sim-lint + clang-tidy when present)
#   docs-check   scripts/docs_check.sh (docs <-> binaries/flags in sync)
#   build-werror strict warning set promoted to errors (LAPERM_WERROR)
#   ctest        Release build + full test suite
#   tick-diff    scripts/tick_diff.sh (dense/event artifacts identical,
#                DESIGN.md §11)
#   serve-smoke  scripts/serve_smoke.sh (daemon end-to-end, DESIGN.md §10)
#   cluster-smoke scripts/cluster_smoke.sh (2-worker TCP cluster:
#                routing, worker respawn, shared cache tier,
#                DESIGN.md §15)
#   tenant-smoke scripts/tenant_smoke.sh (multi-tenant determinism
#                across tick modes and LAPERM_JOBS, DESIGN.md §14)
#   asan-ubsan   full test suite under AddressSanitizer + UBSan
#   tsan         concurrent-harness smoke under ThreadSanitizer
#
# Each stage runs in its own build tree so sanitizer flags never
# contaminate the primary build. The summary line at the end (also
# printed on failure) names every stage and its outcome.
set -uo pipefail
cd "$(dirname "$0")/.."

JOBS="${LAPERM_JOBS:-$(nproc)}"
STAGES=()

summary() {
    echo "verify.sh summary: ${STAGES[*]}"
    exit "${1:-0}"
}

run_stage() {
    local name="$1"
    shift
    echo "=== verify stage: $name ==="
    if "$@"; then
        STAGES+=("$name:ok")
    else
        STAGES+=("$name:FAIL")
        echo "verify.sh: stage '$name' failed" >&2
        summary 1
    fi
}

stage_lint() {
    scripts/lint.sh
}

stage_docs() {
    scripts/docs_check.sh
}

stage_werror() {
    cmake -B build-werror -S . -DCMAKE_BUILD_TYPE=Release \
        -DLAPERM_WERROR=ON &&
        cmake --build build-werror -j"$JOBS"
}

stage_ctest() {
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
        cmake --build build -j"$JOBS" &&
        ctest --test-dir build --output-on-failure -j"$JOBS"
}

stage_tick_diff() {
    # Reuses the Release tree the ctest stage just built.
    cmake --build build -j"$JOBS" --target laperm_sim &&
        scripts/tick_diff.sh build
}

stage_serve_smoke() {
    # Reuses the Release tree the ctest stage just built.
    cmake --build build -j"$JOBS" \
        --target laperm_sim laperm_served laperm_submit &&
        scripts/serve_smoke.sh build
}

stage_cluster_smoke() {
    # Reuses the Release tree the ctest stage just built.
    cmake --build build -j"$JOBS" \
        --target laperm_sim laperm_served laperm_submit &&
        scripts/cluster_smoke.sh build
}

stage_tenant_smoke() {
    # Reuses the Release tree the ctest stage just built.
    cmake --build build -j"$JOBS" \
        --target laperm_sim bench_multitenant &&
        scripts/tenant_smoke.sh build
}

stage_asan() {
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLAPERM_ASAN=ON &&
        cmake --build build-asan -j"$JOBS" &&
        ctest --test-dir build-asan --output-on-failure -j"$JOBS"
}

stage_tsan() {
    # Only the gtest-free smoke binary runs here so every linked object
    # is instrumented (gtest/benchmark from the system are not).
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLAPERM_TSAN=ON &&
        cmake --build build-tsan -j"$JOBS" \
            --target harness_parallel_smoke &&
        (cd build-tsan &&
            ctest --output-on-failure -R '^harness_parallel_smoke$')
}

run_stage lint stage_lint
run_stage docs-check stage_docs
run_stage build-werror stage_werror
run_stage ctest stage_ctest
run_stage tick-diff stage_tick_diff
run_stage serve-smoke stage_serve_smoke
run_stage cluster-smoke stage_cluster_smoke
run_stage tenant-smoke stage_tenant_smoke
run_stage asan-ubsan stage_asan
run_stage tsan stage_tsan

echo "verify.sh: all checks passed"
summary 0
