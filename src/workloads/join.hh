/**
 * @file
 * Relational-join workload (Table II: uniform / gaussian key
 * distributions).
 */

#ifndef LAPERM_WORKLOADS_JOIN_HH
#define LAPERM_WORKLOADS_JOIN_HH

#include "workloads/workload.hh"

namespace laperm {

/**
 * Partitioned hash join [36]: partition waves scatter both relations
 * into buckets; the probe wave spawns a child launch per crowded
 * bucket that matches the bucket's R and S tuples. Each child works
 * on its own bucket, giving the near-zero child-sibling sharing the
 * paper reports for join; the gaussian input skews bucket sizes and
 * stresses SMX load balance.
 */
class JoinWorkload : public WorkloadBase
{
  public:
    explicit JoinWorkload(std::string input) : input_(std::move(input)) {}

    std::string app() const override { return "join"; }
    std::string input() const override { return input_; }
    void setup(Scale scale, std::uint64_t seed) override;

  private:
    std::string input_;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_JOIN_HH
