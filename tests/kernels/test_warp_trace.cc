#include <gtest/gtest.h>

#include <functional>

#include "kernels/lambda_program.hh"
#include "kernels/warp_trace.hh"

using namespace laperm;

namespace {

std::vector<ThreadCtx>
makeThreads(std::uint32_t count,
            const std::function<void(ThreadCtx &)> &body)
{
    std::vector<ThreadCtx> threads;
    for (std::uint32_t t = 0; t < count; ++t) {
        threads.emplace_back(0, t, count, 1);
        body(threads.back());
    }
    return threads;
}

} // namespace

TEST(WarpTrace, CoalescedLoadsMergeToOneLine)
{
    // 32 threads loading consecutive 4-byte words in one line.
    auto threads = makeThreads(32, [](ThreadCtx &c) {
        c.ld(c.threadIndex() * 4, 4);
    });
    auto ops = buildWarpOps(threads, 0, 32);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, OpKind::Load);
    EXPECT_EQ(ops[0].activeLanes, 32u);
    EXPECT_EQ(ops[0].lines.size(), 1u);
}

TEST(WarpTrace, ScatteredLoadsProduceManyLines)
{
    auto threads = makeThreads(32, [](ThreadCtx &c) {
        c.ld(static_cast<Addr>(c.threadIndex()) * 4096, 4);
    });
    auto ops = buildWarpOps(threads, 0, 32);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].lines.size(), 32u);
}

TEST(WarpTrace, AluTakesMaxOverLanes)
{
    auto threads = makeThreads(4, [](ThreadCtx &c) {
        c.alu(c.threadIndex() + 1);
    });
    auto ops = buildWarpOps(threads, 0, 4);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].aluCycles, 4u);
}

TEST(WarpTrace, DivergentKindsSerialize)
{
    // Even threads compute, odd threads load: two warp ops.
    auto threads = makeThreads(4, [](ThreadCtx &c) {
        if (c.threadIndex() % 2 == 0)
            c.alu(2);
        else
            c.ld(0);
    });
    auto ops = buildWarpOps(threads, 0, 4);
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].activeLanes, 2u);
    EXPECT_EQ(ops[1].activeLanes, 2u);
    EXPECT_NE(ops[0].kind, ops[1].kind);
}

TEST(WarpTrace, UnevenTraceLengths)
{
    auto threads = makeThreads(3, [](ThreadCtx &c) {
        for (std::uint32_t i = 0; i <= c.threadIndex(); ++i)
            c.ld(i * 4096 + c.threadIndex() * 131072);
    });
    auto ops = buildWarpOps(threads, 0, 3);
    // Positions: step0 all 3 lanes, step1 two lanes, step2 one lane.
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].activeLanes, 3u);
    EXPECT_EQ(ops[1].activeLanes, 2u);
    EXPECT_EQ(ops[2].activeLanes, 1u);
}

TEST(WarpTrace, BarrierWaitsForAllLanes)
{
    // Lane 0 reaches the bar immediately; lane 1 loads first. The bar
    // must issue once, after the load, with both lanes.
    std::vector<ThreadCtx> threads;
    threads.emplace_back(0, 0, 2, 1);
    threads.back().bar();
    threads.back().alu(1);
    threads.emplace_back(0, 1, 2, 1);
    threads.back().ld(0);
    threads.back().bar();
    threads.back().alu(1);

    auto ops = buildWarpOps(threads, 0, 2);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, OpKind::Load);
    EXPECT_EQ(ops[1].kind, OpKind::Bar);
    EXPECT_EQ(ops[1].activeLanes, 2u);
    EXPECT_EQ(ops[2].kind, OpKind::Alu);
}

TEST(WarpTrace, LaunchGathersPerLaneRequests)
{
    auto child = std::make_shared<LambdaProgram>(
        "c", allocateFunctionId(), [](ThreadCtx &c) { c.alu(1); });
    auto threads = makeThreads(4, [&](ThreadCtx &c) {
        if (c.threadIndex() < 2)
            c.launch({child, c.threadIndex() + 1, 32});
    });
    auto ops = buildWarpOps(threads, 0, 4);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, OpKind::Launch);
    ASSERT_EQ(ops[0].launches.size(), 2u);
    EXPECT_EQ(ops[0].launches[0].numTbs, 1u);
    EXPECT_EQ(ops[0].launches[1].numTbs, 2u);
}

TEST(WarpTrace, EmptyThreadsProduceNoOps)
{
    auto threads = makeThreads(2, [](ThreadCtx &) {});
    auto ops = buildWarpOps(threads, 0, 2);
    EXPECT_TRUE(ops.empty());
}
