/**
 * @file
 * SIMT front end: zips per-thread op traces into warp instructions with
 * kind-grouped lockstep (divergent op kinds serialize) and coalesces
 * memory ops into unique 128-byte line transactions.
 */

#ifndef LAPERM_KERNELS_WARP_TRACE_HH
#define LAPERM_KERNELS_WARP_TRACE_HH

#include <vector>

#include "kernels/isa.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

/** One warp instruction. */
struct WarpOp
{
    OpKind kind;
    std::uint32_t activeLanes = 0; ///< threads participating
    std::uint32_t aluCycles = 0;   ///< Alu: max over active lanes
    std::vector<Addr> lines;       ///< Load/Store: coalesced unique lines
    std::vector<LaunchRequest> launches; ///< Launch: one per active lane
};

/**
 * Build the warp instruction stream for one warp from the traces of its
 * (up to 32) threads.
 *
 * At each step the earliest thread with remaining ops leads; all threads
 * whose next op has the same kind execute together (the active mask);
 * other kinds execute in later steps — a simple serialization model of
 * SIMT branch divergence.
 */
std::vector<WarpOp> buildWarpOps(const std::vector<ThreadCtx> &threads,
                                 std::uint32_t first_thread,
                                 std::uint32_t count);

/**
 * As buildWarpOps, but rebuilds into @p out, reusing its elements'
 * line/launch buffers (arena reuse in the TB build hot path). @p threads
 * may hold more than first_thread + count contexts; extras are ignored.
 */
void buildWarpOpsInto(std::vector<WarpOp> &out,
                      const std::vector<ThreadCtx> &threads,
                      std::uint32_t first_thread, std::uint32_t count);

} // namespace laperm

#endif // LAPERM_KERNELS_WARP_TRACE_HH
