#include "common/log.hh"

#include <cstdarg>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace laperm {

namespace {
bool g_verbose = true;
/**
 * Serializes stderr emission: the sweep executor calls inform/warn
 * from worker threads, and interleaved vfprintf output (or a torn
 * verbose-flag read) must not corrupt the log.
 */
std::mutex g_logMutex;
} // namespace

void
setVerbose(bool verbose)
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    g_verbose = verbose;
}

bool
verbose()
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    return g_verbose;
}

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::string buf(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(buf.data(), buf.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return buf;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // No lock: abort() must not block on a logging thread, and a torn
    // line during a crash beats a deadlocked one.
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    if (g_verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace laperm
