/**
 * @file
 * Statistics records collected during a simulation run. Plain structs of
 * counters; derived metrics (hit rates, IPC) are computed on demand.
 */

#ifndef LAPERM_SIM_STATS_HH
#define LAPERM_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace laperm {

/** Counters for one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< includes MSHR merges
    std::uint64_t mshrMerges = 0;   ///< misses merged into a pending fill
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;   ///< dirty evictions (L2 only)
    std::uint64_t storeEvicts = 0;  ///< write-evict store hits (L1 only)

    double hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    void add(const CacheStats &other);
};

/** Counters for the DRAM model. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t totalQueueCycles = 0; ///< sum of bank-queue wait

    double avgQueueCycles() const
    {
        std::uint64_t n = reads + writes;
        // End-of-run reporting only. sim-lint: allow(cycle-float)
        return n ? static_cast<double>(totalQueueCycles) /
                       static_cast<double>(n)
                 : 0.0;
    }
};

/** Per-SMX execution counters. */
struct SmxStats
{
    std::uint64_t warpInstructions = 0; ///< issued warp ops
    std::uint64_t threadInstructions = 0; ///< sum of active lanes per op
    std::uint64_t busyCycles = 0;  ///< cycles with >= 1 issue
    std::uint64_t issueSlots = 0;  ///< total issue-slot grants
    std::uint64_t tbsExecuted = 0;
    std::uint64_t dynamicTbsExecuted = 0;
    std::uint64_t barrierStalls = 0;
};

/** Device-wide counters. */
struct GpuStats
{
    Cycle cycles = 0;
    std::uint64_t kernelsLaunched = 0;     ///< host + device
    std::uint64_t deviceLaunches = 0;      ///< CDP kernels / DTBL groups
    std::uint64_t dynamicTbs = 0;
    std::uint64_t kduFullStalls = 0;       ///< launches delayed by full KDU
    std::uint64_t dtblCoalesced = 0;       ///< groups merged onto a kernel
    std::uint64_t queueOverflows = 0;      ///< priority-queue spills to DRAM
    std::uint64_t backupAdoptions = 0;     ///< Adaptive-Bind stage-3 events
    std::uint64_t boundDispatches = 0;     ///< TBs dispatched to bound SMX
    std::uint64_t unboundDispatches = 0;   ///< dynamic TBs placed elsewhere

    std::vector<SmxStats> smx;
    std::vector<CacheStats> l1;  ///< one per SMX (or cluster)
    CacheStats l2;
    DramStats dram;

    /** Thread-instructions per cycle over the whole run. */
    double ipc() const;

    /** Aggregate L1 counters over all SMXs. */
    CacheStats l1Total() const;

    /** Mean of per-SMX busy-cycle fractions. */
    double avgSmxUtilization() const;

    /**
     * Imbalance metric: (max - min) busy cycles across SMXs divided by
     * max busy cycles. 0 = perfectly balanced.
     */
    double smxImbalance() const;
};

} // namespace laperm

#endif // LAPERM_SIM_STATS_HH
