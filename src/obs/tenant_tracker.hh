/**
 * @file
 * Per-tenant attribution of the simulator's event stream (DESIGN.md
 * §14). The tracker is a pure SimObserver: it folds TB dispatch/retire
 * and launch admission events into per-tenant counters — outstanding
 * TBs, pending device launches, retired-TB progress, last-drain cycle —
 * which the multi-tenant manager (src/tenant/) polls between run
 * slices. Like every observer, it never feeds state back into the
 * engine; detaching it cannot change any simulated result.
 *
 * All accumulation is integer: cycles in, cycles out.
 */

#ifndef LAPERM_OBS_TENANT_TRACKER_HH
#define LAPERM_OBS_TENANT_TRACKER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/observer.hh"

namespace laperm {
namespace obs {

/** Counters for one tenant stream. */
struct TenantCounters
{
    /** TBs admitted (host + device + coalesced) and not yet retired. */
    std::uint64_t outstandingTbs = 0;
    /** Device launches queued in the KMU, not yet admitted. */
    std::uint64_t pendingLaunches = 0;
    /** TBs dispatched to an SMX over the whole run. */
    std::uint64_t dispatchedTbs = 0;
    /** TBs retired over the whole run (the progress metric). */
    std::uint64_t retiredTbs = 0;
    /** Kernels/TB-groups admitted over the whole run. */
    std::uint64_t kernelsAdmitted = 0;
    /** Cycle of the last busy -> drained transition. */
    Cycle lastDrainCycle = 0;
};

/**
 * SimObserver folding the event stream into TenantCounters, one slot
 * per tenant id (the vector grows on demand — tenant ids are dense,
 * assigned 0..N-1 by the manager).
 */
class TenantTracker : public SimObserver
{
  public:
    void onTbDispatch(const TbEvent &e) override;
    void onTbRetire(const TbEvent &e) override;
    void onLaunchQueued(const LaunchEvent &e) override;
    void onLaunchAdmitted(const LaunchEvent &e) override;

    /** Counters for @p tenant (zeros if it never emitted an event). */
    const TenantCounters &counters(std::uint32_t tenant) const;

    /** In-flight work: admitted-unretired TBs or queued launches. */
    bool busy(std::uint32_t tenant) const
    {
        const TenantCounters &c = counters(tenant);
        return c.outstandingTbs > 0 || c.pendingLaunches > 0;
    }

    /** TBs resident or awaiting dispatch (the preemption-cost input). */
    std::uint64_t residentTbs(std::uint32_t tenant) const
    {
        const TenantCounters &c = counters(tenant);
        return c.dispatchedTbs - c.retiredTbs;
    }

    std::uint32_t tenantsSeen() const
    {
        return static_cast<std::uint32_t>(perTenant_.size());
    }

  private:
    TenantCounters &slot(std::uint32_t tenant);

    std::vector<TenantCounters> perTenant_;
};

} // namespace obs
} // namespace laperm

#endif // LAPERM_OBS_TENANT_TRACKER_HH
