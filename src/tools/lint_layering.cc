#include "tools/lint_layering.hh"

#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace laperm {
namespace simlint {

bool
LayerSpec::sameGroup(const std::string &a, const std::string &b) const
{
    auto ga = groupOf.find(a);
    auto gb = groupOf.find(b);
    return ga != groupOf.end() && gb != groupOf.end() &&
           ga->second == gb->second;
}

bool
LayerSpec::allows(const std::string &from, const std::string &to) const
{
    if (from == to || sameGroup(from, to))
        return true;
    auto it = deps.find(from);
    if (it == deps.end())
        return false;
    return std::binary_search(it->second.begin(), it->second.end(), to);
}

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Parse `name = ["a", "b"]` into (name, items). */
bool
parseEntry(const std::string &line, std::string &name,
           std::vector<std::string> &items)
{
    static const std::regex entry(
        R"(^([A-Za-z_][\w-]*)\s*=\s*\[([^\]]*)\]$)");
    std::smatch m;
    if (!std::regex_match(line, m, entry))
        return false;
    name = m[1].str();
    items.clear();
    static const std::regex quoted(R"re("([^"]+)")re");
    const std::string body = m[2].str();
    for (auto it = std::sregex_iterator(body.begin(), body.end(), quoted);
         it != std::sregex_iterator(); ++it) {
        items.push_back((*it)[1].str());
    }
    return true;
}

/** Node name after group collapsing. */
std::string
collapse(const LayerSpec &spec, const std::string &module)
{
    auto it = spec.groupOf.find(module);
    return it == spec.groupOf.end() ? module : "group:" + it->second;
}

/** DFS cycle detection over the group-collapsed declared graph. */
bool
findCycle(const std::map<std::string, std::set<std::string>> &adj,
          std::string &cycleNode)
{
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::map<std::string, int> state;
    // Iterative DFS, deterministic order (std::map iteration).
    for (const auto &kv : adj) {
        if (state[kv.first] != 0)
            continue;
        std::vector<std::pair<std::string, bool>> stack;
        stack.push_back({kv.first, false});
        while (!stack.empty()) {
            auto [node, leaving] = stack.back();
            stack.pop_back();
            if (leaving) {
                state[node] = 2;
                continue;
            }
            if (state[node] == 1)
                continue;
            state[node] = 1;
            stack.push_back({node, true});
            auto ait = adj.find(node);
            if (ait == adj.end())
                continue;
            for (const auto &next : ait->second) {
                if (state[next] == 1) {
                    cycleNode = next;
                    return true;
                }
                if (state[next] == 0)
                    stack.push_back({next, false});
            }
        }
    }
    return false;
}

} // namespace

bool
parseLayerSpec(const std::string &text, LayerSpec &spec, std::string &err)
{
    spec = LayerSpec{};
    enum class Section { None, Layers, Groups };
    Section section = Section::None;
    std::size_t lineNo = 0;
    for (const std::string &raw : splitLines(text)) {
        ++lineNo;
        std::string line = raw;
        // strip trailing comment (the spec has no quoted '#')
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line == "[layers]") {
            section = Section::Layers;
            continue;
        }
        if (line == "[groups]") {
            section = Section::Groups;
            continue;
        }
        if (line.front() == '[') {
            err = "layering spec line " + std::to_string(lineNo) +
                  ": unknown section " + line;
            return false;
        }
        std::string name;
        std::vector<std::string> items;
        if (!parseEntry(line, name, items)) {
            err = "layering spec line " + std::to_string(lineNo) +
                  ": expected `name = [\"dep\", ...]`, got: " + line;
            return false;
        }
        if (section == Section::Layers) {
            if (spec.deps.count(name)) {
                err = "layering spec line " + std::to_string(lineNo) +
                      ": duplicate module " + name;
                return false;
            }
            std::sort(items.begin(), items.end());
            spec.deps[name] = items;
        } else if (section == Section::Groups) {
            for (const auto &m : items) {
                if (spec.groupOf.count(m)) {
                    err = "layering spec line " + std::to_string(lineNo) +
                          ": module " + m + " in two groups";
                    return false;
                }
                spec.groupOf[m] = name;
            }
        } else {
            err = "layering spec line " + std::to_string(lineNo) +
                  ": entry outside [layers]/[groups]";
            return false;
        }
    }
    if (spec.deps.empty()) {
        err = "layering spec declares no modules";
        return false;
    }

    // Validation: deps and groups name declared modules.
    for (const auto &kv : spec.deps) {
        for (const auto &d : kv.second) {
            if (!spec.declared(d)) {
                err = "layering spec: module " + kv.first +
                      " depends on undeclared module " + d;
                return false;
            }
        }
    }
    for (const auto &kv : spec.groupOf) {
        if (!spec.declared(kv.first)) {
            err = "layering spec: group " + kv.second +
                  " names undeclared module " + kv.first;
            return false;
        }
    }

    // The declared graph, collapsed over groups, must be a DAG.
    std::map<std::string, std::set<std::string>> adj;
    for (const auto &kv : spec.deps) {
        const std::string from = collapse(spec, kv.first);
        adj[from]; // ensure node exists
        for (const auto &d : kv.second) {
            const std::string to = collapse(spec, d);
            if (from != to)
                adj[from].insert(to);
        }
    }
    std::string cycleNode;
    if (findCycle(adj, cycleNode)) {
        err = "layering spec: declared dependency graph has a cycle "
              "through " +
              cycleNode;
        return false;
    }
    return true;
}

bool
loadLayerSpec(const std::string &path, LayerSpec &spec, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot read layering spec " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseLayerSpec(ss.str(), spec, err);
}

std::string
moduleOfPath(const std::string &path, const LayerSpec &spec)
{
    std::string module;
    std::string cur;
    auto consider = [&](const std::string &part) {
        if (spec.declared(part))
            module = part; // keep the last declared component
    };
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty())
                consider(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    // The final component is the filename, never a module.
    return module;
}

std::vector<Finding>
lintLayering(const std::string &path, const std::string &content,
             const LayerSpec &spec)
{
    std::vector<Finding> findings;
    const std::string module = moduleOfPath(path, spec);

    // Files under a src/ tree must belong to a declared module; other
    // locations (fixtures, tests) are only checked edge-wise.
    if (module.empty()) {
        if (path.find("src/") != std::string::npos ||
            path.find("src\\") != std::string::npos) {
            findings.push_back(Finding{
                path, 1, Rule::Layering,
                "file belongs to no module declared in the layering "
                "spec; add its directory to layering.toml [layers]"});
        }
        return findings;
    }

    static const std::regex inc(R"(^\s*#\s*include\s*"([^"]+)\")");
    // stripComments, not the full strip: include paths ARE string
    // literals and must survive, while a commented-out #include must
    // not fire.
    const std::vector<std::string> lines =
        splitLines(stripComments(content));
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(lines[i], m, inc))
            continue;
        const std::string target = m[1].str();
        const std::size_t slash = target.find('/');
        if (slash == std::string::npos)
            continue; // generated/relative header, out of scope
        // Resolve the include target exactly like the including file:
        // the LAST declared directory component wins, so a nested
        // module ("serve/transport/endpoint.hh") maps to its sublayer,
        // not the umbrella directory — sublayer edges are enforced.
        const std::string targetModule = moduleOfPath(target, spec);
        if (targetModule.empty()) {
            findings.push_back(Finding{
                path, i + 1, Rule::Layering,
                "include \"" + target + "\" targets module '" +
                    target.substr(0, slash) +
                    "' which the layering spec does not declare"});
            continue;
        }
        if (!spec.allows(module, targetModule)) {
            findings.push_back(Finding{
                path, i + 1, Rule::Layering,
                "include \"" + target + "\" violates the layering "
                "spec: module '" + module + "' may not depend on '" +
                    targetModule + "' (layering.toml)"});
        }
    }
    return findings;
}

} // namespace simlint
} // namespace laperm
