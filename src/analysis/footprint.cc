#include "analysis/footprint.hh"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/log.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

using LineSet = std::unordered_set<Addr>;

/** One logical TB with its footprint and children. */
struct TbNode
{
    LineSet lines;
    std::vector<std::uint32_t> children; ///< indices into the node pool
    bool isHost = false;
};

/** Emit one TB's threads, collecting lines and child launches. */
void
expandTb(const KernelProgram &program, std::uint32_t tb_index,
         std::uint32_t threads_per_tb, std::uint32_t num_tbs,
         LineSet &lines, std::vector<LaunchRequest> &launches)
{
    for (std::uint32_t t = 0; t < threads_per_tb; ++t) {
        ThreadCtx ctx(tb_index, t, threads_per_tb, num_tbs);
        program.emitThread(ctx);
        for (const ThreadOp &op : ctx.ops()) {
            if (op.kind == OpKind::Load || op.kind == OpKind::Store)
                lines.insert(op.addr);
        }
        for (const LaunchRequest &req : ctx.launches())
            launches.push_back(req);
    }
}

/**
 * Weighted sibling-sharing accumulator over one family of TBs:
 * sums cos (lines of each member shared with >= 1 other member) and
 * cs (the union footprint of the other members) across members.
 */
void
accumulateSibling(const std::vector<const LineSet *> &family,
                  std::uint64_t &cos_sum, std::uint64_t &cs_sum,
                  std::uint64_t &co_sum)
{
    if (family.size() < 2)
        return;
    std::unordered_map<Addr, std::uint32_t> count;
    for (const LineSet *m : family) {
        for (Addr line : *m)
            ++count[line];
    }
    const std::uint64_t total_union = count.size();
    for (const LineSet *m : family) {
        std::uint64_t shared = 0, exclusive = 0;
        for (Addr line : *m) {
            auto it = count.find(line);
            if (it->second >= 2)
                ++shared;
            else
                ++exclusive;
        }
        cos_sum += shared;
        cs_sum += total_union - exclusive;
        co_sum += m->size();
    }
}

} // namespace

FootprintReport
analyzeFootprint(const Workload &workload)
{
    FootprintReport rep;
    std::uint64_t pc_sum = 0, c_sum = 0;
    std::uint64_t cos_sum = 0, cs_sum = 0, co_sum = 0;
    std::uint64_t pp_cos_sum = 0, pp_cs_sum = 0, pp_co_sum = 0;

    for (const LaunchRequest &wave : workload.waves()) {
        // Expand the whole wave (host TBs + nested children).
        std::deque<TbNode> nodes;
        struct Pending
        {
            LaunchRequest req;
            std::int64_t parent; ///< node index or -1 for host
        };
        std::deque<Pending> queue;
        queue.push_back({wave, -1});

        std::vector<std::uint32_t> host_tbs;
        while (!queue.empty()) {
            Pending p = std::move(queue.front());
            queue.pop_front();
            for (std::uint32_t tb = 0; tb < p.req.numTbs; ++tb) {
                std::uint32_t ix =
                    static_cast<std::uint32_t>(nodes.size());
                nodes.emplace_back();
                TbNode &node = nodes.back();
                node.isHost = p.parent < 0;
                std::vector<LaunchRequest> launches;
                expandTb(*p.req.program, tb, p.req.threadsPerTb,
                         p.req.numTbs, node.lines, launches);
                if (p.parent >= 0) {
                    nodes[static_cast<std::size_t>(p.parent)]
                        .children.push_back(ix);
                    ++rep.childTbs;
                } else {
                    host_tbs.push_back(ix);
                    ++rep.hostTbs;
                }
                rep.deviceLaunches += launches.size();
                for (LaunchRequest &req : launches)
                    queue.push_back({std::move(req), ix});
            }
        }

        // Parent-child and child-sibling over each direct parent.
        for (const TbNode &node : nodes) {
            if (node.children.empty())
                continue;
            ++rep.directParents;

            std::unordered_set<Addr> child_union;
            std::vector<const LineSet *> family;
            for (std::uint32_t c : node.children) {
                family.push_back(&nodes[c].lines);
                child_union.insert(nodes[c].lines.begin(),
                                   nodes[c].lines.end());
            }
            std::uint64_t shared = 0;
            for (Addr line : node.lines)
                shared += child_union.count(line);
            pc_sum += shared;
            c_sum += child_union.size();

            accumulateSibling(family, cos_sum, cs_sum, co_sum);
        }

        // Parent-parent: sibling sharing among the wave's host TBs.
        // Large waves are sampled to keep the union tractable.
        std::vector<const LineSet *> hosts;
        std::size_t step = std::max<std::size_t>(1, host_tbs.size() / 256);
        for (std::size_t i = 0; i < host_tbs.size(); i += step)
            hosts.push_back(&nodes[host_tbs[i]].lines);
        accumulateSibling(hosts, pp_cos_sum, pp_cs_sum, pp_co_sum);
    }

    rep.parentChild = c_sum ? static_cast<double>(pc_sum) /
                                  static_cast<double>(c_sum)
                            : 0.0;
    rep.childSibling = cs_sum ? static_cast<double>(cos_sum) /
                                    static_cast<double>(cs_sum)
                              : 0.0;
    rep.childSiblingOwn = co_sum ? static_cast<double>(cos_sum) /
                                       static_cast<double>(co_sum)
                                 : 0.0;
    rep.parentParent = pp_cs_sum ? static_cast<double>(pp_cos_sum) /
                                       static_cast<double>(pp_cs_sum)
                                 : 0.0;
    return rep;
}

} // namespace laperm
