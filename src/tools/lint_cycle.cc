#include "tools/lint_cycle.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace laperm {
namespace simlint {

bool
isCycleName(const std::string &name)
{
    auto endsWith = [&](const char *suffix) {
        const std::size_t n = std::string(suffix).size();
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    if (name == "cycle" || name == "cycles" || name == "now" ||
        name == "cycle_" || name == "cycles_" || name == "now_" ||
        name == "deadline" || name == "deadline_") {
        return true;
    }
    // Deadline naming convention: readyAt, nextEventAt, queuedAt,
    // l2BankFreeAt_, dispatchCycle, maxCycles, ...
    return endsWith("Cycle") || endsWith("Cycles") ||
           endsWith("Cycle_") || endsWith("Cycles_") ||
           endsWith("At") || endsWith("At_");
}

namespace {

struct Ident
{
    std::size_t begin;
    std::size_t end; ///< one past
    std::string name;
};

std::vector<Ident>
identifiers(const std::string &line)
{
    std::vector<Ident> out;
    std::size_t i = 0;
    while (i < line.size()) {
        char c = line[i];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t b = i;
            while (i < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(line[i])) ||
                    line[i] == '_')) {
                ++i;
            }
            out.push_back(Ident{b, i, line.substr(b, i - b)});
        } else {
            ++i;
        }
    }
    return out;
}

/** Substring of @p s from the '(' at @p open to its balanced close. */
std::string
balancedParens(const std::string &s, std::size_t open)
{
    if (open >= s.size() || s[open] != '(')
        return "";
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return s.substr(open + 1, i - open - 1);
    }
    return s.substr(open + 1); // unbalanced (multi-line): take the rest
}

/** Normalize internal whitespace runs to single spaces, trim ends. */
std::string
squeeze(const std::string &s)
{
    std::string out;
    bool space = true;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!out.empty())
                space = true;
        } else {
            if (space && !out.empty())
                out += ' ';
            space = false;
            out += c;
        }
    }
    return out;
}

bool
isFloatType(const std::string &t)
{
    return t == "double" || t == "float" || t == "long double";
}

bool
isNarrowIntType(const std::string &t)
{
    static const std::set<std::string> narrow = {
        "int",           "short",          "unsigned",
        "unsigned int",  "unsigned short", "int8_t",
        "int16_t",       "int32_t",        "uint8_t",
        "uint16_t",      "uint32_t",       "std::int8_t",
        "std::int16_t",  "std::int32_t",   "std::uint8_t",
        "std::uint16_t", "std::uint32_t",  "char",
        "unsigned char", "signed char",
    };
    return narrow.count(t) != 0;
}

bool
isSigned64Type(const std::string &t)
{
    static const std::set<std::string> s64 = {
        "long",         "long long",   "int64_t",
        "std::int64_t", "ptrdiff_t",   "std::ptrdiff_t",
        "ssize_t",
    };
    return s64.count(t) != 0;
}

/**
 * True when the identifier ending at @p end is immediately followed
 * (modulo whitespace) by a member access or call — `bankFreeAt_.size()`
 * yields a count, `cycles.end()` an iterator: the *member's* value, not
 * the cycle-named object, so the cycle heuristics must not trigger.
 */
bool
memberAccessFollows(const std::string &s, std::size_t end)
{
    while (end < s.size() &&
           std::isspace(static_cast<unsigned char>(s[end]))) {
        ++end;
    }
    if (end >= s.size())
        return false;
    if (s[end] == '.' || s[end] == '(')
        return true;
    return s[end] == '-' && end + 1 < s.size() && s[end + 1] == '>';
}

bool
containsCycleIdent(const std::string &expr,
                   const std::set<std::string> &cycleIdents)
{
    for (const Ident &id : identifiers(expr)) {
        if (memberAccessFollows(expr, id.end))
            continue;
        if (cycleIdents.count(id.name) || isCycleName(id.name))
            return true;
    }
    return false;
}

} // namespace

std::vector<Finding>
lintCycleSafety(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    if (!classifyPath(path).restricted)
        return findings;

    const std::vector<std::string> lines =
        splitLines(stripCommentsAndStrings(content));

    // Identifiers declared with type Cycle anywhere in the file.
    std::set<std::string> cycleIdents;
    // Identifiers declared with a *signed* integer type.
    std::set<std::string> signedIdents;
    {
        static const std::regex cycleDecl(
            R"(\bCycle\b\s*(?:const\b\s*)?[&*]?\s*([A-Za-z_]\w*))");
        static const std::regex signedDecl(
            R"(\b(int|short|long long|long|int8_t|int16_t|int32_t|int64_t|std::int8_t|std::int16_t|std::int32_t|std::int64_t|ptrdiff_t|ssize_t)\s+([A-Za-z_]\w*))");
        for (const std::string &l : lines) {
            for (auto it = std::sregex_iterator(l.begin(), l.end(),
                                                cycleDecl);
                 it != std::sregex_iterator(); ++it) {
                const std::string name = (*it)[1].str();
                if (name != "const")
                    cycleIdents.insert(name);
            }
            for (auto it = std::sregex_iterator(l.begin(), l.end(),
                                                signedDecl);
                 it != std::sregex_iterator(); ++it) {
                // Reject `unsigned int x` / `unsigned long y`: check
                // the token immediately before the match.
                const std::size_t pos =
                    static_cast<std::size_t>(it->position(0));
                const std::string before = l.substr(0, pos);
                static const std::regex unsignedTail(
                    R"((?:unsigned|std::u\w*)\s*$)");
                if (std::regex_search(before, unsignedTail))
                    continue;
                const std::string name = (*it)[2].str();
                if (!isCycleName(name) && !cycleIdents.count(name))
                    signedIdents.insert(name);
            }
        }
    }

    auto isCycle = [&](const std::string &name) {
        return cycleIdents.count(name) != 0 || isCycleName(name);
    };

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &l = lines[i];
        std::set<Rule> flagged; // one finding per rule per line
        auto flag = [&](Rule rule, const std::string &msg) {
            if (flagged.insert(rule).second)
                findings.push_back(Finding{path, i + 1, rule, msg});
        };

        // --- casts: static_cast<T>(expr with cycle ident) ----------
        {
            static const std::regex cast(R"(static_cast\s*<([^<>]*)>)");
            for (auto it = std::sregex_iterator(l.begin(), l.end(), cast);
                 it != std::sregex_iterator(); ++it) {
                const std::string type = squeeze((*it)[1].str());
                const std::size_t after = static_cast<std::size_t>(
                    it->position(0) + it->length(0));
                const std::size_t open = l.find('(', after);
                if (open == std::string::npos)
                    continue;
                const std::string arg = balancedParens(l, open);
                if (!containsCycleIdent(arg, cycleIdents))
                    continue;
                if (isFloatType(type)) {
                    flag(Rule::CycleFloat,
                         "cycle quantity cast to " + type +
                             ": simulated time must stay integer "
                             "(Cycle) end-to-end; justify reporting-"
                             "only conversions with an "
                             "allow(cycle-float) waiver");
                } else if (isNarrowIntType(type)) {
                    flag(Rule::CycleNarrow,
                         "cycle quantity narrowed to " + type +
                             ": wraps after ~4G cycles; keep deadlines "
                             "in Cycle (uint64)");
                } else if (isSigned64Type(type)) {
                    flag(Rule::CycleSign,
                         "cycle quantity cast to signed " + type +
                             ": signed/unsigned mixing on timing "
                             "invites wraparound on subtraction");
                }
            }
        }

        // --- C casts: (double)x, (uint32_t)x ------------------------
        {
            static const std::regex ccast(
                R"(\(\s*((?:std::)?[a-z_][\w: ]*?)\s*\)\s*([A-Za-z_]\w*))");
            for (auto it = std::sregex_iterator(l.begin(), l.end(), ccast);
                 it != std::sregex_iterator(); ++it) {
                const std::string type = squeeze((*it)[1].str());
                const std::string name = (*it)[2].str();
                if (!isCycle(name))
                    continue;
                if (isFloatType(type)) {
                    flag(Rule::CycleFloat,
                         "cycle quantity C-cast to " + type +
                             "; simulated time must stay integer");
                } else if (isNarrowIntType(type)) {
                    flag(Rule::CycleNarrow,
                         "cycle quantity C-cast to " + type +
                             " wraps after ~4G cycles");
                } else if (isSigned64Type(type)) {
                    flag(Rule::CycleSign,
                         "cycle quantity C-cast to signed " + type);
                }
            }
        }

        // --- float decl/param initialized from a cycle --------------
        {
            static const std::regex fpInit(
                R"(\b(?:double|float)\s+\w+\s*=([^;]*))");
            std::smatch m;
            if (std::regex_search(l, m, fpInit) &&
                containsCycleIdent(m[1].str(), cycleIdents)) {
                flag(Rule::CycleFloat,
                     "float/double initialized from a cycle quantity; "
                     "simulated time must stay integer (Cycle)");
            }
        }

        // --- arithmetic with a floating literal ---------------------
        // --- or with an identifier declared signed ------------------
        {
            static const std::regex binop(
                R"(([A-Za-z_]\w*|\d+\.\d*[fF]?)\s*(==|!=|<=|>=|[-+*/%<>])\s*([A-Za-z_]\w*|\d+\.\d*[fF]?))");
            auto isFpLit = [](const std::string &s) {
                return !s.empty() &&
                       std::isdigit(static_cast<unsigned char>(s[0])) &&
                       s.find('.') != std::string::npos;
            };
            for (auto it = std::sregex_iterator(l.begin(), l.end(), binop);
                 it != std::sregex_iterator(); ++it) {
                const std::string lhs = (*it)[1].str();
                const std::string op = (*it)[2].str();
                const std::string rhs = (*it)[3].str();
                const bool lhsObj = memberAccessFollows(
                    l, static_cast<std::size_t>(it->position(1) +
                                                it->length(1)));
                const bool rhsObj = memberAccessFollows(
                    l, static_cast<std::size_t>(it->position(3) +
                                                it->length(3)));
                const bool lhsCyc =
                    !lhsObj && !isFpLit(lhs) && isCycle(lhs);
                const bool rhsCyc =
                    !rhsObj && !isFpLit(rhs) && isCycle(rhs);
                if (!lhsCyc && !rhsCyc)
                    continue;
                // Template brackets masquerade as comparisons; a
                // type-name operand means this is not arithmetic.
                if ((op == "<" || op == ">") &&
                    (lhs == "Cycle" || rhs == "Cycle"))
                    continue;
                if ((lhsCyc && isFpLit(rhs)) || (rhsCyc && isFpLit(lhs))) {
                    flag(Rule::CycleFloat,
                         "floating-point arithmetic on a cycle "
                         "quantity (" + (lhsCyc ? lhs : rhs) + " " + op +
                             " literal); simulated time must stay "
                             "integer");
                } else if ((lhsCyc && !rhsObj && signedIdents.count(rhs)) ||
                           (rhsCyc && !lhsObj && signedIdents.count(lhs))) {
                    flag(Rule::CycleSign,
                         "cycle quantity mixed with signed identifier "
                         "'" + (lhsCyc ? rhs : lhs) +
                             "' in '" + op +
                             "': signed/unsigned conversion on timing");
                }
            }
        }

        // --- math library calls on cycle quantities -----------------
        {
            static const std::regex mathCall(
                R"(\b(?:std::)?(pow|sqrt|floor|ceil|round|lround|exp|log|log2|fabs)\s*\()");
            for (auto it =
                     std::sregex_iterator(l.begin(), l.end(), mathCall);
                 it != std::sregex_iterator(); ++it) {
                const std::size_t open = static_cast<std::size_t>(
                    it->position(0) + it->length(0) - 1);
                if (containsCycleIdent(balancedParens(l, open),
                                       cycleIdents)) {
                    flag(Rule::CycleFloat,
                         "math-library call on a cycle quantity "
                         "returns floating point; simulated time must "
                         "stay integer");
                }
            }
        }
    }
    return findings;
}

} // namespace simlint
} // namespace laperm
