/**
 * @file
 * Observability walkthrough on the Figure-4 scenario: runs the 8-parent
 * / 6-child microbenchmark under each scheduling policy with a
 * TraceCollector and LocalityTracker attached, and writes the full set
 * of trace artifacts per policy:
 *
 *   fig4_<policy>.trace.json     Chrome-trace timeline (open in
 *                                https://ui.perfetto.dev or
 *                                chrome://tracing)
 *   fig4_<policy>.intervals.tsv  per-interval dispatch/occupancy metrics
 *   fig4_<policy>.latency.tsv    launch-latency histogram (Sec. IV-D)
 *   fig4_<policy>.locality.tsv   cache-hit reuse-class attribution
 *
 * Run: ./fig4_timeline
 */

#include <cstdio>
#include <memory>
#include <string>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "kernels/lambda_program.hh"
#include "obs/locality.hh"
#include "obs/trace_collector.hh"

using namespace laperm;

namespace {

void
runPolicy(TbPolicy policy)
{
    GpuConfig cfg;
    cfg.numSmx = 4;
    cfg.maxThreadsPerSmx = 64;
    cfg.maxTbsPerSmx = 1;
    cfg.regsPerSmx = 16384;
    cfg.smemPerSmx = 16 * 1024;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 64 * 1024;
    cfg.l2Assoc = 8;
    cfg.kduEntries = 8;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.dtblLaunchLatency = 5;
    cfg.launchIssueCycles = 4;
    cfg.tbPolicy = policy;

    // Same shape as paper_figure4, plus memory traffic so the locality
    // attribution has something to classify: every child re-reads the
    // cache lines its parent TB wrote (the parent-line reuse LaPerm
    // schedules for). The two child groups share functionId 101, so
    // DTBL still coalesces them; each captures its parent's data base.
    auto make_child = [](std::uint32_t parent_ix) {
        return std::make_shared<LambdaProgram>(
            "child", 101, [parent_ix](ThreadCtx &c) {
                const Addr base = 0x10000 + 0x400 * parent_ix;
                for (int rep = 0; rep < 4; ++rep)
                    c.ld(base + 128 * (c.threadIndex() % 8));
                c.alu(200);
            });
    };
    auto child2 = make_child(2);
    auto child4 = make_child(4);
    auto parent = std::make_shared<LambdaProgram>(
        "parent", 100, [child2, child4](ThreadCtx &c) {
            const Addr base = 0x10000 + 0x400 * c.tbIndex();
            c.st(base + 128 * (c.threadIndex() % 8));
            if (c.threadIndex() == 0 && c.tbIndex() == 2)
                c.launch({child2, 2, 32});
            if (c.threadIndex() == 0 && c.tbIndex() == 4)
                c.launch({child4, 4, 32});
            c.alu(200);
        });

    Gpu gpu(cfg);
    obs::TraceCollector collector;
    gpu.observers().attach(&collector);
    obs::LocalityTracker locality(gpu.mem().numL1());
    gpu.setLocalityTracker(&locality);

    gpu.launchHostKernel({parent, 8, 32});
    gpu.runToIdle();

    const std::string base = std::string("fig4_") + toString(policy);
    collector.writeChromeTrace(base + ".trace.json");
    collector.writeIntervalTsv(base + ".intervals.tsv", 50);
    collector.writeLaunchLatencyTsv(base + ".latency.tsv");
    locality.writeTsv(base + ".locality.tsv");

    const auto lats = collector.launchLatencies();
    std::printf("--- %s: %llu cycles, %zu TBs, %zu launches, "
                "%zu steals\n",
                toString(policy),
                static_cast<unsigned long long>(gpu.stats().cycles),
                collector.retires().size(), lats.size(),
                collector.steals().size());
    for (const auto &ll : lats) {
        std::printf("    kernel %u%s: queued@%llu admitted@%llu "
                    "first-dispatch@%llu (queue %llu + dispatch %llu "
                    "cycles)\n",
                    ll.kernel, ll.coalesced ? " (coalesced)" : "",
                    static_cast<unsigned long long>(ll.queuedAt),
                    static_cast<unsigned long long>(ll.admittedAt),
                    static_cast<unsigned long long>(ll.firstDispatchAt),
                    static_cast<unsigned long long>(ll.queueCycles()),
                    static_cast<unsigned long long>(ll.dispatchCycles()));
    }
    std::printf("    artifacts: %s.{trace.json,intervals.tsv,"
                "latency.tsv,locality.tsv}\n\n",
                base.c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Figure-4 scenario with the observability layer "
                "attached.\nLoad any .trace.json in "
                "https://ui.perfetto.dev to see the timeline.\n\n");
    runPolicy(TbPolicy::RR);
    runPolicy(TbPolicy::TbPri);
    runPolicy(TbPolicy::SmxBind);
    runPolicy(TbPolicy::AdaptiveBind);
    return 0;
}
