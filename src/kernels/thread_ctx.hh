/**
 * @file
 * The device API visible to kernel programs while emitting one thread's
 * op trace: loads, stores, compute, barriers and device launches.
 */

#ifndef LAPERM_KERNELS_THREAD_CTX_HH
#define LAPERM_KERNELS_THREAD_CTX_HH

#include <cstdint>
#include <vector>

#include "kernels/isa.hh"

namespace laperm {

/**
 * Trace-building context for a single thread. A KernelProgram's
 * emitThread() calls these methods in program order.
 */
class ThreadCtx
{
  public:
    ThreadCtx(std::uint32_t tb_index, std::uint32_t thread_index,
              std::uint32_t threads_per_tb, std::uint32_t num_tbs);

    /**
     * Reinitialize for a new thread, keeping the trace buffers'
     * capacity (arena reuse in the TB build hot path).
     */
    void reset(std::uint32_t tb_index, std::uint32_t thread_index,
               std::uint32_t threads_per_tb, std::uint32_t num_tbs);

    /** Index of this thread's TB within its launch (blockIdx.x). */
    std::uint32_t tbIndex() const { return tbIndex_; }
    /** Index of this thread within its TB (threadIdx.x). */
    std::uint32_t threadIndex() const { return threadIndex_; }
    /** Threads per TB (blockDim.x). */
    std::uint32_t threadsPerTb() const { return threadsPerTb_; }
    /** TBs in this launch (gridDim.x). */
    std::uint32_t numTbs() const { return numTbs_; }
    /** Flattened global thread index. */
    std::uint32_t globalThreadIndex() const
    {
        return tbIndex_ * threadsPerTb_ + threadIndex_;
    }

    /** Load the line(s) covering [addr, addr+bytes). */
    void ld(Addr addr, std::uint32_t bytes = 4);
    /** Store to the line(s) covering [addr, addr+bytes). */
    void st(Addr addr, std::uint32_t bytes = 4);
    /** Compute for @p cycles cycles. */
    void alu(std::uint32_t cycles = 4);
    /** TB-wide barrier; every thread of the TB must emit it. */
    void bar();
    /** Launch a child kernel (CDP) / TB group (DTBL). */
    void launch(LaunchRequest req);

    const std::vector<ThreadOp> &ops() const { return ops_; }
    const std::vector<LaunchRequest> &launches() const { return launches_; }

  private:
    std::uint32_t tbIndex_;
    std::uint32_t threadIndex_;
    std::uint32_t threadsPerTb_;
    std::uint32_t numTbs_;
    std::vector<ThreadOp> ops_;
    std::vector<LaunchRequest> launches_;
};

} // namespace laperm

#endif // LAPERM_KERNELS_THREAD_CTX_HH
