/**
 * @file
 * Quickstart: simulate one irregular workload (BFS on a citation-style
 * graph) on the Table I GPU under the baseline round-robin scheduler
 * and under LaPerm (Adaptive-Bind), and compare the metrics the paper
 * reports: L1/L2 hit rate and IPC.
 *
 * Run: ./quickstart [tiny|small|full]
 */

#include <cstdio>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Tiny);

    std::printf("LaPerm quickstart: bfs-citation at scale '%s'\n\n",
                toString(scale));

    auto workload = createWorkload("bfs-citation");
    workload->setup(scale, /*seed=*/1);
    std::printf("workload footprint: %.1f MB, %zu host waves\n\n",
                static_cast<double>(workload->footprintBytes()) / 1e6,
                workload->waves().size());

    Table table({"scheduler", "model", "IPC", "L1 hit", "L2 hit",
                 "cycles"});
    for (DynParModel model : {DynParModel::CDP, DynParModel::DTBL}) {
        for (TbPolicy policy : {TbPolicy::RR, TbPolicy::AdaptiveBind}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = model;
            cfg.tbPolicy = policy;
            RunResult r = runOne(*workload, cfg);
            table.addRow({toString(policy), toString(model),
                          fmtF(r.ipc), fmtPct(r.l1HitRate),
                          fmtPct(r.l2HitRate), fmtF(r.cycles, 0)});
        }
    }
    table.print();

    std::printf("\nLaPerm (Adaptive-Bind) exploits the parent-child\n"
                "reference locality created by dynamic parallelism;\n"
                "see bench/ for the full paper reproduction.\n");
    return 0;
}
