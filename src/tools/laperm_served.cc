/**
 * @file
 * Simulation-serving daemon (DESIGN.md §10, §15): listens on a Unix or
 * TCP endpoint, runs simulation requests on a thread pool behind a
 * tiered (memory + shared disk) fingerprint-gated result cache, and
 * answers with canonical result records. Pair with laperm_submit.
 *
 * Usage:
 *   laperm_served [options]
 *     --listen ENDPOINT    unix:PATH | tcp:HOST:PORT | bare path
 *                          (default unix:laperm_served.sock)
 *     --socket PATH        legacy alias for --listen unix:PATH
 *     --cluster N          supervise N worker daemons on derived
 *                          endpoints and balance requests onto them by
 *                          consistent hash of the content key
 *     --jobs N             worker threads (default: hardware)
 *     --queue-capacity N   admission bound before shedding (default 64)
 *     --timeout-ms N       per-request waiter bound (default 120000)
 *     --cache-dir DIR      result cache root (default $LAPERM_CACHE_DIR
 *                          or ./cache); cluster workers always share it
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "harness/result_cache.hh"
#include "serve/cluster/balancer.hh"
#include "serve/cluster/supervisor.hh"
#include "serve/service/service_handler.hh"
#include "serve/session/server.hh"
#include "tools/cli_parse.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--listen ENDPOINT] [--socket PATH] "
                 "[--cluster N] [--jobs N] [--queue-capacity N] "
                 "[--timeout-ms N] [--cache-dir DIR]\n",
                 argv0);
    std::exit(2);
}

std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

int
runSingle(const SessionOptions &session, ServiceOptions service)
{
    ServiceHandler handler(std::move(service));
    Server server(session, handler);
    std::string err;
    if (!server.start(err)) {
        std::fprintf(stderr, "laperm_served: %s\n", err.c_str());
        return 1;
    }
    // stdout marker the smoke scripts and operators wait for.
    std::printf("laperm_served listening on %s (fingerprint %s)\n",
                server.boundEndpoint().toString().c_str(),
                handler.service().fingerprint().c_str());
    std::fflush(stdout);

    // Poll so an OS signal (flag set by the handler) and a protocol
    // shutdown verb both end the same wait loop.
    while (!server.waitShutdown(200)) {
        if (g_interrupted.load())
            server.requestShutdown();
    }
    server.stop();

    const ServiceMetrics m = handler.service().metrics();
    std::fprintf(stderr, "laperm_served: shut down cleanly\n%s",
                 m.toTsv().c_str());
    return 0;
}

int
runCluster(const SessionOptions &session, unsigned workers,
           const std::vector<std::string> &workerArgs,
           const char *argv0)
{
    if (session.endpoint.kind == Endpoint::Kind::Tcp &&
        session.endpoint.port == 0) {
        std::fprintf(stderr, "laperm_served: --cluster over tcp needs "
                             "an explicit port (worker ports are "
                             "derived from it)\n");
        return 2;
    }

    SupervisorOptions supOpts;
    supOpts.publicEndpoint = session.endpoint;
    supOpts.workers = workers;
    supOpts.exePath = selfExePath(argv0);
    supOpts.workerArgs = workerArgs;
    Supervisor supervisor(supOpts);

    std::string err;
    if (!supervisor.startAll(err)) {
        std::fprintf(stderr, "laperm_served: %s\n", err.c_str());
        supervisor.stopAll();
        return 1;
    }

    BalancerOptions balOpts;
    balOpts.workers = supervisor.workerEndpoints();
    BalancerHandler balancer(std::move(balOpts));
    Server server(session, balancer);
    if (!server.start(err)) {
        std::fprintf(stderr, "laperm_served: %s\n", err.c_str());
        supervisor.stopAll();
        return 1;
    }
    std::printf(
        "laperm_served cluster (%u workers) listening on %s "
        "(fingerprint %s)\n",
        workers, server.boundEndpoint().toString().c_str(),
        simFingerprint().c_str());
    std::fflush(stdout);

    // The poll loop doubles as the respawn loop: a worker that dies
    // outside shutdown is replaced within one tick. Once shutdown is
    // requested (verb or signal), respawning stops so workers that the
    // balancer's fan-out already terminated stay down.
    while (!server.waitShutdown(200)) {
        if (g_interrupted.load())
            server.requestShutdown();
        supervisor.pollRespawn();
    }
    server.stop();
    supervisor.stopAll();
    std::fprintf(stderr, "laperm_served: cluster shut down cleanly\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    SessionOptions session;
    ServiceOptions service;
    unsigned cluster = 0;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    auto parse_u32 = [&](const char *s, const char *what) {
        std::uint32_t v = 0;
        if (!cli::parseU32(s, v)) {
            std::fprintf(stderr, "bad %s value '%s'\n", what, s);
            std::exit(2);
        }
        return v;
    };
    auto parse_u64 = [&](const char *s, const char *what) {
        std::uint64_t v = 0;
        if (!cli::parseU64(s, v)) {
            std::fprintf(stderr, "bad %s value '%s'\n", what, s);
            std::exit(2);
        }
        return v;
    };

    // Worker args reproduce the service-shaping flags verbatim so
    // every cluster worker runs the configuration the operator gave
    // the supervisor.
    std::vector<std::string> workerArgs;
    bool explicitCacheDir = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--listen") || !std::strcmp(a, "--socket")) {
            const bool legacy = !std::strcmp(a, "--socket");
            const char *text = next_arg(i);
            std::string err;
            Endpoint ep;
            if (legacy) {
                ep = Endpoint::unixAt(text);
            } else if (!parseEndpoint(text, ep, err)) {
                std::fprintf(stderr, "laperm_served: %s\n",
                             err.c_str());
                return 2;
            }
            session.endpoint = ep;
        } else if (!std::strcmp(a, "--cluster")) {
            cluster = parse_u32(next_arg(i), "--cluster");
            if (cluster == 0) {
                std::fprintf(stderr, "--cluster must be >= 1\n");
                return 2;
            }
        } else if (!std::strcmp(a, "--jobs")) {
            const char *v = next_arg(i);
            service.jobs = parse_u32(v, "--jobs");
            workerArgs.insert(workerArgs.end(), {"--jobs", v});
        } else if (!std::strcmp(a, "--queue-capacity")) {
            const char *v = next_arg(i);
            service.queueCapacity = parse_u32(v, "--queue-capacity");
            workerArgs.insert(workerArgs.end(),
                              {"--queue-capacity", v});
        } else if (!std::strcmp(a, "--timeout-ms")) {
            const char *v = next_arg(i);
            service.timeoutMs = parse_u64(v, "--timeout-ms");
            workerArgs.insert(workerArgs.end(), {"--timeout-ms", v});
        } else if (!std::strcmp(a, "--cache-dir")) {
            const char *v = next_arg(i);
            service.cacheDir = v;
            workerArgs.insert(workerArgs.end(), {"--cache-dir", v});
            explicitCacheDir = true;
        } else {
            usage(argv[0]);
        }
    }
    if (service.queueCapacity == 0) {
        std::fprintf(stderr, "--queue-capacity must be >= 1\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (cluster == 0)
        return runSingle(session, std::move(service));

    // Workers share one disk cache tier — that IS the cluster's
    // cross-worker dedup. Resolve the default here so the directory is
    // pinned even if a worker's environment were to differ.
    if (!explicitCacheDir) {
        workerArgs.insert(workerArgs.end(),
                          {"--cache-dir", cacheRootDir()});
    }
    return runCluster(session, cluster, workerArgs, argv[0]);
}
