
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/amr.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/amr.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/amr.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/bht.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/bht.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/bht.cc.o.d"
  "/root/repo/src/workloads/clr.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/clr.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/clr.cc.o.d"
  "/root/repo/src/workloads/graph_common.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/graph_common.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/graph_common.cc.o.d"
  "/root/repo/src/workloads/join.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/join.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/join.cc.o.d"
  "/root/repo/src/workloads/pre.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/pre.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/pre.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/regx.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/regx.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/regx.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/sssp.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/sssp.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/laperm_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/laperm_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/laperm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
