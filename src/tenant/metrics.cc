#include "tenant/metrics.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {
namespace tenant {

Cycle
percentileNearestRank(std::vector<Cycle> samples, std::uint32_t pct)
{
    if (samples.empty())
        return 0;
    laperm_assert(pct >= 1 && pct <= 100, "percentile out of range");
    std::sort(samples.begin(), samples.end());
    // Nearest rank: ceil(pct/100 * N), computed in integers.
    const std::uint64_t n = samples.size();
    std::uint64_t rank = (static_cast<std::uint64_t>(pct) * n + 99) / 100;
    if (rank == 0)
        rank = 1;
    return samples[rank - 1];
}

double
jainIndex(const std::vector<std::uint64_t> &progress)
{
    if (progress.empty())
        return 0.0;
    // Integer sums; the single division happens once at the end, so
    // identical entries give exactly (n*x)^2 / (n * n*x^2) == 1.0.
    std::uint64_t sum = 0;
    std::uint64_t sumSq = 0;
    for (std::uint64_t x : progress) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq == 0)
        return 0.0;
    const double num = static_cast<double>(sum) * static_cast<double>(sum);
    const double den = static_cast<double>(progress.size()) *
                       static_cast<double>(sumSq);
    return num / den;
}

MixMetrics
computeMixMetrics(const MultiTenantResult &shared,
                  const std::vector<TenantRunResult> &solo)
{
    laperm_assert(shared.perTenant.size() == solo.size(),
                  "solo baselines must be index-aligned with tenants");

    MixMetrics out;
    out.makespan = shared.makespan;

    std::vector<std::uint64_t> progress;
    double anttSum = 0.0;
    for (std::size_t i = 0; i < shared.perTenant.size(); ++i) {
        const TenantRunResult &sh = shared.perTenant[i];
        const TenantRunResult &so = solo[i];
        laperm_assert(sh.jobTurnarounds.size() == so.jobTurnarounds.size(),
                      "shared and solo runs completed different job "
                      "counts for tenant '%s'",
                      sh.name.c_str());

        TenantMetrics tm;
        tm.name = sh.name;
        tm.tenant = sh.tenant;
        tm.retiredTbs = sh.retiredTbs;
        tm.jobs = static_cast<std::uint32_t>(sh.jobTurnarounds.size());

        // ANTT_i: mean over jobs of TT_shared / TT_solo. Each ratio is
        // one integer-over-integer division, so a solo-vs-itself run is
        // exactly 1.0 per job and exactly 1.0 after the mean.
        double ratioSum = 0.0;
        for (std::size_t j = 0; j < sh.jobTurnarounds.size(); ++j) {
            const std::uint64_t tShared = sh.jobTurnarounds[j];
            const std::uint64_t tSolo = so.jobTurnarounds[j];
            laperm_assert(tSolo > 0, "zero solo turnaround");
            // Fixed job order, end-of-run only. sim-lint: allow(fp-accum)
            ratioSum += static_cast<double>(tShared) /
                        static_cast<double>(tSolo);
        }
        tm.antt = sh.jobTurnarounds.empty()
                      ? 0.0
                      : ratioSum /
                            static_cast<double>(sh.jobTurnarounds.size());

        tm.p50 = percentileNearestRank(sh.waveLatencies, 50);
        tm.p95 = percentileNearestRank(sh.waveLatencies, 95);
        tm.p99 = percentileNearestRank(sh.waveLatencies, 99);

        // STP term: total solo work time over total shared work time —
        // this tenant's effective speedup under sharing (<= 1).
        std::uint64_t totShared = 0;
        std::uint64_t totSolo = 0;
        for (Cycle t : sh.jobTurnarounds)
            totShared += t;
        for (Cycle t : so.jobTurnarounds)
            totSolo += t;
        if (totShared > 0) {
            out.stp += static_cast<double>(totSolo) /
                       static_cast<double>(totShared);
        }

        // Fixed tenant order, end-of-run only. sim-lint: allow(fp-accum)
        anttSum += tm.antt;
        progress.push_back(sh.retiredTbs);
        out.perTenant.push_back(std::move(tm));
    }

    out.antt = out.perTenant.empty()
                   ? 0.0
                   : anttSum / static_cast<double>(out.perTenant.size());
    out.jain = jainIndex(progress);
    return out;
}

} // namespace tenant
} // namespace laperm
