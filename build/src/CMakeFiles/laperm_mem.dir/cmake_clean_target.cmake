file(REMOVE_RECURSE
  "liblaperm_mem.a"
)
