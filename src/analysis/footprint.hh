/**
 * @file
 * Shared-footprint analysis reproducing the methodology of Section
 * III-A / Figure 2: 128-byte-line footprints per TB, intersected
 * between direct parents and their children, among sibling children,
 * and among parent-kernel TBs.
 */

#ifndef LAPERM_ANALYSIS_FOOTPRINT_HH
#define LAPERM_ANALYSIS_FOOTPRINT_HH

#include <cstdint>

#include "workloads/workload.hh"

namespace laperm {

/** Shared-footprint ratios for one workload instance. */
struct FootprintReport
{
    /**
     * Parent-child ratio pc/c: lines shared between each direct parent
     * TB and the union of its children, over the children's footprint.
     * Weighted average over all direct parents.
     */
    double parentChild = 0.0;

    /**
     * Child-sibling ratio cos/cs: lines a child shares with the union
     * of its siblings, over the siblings' footprint. Weighted average
     * over all children with at least one sibling.
     */
    double childSibling = 0.0;

    /**
     * Alternative normalization cos/co: the fraction of a child's own
     * footprint shared with its siblings. With many single-TB
     * launches per parent TB (our launch granularity) the cos/cs
     * union-normalized ratio shrinks as 1/siblings even under heavy
     * sharing; cos/co is the size-independent sharing measure.
     */
    double childSiblingOwn = 0.0;

    /** The same sibling ratio computed among host-kernel (parent) TBs. */
    double parentParent = 0.0;

    std::uint64_t directParents = 0; ///< parents that launched children
    std::uint64_t childTbs = 0;
    std::uint64_t hostTbs = 0;
    std::uint64_t deviceLaunches = 0;
};

/**
 * Walk @p workload's waves (no timing), expanding device launches
 * recursively, and compute the footprint-sharing report.
 */
FootprintReport analyzeFootprint(const Workload &workload);

} // namespace laperm

#endif // LAPERM_ANALYSIS_FOOTPRINT_HH
