/**
 * @file
 * Thin POSIX Unix-domain socket helpers shared by the server, the
 * client library, and the tests. All functions return -1 / false and
 * fill @p err instead of throwing; SIGPIPE is avoided by sending with
 * MSG_NOSIGNAL, so callers never need signal handlers.
 */

#ifndef LAPERM_SERVE_SOCKET_UTIL_HH
#define LAPERM_SERVE_SOCKET_UTIL_HH

#include <cstdint>
#include <string>

namespace laperm {
namespace serve {

/**
 * Create, bind, and listen on a Unix-domain socket. A stale socket
 * file (left by a crashed daemon — nothing accepts connections on it)
 * is unlinked and rebound; a live one yields an "already in use"
 * error. Returns the listening fd or -1.
 */
int unixListen(const std::string &path, int backlog, std::string &err);

/** Connect to a Unix-domain socket. Returns fd or -1. */
int unixConnect(const std::string &path, std::string &err);

/** Bound the time recv() may block on @p fd (0 = no timeout). */
bool setRecvTimeout(int fd, std::uint64_t ms);

/** Send all of @p data (handles partial writes, no SIGPIPE). */
bool writeAll(int fd, const std::string &data);

/**
 * Read one '\n'-terminated line. @p carry holds bytes received past
 * the previous line and must persist across calls per connection.
 * Returns false on EOF/error with no complete line buffered.
 */
bool readLine(int fd, std::string &carry, std::string &line);

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SOCKET_UTIL_HH
