#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"

using namespace laperm;

namespace {

std::string
tempDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "laperm_rc_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

ResultRecord
sampleRecord()
{
    ResultRecord r;
    r.workload = "bfs-cage";
    r.model = DynParModel::DTBL;
    r.policy = TbPolicy::AdaptiveBind;
    r.cycles = 123456789ull;
    r.launches = 42;
    r.dynamicTbs = 1000;
    r.bound = 987;
    r.overflows = 3;
    r.kduStalls = 17;
    // Deliberately awkward doubles: full-precision %.17g must
    // round-trip them bit-exactly.
    r.ipc = 1.0 / 3.0;
    r.l1 = 0.1 + 0.2;
    r.l2 = 0.87654321987654321;
    r.util = 2.0 / 7.0;
    r.imbalance = 1e-17;
    return r;
}

} // namespace

TEST(ResultRecordTest, EncodeDecodeRoundTripIsBitExact)
{
    const ResultRecord a = sampleRecord();
    ResultRecord b;
    ASSERT_TRUE(ResultRecord::decode(a.encode(), b));
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.launches, b.launches);
    EXPECT_EQ(a.dynamicTbs, b.dynamicTbs);
    EXPECT_EQ(a.bound, b.bound);
    EXPECT_EQ(a.overflows, b.overflows);
    EXPECT_EQ(a.kduStalls, b.kduStalls);
    // Bit-exact, not approximately equal: the determinism contract.
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1, b.l1);
    EXPECT_EQ(a.l2, b.l2);
    EXPECT_EQ(a.util, b.util);
    EXPECT_EQ(a.imbalance, b.imbalance);
    // And therefore every derived rendering matches byte-for-byte.
    EXPECT_EQ(a.csvRow(), b.csvRow());
    EXPECT_EQ(a.encode(), b.encode());
}

TEST(ResultRecordTest, ConfigHashTravelsThroughEncodeAndCsv)
{
    // A default-machine record: encode spells out the default hash,
    // decode recovers it, and the record renders as a legacy row.
    ResultRecord plain = sampleRecord();
    EXPECT_FALSE(plain.customMachine());
    ResultRecord back;
    ASSERT_TRUE(ResultRecord::decode(plain.encode(), back));
    EXPECT_FALSE(back.customMachine());
    EXPECT_EQ(back.csvRow(), plain.csvRow());

    // A v100 record: the machine hash survives the round trip and the
    // extended CSV row carries it as the last column.
    ResultRecord v100 = sampleRecord();
    v100.config = machineHash(presetConfig("v100"));
    EXPECT_TRUE(v100.customMachine());
    ASSERT_TRUE(ResultRecord::decode(v100.encode(), back));
    EXPECT_EQ(back.config, v100.config);
    EXPECT_TRUE(back.customMachine());
    EXPECT_EQ(back.csvRowWithConfig(),
              back.csvRow() + "," + v100.config);
    EXPECT_NE(plain.encode(), v100.encode()); // hashes differ on wire

    // The extended header has exactly one extra column.
    EXPECT_EQ(statsCsvHeaderWithConfig(),
              std::string(statsCsvHeader()) + ",config");
}

TEST(ResultRecordTest, DecodeRejectsMalformedLines)
{
    ResultRecord r;
    EXPECT_FALSE(ResultRecord::decode("", r));
    EXPECT_FALSE(ResultRecord::decode("v2 workload=x", r));
    EXPECT_FALSE(ResultRecord::decode("v1 workload=x", r)); // missing
    std::string full = sampleRecord().encode();
    EXPECT_FALSE(ResultRecord::decode(full + " extra=1", r));
}

TEST(ResultCacheTest, ContentKeyIsStableAndSensitive)
{
    const std::string k1 = contentKey("w=a m=1 p=0 seed=1");
    EXPECT_EQ(k1.size(), 32u); // 128-bit hex
    EXPECT_EQ(k1, contentKey("w=a m=1 p=0 seed=1"));
    EXPECT_NE(k1, contentKey("w=a m=1 p=0 seed=2"));
    EXPECT_NE(k1, contentKey("w=b m=1 p=0 seed=1"));
}

TEST(ResultCacheTest, StoreLoadByContentKey)
{
    const std::string dir = tempDir("keyed");
    ResultCache cache(dir, "fp-test");
    const std::string key = contentKey("some request");
    const std::string payload = sampleRecord().encode();

    std::string out;
    EXPECT_FALSE(cache.load(key, out)); // miss before store
    ASSERT_TRUE(cache.store(key, payload));
    ASSERT_TRUE(cache.load(key, out));
    EXPECT_EQ(out, payload);
}

TEST(ResultCacheTest, FingerprintMismatchIsAMiss)
{
    const std::string dir = tempDir("fp");
    const std::string key = contentKey("req");
    const std::string payload = sampleRecord().encode();

    ResultCache writer(dir, "fp-old");
    ASSERT_TRUE(writer.store(key, payload));

    // Same directory, different simulator build: must self-invalidate.
    ResultCache reader(dir, "fp-new");
    std::string out;
    EXPECT_FALSE(reader.load(key, out));

    // The original build still hits.
    std::string again;
    ASSERT_TRUE(writer.load(key, again));
    EXPECT_EQ(again, payload);
}

TEST(ResultCacheTest, FileStoreLoadValidatesFingerprint)
{
    const std::string dir = tempDir("file");
    const std::string path = dir + "/sweep.tsv";

    ResultCache writer(dir, "fp-a");
    ASSERT_TRUE(writer.storeFile(path, "payload line\n"));

    std::string out;
    ASSERT_TRUE(writer.loadFile(path, out));
    EXPECT_EQ(out, "payload line\n");

    ResultCache other(dir, "fp-b");
    EXPECT_FALSE(other.loadFile(path, out));
    EXPECT_FALSE(writer.loadFile(dir + "/missing.tsv", out));
}

TEST(ResultCacheTest, SweepTsvRoundTrip)
{
    std::vector<RunResult> rows(2);
    rows[0].workload = std::string("bfs-cage");
    rows[0].model = DynParModel::CDP;
    rows[0].policy = TbPolicy::RR;
    rows[0].ipc = 1.0 / 3.0;
    rows[0].l1HitRate = 0.5;
    rows[0].l2HitRate = 0.25;
    rows[0].cycles = 1e6;
    rows[0].smxUtilization = 0.75;
    rows[0].smxImbalance = 0.125;
    rows[0].boundFraction = 0.5;
    rows[0].queueOverflows = 2;
    rows[0].kduFullStalls = 3;
    rows[1] = rows[0];
    rows[1].workload = std::string("bfs-citation");
    rows[1].model = DynParModel::DTBL;
    rows[1].policy = TbPolicy::AdaptiveBind;
    rows[1].ipc = 0.87654321987654321;

    const std::string tsv = encodeSweepTsv(rows);
    std::vector<RunResult> back;
    ASSERT_TRUE(decodeSweepTsv(tsv, back));
    ASSERT_EQ(back.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(back[i].workload, rows[i].workload);
        EXPECT_EQ(back[i].model, rows[i].model);
        EXPECT_EQ(back[i].policy, rows[i].policy);
        // Legacy ostream-default formatting (6 significant digits):
        // values survive to that precision, the bytes exactly.
        EXPECT_NEAR(back[i].ipc, rows[i].ipc, 1e-6);
        EXPECT_EQ(back[i].cycles, rows[i].cycles);
        EXPECT_EQ(back[i].kduFullStalls, rows[i].kduFullStalls);
    }
    // Re-encoding the decoded rows reproduces the bytes.
    EXPECT_EQ(encodeSweepTsv(back), tsv);

    std::vector<RunResult> bad;
    EXPECT_FALSE(decodeSweepTsv("not a sweep\n", bad));
}

TEST(ResultCacheTest, SweepTsvExtendsOnlyForNonDefaultPresets)
{
    std::vector<RunResult> rows(2);
    rows[0].workload = std::string("bfs-cage");
    rows[0].model = DynParModel::CDP;
    rows[0].policy = TbPolicy::RR;
    rows[0].ipc = 0.5;
    rows[0].cycles = 1e6;
    rows[1] = rows[0];
    rows[1].workload = std::string("bfs-citation");

    // All-k20c matrices keep the legacy bytes: no preset column.
    const std::string legacy = encodeSweepTsv(rows);
    EXPECT_EQ(legacy.find("# preset"), std::string::npos);

    // One non-default preset switches the whole file to the extended
    // format, and the round trip preserves both bytes and presets.
    rows[1].preset = "v100";
    const std::string extended = encodeSweepTsv(rows);
    EXPECT_EQ(extended.rfind("# preset ", 0), 0u);
    std::vector<RunResult> back;
    ASSERT_TRUE(decodeSweepTsv(extended, back));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].preset, "k20c");
    EXPECT_EQ(back[1].preset, "v100");
    EXPECT_EQ(back[1].workload, "bfs-citation");
    EXPECT_EQ(encodeSweepTsv(back), extended);

    // Legacy files still decode, defaulting every row to k20c.
    std::vector<RunResult> legacyBack;
    ASSERT_TRUE(decodeSweepTsv(legacy, legacyBack));
    ASSERT_EQ(legacyBack.size(), 2u);
    EXPECT_EQ(legacyBack[0].preset, "k20c");
    EXPECT_EQ(encodeSweepTsv(legacyBack), legacy);
}

TEST(ResultCacheTest, EnvOverridesFingerprintAndDir)
{
    setenv("LAPERM_SIM_FINGERPRINT", "deadbeef", 1);
    EXPECT_EQ(simFingerprint(), "deadbeef");
    unsetenv("LAPERM_SIM_FINGERPRINT");
    EXPECT_NE(simFingerprint(), "deadbeef");
    EXPECT_FALSE(simFingerprint().empty());

    setenv("LAPERM_CACHE_DIR", "/tmp/laperm_rc_env", 1);
    EXPECT_EQ(cacheRootDir(), "/tmp/laperm_rc_env");
    unsetenv("LAPERM_CACHE_DIR");
    EXPECT_EQ(cacheRootDir(), "cache");
}

// ------------------------------------------------------------- tiered

TEST(TieredResultCacheTest, ProbeDistinguishesMemoryAndSharedTiers)
{
    const std::string dir = tempDir("tiered_probe");
    TieredResultCache cache(dir, "fp-tier");

    std::string payload;
    EXPECT_EQ(cache.probe("k1", payload), TieredResultCache::Tier::Miss);

    // A store in THIS process lands in both tiers: hits are Memory.
    ASSERT_TRUE(cache.store("k1", "bytes-1"));
    EXPECT_EQ(cache.probe("k1", payload),
              TieredResultCache::Tier::Memory);
    EXPECT_EQ(payload, "bytes-1");
    EXPECT_EQ(cache.memorySize(), 1u);

    // A second cache on the same directory simulates another worker:
    // its first probe comes off disk (Shared) and promotes to L1...
    TieredResultCache other(dir, "fp-tier");
    payload.clear();
    EXPECT_EQ(other.probe("k1", payload),
              TieredResultCache::Tier::Shared);
    EXPECT_EQ(payload, "bytes-1");
    // ...so the SECOND probe is a Memory hit.
    EXPECT_EQ(other.probe("k1", payload),
              TieredResultCache::Tier::Memory);
}

TEST(TieredResultCacheTest, DropMemoryExposesTheSharedTier)
{
    TieredResultCache cache(tempDir("tiered_drop"), "fp-tier");
    ASSERT_TRUE(cache.store("k1", "payload"));
    ASSERT_EQ(cache.memorySize(), 1u);

    // dropMemory models a worker restart: L1 gone, shared tier intact.
    cache.dropMemory();
    EXPECT_EQ(cache.memorySize(), 0u);
    std::string payload;
    EXPECT_EQ(cache.probe("k1", payload),
              TieredResultCache::Tier::Shared);
    EXPECT_EQ(payload, "payload");
}

TEST(TieredResultCacheTest, FingerprintGatesTheSharedTierOnly)
{
    const std::string dir = tempDir("tiered_fp");
    {
        TieredResultCache oldBuild(dir, "fp-old");
        ASSERT_TRUE(oldBuild.store("k1", "old-bytes"));
    }
    // A new build's probe must MISS the stale disk entry, not serve it
    // as a Shared hit.
    TieredResultCache newBuild(dir, "fp-new");
    std::string payload;
    EXPECT_EQ(newBuild.probe("k1", payload),
              TieredResultCache::Tier::Miss);
}
