#include "serve/service/sim_request.hh"

#include <algorithm>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"
#include "tenant/mixes.hh"
#include "workloads/registry.hh"

namespace laperm {
namespace serve {

namespace {

// Wire spellings match the laperm_sim CLI so a request is a mechanical
// translation of a command line (and vice versa in serve_smoke.sh).

bool
parseModel(const std::string &s, DynParModel &out)
{
    if (s == "cdp") {
        out = DynParModel::CDP;
        return true;
    }
    if (s == "dtbl") {
        out = DynParModel::DTBL;
        return true;
    }
    return false;
}

bool
parsePolicy(const std::string &s, TbPolicy &out)
{
    if (s == "rr") {
        out = TbPolicy::RR;
        return true;
    }
    if (s == "tbpri") {
        out = TbPolicy::TbPri;
        return true;
    }
    if (s == "smxbind") {
        out = TbPolicy::SmxBind;
        return true;
    }
    if (s == "adaptive" || s == "laperm") {
        out = TbPolicy::AdaptiveBind;
        return true;
    }
    return false;
}

bool
parseScale(const std::string &s, Scale &out)
{
    if (s == "tiny") {
        out = Scale::Tiny;
        return true;
    }
    if (s == "small") {
        out = Scale::Small;
        return true;
    }
    if (s == "full") {
        out = Scale::Full;
        return true;
    }
    if (s == "huge") {
        out = Scale::Huge;
        return true;
    }
    return false;
}

bool
parseWarp(const std::string &s, WarpPolicy &out)
{
    if (s == "gto") {
        out = WarpPolicy::GTO;
        return true;
    }
    if (s == "lrr") {
        out = WarpPolicy::LRR;
        return true;
    }
    if (s == "tbaware") {
        out = WarpPolicy::TbAware;
        return true;
    }
    return false;
}

const char *
wireModel(DynParModel m)
{
    return m == DynParModel::CDP ? "cdp" : "dtbl";
}

const char *
wirePolicy(TbPolicy p)
{
    switch (p) {
    case TbPolicy::RR:
        return "rr";
    case TbPolicy::TbPri:
        return "tbpri";
    case TbPolicy::SmxBind:
        return "smxbind";
    case TbPolicy::AdaptiveBind:
        return "adaptive";
    }
    return "rr";
}

const char *
wireScale(Scale s)
{
    switch (s) {
    case Scale::Tiny:
        return "tiny";
    case Scale::Small:
        return "small";
    case Scale::Full:
        return "full";
    case Scale::Huge:
        return "huge";
    }
    return "small";
}

bool
getU32(const JsonObject &obj, const std::string &key, std::uint32_t &out,
       std::string &err)
{
    std::uint64_t v;
    if (!getU64(obj, key, v) || v > 0xFFFFFFFFull) {
        err = "bad value for '" + key + "'";
        return false;
    }
    out = static_cast<std::uint32_t>(v);
    return true;
}

} // namespace

bool
SimRequest::fromJson(const JsonObject &obj, SimRequest &out,
                     std::string &err)
{
    SimRequest r;
    r.cfg = paperConfig();

    // Machine fields apply in fixed precedence — preset, then config
    // TOML, then single-field shortcuts — independent of JSON field
    // order (JsonObject iterates alphabetically, which would otherwise
    // interleave them).
    std::string s;
    if (obj.count("preset")) {
        const TickMode tick = r.cfg.tickMode;
        if (!getString(obj, "preset", s) || !findPreset(s, r.cfg)) {
            err = "'preset' must be one of: " + presetNameList();
            return false;
        }
        r.cfg.tickMode = tick; // LAPERM_TICK_MODE override survives
        r.presetName = s;
    }
    if (obj.count("config")) {
        if (!getString(obj, "config", s)) {
            err = "'config' must be a string of machine TOML";
            return false;
        }
        std::string toml_err;
        if (!parseMachineToml(s, r.cfg, toml_err)) {
            err = "bad 'config': " + toml_err;
            return false;
        }
    }

    for (const auto &[key, value] : obj) {
        if (key == "op" || key == "preset" || key == "config") {
            continue; // dispatched / already applied above
        } else if (key == "workload") {
            if (!getString(obj, key, r.workload)) {
                err = "'workload' must be a string";
                return false;
            }
        } else if (key == "model") {
            if (!getString(obj, key, s) || !parseModel(s, r.model)) {
                err = "'model' must be cdp|dtbl";
                return false;
            }
        } else if (key == "policy") {
            if (!getString(obj, key, s) || !parsePolicy(s, r.policy)) {
                err = "'policy' must be rr|tbpri|smxbind|adaptive";
                return false;
            }
        } else if (key == "scale") {
            if (!getString(obj, key, s) || !parseScale(s, r.scale)) {
                err = "'scale' must be tiny|small|full|huge";
                return false;
            }
        } else if (key == "warp_sched") {
            if (!getString(obj, key, s) ||
                !parseWarp(s, r.cfg.warpPolicy)) {
                err = "'warp_sched' must be gto|lrr|tbaware";
                return false;
            }
        } else if (key == "trace_dir") {
            if (!getString(obj, key, r.traceDir)) {
                err = "'trace_dir' must be a string";
                return false;
            }
        } else if (key == "tenants") {
            if (!getString(obj, key, r.tenants)) {
                err = "'tenants' must be a string";
                return false;
            }
        } else if (key == "seed") {
            if (!getU64(obj, key, r.seed)) {
                err = "bad value for 'seed'";
                return false;
            }
        } else if (key == "smx") {
            if (!getU32(obj, key, r.cfg.numSmx, err))
                return false;
        } else if (key == "l1_kb") {
            std::uint32_t kb = 0;
            if (!getU32(obj, key, kb, err) || kb > 0x3FFFFFu) {
                err = "bad value for 'l1_kb'";
                return false;
            }
            r.cfg.l1Size = kb * 1024;
        } else if (key == "l2_kb") {
            std::uint32_t kb = 0;
            if (!getU32(obj, key, kb, err) || kb > 0x3FFFFFu) {
                err = "bad value for 'l2_kb'";
                return false;
            }
            r.cfg.l2Size = kb * 1024;
        } else if (key == "levels") {
            if (!getU32(obj, key, r.cfg.maxPriorityLevels, err))
                return false;
        } else if (key == "cdp_latency") {
            if (!getU64(obj, key, r.cfg.cdpLaunchLatency)) {
                err = "bad value for 'cdp_latency'";
                return false;
            }
        } else if (key == "dtbl_latency") {
            if (!getU64(obj, key, r.cfg.dtblLaunchLatency)) {
                err = "bad value for 'dtbl_latency'";
                return false;
            }
        } else {
            err = "unknown request field '" + key + "'";
            return false;
        }
        (void)value;
    }

    r.cfg.dynParModel = r.model;
    r.cfg.tbPolicy = r.policy;
    r.cfg.seed = r.seed;
    out = std::move(r);
    return true;
}

bool
SimRequest::validate(std::string &err) const
{
    if (!tenants.empty()) {
        if (!tenant::isBuiltinMix(tenants)) {
            err = "unknown mix '" + tenants +
                  "' (builtin: " + tenant::mixNameList() + ")";
            return false;
        }
        if (!traceDir.empty()) {
            err = "'trace_dir' is not supported with 'tenants'";
            return false;
        }
        // The mix names its own workloads; the single-app coordinates
        // below still validate so defaults stay sane.
    }
    const std::vector<std::string> &names = workloadNames();
    if (std::find(names.begin(), names.end(), workload) == names.end()) {
        err = "unknown workload '" + workload + "' (known: " +
              workloadNameList() + ")";
        return false;
    }
    const std::string cfgErr = cfg.check();
    if (!cfgErr.empty()) {
        err = cfgErr;
        return false;
    }
    return true;
}

std::string
SimRequest::canonical() const
{
    // Run coordinates in fixed order, then the full canonical machine
    // string — every machine field, not just the ones the legacy
    // shortcuts could reach. Two requests meaning the same simulation
    // canonicalize identically however the machine was spelled.
    std::string out =
        logFormat("w=%s m=%d p=%d sc=%d seed=%llu ", workload.c_str(),
                  static_cast<int>(model), static_cast<int>(policy),
                  static_cast<int>(scale),
                  static_cast<unsigned long long>(seed)) +
        canonicalMachine(cfg);
    // Appended only for tenant requests so every pre-existing
    // single-app key is unchanged. The preset label joins because the
    // tenant TSV payload carries it as a column — two requests may
    // only share a cache entry if their payloads are byte-identical.
    if (!tenants.empty())
        out += logFormat(" tenants=%s tpreset=%s", tenants.c_str(),
                         presetName.c_str());
    return out;
}

std::string
SimRequest::key() const
{
    return contentKey(canonical());
}

std::string
SimRequest::toJson() const
{
    // The machine travels as one embedded TOML document instead of the
    // legacy per-field shortcuts: lossless for every machine field the
    // shortcuts cannot reach (the parser still accepts the shortcuts
    // from older clients). Default machines skip the field entirely.
    std::string out = logFormat(
        "{\"op\":\"run\",\"workload\":\"%s\",\"model\":\"%s\","
        "\"policy\":\"%s\",\"scale\":\"%s\",\"seed\":%llu",
        jsonEscape(workload).c_str(), wireModel(model),
        wirePolicy(policy), wireScale(scale),
        static_cast<unsigned long long>(seed));
    // Preset travels by name (it is a label in tenant TSV rows) and
    // the machine still travels as TOML: fromJson applies preset first,
    // then config, so a round-trip reproduces both cfg and the label.
    if (presetName != "k20c")
        out += ",\"preset\":\"" + jsonEscape(presetName) + "\"";
    if (machineHash(cfg) != defaultMachineHash())
        out += ",\"config\":\"" + jsonEscape(emitMachineToml(cfg)) + "\"";
    if (!traceDir.empty())
        out += ",\"trace_dir\":\"" + jsonEscape(traceDir) + "\"";
    if (!tenants.empty())
        out += ",\"tenants\":\"" + jsonEscape(tenants) + "\"";
    out += "}";
    return out;
}

} // namespace serve
} // namespace laperm
