/**
 * @file
 * Set-associative cache tag array with LRU replacement and MSHR-style
 * merging of outstanding misses. Timing is "ready-cycle" based: the
 * owner computes completion cycles analytically, the cache tracks tag
 * state and pending fills.
 */

#ifndef LAPERM_MEM_CACHE_HH
#define LAPERM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/stats.hh"

namespace laperm {

/** Cache geometry and behaviour parameters. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t size = 32 * 1024;
    std::uint32_t assoc = 4;
    /**
     * Kepler L1 behaviour: stores do not allocate and evict a hitting
     * line (write-evict / write-through). When false the cache is
     * write-back write-allocate (L2 behaviour).
     */
    bool writeEvict = false;
    /**
     * MSHR entry count below which trimExpiredMshr() is a no-op; keeps
     * the amortized sweep from touching tiny, cheap maps.
     */
    std::uint32_t mshrTrimWatermark = 16;
};

/** Outcome of a tag lookup. */
struct CacheAccessResult
{
    bool hit = false;        ///< line present and fill complete
    bool mshrMerge = false;  ///< missed, merged into an outstanding fill
    Cycle fillReady = 0;     ///< when the line's data is available
    bool victimDirty = false; ///< an eviction produced a writeback
};

/**
 * Tag array + MSHR. The cache does not know about latencies; callers
 * pass the fill-completion cycle for misses and receive the merged
 * ready cycle for MSHR hits.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up a load to @p line at @p now.
     *
     * On a miss, the caller must subsequently call allocate() with the
     * fill-ready cycle obtained from the next level. On an MSHR merge
     * the returned fillReady is the pending fill's completion.
     */
    CacheAccessResult lookupLoad(Addr line, Cycle now);

    /**
     * Handle a store to @p line at @p now.
     *
     * writeEvict caches invalidate a hitting line and never allocate.
     * write-back caches mark the line dirty, allocating on miss (the
     * caller provides fill timing via allocate()).
     */
    CacheAccessResult lookupStore(Addr line, Cycle now);

    /**
     * Install @p line with fill completing at @p fill_ready; evicts the
     * LRU way. @p dirty marks the installed line dirty (store allocate).
     * @return true if the victim was dirty (writeback needed).
     */
    bool allocate(Addr line, Cycle fill_ready, Cycle now, bool dirty);

    /** Whether @p line is currently present (test helper). */
    bool contains(Addr line) const;

    /**
     * Eagerly drop outstanding-fill records that no future access can
     * merge with. @p safe_now must lower-bound every timestamp later
     * lookups will carry (the device clock qualifies; the current
     * access time does NOT — L2 timestamps arrive out of order), so
     * trimming is invisible to the timing model.
     */
    void trimExpiredMshr(Cycle safe_now);

    /** Reset tags, MSHRs and statistics. */
    void reset();

    const CacheStats &stats() const { return stats_; }
    const CacheParams &params() const { return params_; }
    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        Cycle fillReady = 0; ///< data not usable before this cycle
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setIndex(Addr line) const;
    Way *findWay(Addr line);

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Way> ways_; ///< numSets_ * assoc, set-major
    std::uint64_t lruClock_ = 0;
    /**
     * Outstanding fills evicted from the tag array before completing:
     * line -> completion cycle. Trimmed eagerly by the owner via
     * trimExpiredMshr() so long runs don't accumulate dead entries
     * that every merge-miss lookup then hashes through.
     */
    std::unordered_map<Addr, Cycle> mshr_;
    CacheStats stats_;
};

} // namespace laperm

#endif // LAPERM_MEM_CACHE_HH
