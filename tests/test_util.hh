/**
 * @file
 * Shared helpers for the test suites: small GPU configurations, lambda
 * kernels, and a dispatch recorder.
 */

#ifndef LAPERM_TESTS_TEST_UTIL_HH
#define LAPERM_TESTS_TEST_UTIL_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "kernels/lambda_program.hh"
#include "sim/config.hh"

namespace laperm::test {

/** A small, fast device for unit tests. */
inline GpuConfig
tinyConfig()
{
    GpuConfig cfg;
    cfg.numSmx = 4;
    cfg.maxThreadsPerSmx = 256;
    cfg.maxTbsPerSmx = 4;
    cfg.regsPerSmx = 16384;
    cfg.smemPerSmx = 16 * 1024;
    cfg.l1Size = 4 * 1024;
    cfg.l1Assoc = 4;
    cfg.l2Size = 64 * 1024;
    cfg.l2Assoc = 8;
    cfg.kduEntries = 8;
    cfg.cdpLaunchLatency = 200;
    cfg.dtblLaunchLatency = 20;
    return cfg;
}

/** One recorded TB dispatch. */
struct DispatchRecord
{
    TbUid uid;
    std::uint32_t tbIndex;
    bool isDynamic;
    TbUid directParent;
    SmxId smx;
    Cycle cycle;
    std::uint32_t priority;
};

/** Captures every dispatch of a Gpu run via the dispatch hook. */
class DispatchRecorder
{
  public:
    explicit DispatchRecorder(Gpu &gpu)
    {
        gpu.setDispatchHook(&DispatchRecorder::hook, this);
    }

    static void
    hook(void *ctx, const ThreadBlock &tb)
    {
        auto *self = static_cast<DispatchRecorder *>(ctx);
        self->records.push_back({tb.uid, tb.tbIndex, tb.isDynamic,
                                 tb.directParent, tb.smx,
                                 tb.dispatchCycle, tb.priority});
    }

    const DispatchRecord *
    byUid(TbUid uid) const
    {
        for (const auto &r : records) {
            if (r.uid == uid)
                return &r;
        }
        return nullptr;
    }

    std::vector<DispatchRecord> records;
};

} // namespace laperm::test

#endif // LAPERM_TESTS_TEST_UTIL_HH
