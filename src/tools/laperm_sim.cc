/**
 * @file
 * Command-line simulator driver: run any Table II workload (or all of
 * them) under a chosen scheduler / dynamic-parallelism model and print
 * the full statistics record.
 *
 * Usage:
 *   laperm_sim [options]
 *     --workload NAME   bfs-citation, join-gaussian, ... or "all"
 *     --policy P        rr | tbpri | smxbind | adaptive (default rr)
 *     --model M         cdp | dtbl (default dtbl)
 *     --scale S         tiny | small | full (default small)
 *     --seed N          input-generator seed (default 1)
 *     --preset NAME     hardware preset (k20c | gtx1080 | p100 | v100)
 *     --config FILE     machine TOML applied on top of the preset
 *     --list-presets    list preset names and exit
 *     --smx N           override SMX count
 *     --l1-kb N         override L1 size
 *     --l2-kb N         override L2 size
 *     --levels N        max priority levels L
 *     --cdp-latency N   CDP launch latency in cycles
 *     --dtbl-latency N  DTBL launch latency in cycles
 *     --warp-sched W    gto | lrr
 *     --tick-mode T     event | dense (default event; dense is the
 *                       reference loop, byte-identical results)
 *     --csv             one CSV row per run instead of the report
 *                       (non-default machines append a config column)
 *     --list            list workload names and exit
 *
 * Multi-tenant mode (DESIGN.md §14) replaces the single-workload run:
 *     --tenants SPEC    builtin mix name (duo | quad | octo) or a
 *                       .toml mix spec file; runs the mix plus its
 *                       per-tenant solo baselines and prints ANTT,
 *                       STP, Jain fairness and p50/p95/p99 wave
 *                       latency per tenant. Workload scales come from
 *                       the spec (--scale does not apply); --policy,
 *                       --model, --seed and the machine flags do.
 *     --tenants-tsv FILE  also write the per-tenant rows as a TSV
 *
 * Machine flags apply in command-line order, later flags overriding
 * earlier ones: put --preset (whole-machine) first, then --config
 * (file of overrides), then single-field flags like --smx.
 *
 * Observability outputs (DESIGN.md §8; any combination may be given):
 *     --trace FILE          dispatch-event CSV (legacy flat format)
 *     --trace-json FILE     Chrome-trace/Perfetto JSON timeline
 *     --trace-intervals FILE per-interval metrics TSV
 *     --interval N          interval length in cycles (default 1000)
 *     --latency-hist FILE   launch-latency histogram TSV (Sec. IV-D)
 *     --locality FILE       locality-attribution counter TSV
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "gpu/trace.hh"
#include "obs/locality.hh"
#include "obs/trace_collector.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "harness/table.hh"
#include "harness/tenant_sweep.hh"
#include "sim/config_loader.hh"
#include "sim/presets.hh"
#include "tenant/mixes.hh"
#include "tenant/tenant_manager.hh"
#include "tools/cli_parse.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

struct Options
{
    std::string workload = "bfs-citation";
    TbPolicy policy = TbPolicy::RR;
    DynParModel model = DynParModel::DTBL;
    Scale scale = Scale::Small;
    std::uint64_t seed = 1;
    GpuConfig cfg;
    bool csv = false;
    std::string tracePath;     ///< --trace FILE: dispatch-event CSV
    std::string traceJsonPath; ///< --trace-json FILE
    std::string intervalsPath; ///< --trace-intervals FILE
    Cycle interval = 1000;     ///< --interval N
    std::string latencyPath;   ///< --latency-hist FILE
    std::string localityPath;  ///< --locality FILE
    std::string tenantsSpec;   ///< --tenants SPEC (mix name or .toml)
    std::string tenantsTsvPath; ///< --tenants-tsv FILE
    std::string preset = "k20c"; ///< last --preset name (TSV label)

    bool wantsCollector() const
    {
        return !traceJsonPath.empty() || !intervalsPath.empty() ||
               !latencyPath.empty();
    }
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME|all] [--policy "
                 "rr|tbpri|smxbind|adaptive] [--model cdp|dtbl] "
                 "[--scale tiny|small|full|huge] [--seed N] "
                 "[--preset NAME] [--config FILE] [--list-presets] "
                 "[--smx N] "
                 "[--l1-kb N] [--l2-kb N] [--levels N] "
                 "[--cdp-latency N] [--dtbl-latency N] "
                 "[--warp-sched gto|lrr] [--tick-mode event|dense] "
                 "[--csv] [--list] "
                 "[--trace FILE] [--trace-json FILE] "
                 "[--trace-intervals FILE] [--interval N] "
                 "[--latency-hist FILE] [--locality FILE] "
                 "[--tenants MIX|FILE.toml] [--tenants-tsv FILE]\n",
                 argv0);
    std::exit(2);
}

std::uint32_t
parseU32(const char *s, const char *what)
{
    std::uint32_t v = 0;
    if (!cli::parseU32(s, v))
        laperm_fatal("bad %s value '%s'", what, s);
    return v;
}

std::uint64_t
parseU64(const char *s, const char *what)
{
    std::uint64_t v = 0;
    if (!cli::parseU64(s, v))
        laperm_fatal("bad %s value '%s'", what, s);
    return v;
}

TbPolicy
parsePolicy(const std::string &s)
{
    if (s == "rr")
        return TbPolicy::RR;
    if (s == "tbpri")
        return TbPolicy::TbPri;
    if (s == "smxbind")
        return TbPolicy::SmxBind;
    if (s == "adaptive" || s == "laperm")
        return TbPolicy::AdaptiveBind;
    laperm_fatal("unknown policy '%s'", s.c_str());
}

void
report(const Options &opt, const Workload &w, const GpuStats &s)
{
    if (opt.csv) {
        // Shared with the serving subsystem: laperm_submit renders the
        // same record through the same formatter, which is what makes
        // served results byte-identical to a direct run. Only a
        // non-default machine appends the config column, keeping the
        // default-machine CSV byte-identical across releases.
        const ResultRecord rec =
            ResultRecord::fromStats(w.fullName(), opt.model, opt.policy,
                                    s, machineHash(opt.cfg));
        std::printf("%s\n", rec.customMachine()
                                ? rec.csvRowWithConfig().c_str()
                                : rec.csvRow().c_str());
        return;
    }
    std::printf("=== %s  (%s, %s, scale %s, seed %llu)\n",
                w.fullName().c_str(), toString(opt.model),
                toString(opt.policy), toString(opt.scale),
                static_cast<unsigned long long>(opt.seed));
    if (machineHash(opt.cfg) != defaultMachineHash())
        std::printf("  machine           %s  [%s]\n",
                    opt.cfg.summary().c_str(),
                    machineHash(opt.cfg).c_str());
    std::printf("  cycles            %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  IPC               %.3f\n", s.ipc());
    std::printf("  L1 hit rate       %.2f%%  (%llu accesses)\n",
                100.0 * s.l1Total().hitRate(),
                static_cast<unsigned long long>(s.l1Total().accesses));
    std::printf("  L2 hit rate       %.2f%%  (%llu accesses)\n",
                100.0 * s.l2.hitRate(),
                static_cast<unsigned long long>(s.l2.accesses));
    std::printf("  DRAM reads/writes %llu / %llu (avg queue %.1f cyc)\n",
                static_cast<unsigned long long>(s.dram.reads),
                static_cast<unsigned long long>(s.dram.writes),
                s.dram.avgQueueCycles());
    std::printf("  SMX utilization   %.2f%% (imbalance %.2f%%)\n",
                100.0 * s.avgSmxUtilization(),
                100.0 * s.smxImbalance());
    std::printf("  kernels launched  %llu (device launches %llu, "
                "coalesced %llu)\n",
                static_cast<unsigned long long>(s.kernelsLaunched),
                static_cast<unsigned long long>(s.deviceLaunches),
                static_cast<unsigned long long>(s.dtblCoalesced));
    std::printf("  dynamic TBs       %llu (bound %llu, stolen %llu)\n",
                static_cast<unsigned long long>(s.dynamicTbs),
                static_cast<unsigned long long>(s.boundDispatches),
                static_cast<unsigned long long>(s.unboundDispatches));
    std::printf("  queue overflows   %llu, KDU-full stalls %llu\n",
                static_cast<unsigned long long>(s.queueOverflows),
                static_cast<unsigned long long>(s.kduFullStalls));
}

/**
 * --tenants mode: resolve the mix (builtin name or .toml file), run it
 * with solo baselines on the configured machine, print the per-tenant
 * metrics, and optionally dump the rows as a TSV. Output is a pure
 * function of the simulation, so dense/event runs byte-compare.
 */
int
runTenants(const Options &opt)
{
    tenant::MixSpec mix;
    if (tenant::isBuiltinMix(opt.tenantsSpec)) {
        mix = tenant::builtinMix(opt.tenantsSpec);
    } else if (opt.tenantsSpec.rfind(".toml") != std::string::npos ||
               opt.tenantsSpec.find('/') != std::string::npos) {
        std::string err;
        if (!tenant::loadMixToml(opt.tenantsSpec, mix, err))
            laperm_fatal("%s", err.c_str());
    } else {
        laperm_fatal("unknown mix '%s' (builtin: %s; or pass a .toml "
                     "spec file)",
                     opt.tenantsSpec.c_str(),
                     tenant::mixNameList().c_str());
    }

    const tenant::MixStudy study = tenant::runMixStudy(mix, opt.cfg);

    std::printf("=== mix %s  (%s, %s, seed %llu, %zu tenants)\n",
                mix.name.c_str(), toString(opt.cfg.dynParModel),
                toString(opt.cfg.tbPolicy),
                static_cast<unsigned long long>(opt.cfg.seed),
                mix.tenants.size());
    for (std::size_t i = 0; i < study.metrics.perTenant.size(); ++i) {
        const tenant::TenantMetrics &tm = study.metrics.perTenant[i];
        std::printf("  tenant %-10s %-16s prio %u  jobs %u  "
                    "ANTT %.3f  p50 %llu  p95 %llu  p99 %llu  "
                    "retiredTbs %llu\n",
                    tm.name.c_str(),
                    mix.tenants[i].workload.c_str(),
                    mix.tenants[i].priority, tm.jobs, tm.antt,
                    static_cast<unsigned long long>(tm.p50),
                    static_cast<unsigned long long>(tm.p95),
                    static_cast<unsigned long long>(tm.p99),
                    static_cast<unsigned long long>(tm.retiredTbs));
    }
    std::printf("  ANTT %.3f  STP %.3f  Jain %.4f  makespan %llu\n",
                study.metrics.antt, study.metrics.stp,
                study.metrics.jain,
                static_cast<unsigned long long>(study.metrics.makespan));

    if (!opt.tenantsTsvPath.empty()) {
        std::vector<TenantSweepRow> rows;
        for (const tenant::TenantMetrics &tm : study.metrics.perTenant) {
            TenantSweepRow r;
            r.mix = mix.name;
            r.preset = opt.preset;
            r.policy = opt.cfg.tbPolicy;
            r.tenant = tm.name;
            r.tenantId = tm.tenant;
            r.jobs = tm.jobs;
            r.antt = tm.antt;
            r.p50 = tm.p50;
            r.p95 = tm.p95;
            r.p99 = tm.p99;
            r.retiredTbs = tm.retiredTbs;
            r.mixAntt = study.metrics.antt;
            r.mixStp = study.metrics.stp;
            r.mixJain = study.metrics.jain;
            r.makespan = study.metrics.makespan;
            rows.push_back(std::move(r));
        }
        std::FILE *f = std::fopen(opt.tenantsTsvPath.c_str(), "wb");
        if (!f) {
            laperm_warn("could not write tenants TSV '%s'",
                        opt.tenantsTsvPath.c_str());
        } else {
            const std::string tsv = encodeTenantSweepTsv(rows);
            std::fwrite(tsv.data(), 1, tsv.size(), f);
            std::fclose(f);
            std::fprintf(stderr, "tenant metrics: %s\n",
                         opt.tenantsTsvPath.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opt;
    opt.cfg = paperConfig();

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--workload")) {
            opt.workload = next_arg(i);
        } else if (!std::strcmp(a, "--policy")) {
            opt.policy = parsePolicy(next_arg(i));
        } else if (!std::strcmp(a, "--model")) {
            std::string m = next_arg(i);
            if (m == "cdp")
                opt.model = DynParModel::CDP;
            else if (m == "dtbl")
                opt.model = DynParModel::DTBL;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--scale")) {
            opt.scale = scaleFromString(next_arg(i));
        } else if (!std::strcmp(a, "--seed")) {
            opt.seed = parseU64(next_arg(i), "--seed");
        } else if (!std::strcmp(a, "--preset")) {
            // Whole-machine replacement; the tick mode is a simulator
            // strategy, not machine geometry, so it survives.
            const TickMode tick = opt.cfg.tickMode;
            opt.preset = next_arg(i);
            opt.cfg = presetConfig(opt.preset);
            opt.cfg.tickMode = tick;
        } else if (!std::strcmp(a, "--config")) {
            std::string err;
            if (!loadMachineToml(next_arg(i), opt.cfg, err))
                laperm_fatal("%s", err.c_str());
        } else if (!std::strcmp(a, "--list-presets")) {
            for (const auto &p : presets())
                std::printf("%s\t%s\n", p.name, p.description);
            return 0;
        } else if (!std::strcmp(a, "--smx")) {
            opt.cfg.numSmx = parseU32(next_arg(i), "--smx");
        } else if (!std::strcmp(a, "--l1-kb")) {
            opt.cfg.l1Size = parseU32(next_arg(i), "--l1-kb") * 1024;
        } else if (!std::strcmp(a, "--l2-kb")) {
            opt.cfg.l2Size = parseU32(next_arg(i), "--l2-kb") * 1024;
        } else if (!std::strcmp(a, "--levels")) {
            opt.cfg.maxPriorityLevels =
                parseU32(next_arg(i), "--levels");
        } else if (!std::strcmp(a, "--cdp-latency")) {
            opt.cfg.cdpLaunchLatency =
                parseU64(next_arg(i), "--cdp-latency");
        } else if (!std::strcmp(a, "--dtbl-latency")) {
            opt.cfg.dtblLaunchLatency =
                parseU64(next_arg(i), "--dtbl-latency");
        } else if (!std::strcmp(a, "--warp-sched")) {
            std::string w = next_arg(i);
            if (w == "gto")
                opt.cfg.warpPolicy = WarpPolicy::GTO;
            else if (w == "lrr")
                opt.cfg.warpPolicy = WarpPolicy::LRR;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--tick-mode")) {
            std::string t = next_arg(i);
            if (t == "event")
                opt.cfg.tickMode = TickMode::Event;
            else if (t == "dense")
                opt.cfg.tickMode = TickMode::Dense;
            else
                usage(argv[0]);
        } else if (!std::strcmp(a, "--trace")) {
            opt.tracePath = next_arg(i);
        } else if (!std::strcmp(a, "--trace-json")) {
            opt.traceJsonPath = next_arg(i);
        } else if (!std::strcmp(a, "--trace-intervals")) {
            opt.intervalsPath = next_arg(i);
        } else if (!std::strcmp(a, "--interval")) {
            opt.interval = parseU32(next_arg(i), "--interval");
        } else if (!std::strcmp(a, "--latency-hist")) {
            opt.latencyPath = next_arg(i);
        } else if (!std::strcmp(a, "--locality")) {
            opt.localityPath = next_arg(i);
        } else if (!std::strcmp(a, "--tenants")) {
            opt.tenantsSpec = next_arg(i);
        } else if (!std::strcmp(a, "--tenants-tsv")) {
            opt.tenantsTsvPath = next_arg(i);
        } else if (!std::strcmp(a, "--csv")) {
            opt.csv = true;
        } else if (!std::strcmp(a, "--list")) {
            for (const auto &name : workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    opt.cfg.dynParModel = opt.model;
    opt.cfg.tbPolicy = opt.policy;
    opt.cfg.seed = opt.seed;
    opt.cfg.validate();

    if (!opt.tenantsSpec.empty())
        return runTenants(opt);

    std::vector<std::string> names;
    if (opt.workload == "all")
        names = workloadNames();
    else
        names.push_back(opt.workload);

    if (opt.csv)
        std::printf("%s\n",
                    machineHash(opt.cfg) != defaultMachineHash()
                        ? statsCsvHeaderWithConfig()
                        : statsCsvHeader());
    // With --workload all, each per-workload output file is prefixed
    // with the workload name ("bfs-citation.<file>").
    auto out_path = [&](const std::string &name,
                        const std::string &path) {
        return names.size() == 1 ? path : name + "." + path;
    };
    auto write_or_warn = [](bool ok, const char *what,
                            const std::string &path) {
        if (!ok)
            laperm_warn("could not write %s '%s'", what, path.c_str());
        else
            std::fprintf(stderr, "%s: %s\n", what, path.c_str());
    };

    for (const auto &name : names) {
        auto w = createWorkload(name);
        w->setup(opt.scale, opt.seed);
        Gpu gpu(opt.cfg);
        std::unique_ptr<DispatchTrace> trace;
        if (!opt.tracePath.empty())
            trace = std::make_unique<DispatchTrace>(gpu);
        std::unique_ptr<obs::TraceCollector> collector;
        if (opt.wantsCollector()) {
            collector = std::make_unique<obs::TraceCollector>();
            gpu.observers().attach(collector.get());
        }
        std::unique_ptr<obs::LocalityTracker> locality;
        if (!opt.localityPath.empty()) {
            locality =
                std::make_unique<obs::LocalityTracker>(gpu.mem().numL1());
            gpu.setLocalityTracker(locality.get());
        }
        gpu.runWaves(w->waves());
        report(opt, *w, gpu.stats());
        if (trace) {
            std::string path = out_path(name, opt.tracePath);
            if (!trace->writeCsv(path))
                laperm_warn("could not write trace '%s'", path.c_str());
            else
                std::fprintf(stderr, "dispatch trace: %s (%zu events)\n",
                             path.c_str(), trace->events().size());
        }
        if (collector) {
            if (!opt.traceJsonPath.empty()) {
                std::string path = out_path(name, opt.traceJsonPath);
                write_or_warn(collector->writeChromeTrace(path),
                              "chrome trace", path);
            }
            if (!opt.intervalsPath.empty()) {
                std::string path = out_path(name, opt.intervalsPath);
                write_or_warn(
                    collector->writeIntervalTsv(path, opt.interval),
                    "interval metrics", path);
            }
            if (!opt.latencyPath.empty()) {
                std::string path = out_path(name, opt.latencyPath);
                write_or_warn(collector->writeLaunchLatencyTsv(path),
                              "launch-latency histogram", path);
            }
        }
        if (locality) {
            std::string path = out_path(name, opt.localityPath);
            write_or_warn(locality->writeTsv(path),
                          "locality attribution", path);
        }
    }
    return 0;
}
