/**
 * @file
 * Single-Source Shortest Path with dynamic parallelism [37]: per-round
 * worklists of relaxed vertices; high-degree vertices relax their
 * neighbors in a child launch, reading the distance the parent wrote.
 */

#include "workloads/sssp.hh"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/log.hh"
#include "graph/algorithms.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"
#include "workloads/graph_common.hh"

namespace laperm {

namespace {

struct SsspData
{
    Csr csr;
    std::vector<std::uint32_t> weights;
    GraphLayout layout;
    SsspResult result;
    std::vector<std::uint64_t> roundStart;
    /** Per round: edges (u<<32|v) that performed a relaxation. */
    std::vector<std::unordered_set<std::uint64_t>> relaxed;
    std::uint32_t childFuncId = 0;
    std::uint32_t topFuncId = 0;
};

void
emitRelax(ThreadCtx &ctx, const SsspData &d, std::uint32_t round,
          std::uint32_t u, std::uint64_t edge)
{
    const GraphLayout &l = d.layout;
    ctx.ld(l.colAddr(edge), 4);
    ctx.ld(l.weightAddr(edge), 4);
    std::uint32_t v = d.csr.cols()[edge];
    ctx.ld(l.vdataAddr(v), 4); // dist[v]
    ctx.alu(3);
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (round < d.relaxed.size() && d.relaxed[round].count(key)) {
        ctx.st(l.vdataAddr(v), 4); // new distance
        // Worklist dedup flag (dense shared mask), then append to the
        // next round's worklist (ring over the buffer).
        ctx.ld(l.maskAddr(v), 1);
        ctx.st(l.maskAddr(v), 1);
        std::uint64_t slot =
            (d.roundStart[round + 1] + v) % d.csr.numVertices();
        ctx.st(l.worklistAddr(slot), 4);
    }
}

class SsspChildProgram : public KernelProgram
{
  public:
    SsspChildProgram(std::shared_ptr<const SsspData> data, std::uint32_t u,
                     std::uint32_t round)
        : data_(std::move(data)), u_(u), round_(round)
    {}

    std::string name() const override { return "sssp_relax"; }
    std::uint32_t functionId() const override
    {
        return data_->childFuncId;
    }
    std::uint32_t regsPerThread() const override { return 26; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const SsspData &d = *data_;
        const GraphLayout &l = d.layout;
        const std::uint64_t base = d.csr.offset(u_);
        const std::uint32_t deg = d.csr.degree(u_);
        const std::uint32_t stride = ctx.numTbs() * ctx.threadsPerTb();

        ctx.ld(l.paramAddr(u_), 16); // parent-written (u, dist[u])
        ctx.ld(l.rowAddr(u_), 8);
        ctx.ld(l.vdataAddr(u_), 4);  // dist[u], freshly stored by parent
        ctx.alu(4);
        for (std::uint64_t e = ctx.globalThreadIndex(); e < deg;
             e += stride) {
            emitRelax(ctx, d, round_, u_, base + e);
        }
    }

  private:
    std::shared_ptr<const SsspData> data_;
    std::uint32_t u_;
    std::uint32_t round_;
};

class SsspTopProgram : public KernelProgram
{
  public:
    SsspTopProgram(std::shared_ptr<const SsspData> data,
                   std::uint32_t round)
        : data_(std::move(data)), round_(round)
    {}

    std::string name() const override { return "sssp_top"; }
    std::uint32_t functionId() const override { return data_->topFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const SsspData &d = *data_;
        const GraphLayout &l = d.layout;
        const auto &active = d.result.rounds[round_];
        const std::uint32_t i = ctx.globalThreadIndex();
        if (i >= active.size())
            return;
        const std::uint32_t u = active[i];
        const std::uint32_t deg = d.csr.degree(u);

        ctx.ld(l.worklistAddr((d.roundStart[round_] + i) %
                              d.csr.numVertices()),
               4);
        ctx.ld(l.rowAddr(u), 8);
        ctx.ld(l.vdataAddr(u), 4); // dist[u]
        ctx.alu(8);

        if (deg > kSpawnDegree) {
            ctx.st(l.paramAddr(u), 16);
            ctx.launch({std::make_shared<SsspChildProgram>(data_, u,
                                                           round_),
                        childTbCount(deg), kChildTbThreads});
        } else {
            const std::uint64_t base = d.csr.offset(u);
            for (std::uint32_t j = 0; j < deg; ++j)
                emitRelax(ctx, d, round_, u, base + j);
        }
    }

  private:
    std::shared_ptr<const SsspData> data_;
    std::uint32_t round_;
};

} // namespace

std::string
SsspWorkload::app() const
{
    return "sssp";
}

std::string
SsspWorkload::input() const
{
    return input_;
}

void
SsspWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto data = std::make_shared<SsspData>();
    data->csr = buildGraphInput(input_, scale, seed);
    data->weights = genEdgeWeights(data->csr, 64, seed ^ 0x55);
    data->layout.allocate(mem_, data->csr, true);
    data->childFuncId = allocateFunctionId();
    data->topFuncId = allocateFunctionId();

    std::uint32_t max_rounds;
    switch (scale) {
      case Scale::Tiny: max_rounds = 4; break;
      case Scale::Small: max_rounds = 8; break;
      case Scale::Huge: max_rounds = 18; break;
      default: max_rounds = 14; break;
    }
    data->result =
        sssp(data->csr, data->weights, pickSource(data->csr), max_rounds);

    // Re-run the relaxation schedule to record which edges update.
    {
        std::vector<std::uint32_t> dist(data->csr.numVertices(),
                                        kUnreached);
        dist[pickSource(data->csr)] = 0;
        data->relaxed.resize(data->result.rounds.size());
        for (std::size_t r = 0; r < data->result.rounds.size(); ++r) {
            for (std::uint32_t u : data->result.rounds[r]) {
                std::uint64_t base = data->csr.offset(u);
                auto nbrs = data->csr.neighbors(u);
                for (std::size_t i = 0; i < nbrs.size(); ++i) {
                    std::uint32_t v = nbrs[i];
                    std::uint32_t w = data->weights[base + i];
                    if (dist[u] != kUnreached && dist[u] + w < dist[v]) {
                        dist[v] = dist[u] + w;
                        data->relaxed[r].insert(
                            (static_cast<std::uint64_t>(u) << 32) | v);
                    }
                }
            }
        }
    }

    // Worklists live in one n-entry ring buffer; rounds start at the
    // cumulative offset modulo n.
    data->roundStart.assign(data->result.rounds.size() + 1, 0);
    for (std::size_t r = 0; r < data->result.rounds.size(); ++r) {
        data->roundStart[r + 1] =
            (data->roundStart[r] + data->result.rounds[r].size()) %
            data->csr.numVertices();
    }

    waves_.clear();
    for (std::size_t r = 0; r < data->result.rounds.size(); ++r) {
        std::uint32_t active =
            static_cast<std::uint32_t>(data->result.rounds[r].size());
        if (active == 0)
            continue;
        std::uint32_t tbs =
            (active + kGraphTbThreads - 1) / kGraphTbThreads;
        waves_.push_back({std::make_shared<SsspTopProgram>(data, r), tbs,
                          kGraphTbThreads});
    }
}

} // namespace laperm
