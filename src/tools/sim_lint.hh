/**
 * @file
 * sim-lint: simulator-specific determinism lints that clang-tidy cannot
 * express. The simulator's headline numbers (Fig. 9 IPC deltas) are only
 * trustworthy if a run is bit-deterministic, and the parallel sweep
 * harness further requires byte-identical TSV output at any worker
 * count. These rules statically ban the constructs that historically
 * break that property:
 *
 *  - banned-rng       std::rand / <random> engines anywhere outside
 *                     common/rng.hh (the seedable xoshiro256** wrapper).
 *                     std::mt19937 distributions are implementation-
 *                     defined, so results would differ across stdlibs.
 *  - wall-clock       system/steady/high_resolution_clock, time(),
 *                     gettimeofday, std::chrono in simulator code.
 *                     Model time is GpuConfig-driven cycles; wall time
 *                     makes runs irreproducible.
 *  - unordered-iter   iteration over std::unordered_{map,set} in
 *                     simulator code. Bucket order is unspecified, so
 *                     any result-affecting traversal is nondeterministic
 *                     across stdlib versions (and across inserts).
 *  - fp-accum         += / -= into a float/double accumulator in
 *                     simulator code without a documented ordering.
 *                     FP addition is non-associative; reordered sums
 *                     change low bits, which the byte-identical TSV
 *                     contract turns into failures.
 *
 * Scoping: the wall-clock / unordered-iter / fp-accum rules apply only
 * to "restricted" simulator directories (sim, sched, mem, gpu, dynpar);
 * harness and bench code legitimately measures wall time. banned-rng
 * applies everywhere except common/rng.{hh,cc} itself.
 *
 * Suppression: a finding on line N is suppressed if line N or N-1
 * contains "sim-lint: allow(<rule>)" — always with a reason in the
 * surrounding comment. "sim-lint: allow-file(<rule>)" anywhere in the
 * file disables the rule for the whole file.
 */

#ifndef LAPERM_TOOLS_SIM_LINT_HH
#define LAPERM_TOOLS_SIM_LINT_HH

#include <string>
#include <vector>

namespace laperm {
namespace simlint {

enum class Rule { BannedRng, WallClock, UnorderedIter, FpAccum };

/** Stable kebab-case name used in reports and allow() comments. */
const char *ruleName(Rule rule);

struct Finding
{
    std::string path;
    std::size_t line = 0; ///< 1-based
    Rule rule = Rule::BannedRng;
    std::string message;
};

/** How a file's path scopes the rule set. */
struct FileScope
{
    bool restricted = false; ///< under sim/sched/mem/gpu/dynpar
    bool rngExempt = false;  ///< common/rng.{hh,cc} itself
};

/** Classify @p path by its components (separator-normalized). */
FileScope classifyPath(const std::string &path);

/**
 * Lint one translation unit given its contents. Comments, string and
 * character literals are stripped before pattern matching (a mention of
 * mt19937 in a doc comment is not a violation), but allow() markers are
 * honoured from the raw text.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Lint a file on disk. Returns false if it cannot be read. */
bool lintFile(const std::string &path, std::vector<Finding> &out);

/**
 * Recursively lint every .hh/.cc under @p root in sorted path order
 * (the linter is itself deterministic). Returns the number of files
 * scanned.
 */
std::size_t lintTree(const std::string &root, std::vector<Finding> &out);

} // namespace simlint
} // namespace laperm

#endif // LAPERM_TOOLS_SIM_LINT_HH
