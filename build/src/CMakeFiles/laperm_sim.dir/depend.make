# Empty dependencies file for laperm_sim.
# This may be replaced when dependencies are built.
