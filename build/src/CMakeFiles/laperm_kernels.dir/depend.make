# Empty dependencies file for laperm_kernels.
# This may be replaced when dependencies are built.
