file(REMOVE_RECURSE
  "CMakeFiles/laperm_base.dir/common/bump_alloc.cc.o"
  "CMakeFiles/laperm_base.dir/common/bump_alloc.cc.o.d"
  "CMakeFiles/laperm_base.dir/common/log.cc.o"
  "CMakeFiles/laperm_base.dir/common/log.cc.o.d"
  "CMakeFiles/laperm_base.dir/common/rng.cc.o"
  "CMakeFiles/laperm_base.dir/common/rng.cc.o.d"
  "CMakeFiles/laperm_base.dir/sim/config.cc.o"
  "CMakeFiles/laperm_base.dir/sim/config.cc.o.d"
  "CMakeFiles/laperm_base.dir/sim/stats.cc.o"
  "CMakeFiles/laperm_base.dir/sim/stats.cc.o.d"
  "liblaperm_base.a"
  "liblaperm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
