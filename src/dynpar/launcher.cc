#include "dynpar/launcher.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

Launcher::Launcher(const GpuConfig &cfg, Kdu &kdu, TbScheduler &sched,
                   GpuStats &stats, std::uint64_t &undispatched_tbs,
                   obs::ObserverHub &hub)
    : cfg_(cfg), kdu_(kdu), sched_(sched), stats_(stats),
      undispatchedTbs_(undispatched_tbs), hub_(hub)
{
}

void
Launcher::hostLaunch(const LaunchRequest &req, Cycle now)
{
    laperm_assert(req.program != nullptr, "host launch without program");
    if (!kdu_.hasFreeEntry())
        laperm_fatal("host launch with a full KDU");
    if (req.threadsPerTb > cfg_.maxThreadsPerSmx)
        laperm_fatal("TB of %u threads exceeds the SMX limit",
                     req.threadsPerTb);

    KernelInstance *kernel =
        kdu_.admitKernel(req.program->functionId(), req.threadsPerTb,
                         req.numTbs, false, now, req.tenant);
    ++stats_.kernelsLaunched;
    if (hub_.enabled()) {
        // Host launches admit in the same cycle they are queued.
        hub_.launchAdmitted({now, kernel->id, 0, kNoTb, req.numTbs, false,
                             false, now, now, req.tenant});
    }

    DispatchUnit *unit = kdu_.createUnit();
    unit->kernel = kernel;
    unit->program = req.program;
    unit->firstTb = 0;
    unit->count = req.numTbs;
    unit->threadsPerTb = req.threadsPerTb;
    unit->regsPerTb = req.program->regsPerThread() * req.threadsPerTb;
    unit->smemPerTb = req.program->smemPerTb();
    unit->priority = 0;
    unit->tenant = req.tenant;
    unit->readyAt = now;
    undispatchedTbs_ += req.numTbs;
    sched_.enqueue(unit, now);
}

void
Launcher::deviceLaunch(const LaunchRequest &req, const ThreadBlock &parent,
                       Cycle now)
{
    laperm_assert(req.program != nullptr, "device launch without program");
    ++stats_.deviceLaunches;

    PendingLaunch p;
    p.req = req;
    // Children stay in their launching TB's tenant stream.
    p.req.tenant = parent.tenant;
    // Children run one level above their direct parent, clamped to the
    // maximum nesting level L (Section IV-A).
    p.priority = std::min(parent.priority + 1, cfg_.maxPriorityLevels);
    p.directParent = parent.uid;
    p.parentSmx = parent.smx;
    p.queuedAt = now;
    p.readyAt = now + (cfg_.dynParModel == DynParModel::CDP
                           ? cfg_.cdpLaunchLatency
                           : cfg_.dtblLaunchLatency);
    if (hub_.enabled()) {
        hub_.launchQueued({now, 0, p.priority, p.directParent, req.numTbs,
                           true, false, now, p.readyAt, p.req.tenant});
    }
    kmu_.push(std::move(p));
}

void
Launcher::makeUnit(KernelInstance *kernel, std::uint32_t first_tb,
                   const PendingLaunch &launch, Cycle now)
{
    DispatchUnit *unit = kdu_.createUnit();
    unit->kernel = kernel;
    unit->program = launch.req.program;
    unit->firstTb = first_tb;
    unit->count = launch.req.numTbs;
    unit->threadsPerTb = launch.req.threadsPerTb;
    unit->regsPerTb =
        launch.req.program->regsPerThread() * launch.req.threadsPerTb;
    unit->smemPerTb = launch.req.program->smemPerTb();
    unit->priority = launch.priority;
    unit->tenant = launch.req.tenant;
    unit->directParent = launch.directParent;
    unit->boundSmx = launch.parentSmx;
    unit->readyAt = now;
    undispatchedTbs_ += launch.req.numTbs;
    stats_.dynamicTbs += launch.req.numTbs;
    sched_.enqueue(unit, now);
}

bool
Launcher::tick(Cycle now)
{
    // Admission order: the baseline KMU is FCFS; LaPerm's KMU serves
    // the highest-priority ready launch first (Section IV-C).
    const bool priority_order = cfg_.tbPolicy != TbPolicy::RR;
    PendingLaunch *p = kmu_.peekReady(now, priority_order);
    if (!p)
        return false;

    if (cfg_.dynParModel == DynParModel::DTBL) {
        // Coalesce onto a running kernel with a matching configuration.
        KernelInstance *match = kdu_.findMatch(
            p->req.program->functionId(), p->req.threadsPerTb,
            p->req.tenant);
        if (match) {
            std::uint32_t first = kdu_.coalesceTbs(match, p->req.numTbs);
            ++stats_.dtblCoalesced;
            if (hub_.enabled()) {
                hub_.launchAdmitted({now, match->id, p->priority,
                                     p->directParent, p->req.numTbs, true,
                                     true, p->queuedAt, p->readyAt,
                                     p->req.tenant});
            }
            makeUnit(match, first, *p, now);
            kmu_.pop(p);
            return true;
        }
    }

    // A fresh device kernel needs a free KDU entry.
    if (!kdu_.hasFreeEntry()) {
        if (!p->stallCounted) {
            p->stallCounted = true;
            ++stats_.kduFullStalls;
        }
        return false;
    }
    KernelInstance *kernel =
        kdu_.admitKernel(p->req.program->functionId(), p->req.threadsPerTb,
                         p->req.numTbs, true, now, p->req.tenant);
    ++stats_.kernelsLaunched;
    if (hub_.enabled()) {
        hub_.launchAdmitted({now, kernel->id, p->priority, p->directParent,
                             p->req.numTbs, true, false, p->queuedAt,
                             p->readyAt, p->req.tenant});
    }
    makeUnit(kernel, 0, *p, now);
    kmu_.pop(p);
    return true;
}

Cycle
Launcher::nextReadyAt(Cycle now) const
{
    Cycle at = kmu_.nextReadyAt();
    // Ready-but-blocked launches (full KDU) wait on TB completions,
    // which surface as SMX events; only future readiness matters here.
    return at > now ? at : kNoCycle;
}

} // namespace laperm
