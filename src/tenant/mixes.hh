/**
 * @file
 * Builtin multi-tenant mixes (EXPERIMENTS.md contention study). Like
 * the hardware presets (gpu/presets.hh), these are plain data returned
 * by name: each mix is a MixSpec with deterministic cycle-based arrival
 * schedules, so `laperm_sim --tenants duo` needs no spec file. File
 * specs (loadMixToml) use the same structure and may override scale to
 * "huge" for the big presets.
 */

#ifndef LAPERM_TENANT_MIXES_HH
#define LAPERM_TENANT_MIXES_HH

#include <string>
#include <vector>

#include "tenant/tenant_spec.hh"

namespace laperm {
namespace tenant {

/** Names of the builtin mixes, in definition order. */
const std::vector<std::string> &mixNames();

/** Comma-separated mixNames() for error messages. */
std::string mixNameList();

/** True iff @p name is a builtin mix. */
bool isBuiltinMix(const std::string &name);

/** The builtin mix @p name; fatals on unknown names (callers route
 *  user-supplied names through isBuiltinMix or a file path first). */
MixSpec builtinMix(const std::string &name);

} // namespace tenant
} // namespace laperm

#endif // LAPERM_TENANT_MIXES_HH
