/**
 * @file
 * The top-level device: wires the memory system, SMXs, KDU, KMU,
 * launcher and the selected TB scheduler into a cycle-driven simulator.
 */

#ifndef LAPERM_GPU_GPU_HH
#define LAPERM_GPU_GPU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dynpar/launcher.hh"
#include "gpu/kdu.hh"
#include "gpu/smx.hh"
#include "kernels/thread_ctx.hh"
#include "mem/mem_system.hh"
#include "sim/observer.hh"
#include "sched/tb_scheduler.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace laperm {

/**
 * A simulated GPU. Usage:
 *
 *     Gpu gpu(cfg);
 *     gpu.launchHostKernel(wave0);
 *     gpu.runToIdle();
 *     gpu.launchHostKernel(wave1);  // next host wave
 *     gpu.runToIdle();
 *     const GpuStats &s = gpu.stats();
 */
class Gpu : public SmxCallbacks, public DispatchContext
{
  public:
    explicit Gpu(const GpuConfig &cfg);
    ~Gpu() override;

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Enqueue a host kernel (models a <<<>>> launch + its grid). */
    void launchHostKernel(const LaunchRequest &req);

    /**
     * Run until all launched work — including dynamically spawned
     * kernels/TB groups — has drained.
     */
    void runToIdle(Cycle max_cycles = Cycle(1) << 36);

    /**
     * Run until the device is idle or the clock reaches @p stop,
     * whichever comes first (time-sliced execution for the multi-tenant
     * manager). Slice boundaries are timing-transparent: running
     * runUntil(a) then runUntil(b) is byte-identical to one
     * runUntil(b), and a fully sliced run matches runToIdle for
     * policies whose failed dispatch probes are side-effect-free.
     */
    void runUntil(Cycle stop, Cycle max_cycles = Cycle(1) << 36);

    /**
     * Jump an idle device forward to @p cycle (the open-loop arrival
     * gap). Asserts idleness; all event-mode wakeups are reset so the
     * next slice re-arms from the new clock.
     */
    void advanceTo(Cycle cycle);

    /** Whether all launched work has drained. */
    bool isIdle() const { return idle(); }

    /** Threads resident across all SMXs (the occupancy numerator). */
    std::uint64_t residentThreads() const;

    /**
     * Install (or clear, with nullptr) the tenant dispatch gate. The
     * gate must outlive the run; flips are only legal between run
     * slices, followed by noteDispatchGateChanged().
     */
    void setDispatchGate(const DispatchGate *gate) { gate_ = gate; }

    /**
     * A gate flip may have made a previously blocked unit dispatchable;
     * memoized schedulers must drop their failed-scan memo.
     */
    void noteDispatchGateChanged() { sched_->noteCapacityFreed(); }

    /** Convenience: launch each wave and drain it before the next. */
    void runWaves(const std::vector<LaunchRequest> &waves);

    /** Finalized statistics (also flushes cache/SMX counters). */
    const GpuStats &stats();

    Cycle now() const { return cycle_; }
    const GpuConfig &config() const { return cfg_; }
    const MemSystem &mem() const { return mem_; }
    const Kdu &kdu() const { return kdu_; }

    /** TBs dispatched and not yet finished. */
    std::uint64_t activeTbs() const { return activeTbs_; }
    /** TBs visible to the scheduler but not yet dispatched. */
    std::uint64_t undispatchedTbs() const { return undispatchedTbs_; }

    /**
     * Optional dispatch probe for tests/visualization. Any number of
     * hooks may be attached; they are invoked in attachment order on
     * every TB dispatch.
     */
    using DispatchHook = void (*)(void *ctx, const ThreadBlock &tb);
    void addDispatchHook(DispatchHook hook, void *ctx);
    /** Historical name; attaches like addDispatchHook (never replaces). */
    void setDispatchHook(DispatchHook hook, void *ctx)
    {
        addDispatchHook(hook, ctx);
    }

    /** Attach-point for structured observers (DESIGN.md §8). */
    obs::ObserverHub &observers() override { return hub_; }

    /**
     * Attach locality-attribution counters; the memory system reports
     * every L1/L2 access to it. Pass nullptr to detach. The tracker
     * must outlive the run.
     */
    void setLocalityTracker(obs::MemObserver *tracker);

    // --- DispatchContext ---
    std::uint32_t numSmx() const override { return cfg_.numSmx; }
    bool fits(SmxId smx, const DispatchUnit &unit) const override;
    void dispatchTb(DispatchUnit &unit, SmxId smx, Cycle now) override;
    GpuStats &mutableStats() override { return stats_; }
    const DispatchGate *gate() const override { return gate_; }

    // --- SmxCallbacks ---
    void deviceLaunch(const LaunchRequest &req, const ThreadBlock &parent,
                      Cycle now) override;
    void tbCompleted(ThreadBlock &tb, Cycle now) override;
    void dispatchCapacityFreed() override;

  private:
    void tick();
    bool idle() const;
    void noteSmxBusy(SmxId id);
    void noteSmxDrained(SmxId id);

    // --- Event-driven core (DESIGN.md §11) ---
    void runEventLoop(Cycle max_cycles, Cycle stop = kNoCycle);
    void armFrontEnd(Cycle cycle);
    void armSmx(SmxId id, Cycle cycle);
    void armMaintenance(Cycle cycle);

    GpuConfig cfg_;
    MemSystem mem_;
    Kdu kdu_;
    std::unique_ptr<TbScheduler> sched_;
    std::unique_ptr<Launcher> launcher_;
    std::vector<std::unique_ptr<Smx>> smxs_;

    /**
     * SMXs with resident TBs, ascending. Only these are ticked and
     * scanned for the next event; most SMXs idle through the tail of a
     * wave, so this keeps the per-cycle cost proportional to live work.
     * Kept sorted so tick order matches the full 0..N-1 scan exactly.
     */
    std::vector<SmxId> activeSmxs_;
    std::vector<bool> smxActive_;

    /** Amortized MSHR garbage collection (see tick()). */
    Cycle nextMshrTrimAt_ = 0;

    /**
     * Event-mode state. Each component tracks the cycle of its live
     * queue entry (kNoCycle when unarmed); an arm for an earlier cycle
     * pushes a new entry and orphans the old one, which pop detects by
     * comparing its cycle against the armed cycle (stale-skip).
     */
    EventQueue eq_;
    Cycle feArmedAt_ = kNoCycle;
    Cycle maintArmedAt_ = kNoCycle;
    std::vector<Cycle> smxArmedAt_;
    /**
     * Lazy front-end wake: set when a no-progress front-end visit
     * could not name its next cycle from launcher/scheduler delays
     * alone. The dense jump target's SMX component is exactly the
     * earliest armed SMX event, so instead of polling every active
     * SMX's nextEventAt, the front end fires at the next
     * non-maintenance batch the queue surfaces.
     */
    bool feOnNextEvent_ = false;

    /** Per-thread trace contexts reused across TB builds. */
    std::vector<ThreadCtx> ctxScratch_;

    GpuStats stats_;
    Cycle cycle_ = 0;
    TbUid nextTbUid_ = 0;
    std::uint64_t undispatchedTbs_ = 0;
    std::uint64_t activeTbs_ = 0;
    std::uint64_t issuedInstSnapshot_ = 0;

    std::vector<std::pair<DispatchHook, void *>> dispatchHooks_;
    obs::ObserverHub hub_;
    const DispatchGate *gate_ = nullptr;
};

} // namespace laperm

#endif // LAPERM_GPU_GPU_HH
