/**
 * @file
 * Reproduces the paper's Figure 4 example: 8 parent TBs (P0-P7) on a
 * 4-SMX GPU holding one TB per SMX; P2 launches 2 children (C0-C1),
 * P4 launches 4 children (C2-C5). Each policy must produce the
 * qualitative placement the paper illustrates in Figures 4(b)-(e).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

struct ExampleRun
{
    std::vector<DispatchRecord> records;
    Cycle totalCycles = 0;

    /** Dispatch record of parent TB with grid index @p ix. */
    const DispatchRecord *
    parent(std::uint32_t ix) const
    {
        for (const auto &r : records) {
            if (!r.isDynamic && r.tbIndex == ix)
                return &r;
        }
        return nullptr;
    }

    /** Children of the parent TB with grid index @p ix. */
    std::vector<const DispatchRecord *>
    childrenOf(std::uint32_t ix) const
    {
        const DispatchRecord *p = parent(ix);
        std::vector<const DispatchRecord *> out;
        for (const auto &r : records) {
            if (r.isDynamic && r.directParent == p->uid)
                out.push_back(&r);
        }
        return out;
    }
};

ExampleRun
runExample(TbPolicy policy)
{
    GpuConfig cfg;
    cfg.numSmx = 4;
    cfg.maxThreadsPerSmx = 64;
    cfg.maxTbsPerSmx = 1; // each SMX holds exactly one TB
    cfg.regsPerSmx = 16384;
    cfg.smemPerSmx = 16 * 1024;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 64 * 1024;
    cfg.l2Assoc = 8;
    cfg.kduEntries = 8;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.dtblLaunchLatency = 5;
    cfg.launchIssueCycles = 4;
    cfg.tbPolicy = policy;

    auto child = std::make_shared<LambdaProgram>(
        "child", allocateFunctionId(),
        [](ThreadCtx &c) { c.alu(200); });
    auto parent = std::make_shared<LambdaProgram>(
        "parent", allocateFunctionId(), [child](ThreadCtx &c) {
            if (c.threadIndex() == 0 && c.tbIndex() == 2)
                c.launch({child, 2, 32});
            if (c.threadIndex() == 0 && c.tbIndex() == 4)
                c.launch({child, 4, 32});
            c.alu(200);
        });

    Gpu gpu(cfg);
    DispatchRecorder rec(gpu);
    gpu.launchHostKernel({parent, 8, 32});
    gpu.runToIdle();

    ExampleRun run;
    run.records = rec.records;
    run.totalCycles = gpu.stats().cycles;
    return run;
}

} // namespace

TEST(PaperExample, AllPoliciesExecuteEveryTb)
{
    for (TbPolicy p : {TbPolicy::RR, TbPolicy::TbPri, TbPolicy::SmxBind,
                       TbPolicy::AdaptiveBind}) {
        ExampleRun run = runExample(p);
        EXPECT_EQ(run.records.size(), 14u) << toString(p);
        std::set<TbUid> uids;
        for (const auto &r : run.records)
            uids.insert(r.uid);
        EXPECT_EQ(uids.size(), 14u) << toString(p);
    }
}

TEST(PaperExample, RrDispatchesChildrenAfterAllParents)
{
    ExampleRun run = runExample(TbPolicy::RR);
    Cycle last_parent = 0, first_child = kNoCycle;
    for (const auto &r : run.records) {
        if (r.isDynamic)
            first_child = std::min(first_child, r.cycle);
        else
            last_parent = std::max(last_parent, r.cycle);
    }
    EXPECT_GT(first_child, last_parent);
}

TEST(PaperExample, RrSpreadsChildrenAcrossSmxs)
{
    ExampleRun run = runExample(TbPolicy::RR);
    std::set<SmxId> child_smxs;
    for (const auto &r : run.records) {
        if (r.isDynamic)
            child_smxs.insert(r.smx);
    }
    EXPECT_GE(child_smxs.size(), 3u);
}

TEST(PaperExample, TbPriDispatchesChildrenBeforeTrailingParents)
{
    // Figure 4(c): C0-C5 all run before P6 and P7.
    ExampleRun run = runExample(TbPolicy::TbPri);
    Cycle last_child = 0;
    for (const auto &r : run.records) {
        if (r.isDynamic)
            last_child = std::max(last_child, r.cycle);
    }
    EXPECT_LT(last_child, run.parent(6)->cycle);
    EXPECT_LT(last_child, run.parent(7)->cycle);
}

TEST(PaperExample, TbPriAssignsChildPriorityOne)
{
    ExampleRun run = runExample(TbPolicy::TbPri);
    for (const auto &r : run.records)
        EXPECT_EQ(r.priority, r.isDynamic ? 1u : 0u);
}

TEST(PaperExample, SmxBindPlacesEveryChildWithItsDirectParent)
{
    // Figure 4(d): children use the L1 of the parent's SMX.
    ExampleRun run = runExample(TbPolicy::SmxBind);
    for (std::uint32_t p : {2u, 4u}) {
        SmxId parent_smx = run.parent(p)->smx;
        auto kids = run.childrenOf(p);
        ASSERT_EQ(kids.size(), p == 2 ? 2u : 4u);
        for (const auto *k : kids)
            EXPECT_EQ(k->smx, parent_smx) << "child of P" << p;
    }
}

TEST(PaperExample, AdaptiveBindStealsFromOverloadedSmx)
{
    // Figure 4(e): P2's children stay bound; at least one of P4's four
    // children is adopted by an otherwise idle SMX.
    ExampleRun run = runExample(TbPolicy::AdaptiveBind);
    SmxId p2_smx = run.parent(2)->smx;
    for (const auto *k : run.childrenOf(2))
        EXPECT_EQ(k->smx, p2_smx);

    SmxId p4_smx = run.parent(4)->smx;
    auto kids4 = run.childrenOf(4);
    ASSERT_EQ(kids4.size(), 4u);
    bool any_stolen = false;
    for (const auto *k : kids4)
        any_stolen |= (k->smx != p4_smx);
    EXPECT_TRUE(any_stolen);
}

TEST(PaperExample, AdaptiveBindFinishesNoLaterThanSmxBind)
{
    // Work stealing must repair the imbalance of Figure 4(d).
    ExampleRun bind = runExample(TbPolicy::SmxBind);
    ExampleRun adaptive = runExample(TbPolicy::AdaptiveBind);
    EXPECT_LE(adaptive.totalCycles, bind.totalCycles);
}

TEST(PaperExample, SmxBindIdlesSmxsThatAdaptiveUses)
{
    // The imbalance itself: under SMX-Bind the four children of P4
    // serialize on one SMX, so the makespan exceeds Adaptive-Bind's.
    ExampleRun bind = runExample(TbPolicy::SmxBind);
    ExampleRun adaptive = runExample(TbPolicy::AdaptiveBind);
    std::map<SmxId, int> bind_tbs;
    for (const auto &r : bind.records)
        ++bind_tbs[r.smx];
    int max_tbs = 0;
    for (auto &[smx, n] : bind_tbs)
        max_tbs = std::max(max_tbs, n);
    std::map<SmxId, int> ad_tbs;
    for (const auto &r : adaptive.records)
        ++ad_tbs[r.smx];
    int ad_max = 0;
    for (auto &[smx, n] : ad_tbs)
        ad_max = std::max(ad_max, n);
    EXPECT_GT(max_tbs, ad_max);
}
