#include "serve/socket_util.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace laperm {
namespace serve {

namespace {

bool
fillAddr(const std::string &path, sockaddr_un &addr, std::string &err)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        err = "socket path empty or too long (max " +
              std::to_string(sizeof(addr.sun_path) - 1) + " bytes): '" +
              path + "'";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
unixListen(const std::string &path, int backlog, std::string &err)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr, err))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    bool bound =
        ::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) ==
        0;
    if (!bound && errno == EADDRINUSE) {
        // Distinguish a live daemon from a stale file: only a refused
        // connection proves nobody is listening.
        std::string probeErr;
        int probe = unixConnect(path, probeErr);
        if (probe >= 0) {
            ::close(probe);
            ::close(fd);
            err = "socket '" + path + "' already has a listener";
            return -1;
        }
        ::unlink(path.c_str());
        bound = ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) == 0;
    }
    if (!bound) {
        err = std::string("bind '") + path + "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, backlog) < 0) {
        err = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        ::unlink(path.c_str());
        return -1;
    }
    return fd;
}

int
unixConnect(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr, err))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        err = std::string("connect '") + path +
              "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
setRecvTimeout(int fd, std::uint64_t ms)
{
    timeval tv;
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
           0;
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readLine(int fd, std::string &carry, std::string &line)
{
    for (;;) {
        const std::size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            line = carry.substr(0, nl);
            carry.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // includes recv-timeout (EAGAIN)
        }
        if (n == 0)
            return false; // EOF mid-line
        carry.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace serve
} // namespace laperm
