#include "sched/tb_scheduler.hh"

// The factory lives in adaptive_bind_scheduler.cc next to the policy
// implementations; this file anchors the vtable.

namespace laperm {
} // namespace laperm
