/**
 * @file
 * Structural validation of the workload-generated traces against the
 * reference CPU results: launch counts, wave shapes and footprint
 * regions must match what the functional algorithms dictate.
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/footprint.hh"
#include "graph/algorithms.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"
#include "workloads/graph_common.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

/** Count device launches emitted by one wave's host TBs (one level). */
std::uint64_t
countWaveLaunches(const LaunchRequest &wave)
{
    std::uint64_t launches = 0;
    for (std::uint32_t tb = 0; tb < wave.numTbs; ++tb) {
        for (std::uint32_t t = 0; t < wave.threadsPerTb; ++t) {
            ThreadCtx ctx(tb, t, wave.threadsPerTb, wave.numTbs);
            wave.program->emitThread(ctx);
            launches += ctx.launches().size();
        }
    }
    return launches;
}

} // namespace

TEST(WorkloadTraces, BfsLaunchesMatchHeavyFrontierVertices)
{
    // Rebuild the same graph/BFS the workload uses and check that each
    // wave launches exactly one child per frontier vertex above the
    // spawn threshold.
    auto w = createWorkload("bfs-citation");
    w->setup(Scale::Tiny, 1);

    Csr csr = buildGraphInput("citation", Scale::Tiny, 1);
    BfsResult ref = bfs(csr, pickSource(csr));

    const auto &waves = w->waves();
    for (std::size_t lvl = 0; lvl < waves.size(); ++lvl) {
        std::uint64_t heavy = 0;
        for (std::uint32_t u : ref.frontiers[lvl])
            heavy += csr.degree(u) > kSpawnDegree;
        EXPECT_EQ(countWaveLaunches(waves[lvl]), heavy)
            << "level " << lvl;
        EXPECT_EQ(waves[lvl].numTbs,
                  (ref.frontiers[lvl].size() + kGraphTbThreads - 1) /
                      kGraphTbThreads);
    }
}

TEST(WorkloadTraces, SsspWaveSizesMatchActiveRounds)
{
    auto w = createWorkload("sssp-cage");
    w->setup(Scale::Tiny, 1);

    Csr csr = buildGraphInput("cage", Scale::Tiny, 1);
    auto weights = genEdgeWeights(csr, 64, 1 ^ 0x55);
    SsspResult ref = sssp(csr, weights, pickSource(csr), 4);

    const auto &waves = w->waves();
    ASSERT_LE(waves.size(), ref.rounds.size());
    for (std::size_t r = 0; r < waves.size(); ++r) {
        EXPECT_EQ(waves[r].numTbs,
                  (ref.rounds[r].size() + kGraphTbThreads - 1) /
                      kGraphTbThreads);
    }
}

TEST(WorkloadTraces, AmrChildrenMatchFlaggedCells)
{
    auto w = createWorkload("amr-combustion");
    w->setup(Scale::Tiny, 1);
    FootprintReport rep = analyzeFootprint(*w);
    // Level-1 launches come from flagged cells; level-2 from ~1/3 of
    // the level-1 patches. Every direct parent is either a flag-kernel
    // TB or a refine1 TB.
    EXPECT_GT(rep.deviceLaunches, 0u);
    EXPECT_GT(rep.childTbs, rep.deviceLaunches)
        << "patches are multi-TB groups";
}

TEST(WorkloadTraces, RegxLaunchRateTracksPrefilterProbability)
{
    auto darpa = createWorkload("regx-darpa");
    darpa->setup(Scale::Tiny, 1);
    auto strings = createWorkload("regx-strings");
    strings->setup(Scale::Tiny, 1);
    FootprintReport rd = analyzeFootprint(*darpa);
    FootprintReport rs = analyzeFootprint(*strings);
    // 600 packets each; darpa averages ~24% hits (0.8 in bursts of
    // 1-in-5, 0.1 otherwise), strings 30%.
    EXPECT_GT(rd.deviceLaunches, 600u / 10);
    EXPECT_LT(rd.deviceLaunches, 600u / 2);
    EXPECT_NEAR(static_cast<double>(rs.deviceLaunches) / 600.0, 0.30,
                0.08);
}

TEST(WorkloadTraces, JoinGaussianSkewsChildTbsMoreThanUniform)
{
    // Small scale: the gaussian key distribution concentrates tuples
    // into few heavy buckets, so each launch carries more TBs than
    // under the uniform distribution.
    auto uni = createWorkload("join-uniform");
    uni->setup(Scale::Small, 1);
    auto gau = createWorkload("join-gaussian");
    gau->setup(Scale::Small, 1);
    FootprintReport ru = analyzeFootprint(*uni);
    FootprintReport rg = analyzeFootprint(*gau);
    ASSERT_GT(ru.deviceLaunches, 0u);
    ASSERT_GT(rg.deviceLaunches, 0u);
    // Skew shows up as launch concentration: under the gaussian keys
    // only the probe TBs covering the distribution's center launch
    // children (the imbalance that stresses SMX-Bind), while the
    // uniform input makes nearly every probe TB a launcher.
    double launching_frac_u =
        static_cast<double>(ru.directParents) / uni->waves()[2].numTbs;
    double launching_frac_g =
        static_cast<double>(rg.directParents) / gau->waves()[2].numTbs;
    EXPECT_LT(launching_frac_g, launching_frac_u * 0.7);
}

TEST(WorkloadTraces, AllWorkloadsTouchOnlyAllocatedMemory)
{
    // Every line referenced by any TB must fall inside a region the
    // workload allocated (no stray addresses).
    for (const auto &name : workloadNames()) {
        auto w = createWorkload(name);
        w->setup(Scale::Tiny, 1);
        Addr hi = 0x10000000ull + w->footprintBytes() + (1u << 20);
        for (const auto &wave : w->waves()) {
            // Sample the first TB of each wave.
            for (std::uint32_t t = 0; t < wave.threadsPerTb; ++t) {
                ThreadCtx ctx(0, t, wave.threadsPerTb, wave.numTbs);
                wave.program->emitThread(ctx);
                for (const ThreadOp &op : ctx.ops()) {
                    if (op.kind != OpKind::Load &&
                        op.kind != OpKind::Store) {
                        continue;
                    }
                    EXPECT_GE(op.addr, 0x10000000ull) << name;
                    EXPECT_LT(op.addr, hi) << name;
                }
            }
        }
    }
}
