/**
 * @file
 * Consistent-hash ring for cluster request routing (DESIGN.md §15.4).
 * Each worker owns `vnodes` points on a 64-bit ring (fnv1a64 over
 * "worker-<i>/vnode-<j>"); a request's 128-bit content key hashes to a
 * point and is served by the next worker point clockwise.
 *
 * Why consistent hashing instead of round-robin: the routing contract
 * is that ONE worker owns each content key, so the worker-level
 * single-flight map (serve/service) deduplicates identical in-flight
 * requests cluster-wide — two clients submitting the same cold request
 * to different balancer connections still share one simulation. And
 * when the worker count changes, only ~1/N of the key space moves, so
 * a resized cluster keeps most of each worker's in-memory cache tier
 * warm.
 *
 * Deterministic by construction (no RNG, no wall clock): the same key
 * routes to the same worker index in every process, which the cluster
 * smoke test and bench rely on.
 */

#ifndef LAPERM_SERVE_CLUSTER_HASH_RING_HH
#define LAPERM_SERVE_CLUSTER_HASH_RING_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hh"

namespace laperm {
namespace serve {

class HashRing
{
    /// FNV-1a 64-bit offset basis (same basis contentKey() starts from).
    static constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

    /**
     * splitmix64 finalizer over the FNV hash. FNV-1a's high bits
     * barely avalanche on short, similar strings — the vnode labels
     * differ in one or two digit characters, which left ring arcs so
     * clustered that one of four workers owned ~3/4 of the key space.
     * Ring placement compares full 64-bit values, so the finalizer's
     * uniform high bits are what make shares come out ~1/N.
     */
    static constexpr std::uint64_t mix64(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

  public:
    explicit HashRing(std::size_t workers, unsigned vnodes = 64)
    {
        ring_.reserve(workers * vnodes);
        for (std::size_t w = 0; w < workers; ++w) {
            for (unsigned v = 0; v < vnodes; ++v) {
                const std::string label = "worker-" +
                                          std::to_string(w) +
                                          "/vnode-" + std::to_string(v);
                ring_.emplace_back(mix64(fnv1a64(label, kFnvBasis)), w);
            }
        }
        std::sort(ring_.begin(), ring_.end());
    }

    /** Worker index owning @p key (a content key or any string). */
    std::size_t workerFor(const std::string &key) const
    {
        const std::uint64_t h = mix64(fnv1a64(key, kFnvBasis));
        auto it = std::upper_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(h, std::size_t(0)),
            [](const auto &a, const auto &b) { return a.first < b.first; });
        if (it == ring_.end())
            it = ring_.begin(); // wrap around the ring
        return it->second;
    }

    std::size_t points() const { return ring_.size(); }

  private:
    std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_CLUSTER_HASH_RING_HH
