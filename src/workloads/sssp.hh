/**
 * @file
 * SSSP workload (Table II: citation / graph500 / cage inputs).
 */

#ifndef LAPERM_WORKLOADS_SSSP_HH
#define LAPERM_WORKLOADS_SSSP_HH

#include "workloads/workload.hh"

namespace laperm {

/** Worklist-based Bellman-Ford SSSP with child launches [37]. */
class SsspWorkload : public WorkloadBase
{
  public:
    explicit SsspWorkload(std::string input) : input_(std::move(input)) {}

    std::string app() const override;
    std::string input() const override;
    void setup(Scale scale, std::uint64_t seed) override;

  private:
    std::string input_;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_SSSP_HH
