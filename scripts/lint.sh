#!/usr/bin/env bash
# Static-analysis entry point: sim-lint (determinism + architecture
# rules, DESIGN.md §12) plus the curated clang-tidy profile in
# .clang-tidy. Exits nonzero on any finding.
#
# sim-lint runs all four passes (token, layering, cycle-safety,
# event-discipline) with per-pass timing, fails fast before the tidy
# stage, and leaves a SARIF artifact at $BUILD_DIR/sim_lint.sarif for
# CI annotation upload.
#
# clang-tidy is optional: images without LLVM (like the default build
# container, which ships only gcc) skip that stage with a notice; the
# sim-lint gate always runs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${LAPERM_LINT_BUILD:-build}"
JOBS="${LAPERM_JOBS:-$(nproc)}"

# --- Stage 1: sim-lint -------------------------------------------------
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$BUILD_DIR" --target sim_lint -j"$JOBS" >/dev/null
"$BUILD_DIR"/src/sim_lint --root . --timings \
    --sarif "$BUILD_DIR/sim_lint.sarif"
echo "lint.sh: sim-lint clean (SARIF: $BUILD_DIR/sim_lint.sarif)"

# --- Stage 2: clang-tidy ----------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    # A dedicated tree keeps tidy's compile database in sync with
    # LAPERM_TIDY without dirtying the main build.
    cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -p build-tidy -quiet -j "$JOBS" \
            "$(pwd)/src/.*\.cc$"
    else
        find src -name '*.cc' -print0 |
            xargs -0 -n 8 clang-tidy -p build-tidy --quiet
    fi
    echo "lint.sh: clang-tidy clean"
else
    echo "lint.sh: clang-tidy not found; skipping tidy stage" \
         "(profile: .clang-tidy)"
fi

echo "lint.sh: all lint stages passed"
