#include "common/hash.hh"

#include "common/log.hh"

namespace laperm {

std::uint64_t
fnv1a64(const std::string &data, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (const char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
contentKey(const std::string &canonical)
{
    // Two independent FNV-1a passes give a 128-bit key; plenty for a
    // cache namespace where collisions only cost a wrong cache hit on
    // adversarial input, and the canonical strings are machine-built.
    const std::uint64_t a = fnv1a64(canonical, 0xcbf29ce484222325ull);
    const std::uint64_t b = fnv1a64(canonical, 0x9ae16a3b2f90404full);
    return logFormat("%016llx%016llx", static_cast<unsigned long long>(a),
                     static_cast<unsigned long long>(b));
}

} // namespace laperm
