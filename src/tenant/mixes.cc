#include "tenant/mixes.hh"

#include "common/log.hh"

namespace laperm {
namespace tenant {

namespace {

TenantSpec
stream(const char *name, const char *workload, std::uint32_t priority,
       Cycle first_arrival, Cycle period, std::uint32_t jobs)
{
    TenantSpec t;
    t.name = name;
    t.workload = workload;
    t.scale = Scale::Tiny;
    t.priority = priority;
    t.firstArrival = first_arrival;
    t.period = period;
    t.jobs = jobs;
    return t;
}

/**
 * duo: the minimal contention pair — a latency-sensitive irregular
 * graph stream against a throughput batch stream that arrives mid-run.
 */
MixSpec
makeDuo()
{
    MixSpec m;
    m.name = "duo";
    m.tenants.push_back(stream("graph", "bfs-citation", 0, 0, 60000, 2));
    m.tenants.push_back(stream("batch", "join-uniform", 1, 5000, 80000, 2));
    return m;
}

/**
 * quad: two priority classes, two streams each. The high class mixes
 * control-divergent traversal with pointer-heavy coloring; the low
 * class supplies steady background TB pressure.
 */
MixSpec
makeQuad()
{
    MixSpec m;
    m.name = "quad";
    m.tenants.push_back(stream("bfs", "bfs-citation", 0, 0, 90000, 2));
    m.tenants.push_back(stream("clr", "clr-citation", 0, 8000, 90000, 2));
    m.tenants.push_back(stream("join", "join-uniform", 1, 3000, 0, 1));
    m.tenants.push_back(stream("regx", "regx-strings", 1, 12000, 0, 1));
    return m;
}

/**
 * octo: eight streams across three priority classes — the saturation
 * point where admission control and preemption both have to act.
 */
MixSpec
makeOcto()
{
    MixSpec m;
    m.name = "octo";
    m.tenants.push_back(stream("bfs0", "bfs-citation", 0, 0, 120000, 2));
    m.tenants.push_back(stream("sssp", "sssp-citation", 0, 6000, 0, 1));
    m.tenants.push_back(stream("clr0", "clr-citation", 1, 2000, 0, 1));
    m.tenants.push_back(stream("bht", "bht-points", 1, 9000, 0, 1));
    m.tenants.push_back(stream("pre", "pre-movielens", 1, 15000, 0, 1));
    m.tenants.push_back(stream("join", "join-gaussian", 2, 4000, 0, 1));
    m.tenants.push_back(stream("regx", "regx-darpa", 2, 11000, 0, 1));
    m.tenants.push_back(stream("amr", "amr-combustion", 2, 18000, 0, 1));
    return m;
}

} // namespace

const std::vector<std::string> &
mixNames()
{
    static const std::vector<std::string> names = {"duo", "quad", "octo"};
    return names;
}

std::string
mixNameList()
{
    std::string out;
    for (const std::string &n : mixNames()) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

bool
isBuiltinMix(const std::string &name)
{
    for (const std::string &n : mixNames()) {
        if (n == name)
            return true;
    }
    return false;
}

MixSpec
builtinMix(const std::string &name)
{
    if (name == "duo")
        return makeDuo();
    if (name == "quad")
        return makeQuad();
    if (name == "octo")
        return makeOcto();
    laperm_fatal("unknown builtin mix '%s' (known: %s)", name.c_str(),
                 mixNameList().c_str());
}

} // namespace tenant
} // namespace laperm
