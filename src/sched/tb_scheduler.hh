/**
 * @file
 * The TB-scheduler policy interface: the pluggable heart of the paper.
 * Policies receive dispatch units as they become visible and are asked
 * to dispatch at most one TB per cycle, mirroring the SMX scheduler.
 */

#ifndef LAPERM_SCHED_TB_SCHEDULER_HH
#define LAPERM_SCHED_TB_SCHEDULER_HH

#include <memory>

#include "common/types.hh"
#include "sched/dispatch_unit.hh"
#include "sim/config.hh"
#include "sim/dispatch_gate.hh"
#include "sim/stats.hh"

namespace laperm {

namespace obs {
class ObserverHub;
} // namespace obs

/** What a TB scheduler may do to the device. */
class DispatchContext
{
  public:
    virtual ~DispatchContext() = default;

    virtual std::uint32_t numSmx() const = 0;

    /** Whether @p unit's next TB fits on @p smx right now. */
    virtual bool fits(SmxId smx, const DispatchUnit &unit) const = 0;

    /** Pop @p unit's next TB and dispatch it to @p smx. */
    virtual void dispatchTb(DispatchUnit &unit, SmxId smx, Cycle now) = 0;

    virtual GpuStats &mutableStats() = 0;

    /** Observability fan-out (DESIGN.md §8); policies may emit into it. */
    virtual obs::ObserverHub &observers() = 0;

    /**
     * Tenant dispatch gate, or nullptr when ungated (the single-tenant
     * default). Schedulers skip units whose tenant the gate blocks,
     * exactly as they skip units that are not yet ready.
     */
    virtual const DispatchGate *gate() const { return nullptr; }
};

/**
 * Base class for the four policies (RR, TB-Pri, SMX-Bind,
 * Adaptive-Bind).
 */
class TbScheduler
{
  public:
    TbScheduler(const GpuConfig &cfg, DispatchContext &ctx)
        : cfg_(cfg), ctx_(ctx)
    {}
    virtual ~TbScheduler() = default;

    /** A dispatch unit became visible (admitted / coalesced / ready). */
    virtual void enqueue(DispatchUnit *unit, Cycle now) = 0;

    /** Attempt one TB dispatch. @return true if a TB was dispatched. */
    virtual bool dispatchOne(Cycle now) = 0;

    /**
     * Earliest cycle at which a currently blocked unit becomes
     * dispatchable due to scheduler-internal delays (overflow fetches);
     * kNoCycle if nothing is internally delayed.
     */
    virtual Cycle nextReadyAt(Cycle now) const = 0;

    /**
     * Dispatch capacity may have grown (a TB completed and freed SMX
     * resources, or the contention throttle raised a residency cap).
     * Policies that memoize a failed dispatch scan must drop the memo
     * here; purely an optimization hook, so a no-op by default.
     */
    virtual void noteCapacityFreed() {}

    /**
     * True when a dispatchOne call at cycle @p c would provably return
     * false with no observable side effect, letting the event loop
     * elide the visit entirely. Policies whose failed attempts have
     * visible effects (SMX-Bind cursor rotation, Adaptive-Bind
     * adoption bookkeeping) must keep the default false so the event
     * loop keeps replicating every dense-loop visit.
     */
    virtual bool visitIsNoop(Cycle) const { return false; }

    /** Factory selecting the policy from @p cfg. */
    static std::unique_ptr<TbScheduler> create(const GpuConfig &cfg,
                                               DispatchContext &ctx);

  protected:
    const GpuConfig &cfg_;
    DispatchContext &ctx_;
};

} // namespace laperm

#endif // LAPERM_SCHED_TB_SCHEDULER_HH
