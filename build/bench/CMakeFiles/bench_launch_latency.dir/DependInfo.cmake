
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_launch_latency.cc" "bench/CMakeFiles/bench_launch_latency.dir/bench_launch_latency.cc.o" "gcc" "bench/CMakeFiles/bench_launch_latency.dir/bench_launch_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/laperm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
