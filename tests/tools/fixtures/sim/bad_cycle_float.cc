// sim-lint fixture: floating-point, narrowing, and signed arithmetic
// on cycle-typed quantities in simulator code must be flagged by the
// cycle-safety pass. Not compiled — parsed by test_sim_lint_v2.cc.

using Cycle = unsigned long long;

double
badIpc(Cycle cycles)
{
    return static_cast<double>(cycles); // cycle-float: cast
}

double
badAverage(Cycle readyAt)
{
    double avg = readyAt / 2.0; // cycle-float: fp init + fp literal
    return avg;
}

unsigned
badNarrow(Cycle deadline)
{
    return static_cast<unsigned>(deadline); // cycle-narrow
}

long
badSign(Cycle now)
{
    long delta = 5;
    return now + delta ? static_cast<long>(now) : 0; // cycle-sign
}
