/**
 * @file
 * The top-level device: wires the memory system, SMXs, KDU, KMU,
 * launcher and the selected TB scheduler into a cycle-driven simulator.
 */

#ifndef LAPERM_GPU_GPU_HH
#define LAPERM_GPU_GPU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dynpar/launcher.hh"
#include "gpu/kdu.hh"
#include "gpu/smx.hh"
#include "mem/mem_system.hh"
#include "obs/event.hh"
#include "sched/tb_scheduler.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace laperm {

/**
 * A simulated GPU. Usage:
 *
 *     Gpu gpu(cfg);
 *     gpu.launchHostKernel(wave0);
 *     gpu.runToIdle();
 *     gpu.launchHostKernel(wave1);  // next host wave
 *     gpu.runToIdle();
 *     const GpuStats &s = gpu.stats();
 */
class Gpu : public SmxCallbacks, public DispatchContext
{
  public:
    explicit Gpu(const GpuConfig &cfg);
    ~Gpu() override;

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Enqueue a host kernel (models a <<<>>> launch + its grid). */
    void launchHostKernel(const LaunchRequest &req);

    /**
     * Run until all launched work — including dynamically spawned
     * kernels/TB groups — has drained.
     */
    void runToIdle(Cycle max_cycles = Cycle(1) << 36);

    /** Convenience: launch each wave and drain it before the next. */
    void runWaves(const std::vector<LaunchRequest> &waves);

    /** Finalized statistics (also flushes cache/SMX counters). */
    const GpuStats &stats();

    Cycle now() const { return cycle_; }
    const GpuConfig &config() const { return cfg_; }
    const MemSystem &mem() const { return mem_; }
    const Kdu &kdu() const { return kdu_; }

    /** TBs dispatched and not yet finished. */
    std::uint64_t activeTbs() const { return activeTbs_; }
    /** TBs visible to the scheduler but not yet dispatched. */
    std::uint64_t undispatchedTbs() const { return undispatchedTbs_; }

    /**
     * Optional dispatch probe for tests/visualization. Any number of
     * hooks may be attached; they are invoked in attachment order on
     * every TB dispatch.
     */
    using DispatchHook = void (*)(void *ctx, const ThreadBlock &tb);
    void addDispatchHook(DispatchHook hook, void *ctx);
    /** Historical name; attaches like addDispatchHook (never replaces). */
    void setDispatchHook(DispatchHook hook, void *ctx)
    {
        addDispatchHook(hook, ctx);
    }

    /** Attach-point for structured observers (DESIGN.md §8). */
    obs::ObserverHub &observers() override { return hub_; }

    /**
     * Attach locality-attribution counters; the memory system reports
     * every L1/L2 access to it. Pass nullptr to detach. The tracker
     * must outlive the run.
     */
    void setLocalityTracker(obs::LocalityTracker *tracker);

    // --- DispatchContext ---
    std::uint32_t numSmx() const override { return cfg_.numSmx; }
    bool fits(SmxId smx, const DispatchUnit &unit) const override;
    void dispatchTb(DispatchUnit &unit, SmxId smx, Cycle now) override;
    GpuStats &mutableStats() override { return stats_; }

    // --- SmxCallbacks ---
    void deviceLaunch(const LaunchRequest &req, const ThreadBlock &parent,
                      Cycle now) override;
    void tbCompleted(ThreadBlock &tb, Cycle now) override;

  private:
    void tick();
    bool idle() const;
    void noteSmxBusy(SmxId id);

    GpuConfig cfg_;
    MemSystem mem_;
    Kdu kdu_;
    std::unique_ptr<TbScheduler> sched_;
    std::unique_ptr<Launcher> launcher_;
    std::vector<std::unique_ptr<Smx>> smxs_;

    /**
     * SMXs with resident TBs, ascending. Only these are ticked and
     * scanned for the next event; most SMXs idle through the tail of a
     * wave, so this keeps the per-cycle cost proportional to live work.
     * Kept sorted so tick order matches the full 0..N-1 scan exactly.
     */
    std::vector<SmxId> activeSmxs_;
    std::vector<bool> smxActive_;

    /** Amortized MSHR garbage collection (see tick()). */
    static constexpr Cycle kMshrTrimInterval = 4096;
    Cycle nextMshrTrimAt_ = 0;

    GpuStats stats_;
    Cycle cycle_ = 0;
    TbUid nextTbUid_ = 0;
    std::uint64_t undispatchedTbs_ = 0;
    std::uint64_t activeTbs_ = 0;
    std::uint64_t issuedInstSnapshot_ = 0;

    std::vector<std::pair<DispatchHook, void *>> dispatchHooks_;
    obs::ObserverHub hub_;
};

} // namespace laperm

#endif // LAPERM_GPU_GPU_HH
