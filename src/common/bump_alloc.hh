/**
 * @file
 * Bump allocator for laying out simulated data structures in the 64-bit
 * simulated global-memory address space. No data is stored — only the
 * address ranges matter for cache behaviour.
 */

#ifndef LAPERM_COMMON_BUMP_ALLOC_HH
#define LAPERM_COMMON_BUMP_ALLOC_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace laperm {

/**
 * Allocates named, line-aligned regions of the simulated address space.
 * Used by workloads to model cudaMalloc'd buffers.
 */
class BumpAllocator
{
  public:
    /** A named region of simulated memory. */
    struct Region
    {
        std::string name;
        Addr base;
        std::size_t bytes;
    };

    /** @param base first address handed out (default leaves page 0 unused). */
    explicit BumpAllocator(Addr base = 0x10000000ull);

    /**
     * Allocate @p bytes, aligned to a cache line.
     * @return base address of the region.
     */
    Addr alloc(std::size_t bytes, const std::string &name = "");

    /**
     * Allocate an array of @p count elements of @p elem_bytes each.
     * @return base address; element i lives at base + i * elem_bytes.
     */
    Addr allocArray(std::size_t count, std::size_t elem_bytes,
                    const std::string &name = "");

    /** All regions allocated so far, in allocation order. */
    const std::vector<Region> &regions() const { return regions_; }

    /** Total bytes allocated (including alignment padding). */
    std::size_t totalBytes() const { return cursor_ - base_; }

  private:
    Addr base_;
    Addr cursor_;
    std::vector<Region> regions_;
};

} // namespace laperm

#endif // LAPERM_COMMON_BUMP_ALLOC_HH
