/**
 * @file
 * Canonical simulation request (DESIGN.md §10.3): the serve-layer
 * equivalent of a laperm_sim invocation. Parsing materializes every
 * default (paper Table I config + driver defaults), so two requests
 * that mean the same simulation always canonicalize — and therefore
 * hash — identically, regardless of which fields the client spelled
 * out.
 */

#ifndef LAPERM_SERVE_SERVICE_SIM_REQUEST_HH
#define LAPERM_SERVE_SERVICE_SIM_REQUEST_HH

#include <cstdint>
#include <string>

#include "serve/service/protocol.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace laperm {
namespace serve {

/**
 * One simulation request. `cfg` is fully materialized: paperConfig()
 * plus protocol overrides plus model/policy/seed, exactly what
 * laperm_sim would hand to Gpu.
 */
struct SimRequest
{
    std::string workload = "bfs-citation";
    DynParModel model = DynParModel::DTBL;
    TbPolicy policy = TbPolicy::RR;
    Scale scale = Scale::Small;
    std::uint64_t seed = 1;
    GpuConfig cfg;

    /**
     * Server-side directory for observability artifacts (DESIGN.md
     * §8). Not part of the canonical key: tracing never changes stats.
     * A trace request bypasses the cache read (a hit would produce no
     * artifacts) but still stores its result.
     */
    std::string traceDir;

    /**
     * Builtin multi-tenant mix name (tenant/mixes.hh), empty for a
     * single-app run. When set, the service routes the request through
     * tenant::runMixStudy and the payload is the tenant-sweep TSV
     * (harness/tenant_sweep.hh) instead of a ResultRecord line —
     * byte-identical to `laperm_sim --tenants MIX --tenants-tsv`.
     * Builtin names only: the daemon never reads client-named files.
     */
    std::string tenants;

    /**
     * Label of the last applied preset ("k20c" when none was named).
     * Pure labeling — the machine itself is fully described by cfg —
     * but tenant TSV rows carry a preset column, so for tenant
     * requests it joins the canonical string.
     */
    std::string presetName = "k20c";

    /**
     * Build from a parsed protocol object. Accepted fields: workload,
     * model, policy, scale, warp_sched, trace_dir, preset, config
     * (strings); seed, smx, l1_kb, l2_kb, levels, cdp_latency,
     * dtbl_latency (numbers). Unknown fields are rejected so a typo
     * cannot silently run the default simulation. Does not validate
     * semantics; see validate().
     *
     * Machine fields layer in a fixed precedence regardless of the
     * JSON field order: preset (named machine, sim/presets.hh), then
     * config (machine-TOML text, sim/config_loader.hh), then the
     * legacy single-field shortcuts (smx, l1_kb, ...). A malformed
     * preset or config is a parse error — the server answers with a
     * structured error response, never a default simulation.
     */
    static bool fromJson(const JsonObject &obj, SimRequest &out,
                         std::string &err);

    /** Semantic validation (workload exists, config sane); no fatal. */
    bool validate(std::string &err) const;

    /**
     * Deterministic canonical string covering every knob in the key:
     * the run coordinates plus canonicalMachine(cfg), so any two
     * spellings of the same machine (preset name, TOML, shortcuts)
     * share one cache entry.
     */
    std::string canonical() const;

    /** Content key of canonical() (harness/result_cache.hh). */
    std::string key() const;

    /** Full request line including "op":"run" (client side). */
    std::string toJson() const;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SERVICE_SIM_REQUEST_HH
