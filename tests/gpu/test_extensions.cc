/**
 * @file
 * Tests for the Section IV-F extensions: the TB-aware warp scheduler
 * and contention-based TB throttling.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/** Thrash-heavy kernel: every TB streams over a large private range. */
LaunchRequest
thrashKernel(std::uint32_t tbs)
{
    auto prog = std::make_shared<LambdaProgram>(
        "thrash", allocateFunctionId(), [](ThreadCtx &c) {
            for (int i = 0; i < 8; ++i) {
                // Scattered, non-reused lines: near-100% miss rate.
                Addr a = 0x1000000ull +
                         (static_cast<Addr>(c.globalThreadIndex()) * 131 +
                          static_cast<Addr>(i) * 7919) %
                             (1u << 20) * kLineBytes;
                c.ld(a, 4);
                c.alu(4);
            }
        });
    return {prog, tbs, 64};
}

} // namespace

TEST(TbThrottle, ReducesResidencyUnderThrashing)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 1;
    cfg.tbThrottleEnabled = true;
    cfg.throttleWindow = 64;
    cfg.throttleMinTbs = 2;
    Gpu gpu(cfg);
    gpu.launchHostKernel(thrashKernel(64));
    gpu.runToIdle();
    // The run completes despite throttling, and all TBs execute.
    EXPECT_EQ(gpu.stats().smx[0].tbsExecuted, 64u);
}

TEST(TbThrottle, DisabledKeepsFullResidency)
{
    GpuConfig cfg = tinyConfig();
    cfg.tbThrottleEnabled = false;
    Gpu gpu(cfg);
    gpu.launchHostKernel(thrashKernel(16));
    gpu.runToIdle();
    EXPECT_EQ(gpu.activeTbs(), 0u);
}

TEST(TbThrottle, CompletesUnderAllPolicies)
{
    for (TbPolicy p : {TbPolicy::RR, TbPolicy::AdaptiveBind}) {
        GpuConfig cfg = tinyConfig();
        cfg.tbThrottleEnabled = true;
        cfg.throttleWindow = 32;
        cfg.tbPolicy = p;
        Gpu gpu(cfg);
        gpu.launchHostKernel(thrashKernel(32));
        gpu.runToIdle();
        EXPECT_EQ(gpu.undispatchedTbs(), 0u);
    }
}

TEST(TbAwareWarpSched, ExecutesIdenticalWork)
{
    auto run = [](WarpPolicy wp) {
        GpuConfig cfg = tinyConfig();
        cfg.warpPolicy = wp;
        cfg.dynParModel = DynParModel::DTBL;
        auto child = std::make_shared<LambdaProgram>(
            "c", 8201, [](ThreadCtx &c) {
                c.ld(0x2000000 + c.globalThreadIndex() * 4, 4);
                c.alu(6);
            });
        auto parent = std::make_shared<LambdaProgram>(
            "p", 8200, [child](ThreadCtx &c) {
                c.alu(20);
                if (c.threadIndex() < 2)
                    c.launch({child, 2, 64});
            });
        Gpu gpu(cfg);
        gpu.launchHostKernel({parent, 12, 64});
        gpu.runToIdle();
        GpuStats s = gpu.stats();
        std::uint64_t insts = 0;
        for (const auto &smx : s.smx)
            insts += smx.threadInstructions;
        return insts;
    };
    std::uint64_t gto = run(WarpPolicy::GTO);
    std::uint64_t aware = run(WarpPolicy::TbAware);
    std::uint64_t lrr = run(WarpPolicy::LRR);
    EXPECT_EQ(gto, aware);
    EXPECT_EQ(gto, lrr);
}

TEST(TbAwareWarpSched, RunsRealWorkload)
{
    GpuConfig cfg = tinyConfig();
    cfg.warpPolicy = WarpPolicy::TbAware;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    auto prog = std::make_shared<LambdaProgram>(
        "k", allocateFunctionId(), [](ThreadCtx &c) {
            c.ld(c.globalThreadIndex() * 64, 4);
            c.bar();
            c.alu(4);
        });
    Gpu gpu(cfg);
    gpu.launchHostKernel({prog, 8, 128});
    gpu.runToIdle();
    EXPECT_EQ(gpu.activeTbs(), 0u);
}
