# Empty dependencies file for paper_figure4.
# This may be replaced when dependencies are built.
