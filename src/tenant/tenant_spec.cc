#include "tenant/tenant_spec.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "workloads/registry.hh"

namespace laperm {
namespace tenant {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip an optional matched pair of double quotes. */
std::string
unquote(const std::string &s)
{
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
        return s.substr(1, s.size() - 2);
    return s;
}

bool
validName(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::islower(static_cast<unsigned char>(c)) &&
            !std::isdigit(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-') {
            return false;
        }
    }
    return true;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

std::string
lineErr(int line, const std::string &msg)
{
    return "line " + std::to_string(line) + ": " + msg;
}

bool
parseScaleName(const std::string &s, Scale &out)
{
    if (s == "tiny") {
        out = Scale::Tiny;
        return true;
    }
    if (s == "small") {
        out = Scale::Small;
        return true;
    }
    if (s == "full") {
        out = Scale::Full;
        return true;
    }
    if (s == "huge") {
        out = Scale::Huge;
        return true;
    }
    return false;
}

} // namespace

bool
parseMixToml(const std::string &text, MixSpec &out, std::string &err)
{
    // Scratch-then-commit (config_loader discipline): @p out is only
    // written once the whole spec parsed and validated.
    MixSpec mix;
    enum class Section
    {
        None,
        Mix,
        Tenant,
    };
    Section section = Section::None;
    TenantSpec *cur = nullptr;
    bool sawPeriod = false;

    std::istringstream in(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(in, raw)) {
        ++lineNo;
        std::string line = raw;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']') {
                err = lineErr(lineNo, "unterminated section header");
                return false;
            }
            std::string sec = trim(line.substr(1, line.size() - 2));
            if (sec == "mix") {
                section = Section::Mix;
                cur = nullptr;
                continue;
            }
            if (sec.rfind("tenant.", 0) == 0) {
                std::string name = sec.substr(7);
                if (!validName(name)) {
                    err = lineErr(lineNo,
                                  "bad tenant name '" + name + "'");
                    return false;
                }
                for (const TenantSpec &t : mix.tenants) {
                    if (t.name == name) {
                        err = lineErr(lineNo, "duplicate tenant '" +
                                                  name + "'");
                        return false;
                    }
                }
                mix.tenants.emplace_back();
                cur = &mix.tenants.back();
                cur->name = name;
                section = Section::Tenant;
                sawPeriod = false;
                continue;
            }
            err = lineErr(lineNo, "unknown section " + sec +
                                      " (only [mix] and [tenant.<name>] "
                                      "are recognized)");
            return false;
        }

        auto eq = line.find('=');
        if (eq == std::string::npos) {
            err = lineErr(lineNo, "expected key = value");
            return false;
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = unquote(trim(line.substr(eq + 1)));
        if (!validName(key)) {
            err = lineErr(lineNo, "bad key '" + key + "'");
            return false;
        }

        if (section == Section::Mix) {
            std::uint64_t v = 0;
            if (key == "name") {
                mix.name = value;
            } else if (key == "quantum") {
                if (!parseU64(value, v) || v == 0) {
                    err = lineErr(lineNo, "quantum must be a positive "
                                          "cycle count");
                    return false;
                }
                mix.quantum = v;
            } else if (key == "admission_threshold_pct") {
                if (!parseU64(value, v) || v == 0 || v > 100) {
                    err = lineErr(lineNo, "admission_threshold_pct must "
                                          "be in 1..100");
                    return false;
                }
                mix.admissionThresholdPct =
                    static_cast<std::uint32_t>(v);
            } else if (key == "ewma_shift") {
                if (!parseU64(value, v) || v > 16) {
                    err = lineErr(lineNo, "ewma_shift must be in 0..16");
                    return false;
                }
                mix.ewmaShift = static_cast<std::uint32_t>(v);
            } else {
                err = lineErr(lineNo, "unknown [mix] key '" + key + "'");
                return false;
            }
        } else if (section == Section::Tenant) {
            std::uint64_t v = 0;
            if (key == "workload") {
                if (!isKnownWorkload(value)) {
                    err = lineErr(lineNo, "unknown workload '" + value +
                                              "' (known: " +
                                              workloadNameList() + ")");
                    return false;
                }
                cur->workload = value;
            } else if (key == "scale") {
                if (!parseScaleName(value, cur->scale)) {
                    err = lineErr(lineNo, "scale must be "
                                          "tiny|small|full|huge");
                    return false;
                }
            } else if (key == "priority") {
                if (!parseU64(value, v) || v > 255) {
                    err = lineErr(lineNo, "priority must be in 0..255");
                    return false;
                }
                cur->priority = static_cast<std::uint32_t>(v);
            } else if (key == "arrival") {
                if (!parseU64(value, v)) {
                    err = lineErr(lineNo, "arrival must be a cycle "
                                          "count");
                    return false;
                }
                cur->firstArrival = v;
            } else if (key == "period") {
                if (!parseU64(value, v)) {
                    err = lineErr(lineNo, "period must be a cycle "
                                          "count");
                    return false;
                }
                cur->period = v;
                sawPeriod = true;
            } else if (key == "jobs") {
                if (!parseU64(value, v) || v == 0) {
                    err = lineErr(lineNo, "jobs must be positive");
                    return false;
                }
                cur->jobs = static_cast<std::uint32_t>(v);
            } else {
                err = lineErr(lineNo,
                              "unknown [tenant] key '" + key + "'");
                return false;
            }
        } else {
            err = lineErr(lineNo, "key outside any section");
            return false;
        }
    }

    if (mix.tenants.empty()) {
        err = "mix has no [tenant.<name>] sections";
        return false;
    }
    for (const TenantSpec &t : mix.tenants) {
        if (t.workload.empty()) {
            err = "tenant '" + t.name + "' has no workload";
            return false;
        }
        if (t.jobs > 1 && t.period == 0) {
            err = "tenant '" + t.name +
                  "' has multiple jobs but no period";
            return false;
        }
    }
    (void)sawPeriod;
    out = std::move(mix);
    return true;
}

bool
loadMixToml(const std::string &path, MixSpec &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open mix spec '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!parseMixToml(buf.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    if (out.name.empty()) {
        // A file spec without an explicit name inherits its path stem.
        auto slash = path.find_last_of('/');
        std::string stem =
            slash == std::string::npos ? path : path.substr(slash + 1);
        auto dot = stem.rfind(".toml");
        if (dot != std::string::npos)
            stem = stem.substr(0, dot);
        out.name = stem;
    }
    return true;
}

} // namespace tenant
} // namespace laperm
