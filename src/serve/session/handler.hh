/**
 * @file
 * The seam between the session layer and whatever answers requests
 * (DESIGN.md §15.2). A LineHandler maps one request frame to one
 * response frame; the Server owns sockets, threads, and framing and
 * knows nothing else. Two implementations exist: ServiceHandler
 * (serve/service) answers locally, BalancerHandler (serve/cluster)
 * routes to workers — and because both sit behind this interface, the
 * session layer is byte-identical for single-process and cluster
 * deployments.
 */

#ifndef LAPERM_SERVE_SESSION_HANDLER_HH
#define LAPERM_SERVE_SESSION_HANDLER_HH

#include <functional>
#include <string>

namespace laperm {
namespace serve {

class LineHandler
{
  public:
    virtual ~LineHandler() = default;

    /**
     * Handle one request frame (no terminator) and return the
     * response frame (no terminator). Must be callable from multiple
     * session threads concurrently.
     */
    virtual std::string handleLine(const std::string &line) = 0;

    /**
     * Invoked (at most once) when the handler wants the process to
     * stop accepting work — e.g. it dispatched a `shutdown` verb. The
     * embedder (a Server-owning main, or a test) installs the hook;
     * an unset hook makes shutdown requests a no-op beyond the
     * response, which is what in-process protocol tests want.
     */
    void setShutdownHook(std::function<void()> hook)
    {
        shutdownHook_ = std::move(hook);
    }

  protected:
    void requestShutdown()
    {
        if (shutdownHook_)
            shutdownHook_();
    }

  private:
    std::function<void()> shutdownHook_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SESSION_HANDLER_HH
