/**
 * @file
 * Graph coloring with dynamic parallelism [31]: Jones-Plassmann rounds.
 * Each round's kernel scans the neighborhood of the vertices that win
 * the priority race; heavy neighborhoods are scanned by child TBs that
 * re-read the priorities/colors the parent round produced.
 */

#include "workloads/clr.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "graph/algorithms.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"
#include "workloads/graph_common.hh"

namespace laperm {

namespace {

struct ClrData
{
    Csr csr;
    GraphLayout layout;
    ColoringResult result;
    std::vector<std::uint64_t> roundStart;
    /** Round in which each vertex is colored (kUnreached if beyond). */
    std::vector<std::uint32_t> roundOf;
    std::uint32_t childFuncId = 0;
    std::uint32_t topFuncId = 0;
};

/** Scan one neighbor: status mask first, then priority or color. */
void
emitNeighborScan(ThreadCtx &ctx, const ClrData &d, std::uint64_t edge,
                 std::uint32_t round)
{
    const GraphLayout &l = d.layout;
    ctx.ld(l.colAddr(edge), 4);
    std::uint32_t v = d.csr.cols()[edge];
    // The colored-status mask is the dense shared structure every
    // scan probes first.
    ctx.ld(l.maskAddr(v), 1);
    ctx.alu(2);
    if (d.roundOf[v] < round) {
        // Already colored: its color constrains our choice.
        ctx.ld(l.vdataAddr(v), 4);
    } else {
        // Still uncolored: compare priorities.
        ctx.ld(l.prioAddr(v), 8);
    }
}

class ClrChildProgram : public KernelProgram
{
  public:
    ClrChildProgram(std::shared_ptr<const ClrData> data, std::uint32_t u,
                    std::uint32_t round)
        : data_(std::move(data)), u_(u), round_(round)
    {}

    std::string name() const override { return "clr_scan"; }
    std::uint32_t functionId() const override
    {
        return data_->childFuncId;
    }
    std::uint32_t regsPerThread() const override { return 28; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const ClrData &d = *data_;
        const GraphLayout &l = d.layout;
        const std::uint64_t base = d.csr.offset(u_);
        const std::uint32_t deg = d.csr.degree(u_);
        const std::uint32_t stride = ctx.numTbs() * ctx.threadsPerTb();

        ctx.ld(l.paramAddr(u_), 16);
        ctx.ld(l.rowAddr(u_), 8);
        ctx.ld(l.prioAddr(u_), 8);
        ctx.alu(4);
        for (std::uint64_t e = ctx.globalThreadIndex(); e < deg;
             e += stride) {
            emitNeighborScan(ctx, d, base + e, round_);
        }
        // The last TB's thread 0 commits the color after the scan.
        if (ctx.tbIndex() == ctx.numTbs() - 1 && ctx.threadIndex() == 0) {
            ctx.alu(6);
            ctx.st(l.vdataAddr(u_), 4);
            ctx.st(l.maskAddr(u_), 1);
        }
    }

  private:
    std::shared_ptr<const ClrData> data_;
    std::uint32_t u_;
    std::uint32_t round_;
};

class ClrTopProgram : public KernelProgram
{
  public:
    ClrTopProgram(std::shared_ptr<const ClrData> data, std::uint32_t round)
        : data_(std::move(data)), round_(round)
    {}

    std::string name() const override { return "clr_top"; }
    std::uint32_t functionId() const override { return data_->topFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const ClrData &d = *data_;
        const GraphLayout &l = d.layout;
        const auto &round = d.result.rounds[round_];
        const std::uint32_t i = ctx.globalThreadIndex();
        if (i >= round.size())
            return;
        const std::uint32_t u = round[i];
        const std::uint32_t deg = d.csr.degree(u);

        ctx.ld(l.worklistAddr((d.roundStart[round_] + i) %
                              d.csr.numVertices()),
               4);
        ctx.ld(l.rowAddr(u), 8);
        ctx.ld(l.prioAddr(u), 8);
        ctx.alu(6);

        if (deg > kSpawnDegree) {
            ctx.st(l.paramAddr(u), 16);
            ctx.launch({std::make_shared<ClrChildProgram>(data_, u,
                                                          round_),
                        childTbCount(deg), kChildTbThreads});
        } else {
            const std::uint64_t base = d.csr.offset(u);
            for (std::uint32_t j = 0; j < deg; ++j)
                emitNeighborScan(ctx, d, base + j, round_);
            ctx.alu(4);
            ctx.st(l.vdataAddr(u), 4); // commit color
            ctx.st(l.maskAddr(u), 1);
        }
    }

  private:
    std::shared_ptr<const ClrData> data_;
    std::uint32_t round_;
};

} // namespace

std::string
ClrWorkload::app() const
{
    return "clr";
}

std::string
ClrWorkload::input() const
{
    return input_;
}

void
ClrWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto data = std::make_shared<ClrData>();
    data->csr = buildGraphInput(input_, scale, seed);
    data->layout.allocate(mem_, data->csr, false);
    data->result = jpColoring(data->csr, seed ^ 0xC010F);
    data->childFuncId = allocateFunctionId();
    data->topFuncId = allocateFunctionId();

    data->roundOf.assign(data->csr.numVertices(), kUnreached);
    for (std::size_t r = 0; r < data->result.rounds.size(); ++r) {
        for (std::uint32_t v : data->result.rounds[r])
            data->roundOf[v] = static_cast<std::uint32_t>(r);
    }

    std::uint32_t max_waves;
    switch (scale) {
      case Scale::Tiny: max_waves = 4; break;
      case Scale::Small: max_waves = 8; break;
      case Scale::Huge: max_waves = 16; break;
      default: max_waves = 12; break;
    }

    data->roundStart.assign(data->result.rounds.size() + 1, 0);
    for (std::size_t r = 0; r < data->result.rounds.size(); ++r) {
        data->roundStart[r + 1] =
            (data->roundStart[r] + data->result.rounds[r].size()) %
            data->csr.numVertices();
    }

    std::uint32_t rounds = static_cast<std::uint32_t>(
        std::min<std::size_t>(data->result.rounds.size(), max_waves));
    waves_.clear();
    for (std::uint32_t r = 0; r < rounds; ++r) {
        std::uint32_t active =
            static_cast<std::uint32_t>(data->result.rounds[r].size());
        std::uint32_t tbs =
            (active + kGraphTbThreads - 1) / kGraphTbThreads;
        waves_.push_back({std::make_shared<ClrTopProgram>(data, r), tbs,
                          kGraphTbThreads});
    }
}

} // namespace laperm
