/**
 * @file
 * sim-lint CLI (DESIGN.md §12). Usage:
 *
 *   sim_lint [--root <dir>] [--layering <spec>] [--baseline <file>]
 *            [--write-baseline <file>] [--sarif <file>] [--diff <ref>]
 *            [--timings] [--no-audit] [file...]
 *
 * With explicit files, lints exactly those. With --diff <ref>, lints
 * the sources under src/ that changed relative to the git ref.
 * Otherwise scans every .hh/.cc under <root>/src (default root ".").
 *
 * The layering spec defaults to <root>/layering.toml and the baseline
 * to <root>/sim_lint_baseline.tsv when those files exist; pass an
 * explicit path (or a nonexistent one) to override.
 *
 * Exit status: 0 when clean, 1 when findings were reported, 2 on
 * usage/configuration/IO errors. Invoked by scripts/lint.sh, the
 * verify pipeline, and the sim_lint_repo ctest gate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint_driver.hh"
#include "tools/sim_lint.hh"

namespace {

/**
 * Sources under src/ changed relative to @p ref, via git. Deleted
 * files are excluded (--diff-filter=d); non-source files and paths
 * outside src/ are dropped. Returns false when git itself fails.
 */
bool
changedSources(const std::string &root, const std::string &ref,
               std::vector<std::string> &out)
{
    const std::string cmd = "git -C '" + root +
                            "' diff --name-only --diff-filter=d '" +
                            ref + "' -- src 2>/dev/null";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    if (!pipe)
        return false;
    std::string line;
    int c;
    while ((c = std::fgetc(pipe)) != EOF) {
        if (c == '\n') {
            if (!line.empty()) {
                const bool src =
                    line.size() > 3 &&
                    (line.compare(line.size() - 3, 3, ".hh") == 0 ||
                     line.compare(line.size() - 3, 3, ".cc") == 0 ||
                     (line.size() > 4 &&
                      (line.compare(line.size() - 4, 4, ".hpp") == 0 ||
                       line.compare(line.size() - 4, 4, ".cpp") == 0)));
                if (src)
                    out.push_back(root + "/" + line);
            }
            line.clear();
        } else {
            line += static_cast<char>(c);
        }
    }
    return ::pclose(pipe) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace laperm::simlint;

    DriverOptions opts;
    std::string diffRef;
    bool timings = false;

    auto need = [&](int i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "sim-lint: %s needs a value\n", flag);
            std::exit(2);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            opts.root = need(i++, "--root");
        } else if (arg == "--layering") {
            opts.layeringSpec = need(i++, "--layering");
        } else if (arg == "--baseline") {
            opts.baselinePath = need(i++, "--baseline");
        } else if (arg == "--write-baseline") {
            opts.writeBaselinePath = need(i++, "--write-baseline");
        } else if (arg == "--sarif") {
            opts.sarifPath = need(i++, "--sarif");
        } else if (arg == "--diff") {
            diffRef = need(i++, "--diff");
        } else if (arg == "--timings") {
            timings = true;
        } else if (arg == "--no-audit") {
            opts.audit = false;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: sim_lint [--root <dir>] [--layering <spec>]\n"
                "                [--baseline <file>] "
                "[--write-baseline <file>]\n"
                "                [--sarif <file>] [--diff <ref>] "
                "[--timings]\n"
                "                [--no-audit] [file...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sim-lint: unknown flag %s\n",
                         arg.c_str());
            return 2;
        } else {
            opts.files.push_back(arg);
        }
    }

    if (!diffRef.empty()) {
        if (!opts.files.empty()) {
            std::fprintf(stderr,
                         "sim-lint: --diff and explicit files are "
                         "mutually exclusive\n");
            return 2;
        }
        if (!changedSources(opts.root, diffRef, opts.files)) {
            std::fprintf(stderr, "sim-lint: git diff against '%s' failed\n",
                         diffRef.c_str());
            return 2;
        }
        if (opts.files.empty()) {
            std::printf("sim-lint: no sources changed vs %s\n",
                        diffRef.c_str());
            return 0;
        }
    }

    const DriverResult result = runDriver(opts);
    if (!result.error.empty()) {
        std::fprintf(stderr, "sim-lint: %s\n", result.error.c_str());
        return 2;
    }

    for (const auto &f : result.findings) {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                     ruleName(f.rule), f.message.c_str());
    }
    if (timings) {
        for (const auto &t : result.timings) {
            std::fprintf(stderr,
                         "sim-lint: pass %-16s %8llu us  %zu raw "
                         "finding%s\n",
                         t.pass.c_str(),
                         static_cast<unsigned long long>(t.micros),
                         t.findings, t.findings == 1 ? "" : "s");
        }
    }
    if (!opts.writeBaselinePath.empty()) {
        std::printf("sim-lint: baseline written to %s\n",
                    opts.writeBaselinePath.c_str());
    }
    std::printf("sim-lint: %zu files scanned, %zu finding%s\n",
                result.filesScanned, result.findings.size(),
                result.findings.size() == 1 ? "" : "s");
    return result.findings.empty() ? 0 : 1;
}
