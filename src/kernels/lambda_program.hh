/**
 * @file
 * A KernelProgram defined by a callable — convenient for tests,
 * examples and custom kernels without declaring a subclass.
 */

#ifndef LAPERM_KERNELS_LAMBDA_PROGRAM_HH
#define LAPERM_KERNELS_LAMBDA_PROGRAM_HH

#include <functional>
#include <string>
#include <utility>

#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

/** Kernel program wrapping a std::function thread body. */
class LambdaProgram : public KernelProgram
{
  public:
    using Body = std::function<void(ThreadCtx &)>;

    /**
     * @param name kernel name for logs.
     * @param function_id DTBL-coalescing identity; launches sharing a
     *        function id (and TB size) coalesce. Use allocateFunctionId()
     *        for a fresh function.
     */
    LambdaProgram(std::string name, std::uint32_t function_id, Body body,
                  std::uint32_t regs_per_thread = 32,
                  std::uint32_t smem_per_tb = 0)
        : name_(std::move(name)), functionId_(function_id),
          body_(std::move(body)), regs_(regs_per_thread),
          smem_(smem_per_tb)
    {}

    std::string name() const override { return name_; }
    std::uint32_t functionId() const override { return functionId_; }
    std::uint32_t regsPerThread() const override { return regs_; }
    std::uint32_t smemPerTb() const override { return smem_; }

    void emitThread(ThreadCtx &ctx) const override { body_(ctx); }

  private:
    std::string name_;
    std::uint32_t functionId_;
    Body body_;
    std::uint32_t regs_;
    std::uint32_t smem_;
};

} // namespace laperm

#endif // LAPERM_KERNELS_LAMBDA_PROGRAM_HH
