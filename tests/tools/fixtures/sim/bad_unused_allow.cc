// sim-lint fixture: an allow() marker that suppresses nothing is a
// rotted waiver and must be flagged by the suppression audit. Not
// compiled — parsed by test_sim_lint_v2.cc.

// This file contains no RNG call, so the waiver below is dead.
// sim-lint: allow(banned-rng)
unsigned
pureCounter(unsigned x)
{
    return x + 1;
}
