file(REMOVE_RECURSE
  "CMakeFiles/bench_launch_latency.dir/bench_launch_latency.cc.o"
  "CMakeFiles/bench_launch_latency.dir/bench_launch_latency.cc.o.d"
  "bench_launch_latency"
  "bench_launch_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_launch_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
