#include <gtest/gtest.h>

#include "gpu/kdu.hh"

using namespace laperm;

TEST(Kdu, EntriesTrackAdmissionAndCompletion)
{
    Kdu kdu(2);
    EXPECT_TRUE(kdu.hasFreeEntry());
    KernelInstance *a = kdu.admitKernel(1, 32, 2, false, 0);
    KernelInstance *b = kdu.admitKernel(2, 32, 1, true, 0);
    EXPECT_FALSE(kdu.hasFreeEntry());
    kdu.tbFinished(b);
    EXPECT_TRUE(b->complete());
    EXPECT_TRUE(kdu.hasFreeEntry());
    kdu.tbFinished(a);
    EXPECT_FALSE(a->complete());
    kdu.tbFinished(a);
    EXPECT_TRUE(a->complete());
    EXPECT_EQ(kdu.freeEntries(), 2u);
}

TEST(Kdu, CoalesceGrowsTbPool)
{
    Kdu kdu(4);
    KernelInstance *k = kdu.admitKernel(7, 64, 10, true, 0);
    std::uint32_t first = kdu.coalesceTbs(k, 5);
    EXPECT_EQ(first, 10u);
    EXPECT_EQ(k->totalTbs, 15u);
}

TEST(Kdu, FindMatchRequiresFunctionAndTbSize)
{
    Kdu kdu(4);
    kdu.admitKernel(7, 64, 1, true, 0);
    EXPECT_NE(kdu.findMatch(7, 64), nullptr);
    EXPECT_EQ(kdu.findMatch(7, 32), nullptr);
    EXPECT_EQ(kdu.findMatch(8, 64), nullptr);
}

TEST(Kdu, CompletedKernelsDoNotMatch)
{
    Kdu kdu(4);
    KernelInstance *k = kdu.admitKernel(7, 64, 1, true, 0);
    kdu.tbFinished(k);
    EXPECT_EQ(kdu.findMatch(7, 64), nullptr);
}

TEST(Kdu, UnitSequenceIsMonotonic)
{
    Kdu kdu(4);
    DispatchUnit *u1 = kdu.createUnit();
    DispatchUnit *u2 = kdu.createUnit();
    EXPECT_LT(u1->seq, u2->seq);
}
