#include "gpu/smx.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

Smx::Smx(SmxId id, const GpuConfig &cfg, MemSystem &mem,
         SmxCallbacks &callbacks)
    : id_(id), cfg_(cfg), mem_(mem), callbacks_(callbacks),
      warpSched_(cfg.warpSchedulersPerSmx, cfg.warpPolicy),
      effectiveMaxTbs_(cfg.maxTbsPerSmx)
{
}

bool
Smx::canAccommodate(std::uint32_t threads, std::uint32_t regs,
                    std::uint32_t smem) const
{
    return residentTbs_.size() < effectiveMaxTbs_ &&
           threadsUsed_ + threads <= cfg_.maxThreadsPerSmx &&
           regsUsed_ + regs <= cfg_.regsPerSmx &&
           smemUsed_ + smem <= cfg_.smemPerSmx;
}

void
Smx::evaluateThrottle()
{
    const CacheStats &l1 = mem_.l1(id_).stats();
    std::uint64_t accesses = l1.accesses - throttleLastAccesses_;
    if (accesses < cfg_.throttleWindow)
        return;
    std::uint64_t hits = l1.hits - throttleLastHits_;
    throttleLastAccesses_ = l1.accesses;
    throttleLastHits_ = l1.hits;
    double miss =
        1.0 - static_cast<double>(hits) / static_cast<double>(accesses);
    if (miss > cfg_.throttleHighMiss &&
        effectiveMaxTbs_ > cfg_.throttleMinTbs) {
        --effectiveMaxTbs_;
    } else if (miss < cfg_.throttleLowMiss &&
               effectiveMaxTbs_ < cfg_.maxTbsPerSmx) {
        ++effectiveMaxTbs_;
        callbacks_.dispatchCapacityFreed();
    }
}

ThreadBlock *
Smx::acquireTb()
{
    if (!tbFree_.empty()) {
        ThreadBlock *tb = tbFree_.back();
        tbFree_.pop_back();
        return tb;
    }
    tbArena_.push_back(std::make_unique<ThreadBlock>());
    return tbArena_.back().get();
}

void
Smx::acceptTb(ThreadBlock *tb, Cycle now)
{
    laperm_assert(canAccommodate(tb->numThreads, tb->regs, tb->smem),
                  "TB dispatched to a full SMX %u", id_);
    tb->smx = id_;
    tb->dispatchCycle = now;
    threadsUsed_ += tb->numThreads;
    regsUsed_ += tb->regs;
    smemUsed_ += tb->smem;

    residentTbs_.push_back(tb);

    bool any_live = false;
    for (Warp &warp : tb->warps) {
        warp.age = nextWarpAge_++;
        warp.readyAt = now;
        if (warp.ops.empty()) {
            warp.done = true;
            ++tb->warpsDone;
            continue;
        }
        warpSched_.addWarp(&warp);
        any_live = true;
    }
    if (!any_live)
        completeTb(*tb, now);
}

bool
Smx::tick(Cycle now)
{
    bool issued_any = false;
    bool progress = false;
    const std::uint32_t slots = warpSched_.numSlots();
    for (std::uint32_t s = 0; s < slots; ++s) {
        Warp *warp = warpSched_.pick(s, now);
        if (!warp)
            continue;
        progress = true;
        if (warp->finishedOps()) {
            // Final op has drained: retire without consuming an
            // instruction (the slot is still busy this cycle).
            retireWarp(*warp, now);
            continue;
        }
        warpSched_.issued(s, warp, now);
        executeOp(*warp, now);
        // Re-file by the new readyAt — unless the op parked the warp at
        // a barrier (loc is then None, or Pending if the barrier
        // released synchronously and woke it).
        if (warp->loc == WarpLoc::Ready)
            warpSched_.requeue(warp);
        issued_any = true;
    }
    if (issued_any) {
        ++stats_.busyCycles;
        if (cfg_.tbThrottleEnabled)
            evaluateThrottle();
    }
    return progress;
}

void
Smx::executeOp(Warp &warp, Cycle now)
{
    const WarpOp &op = warp.ops[warp.pc++];
    ++stats_.warpInstructions;
    ++stats_.issueSlots;
    stats_.threadInstructions += op.activeLanes;

    switch (op.kind) {
      case OpKind::Alu:
        warp.readyAt = now + std::max<std::uint32_t>(1, op.aluCycles);
        break;
      case OpKind::Load: {
        // The LSU issues one coalesced transaction per cycle; the warp
        // resumes when the last outstanding load returns. Consecutive
        // load instructions issue back-to-back (compiler-scheduled
        // memory-level parallelism) up to the per-warp MLP window.
        const obs::MemAccessor acc{warp.tb->uid, warp.tb->directParent,
                                   warp.tb->isDynamic};
        Cycle done = now + 1;
        Cycle issue = now;
        std::uint32_t batched = 1;
        const WarpOp *cur = &op;
        for (;;) {
            for (Addr line : cur->lines)
                done = std::max(done, mem_.load(id_, line, issue++, &acc));
            if (batched >= cfg_.warpMlpWindow ||
                warp.pc >= warp.ops.size() ||
                warp.ops[warp.pc].kind != OpKind::Load) {
                break;
            }
            cur = &warp.ops[warp.pc++];
            ++batched;
            ++stats_.warpInstructions;
            stats_.threadInstructions += cur->activeLanes;
        }
        warp.readyAt = done;
        break;
      }
      case OpKind::Store: {
        // Stores retire at issue (no register dependence); the warp is
        // only held for LSU throughput.
        const obs::MemAccessor acc{warp.tb->uid, warp.tb->directParent,
                                   warp.tb->isDynamic};
        Cycle issue = now;
        for (Addr line : op.lines)
            mem_.store(id_, line, issue++, &acc);
        warp.readyAt = now + std::max<std::size_t>(1, op.lines.size());
        break;
      }
      case OpKind::Bar: {
        ThreadBlock &tb = *warp.tb;
        warp.atBarrier = true;
        // Park before a possible synchronous release so the release
        // wakes this warp through the same None -> Pending path as the
        // rest of its TB.
        warpSched_.parkAtBarrier(&warp);
        ++tb.warpsAtBarrier;
        ++stats_.barrierStalls;
        std::uint32_t alive =
            static_cast<std::uint32_t>(tb.warps.size()) - tb.warpsDone;
        if (tb.warpsAtBarrier == alive)
            releaseBarrier(tb, now);
        break;
      }
      case OpKind::Launch: {
        for (const LaunchRequest &req : op.launches)
            callbacks_.deviceLaunch(req, *warp.tb, now);
        warp.readyAt = now + cfg_.launchIssueCycles;
        break;
      }
    }
}

void
Smx::releaseBarrier(ThreadBlock &tb, Cycle now)
{
    for (Warp &warp : tb.warps) {
        if (warp.atBarrier) {
            warp.atBarrier = false;
            warp.readyAt = now + cfg_.barLatency;
            warpSched_.wakeFromBarrier(&warp);
        }
    }
    tb.warpsAtBarrier = 0;
}

void
Smx::retireWarp(Warp &warp, Cycle now)
{
    ThreadBlock &tb = *warp.tb;
    warp.done = true;
    warpSched_.removeWarp(&warp);
    ++tb.warpsDone;

    // A retiring warp may be the last one a barrier was waiting on.
    std::uint32_t alive =
        static_cast<std::uint32_t>(tb.warps.size()) - tb.warpsDone;
    if (alive > 0 && tb.warpsAtBarrier == alive)
        releaseBarrier(tb, now);

    if (tb.allWarpsDone())
        completeTb(tb, now);
}

void
Smx::completeTb(ThreadBlock &tb, Cycle now)
{
    threadsUsed_ -= tb.numThreads;
    regsUsed_ -= tb.regs;
    smemUsed_ -= tb.smem;
    ++stats_.tbsExecuted;
    if (tb.isDynamic)
        ++stats_.dynamicTbsExecuted;

    callbacks_.tbCompleted(tb, now);

    auto it = std::find(residentTbs_.begin(), residentTbs_.end(), &tb);
    laperm_assert(it != residentTbs_.end(), "completing unknown TB");
    *it = residentTbs_.back();
    residentTbs_.pop_back();
    tbFree_.push_back(&tb);
}

Cycle
Smx::nextEventAt(Cycle now) const
{
    return warpSched_.nextWakeup(now);
}

} // namespace laperm
