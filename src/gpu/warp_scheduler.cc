#include "gpu/warp_scheduler.hh"

#include <algorithm>

#include "common/log.hh"
#include "gpu/thread_block.hh"

namespace laperm {

namespace {

/** Min-heap order on (readyAt, age); ages are globally unique. */
struct PendingAfter
{
    bool operator()(const auto &a, const auto &b) const
    {
        if (a.readyAt != b.readyAt)
            return a.readyAt > b.readyAt;
        return a.age > b.age;
    }
};

} // namespace

WarpScheduler::WarpScheduler(std::uint32_t num_slots, WarpPolicy policy)
    : policy_(policy), slots_(num_slots)
{
    laperm_assert(num_slots > 0, "need at least one warp scheduler");
}

void
WarpScheduler::fileReady(Slot &slot, Warp *warp)
{
    warp->loc = WarpLoc::Ready;
    warp->readyIx = static_cast<std::uint32_t>(slot.ready.size());
    const ThreadBlock *tb = warp->tb;
    slot.ready.push_back({warp->age, warp->lastIssue,
                          tb ? tb->directParent : kNoTb, tb != nullptr,
                          warp});
}

void
WarpScheduler::filePending(Slot &slot, Warp *warp)
{
    warp->loc = WarpLoc::Pending;
    slot.pending.push_back({warp->readyAt, warp->age, warp});
    std::push_heap(slot.pending.begin(), slot.pending.end(),
                   PendingAfter{});
}

void
WarpScheduler::eraseReady(Slot &slot, std::uint32_t ix)
{
    Warp *moved = slot.ready.back().warp;
    slot.ready[ix] = slot.ready.back();
    slot.ready.pop_back();
    if (moved->loc == WarpLoc::Ready && ix < slot.ready.size())
        moved->readyIx = ix;
}

void
WarpScheduler::drainPending(Slot &slot, Cycle now)
{
    while (!slot.pending.empty() && slot.pending.front().readyAt <= now) {
        Warp *warp = slot.pending.front().warp;
        std::pop_heap(slot.pending.begin(), slot.pending.end(),
                      PendingAfter{});
        slot.pending.pop_back();
        fileReady(slot, warp);
    }
}

void
WarpScheduler::addWarp(Warp *warp)
{
    std::uint32_t slot =
        static_cast<std::uint32_t>(nextAssign_++ % slots_.size());
    warp->slot = slot;
    filePending(slots_[slot], warp);
    ++liveWarps_;
}

void
WarpScheduler::removeWarp(Warp *warp)
{
    Slot &slot = slots_[warp->slot];
    if (warp->loc == WarpLoc::Ready) {
        laperm_assert(warp->readyIx < slot.ready.size() &&
                          slot.ready[warp->readyIx].warp == warp,
                      "ready index out of sync");
        eraseReady(slot, warp->readyIx);
    } else if (warp->loc == WarpLoc::Pending) {
        auto it = std::find_if(
            slot.pending.begin(), slot.pending.end(),
            [warp](const PendingEntry &e) { return e.warp == warp; });
        laperm_assert(it != slot.pending.end(), "removing unknown warp");
        slot.pending.erase(it);
        std::make_heap(slot.pending.begin(), slot.pending.end(),
                       PendingAfter{});
    } else {
        laperm_fatal("removing a warp that is not filed");
    }
    warp->loc = WarpLoc::None;
    if (slot.greedy == warp)
        slot.greedy = nullptr;
    --liveWarps_;
}

void
WarpScheduler::requeue(Warp *warp)
{
    Slot &slot = slots_[warp->slot];
    laperm_assert(warp->loc == WarpLoc::Ready, "requeue of non-ready warp");
    eraseReady(slot, warp->readyIx);
    filePending(slot, warp);
}

void
WarpScheduler::parkAtBarrier(Warp *warp)
{
    Slot &slot = slots_[warp->slot];
    laperm_assert(warp->loc == WarpLoc::Ready, "parking a non-ready warp");
    eraseReady(slot, warp->readyIx);
    warp->loc = WarpLoc::None;
}

void
WarpScheduler::wakeFromBarrier(Warp *warp)
{
    laperm_assert(warp->loc == WarpLoc::None, "waking a filed warp");
    filePending(slots_[warp->slot], warp);
}

Warp *
WarpScheduler::pick(std::uint32_t slot_ix, Cycle now)
{
    Slot &slot = slots_[slot_ix];
    drainPending(slot, now);

    // After the drain, "filed in ready" is exactly the old eligibility
    // predicate (!done && !atBarrier && readyAt <= now).
    const bool greedy_like = policy_ != WarpPolicy::LRR;
    if (greedy_like && slot.greedy && slot.greedy->loc == WarpLoc::Ready)
        return slot.greedy;

    // TB-aware family preference: the TB family (direct parent) of
    // the warp that issued last from this slot.
    TbUid family = kNoTb;
    bool have_family = false;
    if (policy_ == WarpPolicy::TbAware && slot.greedy &&
        slot.greedy->tb) {
        family = slot.greedy->tb->directParent;
        have_family = true;
    }

    const ReadyEntry *best = nullptr;
    bool best_in_family = false;
    for (const ReadyEntry &e : slot.ready) {
        bool in_family = have_family && e.hasTb && e.family == family;
        if (!best) {
            best = &e;
            best_in_family = in_family;
            continue;
        }
        switch (policy_) {
          case WarpPolicy::GTO:
            if (e.age < best->age)
                best = &e; // oldest
            break;
          case WarpPolicy::LRR:
            // Least-recently issued first, oldest tie-break.
            if (e.lastIssue < best->lastIssue ||
                (e.lastIssue == best->lastIssue && e.age < best->age)) {
                best = &e;
            }
            break;
          case WarpPolicy::TbAware:
            // Family first, then oldest within the same class.
            if (in_family != best_in_family) {
                if (in_family) {
                    best = &e;
                    best_in_family = true;
                }
            } else if (e.age < best->age) {
                best = &e;
            }
            break;
        }
    }
    return best ? best->warp : nullptr;
}

void
WarpScheduler::issued(std::uint32_t slot_ix, Warp *warp, Cycle now)
{
    Slot &slot = slots_[slot_ix];
    slot.greedy = warp;
    warp->lastIssue = now;
    if (warp->loc == WarpLoc::Ready)
        slot.ready[warp->readyIx].lastIssue = now;
}

Cycle
WarpScheduler::nextWakeup(Cycle now) const
{
    Cycle best = kNoCycle;
    for (const Slot &slot : slots_) {
        if (!slot.ready.empty())
            return now;
        if (!slot.pending.empty())
            best = std::min(best,
                            std::max(slot.pending.front().readyAt, now));
    }
    return best;
}

} // namespace laperm
