/**
 * @file
 * The dynamic-parallelism launch path: routes device-side launches
 * through the KMU with the model's launch latency and admits them into
 * the KDU — as new device kernels (CDP) or as TB groups coalesced onto
 * matching kernels (DTBL).
 */

#ifndef LAPERM_DYNPAR_LAUNCHER_HH
#define LAPERM_DYNPAR_LAUNCHER_HH

#include <cstdint>

#include "gpu/kdu.hh"
#include "gpu/kmu.hh"
#include "gpu/thread_block.hh"
#include "sim/observer.hh"
#include "sched/tb_scheduler.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace laperm {

/** CDP/DTBL launch handling (Sections II-C and IV). */
class Launcher
{
  public:
    Launcher(const GpuConfig &cfg, Kdu &kdu, TbScheduler &sched,
             GpuStats &stats, std::uint64_t &undispatched_tbs,
             obs::ObserverHub &hub);

    /** Admit a host-launched kernel immediately (needs a KDU entry). */
    void hostLaunch(const LaunchRequest &req, Cycle now);

    /** A warp executed a launch op; buffer it in the KMU. */
    void deviceLaunch(const LaunchRequest &req, const ThreadBlock &parent,
                      Cycle now);

    /**
     * Admit at most one pending launch whose latency has elapsed.
     * @return true if an admission happened (device made progress).
     */
    bool tick(Cycle now);

    /** No pending device launches buffered. */
    bool idle() const { return kmu_.empty(); }

    /**
     * Earliest *future* cycle a pending launch becomes ready; kNoCycle
     * if none (ready-but-blocked launches resume on TB completion).
     */
    Cycle nextReadyAt(Cycle now) const;

    /**
     * True when a tick at cycle @p c would provably admit nothing and
     * observe nothing: no pending launch, latent or promoted, has a
     * readyAt at or before @p c. A ready-but-KDU-blocked launch has
     * readyAt <= now and keeps this false, preserving its stall
     * accounting. Lets the event loop elide provably inert front-end
     * visits (the promote() such a visit would run is a no-op too).
     */
    bool visitIsNoop(Cycle c) const { return kmu_.nextReadyAt() > c; }

    const Kmu &kmu() const { return kmu_; }

  private:
    /** Build a dispatch unit for an admitted launch and enqueue it. */
    void makeUnit(KernelInstance *kernel, std::uint32_t first_tb,
                  const PendingLaunch &launch, Cycle now);

    const GpuConfig &cfg_;
    Kdu &kdu_;
    TbScheduler &sched_;
    GpuStats &stats_;
    std::uint64_t &undispatchedTbs_;
    obs::ObserverHub &hub_;
    Kmu kmu_;
};

} // namespace laperm

#endif // LAPERM_DYNPAR_LAUNCHER_HH
