#include "mem/mem_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

MemSystem::MemSystem(const GpuConfig &cfg)
    : cfg_(cfg), l2BankFreeAt_(cfg.l2Banks, 0)
{
    const std::uint32_t num_l1 = cfg.numSmx / cfg.smxPerCluster;
    for (std::uint32_t i = 0; i < num_l1; ++i) {
        CacheParams p;
        p.name = logFormat("l1.%u", i);
        p.size = cfg.l1Size;
        p.assoc = cfg.l1Assoc;
        p.writeEvict = true;
        p.mshrTrimWatermark = cfg.mshrTrimWatermark;
        l1s_.push_back(std::make_unique<Cache>(p));
    }
    CacheParams p2;
    p2.name = "l2";
    p2.size = cfg.l2Size;
    p2.assoc = cfg.l2Assoc;
    p2.writeEvict = false;
    p2.mshrTrimWatermark = cfg.mshrTrimWatermark;
    l2_ = std::make_unique<Cache>(p2);
    dram_.emplace(cfg);
}

Cycle
MemSystem::l2Access(Addr line, Cycle now, bool is_store,
                    const obs::MemAccessor *who)
{
    // Bank queueing: the request cannot be looked up before its bank is
    // free; each access occupies the bank for a service interval.
    Cycle &bank = l2BankFreeAt_[(line / kLineBytes) % cfg_.l2Banks];
    Cycle arrival = std::max(now, bank);
    bank = arrival + cfg_.l2ServiceInterval;

    CacheAccessResult res = is_store ? l2_->lookupStore(line, arrival)
                                     : l2_->lookupLoad(line, arrival);
    if (loc_ && who)
        loc_->onL2Access(line, res.hit, *who);
    if (res.hit)
        return arrival + cfg_.l2HitLatency;
    if (res.mshrMerge)
        return std::max(res.fillReady, arrival + cfg_.l2HitLatency);

    Cycle miss_detected = arrival + cfg_.l2HitLatency;
    Cycle data_ready;
    if (is_store) {
        // Write-validate: coalesced 128B stores install the line
        // without a DRAM fetch (GPU L2s track sector validity); the
        // data is forwardable from the write queue immediately.
        data_ready = arrival;
    } else {
        data_ready = dram_->read(line, miss_detected);
    }
    bool victim_dirty = l2_->allocate(line, data_ready, arrival, is_store);
    if (victim_dirty)
        dram_->write(line, miss_detected);
    return is_store ? arrival + cfg_.l2ServiceInterval : data_ready;
}

Cycle
MemSystem::load(SmxId smx, Addr line, Cycle now,
                const obs::MemAccessor *who)
{
    Cache &l1 = *l1s_[l1Index(smx)];
    CacheAccessResult res = l1.lookupLoad(line, now);
    if (loc_ && who)
        loc_->onL1Access(l1Index(smx), line, res.hit, *who);
    if (res.hit)
        return now + cfg_.l1HitLatency;
    if (res.mshrMerge)
        return std::max(res.fillReady, now + cfg_.l1HitLatency);

    Cycle ready = l2Access(line, now, false, who);
    l1.allocate(line, ready, now, false);
    return ready;
}

Cycle
MemSystem::store(SmxId smx, Addr line, Cycle now,
                 const obs::MemAccessor *who)
{
    Cache &l1 = *l1s_[l1Index(smx)];
    // Write-evict L1 stores count neither accesses nor hits, so they
    // feed no L1 locality attribution either; the L2 access below
    // still updates the L2-level last-toucher record.
    l1.lookupStore(line, now);
    return l2Access(line, now, true, who);
}

void
MemSystem::trimMshrs(Cycle safe_now)
{
    for (auto &l1 : l1s_)
        l1->trimExpiredMshr(safe_now);
    l2_->trimExpiredMshr(safe_now);
}

void
MemSystem::reset()
{
    for (auto &l1 : l1s_)
        l1->reset();
    l2_->reset();
    dram_->reset();
    std::fill(l2BankFreeAt_.begin(), l2BankFreeAt_.end(), 0);
}

void
MemSystem::exportStats(GpuStats &stats) const
{
    stats.l1.clear();
    for (const auto &l1 : l1s_)
        stats.l1.push_back(l1->stats());
    stats.l2 = l2_->stats();
    stats.dram = dram_->stats();
}

} // namespace laperm
