/**
 * @file
 * Workload-level tests: every Table II instance sets up, produces
 * waves, launches dynamic work, and runs to completion on a tiny
 * device under every policy (parameterized sweep).
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "harness/experiment.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

GpuConfig
smallDevice()
{
    GpuConfig cfg = paperConfig();
    cfg.numSmx = 4; // keep tiny runs fast
    return cfg;
}

} // namespace

class WorkloadRuns : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRuns, SetsUpAndProducesWaves)
{
    auto w = createWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    w->setup(Scale::Tiny, 1);
    EXPECT_FALSE(w->waves().empty());
    EXPECT_GT(w->footprintBytes(), 0u);
    for (const auto &wave : w->waves()) {
        EXPECT_NE(wave.program, nullptr);
        EXPECT_GT(wave.numTbs, 0u);
        EXPECT_GT(wave.threadsPerTb, 0u);
    }
}

TEST_P(WorkloadRuns, RunsToCompletionAndLaunchesDynamicWork)
{
    auto w = createWorkload(GetParam());
    w->setup(Scale::Tiny, 1);
    GpuConfig cfg = smallDevice();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    Gpu gpu(cfg);
    gpu.runWaves(w->waves());
    EXPECT_EQ(gpu.activeTbs(), 0u);
    EXPECT_EQ(gpu.undispatchedTbs(), 0u);
    EXPECT_GT(gpu.stats().deviceLaunches, 0u) << GetParam();
    EXPECT_GT(gpu.stats().dynamicTbs, 0u) << GetParam();
}

TEST_P(WorkloadRuns, DeterministicAcrossSetups)
{
    auto a = createWorkload(GetParam());
    auto b = createWorkload(GetParam());
    a->setup(Scale::Tiny, 7);
    b->setup(Scale::Tiny, 7);
    GpuConfig cfg = smallDevice();
    Gpu ga(cfg), gb(cfg);
    ga.runWaves(a->waves());
    gb.runWaves(b->waves());
    EXPECT_EQ(ga.stats().cycles, gb.stats().cycles);
    EXPECT_EQ(ga.stats().deviceLaunches, gb.stats().deviceLaunches);
}

TEST_P(WorkloadRuns, WavesAreReplayableAcrossDevices)
{
    // The same workload object must be runnable on several GPUs
    // (the harness reuses one setup for all 8 configurations).
    auto w = createWorkload(GetParam());
    w->setup(Scale::Tiny, 1);
    GpuConfig cfg = smallDevice();
    Gpu first(cfg);
    first.runWaves(w->waves());
    Gpu second(cfg);
    second.runWaves(w->waves());
    EXPECT_EQ(first.stats().cycles, second.stats().cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllInstances, WorkloadRuns, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        std::string name = param_info.param;
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(WorkloadRegistry, SixteenInstances)
{
    EXPECT_EQ(workloadNames().size(), 16u);
}

TEST(WorkloadRegistry, AppFilter)
{
    EXPECT_EQ(workloadNamesForApp("bfs").size(), 3u);
    EXPECT_EQ(workloadNamesForApp("amr").size(), 1u);
    EXPECT_EQ(workloadNamesForApp("nope").size(), 0u);
}

TEST(WorkloadRegistry, NamesRoundTrip)
{
    for (const auto &name : workloadNames()) {
        auto w = createWorkload(name);
        EXPECT_EQ(w->fullName(), name);
    }
}

TEST(WorkloadScale, TinySmallerThanSmall)
{
    auto tiny = createWorkload("bfs-citation");
    auto small = createWorkload("bfs-citation");
    tiny->setup(Scale::Tiny, 1);
    small->setup(Scale::Small, 1);
    EXPECT_LT(tiny->footprintBytes(), small->footprintBytes());
}

TEST(WorkloadScale, ScaleFromString)
{
    EXPECT_EQ(scaleFromString("tiny"), Scale::Tiny);
    EXPECT_EQ(scaleFromString("SMALL"), Scale::Small);
    EXPECT_EQ(scaleFromString("Full"), Scale::Full);
}
