#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "harness/thread_pool.hh"

using namespace laperm;

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (wave + 1) * 20);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Non-throwing jobs still ran and the pool is usable afterwards.
    EXPECT_EQ(ran.load(), 10);
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, SubmitFromWithinAJob)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] {
        ++count;
        pool.submit([&count] { ++count; });
    });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DefaultJobsHonorsEnv)
{
    setenv("LAPERM_JOBS", "7", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 7u);
    setenv("LAPERM_JOBS", "0", 1); // invalid: fall through to hardware
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    unsetenv("LAPERM_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}
