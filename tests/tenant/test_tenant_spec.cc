#include <gtest/gtest.h>

#include "tenant/mixes.hh"
#include "tenant/tenant_spec.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::tenant;

namespace {

const char *kValidSpec = R"([mix]
name = "pair"            # quoted strings and comments both work
quantum = 1024
admission_threshold_pct = 80
ewma_shift = 4

[tenant.fg]
workload = "bfs-citation"
scale = "tiny"
priority = 0
arrival = 0
period = 50000
jobs = 2

[tenant.bg]
workload = "join-uniform"
priority = 1
arrival = 7000
)";

} // namespace

TEST(TenantSpec, ParsesFullSpec)
{
    MixSpec mix;
    std::string err;
    ASSERT_TRUE(parseMixToml(kValidSpec, mix, err)) << err;
    EXPECT_EQ(mix.name, "pair");
    EXPECT_EQ(mix.quantum, 1024u);
    EXPECT_EQ(mix.admissionThresholdPct, 80u);
    EXPECT_EQ(mix.ewmaShift, 4u);
    ASSERT_EQ(mix.tenants.size(), 2u);
    EXPECT_EQ(mix.tenants[0].name, "fg");
    EXPECT_EQ(mix.tenants[0].workload, "bfs-citation");
    EXPECT_EQ(mix.tenants[0].scale, Scale::Tiny);
    EXPECT_EQ(mix.tenants[0].priority, 0u);
    EXPECT_EQ(mix.tenants[0].period, 50000u);
    EXPECT_EQ(mix.tenants[0].jobs, 2u);
    EXPECT_EQ(mix.tenants[1].name, "bg");
    EXPECT_EQ(mix.tenants[1].priority, 1u);
    EXPECT_EQ(mix.tenants[1].firstArrival, 7000u);
    EXPECT_EQ(mix.tenants[1].jobs, 1u); // default
}

TEST(TenantSpec, UnknownWorkloadListsValidNames)
{
    MixSpec mix;
    std::string err;
    EXPECT_FALSE(parseMixToml("[tenant.t]\nworkload = \"nope\"\n", mix,
                              err));
    // The structured error names the offender and every valid name.
    EXPECT_NE(err.find("unknown workload 'nope'"), std::string::npos)
        << err;
    EXPECT_NE(err.find("known:"), std::string::npos) << err;
    EXPECT_NE(err.find("bfs-citation"), std::string::npos) << err;
}

TEST(TenantSpec, ErrorsCarryLineNumbers)
{
    MixSpec mix;
    std::string err;
    EXPECT_FALSE(parseMixToml("[mix]\nbogus_key = 3\n", mix, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;

    EXPECT_FALSE(parseMixToml("[tenant.a]\nworkload = \"bfs-citation\"\n"
                              "scale = \"giant\"\n",
                              mix, err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
    EXPECT_NE(err.find("tiny|small|full|huge"), std::string::npos)
        << err;
}

TEST(TenantSpec, RejectsStructuralErrors)
{
    MixSpec mix;
    std::string err;
    // Duplicate tenant sections.
    EXPECT_FALSE(parseMixToml(
        "[tenant.a]\nworkload = \"bfs-citation\"\n"
        "[tenant.a]\nworkload = \"join-uniform\"\n",
        mix, err));
    EXPECT_NE(err.find("duplicate tenant"), std::string::npos) << err;

    // No tenants at all.
    EXPECT_FALSE(parseMixToml("[mix]\nquantum = 10\n", mix, err));
    EXPECT_NE(err.find("no [tenant"), std::string::npos) << err;

    // Keys before any section header.
    EXPECT_FALSE(parseMixToml("quantum = 10\n", mix, err));
    EXPECT_NE(err.find("outside any section"), std::string::npos) << err;

    // Multiple jobs need an inter-arrival period.
    EXPECT_FALSE(parseMixToml(
        "[tenant.a]\nworkload = \"bfs-citation\"\njobs = 3\n", mix,
        err));
    EXPECT_NE(err.find("no period"), std::string::npos) << err;

    // A tenant without a workload.
    EXPECT_FALSE(parseMixToml("[tenant.a]\npriority = 1\n", mix, err));
    EXPECT_NE(err.find("no workload"), std::string::npos) << err;
}

TEST(TenantSpec, OutputUntouchedOnError)
{
    MixSpec mix;
    mix.name = "sentinel";
    std::string err;
    EXPECT_FALSE(parseMixToml("[mix]\nbogus = 1\n", mix, err));
    EXPECT_EQ(mix.name, "sentinel"); // scratch-then-commit
}

TEST(TenantMixes, BuiltinsAreWellFormed)
{
    EXPECT_GE(mixNames().size(), 3u);
    for (const std::string &name : mixNames()) {
        ASSERT_TRUE(isBuiltinMix(name));
        const MixSpec mix = builtinMix(name);
        EXPECT_EQ(mix.name, name);
        EXPECT_FALSE(mix.tenants.empty());
        for (const TenantSpec &t : mix.tenants) {
            EXPECT_TRUE(isKnownWorkload(t.workload)) << t.workload;
            if (t.jobs > 1) {
                EXPECT_GT(t.period, 0u) << name << "/" << t.name;
            }
        }
    }
    EXPECT_FALSE(isBuiltinMix("no-such-mix"));
    // duo/quad/octo span 2/4/8 tenants — the contention ladder.
    EXPECT_EQ(builtinMix("duo").tenants.size(), 2u);
    EXPECT_EQ(builtinMix("quad").tenants.size(), 4u);
    EXPECT_EQ(builtinMix("octo").tenants.size(), 8u);
}
