/**
 * @file
 * Unix-domain socket front end for SimService (DESIGN.md §10.2): an
 * accept loop plus one thread per connection, each speaking the
 * line-delimited JSON protocol of serve/protocol.hh. Embeddable — the
 * tests run it in-process; laperm_served is a thin main() around it.
 */

#ifndef LAPERM_SERVE_SERVER_HH
#define LAPERM_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"

namespace laperm {
namespace serve {

struct ServerOptions
{
    std::string socketPath = "laperm_served.sock";
    int backlog = 64;
    ServiceOptions service;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);

    /** stop() if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the accept thread. */
    bool start(std::string &err);

    /**
     * Block until a shutdown request arrives or @p ms elapses
     * (0 = wait forever). True when shutdown was requested.
     */
    bool waitShutdown(std::uint64_t ms = 0);

    /** Ask the server to stop (also triggered by the shutdown verb). */
    void requestShutdown();

    /** Stop accepting, unblock and join every connection thread. */
    void stop();

    const std::string &socketPath() const { return opts_.socketPath; }
    SimService &service() { return *service_; }

    /** Dispatch one protocol line; exposed for protocol unit tests. */
    std::string handleLine(const std::string &line);

  private:
    void acceptLoop();
    void handleConnection(int fd);

    ServerOptions opts_;
    std::unique_ptr<SimService> service_;

    int listenFd_ = -1;
    std::thread acceptThread_;

    std::mutex mu_; ///< guards connThreads_, connFds_, shutdown flag
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;
    bool shutdownRequested_ = false;
    bool stopped_ = false;
    std::condition_variable shutdownCv_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SERVER_HH
