
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_footprint.cc" "tests/CMakeFiles/laperm_tests.dir/analysis/test_footprint.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/analysis/test_footprint.cc.o.d"
  "/root/repo/tests/common/test_bump_alloc.cc" "tests/CMakeFiles/laperm_tests.dir/common/test_bump_alloc.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/common/test_bump_alloc.cc.o.d"
  "/root/repo/tests/common/test_rng.cc" "tests/CMakeFiles/laperm_tests.dir/common/test_rng.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/common/test_rng.cc.o.d"
  "/root/repo/tests/dynpar/test_launcher.cc" "tests/CMakeFiles/laperm_tests.dir/dynpar/test_launcher.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/dynpar/test_launcher.cc.o.d"
  "/root/repo/tests/gpu/test_extensions.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_extensions.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_extensions.cc.o.d"
  "/root/repo/tests/gpu/test_gpu_basic.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_gpu_basic.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_gpu_basic.cc.o.d"
  "/root/repo/tests/gpu/test_kdu.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_kdu.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_kdu.cc.o.d"
  "/root/repo/tests/gpu/test_kmu.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_kmu.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_kmu.cc.o.d"
  "/root/repo/tests/gpu/test_smx.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_smx.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_smx.cc.o.d"
  "/root/repo/tests/gpu/test_trace.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_trace.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_trace.cc.o.d"
  "/root/repo/tests/gpu/test_warp_scheduler.cc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_warp_scheduler.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/gpu/test_warp_scheduler.cc.o.d"
  "/root/repo/tests/graph/test_algorithms.cc" "tests/CMakeFiles/laperm_tests.dir/graph/test_algorithms.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/graph/test_algorithms.cc.o.d"
  "/root/repo/tests/graph/test_csr.cc" "tests/CMakeFiles/laperm_tests.dir/graph/test_csr.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/graph/test_csr.cc.o.d"
  "/root/repo/tests/graph/test_generators.cc" "tests/CMakeFiles/laperm_tests.dir/graph/test_generators.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/graph/test_generators.cc.o.d"
  "/root/repo/tests/harness/test_harness.cc" "tests/CMakeFiles/laperm_tests.dir/harness/test_harness.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/harness/test_harness.cc.o.d"
  "/root/repo/tests/integration/test_determinism.cc" "tests/CMakeFiles/laperm_tests.dir/integration/test_determinism.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/integration/test_determinism.cc.o.d"
  "/root/repo/tests/integration/test_locality.cc" "tests/CMakeFiles/laperm_tests.dir/integration/test_locality.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/integration/test_locality.cc.o.d"
  "/root/repo/tests/kernels/test_thread_ctx.cc" "tests/CMakeFiles/laperm_tests.dir/kernels/test_thread_ctx.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/kernels/test_thread_ctx.cc.o.d"
  "/root/repo/tests/kernels/test_warp_trace.cc" "tests/CMakeFiles/laperm_tests.dir/kernels/test_warp_trace.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/kernels/test_warp_trace.cc.o.d"
  "/root/repo/tests/mem/test_cache.cc" "tests/CMakeFiles/laperm_tests.dir/mem/test_cache.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/mem/test_cache.cc.o.d"
  "/root/repo/tests/mem/test_cache_param.cc" "tests/CMakeFiles/laperm_tests.dir/mem/test_cache_param.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/mem/test_cache_param.cc.o.d"
  "/root/repo/tests/mem/test_dram.cc" "tests/CMakeFiles/laperm_tests.dir/mem/test_dram.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/mem/test_dram.cc.o.d"
  "/root/repo/tests/mem/test_mem_system.cc" "tests/CMakeFiles/laperm_tests.dir/mem/test_mem_system.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/mem/test_mem_system.cc.o.d"
  "/root/repo/tests/sched/test_paper_example.cc" "tests/CMakeFiles/laperm_tests.dir/sched/test_paper_example.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/sched/test_paper_example.cc.o.d"
  "/root/repo/tests/sched/test_policies.cc" "tests/CMakeFiles/laperm_tests.dir/sched/test_policies.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/sched/test_policies.cc.o.d"
  "/root/repo/tests/sched/test_priority_queues.cc" "tests/CMakeFiles/laperm_tests.dir/sched/test_priority_queues.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/sched/test_priority_queues.cc.o.d"
  "/root/repo/tests/sim/test_config.cc" "tests/CMakeFiles/laperm_tests.dir/sim/test_config.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/sim/test_config.cc.o.d"
  "/root/repo/tests/workloads/test_workload_traces.cc" "tests/CMakeFiles/laperm_tests.dir/workloads/test_workload_traces.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/workloads/test_workload_traces.cc.o.d"
  "/root/repo/tests/workloads/test_workloads.cc" "tests/CMakeFiles/laperm_tests.dir/workloads/test_workloads.cc.o" "gcc" "tests/CMakeFiles/laperm_tests.dir/workloads/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/laperm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/laperm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
