file(REMOVE_RECURSE
  "CMakeFiles/paper_figure4.dir/paper_figure4.cpp.o"
  "CMakeFiles/paper_figure4.dir/paper_figure4.cpp.o.d"
  "paper_figure4"
  "paper_figure4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figure4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
