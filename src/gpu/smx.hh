/**
 * @file
 * A streaming multiprocessor: resource-limited TB residency plus the
 * per-cycle warp issue engine executing the op-trace ISA against the
 * memory hierarchy.
 */

#ifndef LAPERM_GPU_SMX_HH
#define LAPERM_GPU_SMX_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "gpu/thread_block.hh"
#include "gpu/warp_scheduler.hh"
#include "mem/mem_system.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace laperm {

/** Callbacks from an SMX into the device-level machinery. */
class SmxCallbacks
{
  public:
    virtual ~SmxCallbacks() = default;

    /** A warp executed a Launch op (one request per active lane). */
    virtual void deviceLaunch(const LaunchRequest &req,
                              const ThreadBlock &parent, Cycle now) = 0;

    /** A TB retired; resources are already freed. */
    virtual void tbCompleted(ThreadBlock &tb, Cycle now) = 0;

    /**
     * Dispatch capacity grew without a TB retiring (the contention
     * throttle raised effectiveMaxTbs). Lets the TB scheduler drop a
     * memoized scan failure; timing-neutral, so a no-op by default.
     */
    virtual void dispatchCapacityFreed() {}
};

/** One SMX. */
class Smx
{
  public:
    Smx(SmxId id, const GpuConfig &cfg, MemSystem &mem,
        SmxCallbacks &callbacks);

    /** Whether a TB with the given demands fits right now. */
    bool canAccommodate(std::uint32_t threads, std::uint32_t regs,
                        std::uint32_t smem) const;

    /**
     * Get a blank block from this SMX's arena (recycled from a completed
     * TB when possible) for the caller to build into before acceptTb.
     */
    ThreadBlock *acquireTb();

    /** Make an arena block built via acquireTb schedulable. */
    void acceptTb(ThreadBlock *tb, Cycle now);

    /**
     * Issue up to warpSchedulersPerSmx warp ops at @p now.
     * @return true if any progress was made (issue or retirement).
     */
    bool tick(Cycle now);

    /** No resident warps at all. */
    bool drained() const { return residentTbs_.empty(); }

    /**
     * Earliest future cycle at which this SMX can make progress;
     * kNoCycle when drained or everything is barrier-blocked.
     */
    Cycle nextEventAt(Cycle now) const;

    SmxId id() const { return id_; }
    const SmxStats &stats() const { return stats_; }
    std::uint32_t residentTbCount() const
    {
        return static_cast<std::uint32_t>(residentTbs_.size());
    }

    /** Threads of all resident TBs (the occupancy numerator). */
    std::uint32_t threadsUsed() const { return threadsUsed_; }

    /** Current TB-residency cap (== maxTbsPerSmx unless throttled). */
    std::uint32_t effectiveMaxTbs() const { return effectiveMaxTbs_; }

  private:
    void executeOp(Warp &warp, Cycle now);
    void releaseBarrier(ThreadBlock &tb, Cycle now);
    void retireWarp(Warp &warp, Cycle now);
    void completeTb(ThreadBlock &tb, Cycle now);
    void evaluateThrottle();

    SmxId id_;
    const GpuConfig &cfg_;
    MemSystem &mem_;
    SmxCallbacks &callbacks_;
    WarpScheduler warpSched_;

    /**
     * TB storage: every block ever acquired lives in the arena for the
     * SMX's lifetime; completed blocks return to the free list and are
     * recycled (with their warp/op buffers) by the next acquireTb.
     */
    std::vector<std::unique_ptr<ThreadBlock>> tbArena_;
    std::vector<ThreadBlock *> tbFree_;
    std::vector<ThreadBlock *> residentTbs_;

    std::uint32_t threadsUsed_ = 0;
    std::uint32_t regsUsed_ = 0;
    std::uint32_t smemUsed_ = 0;

    std::uint64_t nextWarpAge_ = 0;
    SmxStats stats_;

    /** Contention-based TB throttle state (Section IV-F, [12]). */
    std::uint32_t effectiveMaxTbs_;
    std::uint64_t throttleLastAccesses_ = 0;
    std::uint64_t throttleLastHits_ = 0;
};

} // namespace laperm

#endif // LAPERM_GPU_SMX_HH
