/**
 * @file
 * Launch-path tests: CDP vs DTBL admission semantics, coalescing
 * rules, priority assignment and KDU pressure.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/** Parent where thread 0 of each TB launches `n` children. */
LaunchRequest
launcher(std::uint32_t parent_tbs, std::uint32_t n,
         std::shared_ptr<LambdaProgram> child)
{
    auto parent = std::make_shared<LambdaProgram>(
        "parent", allocateFunctionId(), [child, n](ThreadCtx &c) {
            c.alu(50);
            if (c.threadIndex() == 0) {
                for (std::uint32_t i = 0; i < n; ++i)
                    c.launch({child, 1, 32});
            }
        });
    return {parent, parent_tbs, 32};
}

std::shared_ptr<LambdaProgram>
simpleChild(std::uint32_t fid)
{
    return std::make_shared<LambdaProgram>(
        "child", fid, [](ThreadCtx &c) { c.alu(10); });
}

} // namespace

TEST(Launcher, DtblCoalescesSameFunctionAndTbSize)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    auto child = simpleChild(allocateFunctionId());
    gpu.launchHostKernel(launcher(6, 2, child));
    gpu.runToIdle();
    const GpuStats &s = gpu.stats();
    EXPECT_EQ(s.deviceLaunches, 12u);
    // First group creates a device kernel, the rest coalesce while it
    // runs; far fewer kernels than launches.
    EXPECT_GT(s.dtblCoalesced, 0u);
    EXPECT_LT(s.kernelsLaunched, 1u + 12u);
}

TEST(Launcher, DtblDifferentFunctionsDoNotCoalesce)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    // Each TB launches a child with a distinct function id.
    auto parent = std::make_shared<LambdaProgram>(
        "parent", allocateFunctionId(), [](ThreadCtx &c) {
            c.alu(400);
            if (c.threadIndex() == 0) {
                auto child = std::make_shared<LambdaProgram>(
                    "child", 500000 + c.tbIndex(),
                    [](ThreadCtx &t) { t.alu(10); });
                c.launch({child, 1, 32});
            }
        });
    gpu.launchHostKernel({parent, 4, 32});
    gpu.runToIdle();
    // No coalescing possible: every launch becomes its own kernel.
    EXPECT_EQ(gpu.stats().dtblCoalesced, 0u);
    EXPECT_EQ(gpu.stats().kernelsLaunched, 1u + 4u);
}

TEST(Launcher, DtblDifferentTbSizesDoNotCoalesce)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    std::uint32_t fid = allocateFunctionId();
    auto child = simpleChild(fid);
    auto parent = std::make_shared<LambdaProgram>(
        "parent", allocateFunctionId(), [child](ThreadCtx &c) {
            c.alu(400);
            if (c.threadIndex() == 0) {
                // Same function id, different TB sizes.
                c.launch({child, 1, 32});
                c.launch({child, 1, 64});
            }
        });
    gpu.launchHostKernel({parent, 1, 32});
    gpu.runToIdle();
    EXPECT_EQ(gpu.stats().dtblCoalesced, 0u);
    EXPECT_EQ(gpu.stats().kernelsLaunched, 1u + 2u);
}

TEST(Launcher, CdpNeverCoalesces)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    Gpu gpu(cfg);
    auto child = simpleChild(allocateFunctionId());
    gpu.launchHostKernel(launcher(4, 2, child));
    gpu.runToIdle();
    EXPECT_EQ(gpu.stats().dtblCoalesced, 0u);
    EXPECT_EQ(gpu.stats().kernelsLaunched, 1u + 8u);
}

TEST(Launcher, LaunchLatencyOrdersDtblBelowCdp)
{
    auto child = simpleChild(allocateFunctionId());
    auto run = [&](DynParModel model) {
        GpuConfig cfg = tinyConfig();
        cfg.dynParModel = model;
        cfg.cdpLaunchLatency = 2000;
        cfg.dtblLaunchLatency = 50;
        Gpu gpu(cfg);
        gpu.launchHostKernel(launcher(2, 1, child));
        gpu.runToIdle();
        return gpu.stats().cycles;
    };
    EXPECT_LT(run(DynParModel::DTBL) + 1000, run(DynParModel::CDP));
}

TEST(Launcher, DeepNestingCompletes)
{
    // A chain of nested launches 6 deep (priorities clamp at L=4).
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.maxPriorityLevels = 4;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;

    std::function<std::shared_ptr<LambdaProgram>(int)> level =
        [&](int depth) -> std::shared_ptr<LambdaProgram> {
        auto body = [&level, depth](ThreadCtx &c) {
            c.alu(5);
            if (depth > 0 && c.threadIndex() == 0)
                c.launch({level(depth - 1), 1, 32});
        };
        return std::make_shared<LambdaProgram>(
            "lvl" + std::to_string(depth),
            static_cast<std::uint32_t>(900000 + depth), body);
    };

    Gpu gpu(cfg);
    gpu.launchHostKernel({level(6), 1, 32});
    gpu.runToIdle();
    EXPECT_EQ(gpu.stats().deviceLaunches, 6u);
    EXPECT_EQ(gpu.activeTbs(), 0u);
}

TEST(Launcher, KduStallsCountOncePerLaunch)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    cfg.kduEntries = 2;
    Gpu gpu(cfg);
    auto child = simpleChild(allocateFunctionId());
    gpu.launchHostKernel(launcher(6, 3, child)); // 18 device kernels
    gpu.runToIdle();
    const GpuStats &s = gpu.stats();
    EXPECT_GT(s.kduFullStalls, 0u);
    EXPECT_LE(s.kduFullStalls, s.deviceLaunches);
}
