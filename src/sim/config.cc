#include "sim/config.hh"

#include "common/log.hh"

namespace laperm {

const char *
toString(DynParModel model)
{
    switch (model) {
      case DynParModel::CDP: return "CDP";
      case DynParModel::DTBL: return "DTBL";
    }
    return "?";
}

const char *
toString(TbPolicy policy)
{
    switch (policy) {
      case TbPolicy::RR: return "RR";
      case TbPolicy::TbPri: return "TB-Pri";
      case TbPolicy::SmxBind: return "SMX-Bind";
      case TbPolicy::AdaptiveBind: return "Adaptive-Bind";
    }
    return "?";
}

const char *
toString(WarpPolicy policy)
{
    switch (policy) {
      case WarpPolicy::GTO: return "GTO";
      case WarpPolicy::LRR: return "LRR";
      case WarpPolicy::TbAware: return "TB-aware";
    }
    return "?";
}

const char *
toString(TickMode mode)
{
    switch (mode) {
      case TickMode::Dense: return "dense";
      case TickMode::Event: return "event";
    }
    return "?";
}

std::uint32_t
GpuConfig::effectiveOnchipEntries() const
{
    // For CDP the number of on-chip priority-queue entries per SMX is
    // limited to the KDU entry count (Section IV-E).
    if (dynParModel == DynParModel::CDP)
        return std::min(onchipQueueEntries, kduEntries);
    return onchipQueueEntries;
}

std::string
GpuConfig::check() const
{
    if (numSmx == 0)
        return "numSmx must be > 0";
    if (maxThreadsPerSmx == 0 || maxThreadsPerSmx % kWarpSize != 0)
        return "maxThreadsPerSmx must be a multiple of the warp size";
    if (maxTbsPerSmx == 0)
        return "maxTbsPerSmx must be > 0";
    if (warpSchedulersPerSmx == 0)
        return "warpSchedulersPerSmx must be > 0";
    if (l1Assoc == 0 || l1Size % (l1Assoc * kLineBytes) != 0)
        return logFormat("L1 size %u not divisible by assoc*line", l1Size);
    if (l2Assoc == 0 || l2Size % (l2Assoc * kLineBytes) != 0)
        return logFormat("L2 size %u not divisible by assoc*line", l2Size);
    if (l2Banks == 0)
        return "l2Banks must be > 0";
    if (dramChannels == 0 || dramBanksPerChannel == 0)
        return "dramChannels and dramBanksPerChannel must be > 0";
    if (kduEntries == 0)
        return "kduEntries must be > 0";
    if (maxPriorityLevels == 0)
        return "maxPriorityLevels must be >= 1";
    if (smxPerCluster == 0 || numSmx % smxPerCluster != 0)
        return "numSmx must be divisible by smxPerCluster";
    if (warpMlpWindow == 0)
        return "warpMlpWindow must be > 0";
    if (mshrTrimInterval == 0)
        return "mshrTrimInterval must be > 0";
    if (throttleHighMiss < 0.0 || throttleHighMiss > 1.0 ||
        throttleLowMiss < 0.0 || throttleLowMiss > 1.0 ||
        throttleLowMiss > throttleHighMiss) {
        return "throttle miss thresholds must satisfy "
               "0 <= low <= high <= 1";
    }
    return std::string();
}

void
GpuConfig::validate() const
{
    const std::string err = check();
    if (!err.empty())
        laperm_fatal("%s", err.c_str());
}

std::string
GpuConfig::summary() const
{
    return logFormat(
        "%u SMX, %u thr/SMX, %u TB/SMX, L1 %uKB, L2 %uKB, KDU %u, "
        "%s/%s, L=%u",
        numSmx, maxThreadsPerSmx, maxTbsPerSmx, l1Size / 1024,
        l2Size / 1024, kduEntries, toString(dynParModel),
        toString(tbPolicy), maxPriorityLevels);
}

} // namespace laperm
