#include "tools/lint_event.hh"

#include <regex>

namespace laperm {
namespace simlint {

namespace {

/**
 * First argument of a call: the text from @p open (which must be '(')
 * up to the first comma at paren/template depth 0, or the balanced
 * close. Multi-line calls return the rest of the line — subtraction in
 * a wrapped first argument still lands on the schedule() line or the
 * continuation, both of which this pass scans.
 */
std::string
firstArg(const std::string &s, std::size_t open)
{
    if (open >= s.size() || s[open] != '(')
        return "";
    int parens = 0;
    int angles = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(')
            ++parens;
        else if (c == ')') {
            if (--parens == 0)
                return s.substr(open + 1, i - open - 1);
        } else if (c == '<')
            ++angles;
        else if (c == '>' && angles > 0)
            --angles;
        else if (c == ',' && parens == 1 && angles == 0)
            return s.substr(open + 1, i - open - 1);
    }
    return s.substr(open + 1);
}

/** A binary/unary minus that is not part of "->" or "--". */
bool
hasMinus(const std::string &expr)
{
    for (std::size_t i = 0; i < expr.size(); ++i) {
        if (expr[i] != '-')
            continue;
        const char next = i + 1 < expr.size() ? expr[i + 1] : '\0';
        const char prev = i > 0 ? expr[i - 1] : '\0';
        if (next == '>' || next == '-' || prev == '-')
            continue; // arrow or decrement
        return true;
    }
    return false;
}

bool
endsWithPath(const std::string &path, const char *suffix)
{
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
}

} // namespace

std::vector<Finding>
lintEventDiscipline(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    if (!classifyPath(path).restricted)
        return findings;

    const bool isQueueHeader = endsWithPath(path, "sim/event_queue.hh");
    const bool isGpuCc = endsWithPath(path, "gpu/gpu.cc");

    const std::vector<std::string> lines =
        splitLines(stripCommentsAndStrings(content));

    static const std::regex scheduleCall(
        R"((?:\.|->)\s*schedule\s*\()");
    static const std::regex kindCast(
        R"(static_cast\s*<\s*SimEventKind\s*>|SimEventKind\s*\(\s*[^)]|\(\s*SimEventKind\s*\))");
    static const std::regex eventBrace(R"(\bSimEvent\s*\{)");
    static const std::regex gpuTick(
        R"(\b(?:\w*[gG]pu\w*)\s*(?:\.|->)\s*tick\s*\(|\bGpu::tick\s*\()");

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &l = lines[i];

        // event-past: schedule(<expr with subtraction>, ...). The
        // queue asserts at runtime; statically, a '-' in the cycle
        // argument is the construct that produces past (or unsigned-
        // wrapped far-future) deadlines.
        for (auto it =
                 std::sregex_iterator(l.begin(), l.end(), scheduleCall);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open = static_cast<std::size_t>(
                it->position(0) + it->length(0) - 1);
            if (hasMinus(firstArg(l, open))) {
                findings.push_back(Finding{
                    path, i + 1, Rule::EventPast,
                    "schedule() cycle argument contains a "
                    "subtraction: compute deadlines as now + delta "
                    "(a subtracted Cycle underflows to a far-future "
                    "wakeup instead of asserting)"});
            }
        }

        if (!isQueueHeader) {
            // event-kind: the kind set is closed and phase-ordered;
            // minting kinds from integers (or raw SimEvents) outside
            // the queue header breaks the dense-order replay contract.
            if (std::regex_search(l, kindCast)) {
                findings.push_back(Finding{
                    path, i + 1, Rule::EventKind,
                    "event kind manufactured outside "
                    "sim/event_queue.hh: SimEventKind is a closed, "
                    "phase-ordered set (FrontEnd -> SmxTick -> "
                    "Maintenance); pass a named kind to schedule()"});
            }
            if (std::regex_search(l, eventBrace)) {
                findings.push_back(Finding{
                    path, i + 1, Rule::EventKind,
                    "SimEvent constructed outside sim/event_queue.hh: "
                    "events enter the heap only via "
                    "EventQueue::schedule()"});
            }
        }

        // event-tick: Gpu::tick() is the dense reference loop's step
        // function; everyone else must drive the machine through
        // run()/runWaves() so tick-mode dispatch stays in one place.
        if (!isGpuCc && std::regex_search(l, gpuTick)) {
            findings.push_back(Finding{
                path, i + 1, Rule::EventTick,
                "direct Gpu::tick() call bypasses runEventLoop and "
                "the tick-mode contract (DESIGN.md §11); drive the "
                "machine via Gpu::run()/runWaves()"});
        }
    }
    return findings;
}

} // namespace simlint
} // namespace laperm
