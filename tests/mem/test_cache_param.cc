/**
 * @file
 * Property-style parameterized cache tests: invariants that must hold
 * for every geometry (sizes x associativities) under randomized access
 * streams.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "common/rng.hh"
#include "mem/cache.hh"

using namespace laperm;

namespace {

using Geometry = std::tuple<std::uint32_t /*size*/, std::uint32_t
                            /*assoc*/>;

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheParams
    params() const
    {
        CacheParams p;
        p.size = std::get<0>(GetParam());
        p.assoc = std::get<1>(GetParam());
        return p;
    }
};

} // namespace

TEST_P(CacheGeometry, StatsAreConsistentUnderRandomStream)
{
    Cache c(params());
    Rng rng(std::get<0>(GetParam()) + std::get<1>(GetParam()));
    for (int i = 0; i < 20000; ++i) {
        Addr line = rng.nextBounded(4096) * kLineBytes;
        Cycle now = static_cast<Cycle>(i);
        auto r = c.lookupLoad(line, now);
        if (!r.hit && !r.mshrMerge)
            c.allocate(line, now + 300, now, false);
    }
    const CacheStats &s = c.stats();
    EXPECT_EQ(s.accesses, 20000u);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_LE(s.mshrMerges, s.misses);
}

TEST_P(CacheGeometry, CapacityIsRespected)
{
    CacheParams p = params();
    Cache c(p);
    const std::uint32_t lines = p.size / kLineBytes;
    // Insert 4x capacity worth of distinct lines.
    for (Addr i = 0; i < 4ull * lines; ++i) {
        c.lookupLoad(i * kLineBytes, i);
        c.allocate(i * kLineBytes, i, i, false);
    }
    // At most `lines` of them can still be resident.
    std::uint32_t resident = 0;
    for (Addr i = 0; i < 4ull * lines; ++i)
        resident += c.contains(i * kLineBytes);
    EXPECT_LE(resident, lines);
    EXPECT_EQ(c.stats().evictions, 3ull * lines);
}

TEST_P(CacheGeometry, WorkingSetWithinCacheAlwaysHitsAfterWarmup)
{
    CacheParams p = params();
    Cache c(p);
    // A working set of one line per set can never conflict.
    const std::uint32_t sets = c.numSets();
    for (Addr i = 0; i < sets; ++i) {
        c.lookupLoad(i * kLineBytes, i);
        c.allocate(i * kLineBytes, i, i, false);
    }
    std::uint64_t hits_before = c.stats().hits;
    for (int round = 0; round < 3; ++round) {
        for (Addr i = 0; i < sets; ++i) {
            auto r = c.lookupLoad(i * kLineBytes, 1000 + i);
            EXPECT_TRUE(r.hit);
        }
    }
    EXPECT_EQ(c.stats().hits, hits_before + 3ull * sets);
}

TEST_P(CacheGeometry, ContainsAgreesWithLookup)
{
    Cache c(params());
    Rng rng(99);
    std::unordered_set<Addr> inserted;
    for (Cycle i = 0; i < 5000; ++i) {
        Addr line = rng.nextBounded(512) * kLineBytes;
        bool contained = c.contains(line);
        auto r = c.lookupLoad(line, 100000 + i);
        EXPECT_EQ(contained, r.hit || r.mshrMerge);
        if (!r.hit && !r.mshrMerge)
            c.allocate(line, 100000 + i, 100000 + i, false);
        inserted.insert(line);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{2048, 1},      // direct-mapped
                      Geometry{4096, 4},      // small L1-ish
                      Geometry{32768, 4},     // Table I L1
                      Geometry{65536, 8},     // mid
                      Geometry{1572864, 16}), // Table I L2
    [](const ::testing::TestParamInfo<Geometry> &param_info) {
        // Built with += (not operator+) to dodge GCC 12's spurious
        // -Wrestrict on inlined string concatenation (PR105329).
        std::string name = "s";
        name += std::to_string(std::get<0>(param_info.param));
        name += "_a";
        name += std::to_string(std::get<1>(param_info.param));
        return name;
    });
