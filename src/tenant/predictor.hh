/**
 * @file
 * Online structural runtime prediction (Pai et al., PAPERS.md): a
 * per-tenant integer EWMA of observed TB runtimes. The preemptive TB
 * scheduler uses predicted drain cost (average TB runtime x resident
 * TBs) to pick the cheapest victim to yield at TB boundaries.
 *
 * Integer-only arithmetic: the EWMA moves toward each sample by
 * (|sample - ewma| >> shift), all in unsigned cycle math, so
 * predictions are a deterministic function of the sample stream with
 * no floating-point (and no signed/unsigned mixing) anywhere near
 * cycle arithmetic.
 */

#ifndef LAPERM_TENANT_PREDICTOR_HH
#define LAPERM_TENANT_PREDICTOR_HH

#include <cstdint>

#include "common/types.hh"

namespace laperm {
namespace tenant {

/** Integer EWMA over TB runtimes for one tenant. */
class RuntimePredictor
{
  public:
    explicit RuntimePredictor(std::uint32_t shift = 3) : shift_(shift) {}

    /** Fold in one observed TB runtime (retire - dispatch cycles). */
    void observe(Cycle runtime)
    {
        if (samples_ == 0) {
            // Seed with the first sample instead of decaying from zero.
            ewma_ = runtime;
        } else if (runtime >= ewma_) {
            ewma_ += (runtime - ewma_) >> shift_;
        } else {
            ewma_ -= (ewma_ - runtime) >> shift_;
        }
        ++samples_;
    }

    /** Predicted runtime of one TB (0 before any sample). */
    Cycle predictedTbRuntime() const { return ewma_; }

    /** Predicted cost of draining @p resident_tbs TBs. */
    Cycle predictedDrain(std::uint64_t resident_tbs) const
    {
        return ewma_ * resident_tbs;
    }

    std::uint64_t samples() const { return samples_; }

  private:
    std::uint32_t shift_;
    Cycle ewma_ = 0;
    std::uint64_t samples_ = 0;
};

} // namespace tenant
} // namespace laperm

#endif // LAPERM_TENANT_PREDICTOR_HH
