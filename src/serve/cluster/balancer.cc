#include "serve/cluster/balancer.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.hh"
#include "serve/service/protocol.hh"
#include "serve/service/sim_request.hh"

namespace laperm {
namespace serve {

namespace {

/**
 * ServiceMetrics wire fields, in wire order, so the aggregated stats
 * response preserves the single-worker field sequence. queue_depth_peak
 * aggregates by max (a cluster-wide peak-of-peaks); everything else by
 * sum.
 */
constexpr const char *kStatFields[] = {
    "requests",      "executed", "cache_hits", "cache_misses",
    "cache_mem_hits", "cache_shared_hits", "deduped", "shed",
    "timeouts",      "errors",   "queue_depth", "queue_depth_peak",
    "queue_us",      "exec_us",  "total_us",
};
constexpr std::size_t kNumStatFields =
    sizeof(kStatFields) / sizeof(kStatFields[0]);

} // namespace

BalancerHandler::BalancerHandler(BalancerOptions opts)
    : opts_(std::move(opts)), ring_(opts_.workers.size())
{
    for (const Endpoint &ep : opts_.workers) {
        auto w = std::make_unique<Worker>();
        w->endpoint = ep;
        workers_.push_back(std::move(w));
    }
}

BalancerHandler::~BalancerHandler() = default;

bool
BalancerHandler::callWorker(std::size_t idx, const std::string &line,
                            std::string &response)
{
    Worker &w = *workers_[idx];
    std::lock_guard<std::mutex> lock(w.mu);
    for (unsigned attempt = 0; attempt <= opts_.connectRetries;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.backoffMs));
        }
        if (!w.conn) {
            std::string err;
            w.conn = connectTo(w.endpoint, err);
            if (!w.conn)
                continue; // worker down; maybe being respawned
        }
        if (w.conn->writeAll(line + "\n") &&
            w.conn->readLine(response)) {
            return true;
        }
        // Dead link (worker killed mid-request): drop it and retry on
        // a fresh connection — the request was idempotent by design
        // (content-keyed, cache-backed).
        w.conn.reset();
    }
    return false;
}

std::string
BalancerHandler::handleRun(const std::string &line,
                           const std::string &key)
{
    const std::size_t idx = ring_.workerFor(key);
    std::string response;
    if (callWorker(idx, line, response))
        return response;
    // Worker unreachable past the respawn budget: shed with a longer
    // hint than worker admission shedding uses, since recovery here
    // means a process restart rather than a queue draining.
    return logFormat(
        "{\"status\":\"overloaded\",\"key\":\"%s\",\"retry_ms\":200}",
        key.c_str());
}

std::string
BalancerHandler::handleStats()
{
    std::uint64_t sums[kNumStatFields] = {};
    std::string fingerprint;
    std::size_t reachable = 0;

    for (std::size_t i = 0; i < workers_.size(); ++i) {
        std::string response;
        if (!callWorker(i, std::string("{\"op\":\"stats\"}"), response))
            continue;
        JsonObject obj;
        std::string err;
        if (!parseJsonObject(response, obj, err))
            continue;
        ++reachable;
        if (fingerprint.empty())
            getString(obj, "fingerprint", fingerprint);
        for (std::size_t f = 0; f < kNumStatFields; ++f) {
            std::uint64_t v = 0;
            if (!getU64(obj, kStatFields[f], v))
                continue;
            if (std::string(kStatFields[f]) == "queue_depth_peak")
                sums[f] = std::max(sums[f], v);
            else
                sums[f] += v;
        }
    }
    if (reachable == 0)
        return errorResponse(kStatusError, "no reachable workers");

    std::string out =
        "{\"status\":\"ok\",\"op\":\"stats\",\"fingerprint\":\"" +
        fingerprint + "\"";
    for (std::size_t f = 0; f < kNumStatFields; ++f) {
        out += logFormat(",\"%s\":%llu", kStatFields[f],
                         static_cast<unsigned long long>(sums[f]));
    }
    out += logFormat(",\"workers\":%llu",
                     static_cast<unsigned long long>(reachable));
    out += "}";
    return out;
}

std::string
BalancerHandler::handleShutdown()
{
    // Fan out first so workers exit before the supervisor's poll loop
    // (which stops respawning once the local shutdown lands) winds
    // down; unreachable workers are already dead, which is fine.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        std::string response;
        callWorker(i, std::string("{\"op\":\"shutdown\"}"), response);
    }
    requestShutdown();
    return "{\"status\":\"ok\",\"op\":\"shutdown\"}";
}

std::string
BalancerHandler::handleLine(const std::string &line)
{
    JsonObject obj;
    std::string err;
    if (!parseJsonObject(line, obj, err))
        return errorResponse(kStatusError, "bad request: " + err);

    std::string op;
    if (!getString(obj, "op", op))
        return errorResponse(kStatusError, "missing 'op'");

    if (op == kVerbPing) {
        // All workers run one binary, hence one fingerprint; worker 0
        // answers for the cluster.
        std::string response;
        if (callWorker(0, line, response))
            return response;
        return errorResponse(kStatusError, "worker 0 unreachable");
    }
    if (op == kVerbStats)
        return handleStats();
    if (op == kVerbShutdown)
        return handleShutdown();
    if (op != kVerbRun)
        return errorResponse(kStatusError, "unknown op '" + op + "'");

    // Parse only far enough to canonicalize: the worker re-parses and
    // validates, and the original line is forwarded verbatim so the
    // response bytes match a direct submission.
    SimRequest req;
    if (!SimRequest::fromJson(obj, req, err))
        return errorResponse(kStatusError, err);
    return handleRun(line, req.key());
}

} // namespace serve
} // namespace laperm
