// sim-lint fixture: integer cycle arithmetic, and member access on
// cycle-named objects (bankFreeAt_.size() is a count, cycles.end() an
// iterator), must NOT trigger the cycle-safety pass. Not compiled —
// parsed by test_sim_lint_v2.cc.
#include <vector>

using Cycle = unsigned long long;

struct Banks
{
    std::vector<Cycle> bankFreeAt_;

    Cycle next(Cycle now, Cycle delta)
    {
        const Cycle deadline = now + delta; // integer: legal
        return deadline % bankFreeAt_.size(); // member access: a count
    }

    bool done(const std::vector<Cycle> &cycles, Cycle now) const
    {
        // cycles.end() is an iterator, not a cycle quantity.
        return cycles.empty() || cycles.back() <= now ||
               cycles.begin() == cycles.end();
    }
};
