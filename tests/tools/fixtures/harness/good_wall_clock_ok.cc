// sim-lint fixture: wall-clock use OUTSIDE the restricted simulator
// directories (here: harness) is legal — benches and the sweep
// executor legitimately measure elapsed time.
// Not compiled — parsed by test_sim_lint.cc.
#include <chrono>

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}
