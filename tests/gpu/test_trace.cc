#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gpu/trace.hh"
#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

TEST(DispatchTrace, RecordsEveryDispatch)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    DispatchTrace trace(gpu);

    auto child = std::make_shared<LambdaProgram>(
        "c", allocateFunctionId(), [](ThreadCtx &c) { c.alu(5); });
    auto parent = std::make_shared<LambdaProgram>(
        "p", allocateFunctionId(), [child](ThreadCtx &c) {
            c.alu(20);
            if (c.threadIndex() == 0)
                c.launch({child, 2, 32});
        });
    gpu.launchHostKernel({parent, 3, 32});
    gpu.runToIdle();

    ASSERT_EQ(trace.events().size(), 3u + 6u);
    std::uint32_t dynamic = 0;
    for (const auto &e : trace.events()) {
        EXPECT_LT(e.smx, cfg.numSmx);
        if (e.isDynamic) {
            ++dynamic;
            EXPECT_NE(e.directParent, kNoTb);
        } else {
            EXPECT_EQ(e.directParent, kNoTb);
        }
    }
    EXPECT_EQ(dynamic, 6u);
}

TEST(DispatchTrace, WritesParsableCsv)
{
    GpuConfig cfg = tinyConfig();
    Gpu gpu(cfg);
    DispatchTrace trace(gpu);
    auto prog = std::make_shared<LambdaProgram>(
        "k", allocateFunctionId(), [](ThreadCtx &c) { c.alu(2); });
    gpu.launchHostKernel({prog, 4, 32});
    gpu.runToIdle();

    const std::string path = "trace_test_tmp.csv";
    ASSERT_TRUE(trace.writeCsv(path));
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "uid,kernel,tbIndex,smx,cycle,priority,dynamic,"
                      "parent");
    int rows = 0;
    std::string line;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, 4);
    in.close();
    std::remove(path.c_str());
}
