/**
 * @file
 * Wire protocol of the serving subsystem (DESIGN.md §10.2): one JSON
 * object per line in both directions over a Unix-domain socket.
 *
 * Requests are FLAT objects — string, number, bool, or null values
 * only — which keeps the parser small and the canonicalization rules
 * obvious. Responses are likewise flat; the simulation result payload
 * travels as one escaped string field ("result").
 *
 * Verbs (the "op" field):
 *   run       execute (or serve from cache) one simulation request
 *   stats     service metrics snapshot, fixed field order
 *   ping      liveness + simulator fingerprint + protocol version
 *   shutdown  stop accepting work and exit the daemon
 */

#ifndef LAPERM_SERVE_SERVICE_PROTOCOL_HH
#define LAPERM_SERVE_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>

namespace laperm {
namespace serve {

/** Protocol version reported by ping. */
constexpr int kProtocolVersion = 1;

// Verb names, referenced by server dispatch, clients, and
// scripts/docs_check.sh (which keeps DESIGN.md §10 in sync with them).
constexpr const char *kVerbRun = "run";
constexpr const char *kVerbStats = "stats";
constexpr const char *kVerbPing = "ping";
constexpr const char *kVerbShutdown = "shutdown";

/** Response status strings ("status" field). */
constexpr const char *kStatusOk = "ok";
constexpr const char *kStatusOverloaded = "overloaded";
constexpr const char *kStatusTimeout = "timeout";
constexpr const char *kStatusError = "error";

/** One flat JSON value. Numbers keep their raw spelling so 64-bit
 *  integers (seeds, counters) convert without double rounding. */
struct JsonValue
{
    enum class Type
    {
        String,
        Number,
        Bool,
        Null,
    };
    Type type = Type::Null;
    std::string str;    ///< decoded string, or raw number token
    bool boolean = false;
};

/** Deterministically ordered: std::map, not unordered. */
using JsonObject = std::map<std::string, JsonValue>;

/**
 * Parse one flat JSON object. Nested objects/arrays are rejected —
 * the protocol never produces them. Returns false with a diagnostic
 * in @p err on malformed input.
 */
bool parseJsonObject(const std::string &text, JsonObject &out,
                     std::string &err);

/** Escape for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Fetch a string field; false if absent or not a string. */
bool getString(const JsonObject &obj, const std::string &key,
               std::string &out);

/** Fetch an unsigned integer field; false if absent/negative/frac. */
bool getU64(const JsonObject &obj, const std::string &key,
            std::uint64_t &out);

/** {"status":"error","message":...} (or another non-ok status). */
std::string errorResponse(const std::string &status,
                          const std::string &message);

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SERVICE_PROTOCOL_HH
