#include "gpu/warp_scheduler.hh"

#include <algorithm>

#include "common/log.hh"
#include "gpu/thread_block.hh"

namespace laperm {

WarpScheduler::WarpScheduler(std::uint32_t num_slots, WarpPolicy policy)
    : policy_(policy), slots_(num_slots)
{
    laperm_assert(num_slots > 0, "need at least one warp scheduler");
}

void
WarpScheduler::addWarp(Warp *warp)
{
    std::uint32_t slot =
        static_cast<std::uint32_t>(nextAssign_++ % slots_.size());
    warp->slot = slot;
    slots_[slot].warps.push_back(warp);
    ++liveWarps_;
}

void
WarpScheduler::removeWarp(Warp *warp)
{
    Slot &slot = slots_[warp->slot];
    auto it = std::find(slot.warps.begin(), slot.warps.end(), warp);
    laperm_assert(it != slot.warps.end(), "removing unknown warp");
    *it = slot.warps.back();
    slot.warps.pop_back();
    if (slot.greedy == warp)
        slot.greedy = nullptr;
    --liveWarps_;
}

Warp *
WarpScheduler::pick(std::uint32_t slot_ix, Cycle now)
{
    Slot &slot = slots_[slot_ix];

    const bool greedy_like = policy_ != WarpPolicy::LRR;
    if (greedy_like && slot.greedy && eligible(slot.greedy, now))
        return slot.greedy;

    // TB-aware family preference: the TB family (direct parent) of
    // the warp that issued last from this slot.
    TbUid family = kNoTb;
    bool have_family = false;
    if (policy_ == WarpPolicy::TbAware && slot.greedy &&
        slot.greedy->tb) {
        family = slot.greedy->tb->directParent;
        have_family = true;
    }

    Warp *best = nullptr;
    bool best_in_family = false;
    for (Warp *w : slot.warps) {
        if (!eligible(w, now))
            continue;
        bool in_family = have_family && w->tb &&
                         w->tb->directParent == family;
        if (!best) {
            best = w;
            best_in_family = in_family;
            continue;
        }
        switch (policy_) {
          case WarpPolicy::GTO:
            if (w->age < best->age)
                best = w; // oldest
            break;
          case WarpPolicy::LRR:
            // Least-recently issued first, oldest tie-break.
            if (w->lastIssue < best->lastIssue ||
                (w->lastIssue == best->lastIssue && w->age < best->age)) {
                best = w;
            }
            break;
          case WarpPolicy::TbAware:
            // Family first, then oldest within the same class.
            if (in_family != best_in_family) {
                if (in_family) {
                    best = w;
                    best_in_family = true;
                }
            } else if (w->age < best->age) {
                best = w;
            }
            break;
        }
    }
    return best;
}

void
WarpScheduler::issued(std::uint32_t slot_ix, Warp *warp, Cycle now)
{
    slots_[slot_ix].greedy = warp;
    warp->lastIssue = now;
}

Cycle
WarpScheduler::nextWakeup(Cycle now) const
{
    Cycle best = kNoCycle;
    for (const Slot &slot : slots_) {
        for (const Warp *w : slot.warps) {
            if (w->done || w->atBarrier)
                continue;
            best = std::min(best, std::max(w->readyAt, now));
        }
    }
    return best;
}

} // namespace laperm
