file(REMOVE_RECURSE
  "CMakeFiles/laperm_kernels.dir/kernels/kernel_program.cc.o"
  "CMakeFiles/laperm_kernels.dir/kernels/kernel_program.cc.o.d"
  "CMakeFiles/laperm_kernels.dir/kernels/thread_ctx.cc.o"
  "CMakeFiles/laperm_kernels.dir/kernels/thread_ctx.cc.o.d"
  "CMakeFiles/laperm_kernels.dir/kernels/warp_trace.cc.o"
  "CMakeFiles/laperm_kernels.dir/kernels/warp_trace.cc.o.d"
  "liblaperm_kernels.a"
  "liblaperm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
