/**
 * @file
 * sim-lint rule tests: every fixture under tests/tools/fixtures/ either
 * must trigger a specific rule (bad_*) or must pass clean (good_*). The
 * fixtures live in subdirectories named after the simulator layout so
 * the path-scoping logic is exercised by the same files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/sim_lint.hh"

namespace {

using laperm::simlint::classifyPath;
using laperm::simlint::Finding;
using laperm::simlint::lintFile;
using laperm::simlint::lintSource;
using laperm::simlint::lintTree;
using laperm::simlint::Rule;
using laperm::simlint::ruleName;

std::string
fixture(const std::string &rel)
{
    return std::string(SIM_LINT_FIXTURE_DIR) + "/" + rel;
}

std::vector<Finding>
lintFixture(const std::string &rel)
{
    std::vector<Finding> out;
    EXPECT_TRUE(lintFile(fixture(rel), out)) << "unreadable: " << rel;
    return out;
}

std::size_t
countRule(const std::vector<Finding> &fs, Rule rule)
{
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(),
                      [rule](const Finding &f) { return f.rule == rule; }));
}

TEST(SimLintScope, PathClassification)
{
    EXPECT_TRUE(classifyPath("src/sim/stats.cc").restricted);
    // The event-driven core's queue is simulator-proper: determinism
    // rules bind inside it (DESIGN.md §11).
    EXPECT_TRUE(classifyPath("src/sim/event_queue.hh").restricted);
    EXPECT_TRUE(classifyPath("src/sched/tb_scheduler.cc").restricted);
    EXPECT_TRUE(classifyPath("/abs/repo/src/mem/cache.hh").restricted);
    EXPECT_TRUE(classifyPath("src/gpu/smx.cc").restricted);
    EXPECT_TRUE(classifyPath("src/dynpar/launcher.cc").restricted);
    EXPECT_TRUE(classifyPath("src/obs/trace_collector.cc").restricted);
    EXPECT_FALSE(classifyPath("src/harness/experiment.cc").restricted);
    EXPECT_FALSE(classifyPath("src/common/rng.cc").restricted);
    // "memx" or a file merely named gpu.cc must not count.
    EXPECT_FALSE(classifyPath("src/memx/foo.cc").restricted);
    EXPECT_FALSE(classifyPath("src/harness/gpu.cc").restricted);

    EXPECT_TRUE(classifyPath("src/common/rng.hh").rngExempt);
    EXPECT_TRUE(classifyPath("src/common/rng.cc").rngExempt);
    EXPECT_FALSE(classifyPath("src/common/log.cc").rngExempt);
    EXPECT_FALSE(classifyPath("src/workloads/rng.cc").rngExempt);
}

TEST(SimLintRules, BannedRngFixtureTriggers)
{
    auto fs = lintFixture("mem/bad_rng.cc");
    // srand, std::rand, rand(), random_device, mt19937,
    // uniform_int_distribution, #include <random>.
    EXPECT_GE(countRule(fs, Rule::BannedRng), 7u);
    EXPECT_EQ(countRule(fs, Rule::WallClock), 0u);
}

TEST(SimLintRules, WallClockFixtureTriggers)
{
    auto fs = lintFixture("sim/bad_wall_clock.cc");
    // steady_clock, high_resolution_clock (each also matching
    // std::chrono), time(nullptr).
    EXPECT_GE(countRule(fs, Rule::WallClock), 3u);
    EXPECT_EQ(countRule(fs, Rule::BannedRng), 0u);
}

TEST(SimLintRules, UnorderedIterFixtureTriggers)
{
    auto fs = lintFixture("sched/bad_unordered_iter.cc");
    // Range-for over the map and begin() walk of the set; the point
    // lookup via find() must not add a third.
    EXPECT_EQ(countRule(fs, Rule::UnorderedIter), 2u);
}

TEST(SimLintRules, FpAccumFixtureTriggers)
{
    auto fs = lintFixture("sim/bad_fp_accum.cc");
    // Only the double accumulator; the integer counter is legal.
    EXPECT_EQ(countRule(fs, Rule::FpAccum), 1u);
    EXPECT_EQ(fs.size(), countRule(fs, Rule::FpAccum));
}

TEST(SimLintClean, CleanSimulatorCodePasses)
{
    EXPECT_TRUE(lintFixture("gpu/good_clean.cc").empty());
}

TEST(SimLintClean, AllowCommentsSuppress)
{
    EXPECT_TRUE(lintFixture("mem/good_allowed.cc").empty());
}

TEST(SimLintClean, WallClockLegalOutsideSimulator)
{
    EXPECT_TRUE(lintFixture("harness/good_wall_clock_ok.cc").empty());
}

TEST(SimLintClean, RngWrapperExempt)
{
    EXPECT_TRUE(lintFixture("common/rng.hh").empty());
}

TEST(SimLintClean, CommentAndStringMentionsIgnored)
{
    EXPECT_TRUE(lintFixture("sim/good_comment_mention.cc").empty());
}

TEST(SimLintSuppression, SameLineAndPrecedingLine)
{
    const char *same = "void f() {\n"
                       "    std::srand(1); // sim-lint: allow(banned-rng)\n"
                       "}\n";
    EXPECT_TRUE(lintSource("src/mem/x.cc", same).empty());

    const char *above = "void f() {\n"
                        "    // reseeding test double. "
                        "sim-lint: allow(banned-rng)\n"
                        "    std::srand(1);\n"
                        "}\n";
    EXPECT_TRUE(lintSource("src/mem/x.cc", above).empty());

    // Two lines above is out of range: still flagged.
    const char *tooFar = "// sim-lint: allow(banned-rng)\n"
                         "\n"
                         "void f() { std::srand(1); }\n";
    EXPECT_EQ(lintSource("src/mem/x.cc", tooFar).size(), 1u);

    // Mismatched rule name does not suppress.
    const char *wrong =
        "void f() { std::srand(1); } // sim-lint: allow(wall-clock)\n";
    EXPECT_EQ(lintSource("src/mem/x.cc", wrong).size(), 1u);
}

TEST(SimLintSuppression, AllowFile)
{
    const char *src = "// test-only shim. sim-lint: allow-file(wall-clock)\n"
                      "long a() { return time(nullptr); }\n"
                      "long b() { return time(nullptr); }\n";
    EXPECT_TRUE(lintSource("src/sim/x.cc", src).empty());
    // The file-level allowance is per-rule.
    const char *mixed =
        "// sim-lint: allow-file(wall-clock)\n"
        "long a() { return time(nullptr); }\n"
        "int b() { return std::rand(); }\n";
    auto fs = lintSource("src/sim/x.cc", mixed);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::BannedRng);
}

TEST(SimLintFindings, LineNumbersAndNames)
{
    const char *src = "int ok;\n"
                      "int bad() { return std::rand(); }\n";
    auto fs = lintSource("src/gpu/x.cc", src);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 2u);
    EXPECT_STREQ(ruleName(fs[0].rule), "banned-rng");
    EXPECT_EQ(fs[0].path, "src/gpu/x.cc");
}

TEST(SimLintTree, ScansFixturesDeterministically)
{
    std::vector<Finding> a, b;
    std::size_t na = lintTree(SIM_LINT_FIXTURE_DIR, a);
    std::size_t nb = lintTree(SIM_LINT_FIXTURE_DIR, b);
    EXPECT_EQ(na, nb);
    EXPECT_GE(na, 9u); // every fixture file is scanned
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].path, b[i].path);
        EXPECT_EQ(a[i].line, b[i].line);
    }
    // All findings come from bad_* fixtures.
    for (const auto &f : a)
        EXPECT_NE(f.path.find("/bad_"), std::string::npos) << f.path;
}

// The gate the CLI enforces in scripts/lint.sh: the real simulator
// tree is clean. Run it in-process too so a plain ctest catches a
// regression even if lint.sh is skipped.
TEST(SimLintRepo, SimulatorTreeIsClean)
{
    std::vector<Finding> fs;
    std::size_t scanned = lintTree(SIM_LINT_SRC_DIR, fs);
    EXPECT_GE(scanned, 80u);
    for (const auto &f : fs) {
        ADD_FAILURE() << f.path << ":" << f.line << ": ["
                      << ruleName(f.rule) << "] " << f.message;
    }
}

} // namespace
