#include "workloads/bht.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/log.hh"
#include "common/rng.hh"
#include "kernels/kernel_program.hh"
#include "kernels/thread_ctx.hh"

namespace laperm {

namespace {

constexpr std::uint32_t kBodyThreads = 128;
constexpr std::uint32_t kCellSpawn = 24;   ///< bodies above this -> child
constexpr std::uint32_t kNodeBytes = 32;   ///< tree node record

struct BhtData
{
    std::uint32_t numBodies = 0;
    std::uint32_t gridLog2 = 0; ///< leaf level is 2^g x 2^g cells
    std::vector<std::uint32_t> cellOf;     ///< body -> leaf cell
    std::vector<std::uint32_t> cellStart;  ///< CSR over cells
    std::vector<std::uint32_t> bodiesSorted;

    Addr bodiesA = 0, accA = 0, cellsA = 0, treeA = 0, paramsA = 0;
    std::uint32_t buildFuncId = 0, topFuncId = 0, forceFuncId = 0;

    std::uint32_t numCells() const { return 1u << (2 * gridLog2); }

    Addr bodyAddr(std::uint32_t b) const { return bodiesA + 16ull * b; }
    Addr accAddr(std::uint32_t b) const { return accA + 8ull * b; }
    Addr cellAddr(std::uint32_t c) const { return cellsA + 8ull * c; }

    /** Address of the tree node containing leaf cell c at level l. */
    Addr
    nodeAddr(std::uint32_t c, std::uint32_t level) const
    {
        // Level 0 = root. Nodes of level l start after all coarser
        // levels: sum_{k<l} 4^k = (4^l - 1) / 3.
        std::uint64_t level_base = ((1ull << (2 * level)) - 1) / 3;
        std::uint32_t cx = c & ((1u << gridLog2) - 1);
        std::uint32_t cy = c >> gridLog2;
        std::uint32_t shift = gridLog2 - level;
        std::uint64_t ix = (static_cast<std::uint64_t>(cy >> shift)
                            << level) |
                           (cx >> shift);
        return treeA + kNodeBytes * (level_base + ix);
    }
};

/**
 * Per-body force evaluation used by both inline and child expansion.
 * @param pos position in the cell-sorted body array (Barnes-Hut codes
 *        keep bodies sorted by spatial cell, so accesses coalesce).
 */
void
emitBodyForce(ThreadCtx &ctx, const BhtData &d, std::uint32_t cell,
              std::uint32_t pos)
{
    ctx.ld(d.bodyAddr(pos), 16);
    // Walk the tree from the root towards the leaf (Barnes-Hut MAC
    // accepts coarse nodes early for distant regions): these upper
    // nodes are shared by every body in every sibling cell.
    for (std::uint32_t level = 0; level < d.gridLog2; ++level)
        ctx.ld(d.nodeAddr(cell, level), kNodeBytes);
    // Nearby interactions: the cell's own body list head.
    std::uint32_t start = d.cellStart[cell];
    std::uint32_t count = d.cellStart[cell + 1] - start;
    for (std::uint32_t k = 0; k < std::min(count, 8u); ++k)
        ctx.ld(d.bodyAddr(start + k), 16);
    ctx.alu(20 + 2 * std::min(count, 32u));
    ctx.st(d.accAddr(pos), 8);
}

class BhtForceProgram : public KernelProgram
{
  public:
    BhtForceProgram(std::shared_ptr<const BhtData> d, std::uint32_t cell)
        : d_(std::move(d)), cell_(cell)
    {}

    std::string name() const override { return "bht_force"; }
    std::uint32_t functionId() const override { return d_->forceFuncId; }
    std::uint32_t regsPerThread() const override { return 32; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const BhtData &d = *d_;
        std::uint32_t start = d.cellStart[cell_];
        std::uint32_t count = d.cellStart[cell_ + 1] - start;
        std::uint32_t stride = ctx.numTbs() * ctx.threadsPerTb();
        ctx.ld(d.paramsA + 16ull * cell_, 16);
        ctx.ld(d.cellAddr(cell_), 8);
        for (std::uint32_t b = ctx.globalThreadIndex(); b < count;
             b += stride) {
            emitBodyForce(ctx, d, cell_, start + b);
        }
    }

  private:
    std::shared_ptr<const BhtData> d_;
    std::uint32_t cell_;
};

class BhtTopProgram : public KernelProgram
{
  public:
    explicit BhtTopProgram(std::shared_ptr<const BhtData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "bht_top"; }
    std::uint32_t functionId() const override { return d_->topFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const BhtData &d = *d_;
        std::uint32_t cell = ctx.globalThreadIndex();
        if (cell >= d.numCells())
            return;
        std::uint32_t start = d.cellStart[cell];
        std::uint32_t count = d.cellStart[cell + 1] - start;
        ctx.ld(d.cellAddr(cell), 8);
        ctx.alu(4);
        if (count == 0)
            return;
        if (count > kCellSpawn) {
            ctx.st(d.paramsA + 16ull * cell, 16);
            std::uint32_t tbs =
                std::min(8u, (count + kBodyThreads - 1) / kBodyThreads);
            ctx.launch({std::make_shared<BhtForceProgram>(d_, cell), tbs,
                        kBodyThreads});
        } else {
            for (std::uint32_t b = 0; b < count; ++b)
                emitBodyForce(ctx, d, cell, start + b);
        }
    }

  private:
    std::shared_ptr<const BhtData> d_;
};

/** Build wave: bin bodies into leaf cells, accumulate node summaries. */
class BhtBuildProgram : public KernelProgram
{
  public:
    explicit BhtBuildProgram(std::shared_ptr<const BhtData> d)
        : d_(std::move(d))
    {}

    std::string name() const override { return "bht_build"; }
    std::uint32_t functionId() const override { return d_->buildFuncId; }

    void
    emitThread(ThreadCtx &ctx) const override
    {
        const BhtData &d = *d_;
        std::uint32_t b = ctx.globalThreadIndex();
        if (b >= d.numBodies)
            return;
        ctx.ld(d.bodyAddr(b), 16);
        ctx.alu(6);
        std::uint32_t cell = d.cellOf[b];
        ctx.st(d.cellAddr(cell), 8);
        // Propagate mass up the tree (atomic adds in the real code).
        for (std::uint32_t level = d.gridLog2; level-- > 0;)
            ctx.st(d.nodeAddr(cell, level), 8);
    }

  private:
    std::shared_ptr<const BhtData> d_;
};

} // namespace

void
BhtWorkload::setup(Scale scale, std::uint64_t seed)
{
    scale_ = scale;
    seed_ = seed;

    auto d = std::make_shared<BhtData>();
    switch (scale) {
      case Scale::Tiny:
        d->numBodies = 4000;
        d->gridLog2 = 4;
        break;
      case Scale::Small:
        d->numBodies = 150000;
        d->gridLog2 = 8;
        break;
      case Scale::Huge:
        d->numBodies = 1200000;
        d->gridLog2 = 10;
        break;
      default:
        d->numBodies = 500000;
        d->gridLog2 = 9;
        break;
    }

    // Half uniform background, half in dense clusters: the clustered
    // cells produce the skewed child launches Adaptive-Bind targets.
    Rng rng(seed);
    const std::uint32_t g = 1u << d->gridLog2;
    const std::size_t clusters = 24;
    std::vector<double> cx(clusters), cy(clusters);
    for (std::size_t i = 0; i < clusters; ++i) {
        cx[i] = rng.nextDouble() * g;
        cy[i] = rng.nextDouble() * g;
    }
    d->cellOf.resize(d->numBodies);
    for (std::uint32_t b = 0; b < d->numBodies; ++b) {
        double x, y;
        if (b % 2 == 0) {
            x = rng.nextDouble() * g;
            y = rng.nextDouble() * g;
        } else {
            std::size_t c = rng.nextBounded(clusters);
            x = cx[c] + rng.nextGaussian() * g * 0.008;
            y = cy[c] + rng.nextGaussian() * g * 0.008;
        }
        auto xi = static_cast<std::uint32_t>(
            std::clamp(x, 0.0, g - 1.0));
        auto yi = static_cast<std::uint32_t>(
            std::clamp(y, 0.0, g - 1.0));
        d->cellOf[b] = yi * g + xi;
    }

    // Counting sort of bodies by cell (the CSR over leaf cells).
    d->cellStart.assign(d->numCells() + 1, 0);
    for (std::uint32_t b = 0; b < d->numBodies; ++b)
        ++d->cellStart[d->cellOf[b] + 1];
    for (std::uint32_t c = 0; c < d->numCells(); ++c)
        d->cellStart[c + 1] += d->cellStart[c];
    d->bodiesSorted.resize(d->numBodies);
    std::vector<std::uint32_t> cursor(d->cellStart.begin(),
                                      d->cellStart.end() - 1);
    for (std::uint32_t b = 0; b < d->numBodies; ++b)
        d->bodiesSorted[cursor[d->cellOf[b]]++] = b;

    std::uint64_t tree_nodes = ((1ull << (2 * (d->gridLog2 + 1))) - 1) / 3;
    d->bodiesA = mem_.allocArray(d->numBodies, 16, "bodies");
    d->accA = mem_.allocArray(d->numBodies, 8, "acc");
    d->cellsA = mem_.allocArray(d->numCells(), 8, "cells");
    d->treeA = mem_.allocArray(tree_nodes, kNodeBytes, "tree");
    d->paramsA = mem_.allocArray(d->numCells(), 16, "params");
    d->buildFuncId = allocateFunctionId();
    d->topFuncId = allocateFunctionId();
    d->forceFuncId = allocateFunctionId();

    waves_.clear();
    waves_.push_back({std::make_shared<BhtBuildProgram>(d),
                      (d->numBodies + 127) / 128, 128});
    waves_.push_back({std::make_shared<BhtTopProgram>(d),
                      (d->numCells() + 127) / 128, 128});
}

} // namespace laperm
