#include "sim/config.hh"

#include "common/log.hh"

namespace laperm {

const char *
toString(DynParModel model)
{
    switch (model) {
      case DynParModel::CDP: return "CDP";
      case DynParModel::DTBL: return "DTBL";
    }
    return "?";
}

const char *
toString(TbPolicy policy)
{
    switch (policy) {
      case TbPolicy::RR: return "RR";
      case TbPolicy::TbPri: return "TB-Pri";
      case TbPolicy::SmxBind: return "SMX-Bind";
      case TbPolicy::AdaptiveBind: return "Adaptive-Bind";
    }
    return "?";
}

const char *
toString(WarpPolicy policy)
{
    switch (policy) {
      case WarpPolicy::GTO: return "GTO";
      case WarpPolicy::LRR: return "LRR";
      case WarpPolicy::TbAware: return "TB-aware";
    }
    return "?";
}

const char *
toString(TickMode mode)
{
    switch (mode) {
      case TickMode::Dense: return "dense";
      case TickMode::Event: return "event";
    }
    return "?";
}

std::uint32_t
GpuConfig::effectiveOnchipEntries() const
{
    // For CDP the number of on-chip priority-queue entries per SMX is
    // limited to the KDU entry count (Section IV-E).
    if (dynParModel == DynParModel::CDP)
        return std::min(onchipQueueEntries, kduEntries);
    return onchipQueueEntries;
}

std::string
GpuConfig::check() const
{
    if (numSmx == 0)
        return "numSmx must be > 0";
    if (maxThreadsPerSmx % kWarpSize != 0)
        return "maxThreadsPerSmx must be a multiple of the warp size";
    if (l1Size % (l1Assoc * kLineBytes) != 0)
        return logFormat("L1 size %u not divisible by assoc*line", l1Size);
    if (l2Size % (l2Assoc * kLineBytes) != 0)
        return logFormat("L2 size %u not divisible by assoc*line", l2Size);
    if (kduEntries == 0)
        return "kduEntries must be > 0";
    if (maxPriorityLevels == 0)
        return "maxPriorityLevels must be >= 1";
    if (smxPerCluster == 0 || numSmx % smxPerCluster != 0)
        return "numSmx must be divisible by smxPerCluster";
    return std::string();
}

void
GpuConfig::validate() const
{
    const std::string err = check();
    if (!err.empty())
        laperm_fatal("%s", err.c_str());
}

std::string
GpuConfig::summary() const
{
    return logFormat(
        "%u SMX, %u thr/SMX, %u TB/SMX, L1 %uKB, L2 %uKB, KDU %u, "
        "%s/%s, L=%u",
        numSmx, maxThreadsPerSmx, maxTbsPerSmx, l1Size / 1024,
        l2Size / 1024, kduEntries, toString(dynParModel),
        toString(tbPolicy), maxPriorityLevels);
}

} // namespace laperm
