
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/kernel_program.cc" "src/CMakeFiles/laperm_kernels.dir/kernels/kernel_program.cc.o" "gcc" "src/CMakeFiles/laperm_kernels.dir/kernels/kernel_program.cc.o.d"
  "/root/repo/src/kernels/thread_ctx.cc" "src/CMakeFiles/laperm_kernels.dir/kernels/thread_ctx.cc.o" "gcc" "src/CMakeFiles/laperm_kernels.dir/kernels/thread_ctx.cc.o.d"
  "/root/repo/src/kernels/warp_trace.cc" "src/CMakeFiles/laperm_kernels.dir/kernels/warp_trace.cc.o" "gcc" "src/CMakeFiles/laperm_kernels.dir/kernels/warp_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/laperm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
