#include <gtest/gtest.h>

#include "common/bump_alloc.hh"

using namespace laperm;

TEST(BumpAllocator, LineAligned)
{
    BumpAllocator alloc;
    Addr a = alloc.alloc(1, "a");
    Addr b = alloc.alloc(100, "b");
    Addr c = alloc.alloc(1000, "c");
    EXPECT_EQ(a % kLineBytes, 0u);
    EXPECT_EQ(b % kLineBytes, 0u);
    EXPECT_EQ(c % kLineBytes, 0u);
}

TEST(BumpAllocator, NoOverlap)
{
    BumpAllocator alloc;
    Addr a = alloc.alloc(257, "a");
    Addr b = alloc.alloc(64, "b");
    EXPECT_GE(b, a + 257);
}

TEST(BumpAllocator, ArrayIndexing)
{
    BumpAllocator alloc;
    Addr base = alloc.allocArray(100, 8, "arr");
    EXPECT_EQ(base % kLineBytes, 0u);
    // Element addressing is up to the caller; the region must cover it.
    const auto &regions = alloc.regions();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].bytes, 800u);
}

TEST(BumpAllocator, RegionsRecorded)
{
    BumpAllocator alloc;
    alloc.alloc(10, "x");
    alloc.alloc(20, "y");
    ASSERT_EQ(alloc.regions().size(), 2u);
    EXPECT_EQ(alloc.regions()[0].name, "x");
    EXPECT_EQ(alloc.regions()[1].name, "y");
    EXPECT_GT(alloc.totalBytes(), 0u);
}
