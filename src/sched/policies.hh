/**
 * @file
 * The four TB scheduling policies evaluated in the paper.
 */

#ifndef LAPERM_SCHED_POLICIES_HH
#define LAPERM_SCHED_POLICIES_HH

#include <deque>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "sched/priority_queues.hh"
#include "sched/tb_scheduler.hh"

namespace laperm {

/**
 * Baseline round-robin scheduler (Section III-B): FCFS across kernels,
 * each TB to the next SMX with enough free resources; dynamic TBs are
 * dispatched after the natives of earlier kernels.
 */
class RrScheduler : public TbScheduler
{
  public:
    RrScheduler(const GpuConfig &cfg, DispatchContext &ctx);

    void enqueue(DispatchUnit *unit, Cycle now) override;
    bool dispatchOne(Cycle now) override;
    Cycle nextReadyAt(Cycle now) const override;
    void noteCapacityFreed() override { stuck_ = false; }

    /** A memo-valid cycle is exactly dispatchOne's O(1) fast path. */
    bool visitIsNoop(Cycle c) const override
    {
        return stuck_ && c < stuckReadyAt_;
    }

  private:
    /** One TB's resource demand; equal shapes fit identically. */
    struct Shape
    {
        std::uint32_t threads;
        std::uint32_t regs;
        std::uint32_t smem;
        bool operator==(const Shape &) const = default;
    };

    std::deque<DispatchUnit *> units_; ///< FCFS order
    SmxId cursor_ = 0;
    std::size_t compactAbove_ = 128;

    /**
     * Failed-scan memo: a failed dispatchOne is a pure function of the
     * unit queue, the rotation cursor, and per-SMX free resources.
     * None of those can change except through enqueue(), a dispatch
     * (which only follows a successful scan), noteCapacityFreed(), or
     * a delayed unit reaching its readyAt — so until one of them
     * happens the scan provably still fails and is skipped in O(1).
     */
    bool stuck_ = false;
    /** Earliest readyAt among delayed units seen by the failed scan. */
    Cycle stuckReadyAt_ = kNoCycle;
    /** Per-scan scratch: shapes that already failed on every SMX. */
    std::vector<Shape> blockedShapes_;
};

/**
 * TB Prioritizing (Section IV-A): one global set of priority queues;
 * child TBs (priority parent+1, clamped to L) dispatch before lower
 * priorities; SMX selection stays round-robin.
 */
class TbPriScheduler : public TbScheduler
{
  public:
    TbPriScheduler(const GpuConfig &cfg, DispatchContext &ctx);

    void enqueue(DispatchUnit *unit, Cycle now) override;
    bool dispatchOne(Cycle now) override;
    Cycle nextReadyAt(Cycle now) const override;

  private:
    PriorityQueues queues_;
    SmxId cursor_ = 0;
};

/**
 * Prioritized SMX Binding (Section IV-B) and its Adaptive extension
 * (Section IV-C). Per-cluster priority queues for dynamic TBs, a shared
 * level-0 queue for host kernels, one SMX examined per cycle, and —
 * when adaptive — the recorded-backup stage 3 of Figure 6.
 */
class SmxBindScheduler : public TbScheduler
{
  public:
    SmxBindScheduler(const GpuConfig &cfg, DispatchContext &ctx,
                     bool adaptive);

    void enqueue(DispatchUnit *unit, Cycle now) override;
    bool dispatchOne(Cycle now) override;
    Cycle nextReadyAt(Cycle now) const override;

  private:
    std::uint32_t cluster(SmxId smx) const
    {
        return smx / cfg_.smxPerCluster;
    }

    bool adaptive_;
    std::vector<PriorityQueues> perCluster_;
    PriorityQueues hostQueue_;
    /** Recorded backup cluster per cluster; -1 = none (Figure 6). */
    std::vector<int> backup_;
    SmxId cursor_ = 0;
    Rng rng_;
};

} // namespace laperm

#endif // LAPERM_SCHED_POLICIES_HH
