/**
 * @file
 * Service layer entry point (DESIGN.md §15.3): a LineHandler that
 * parses protocol frames, dispatches verbs, and answers from a local
 * SimService. This is the single-process deployment's whole brain —
 * Server (serve/session) feeds it frames over UDS or TCP — and it is
 * also what each worker of a cluster runs behind the balancer
 * (serve/cluster).
 *
 * Response formats are part of the protocol contract: the run / stats /
 * ping / shutdown response lines here are byte-compatible with every
 * prior release of the daemon.
 */

#ifndef LAPERM_SERVE_SERVICE_SERVICE_HANDLER_HH
#define LAPERM_SERVE_SERVICE_SERVICE_HANDLER_HH

#include <memory>
#include <string>

#include "serve/service/service.hh"
#include "serve/session/handler.hh"

namespace laperm {
namespace serve {

class ServiceHandler : public LineHandler
{
  public:
    explicit ServiceHandler(ServiceOptions opts);

    /** Dispatch one protocol line; also usable directly in tests. */
    std::string handleLine(const std::string &line) override;

    SimService &service() { return *service_; }

  private:
    std::unique_ptr<SimService> service_;
};

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_SERVICE_SERVICE_HANDLER_HH
