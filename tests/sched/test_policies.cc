/**
 * @file
 * Cross-policy invariants on randomized nested-launch workloads,
 * parameterized over policy x dynamic-parallelism model.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.hh"
#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/** Parent grid where TB i launches (i % 4) children of 2 TBs each. */
LaunchRequest
randomNest(std::uint64_t seed, std::uint32_t parent_tbs)
{
    auto child = std::make_shared<LambdaProgram>(
        "child", allocateFunctionId(), [seed](ThreadCtx &c) {
            Rng r(seed * 977 + c.tbIndex());
            c.ld(r.nextBounded(1 << 20) * 4, 4);
            c.alu(static_cast<std::uint32_t>(10 + r.nextBounded(30)));
        });
    auto parent = std::make_shared<LambdaProgram>(
        "parent", allocateFunctionId(), [child, seed](ThreadCtx &c) {
            Rng r(seed + c.tbIndex());
            c.alu(static_cast<std::uint32_t>(20 + r.nextBounded(50)));
            std::uint32_t kids = c.tbIndex() % 4;
            if (c.threadIndex() < kids)
                c.launch({child, 2, 32});
        });
    return {parent, parent_tbs, 32};
}

using Param = std::tuple<TbPolicy, DynParModel>;

class PolicyInvariants : public ::testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(PolicyInvariants, EveryTbDispatchedExactlyOnce)
{
    auto [policy, model] = GetParam();
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = policy;
    cfg.dynParModel = model;

    Gpu gpu(cfg);
    DispatchRecorder rec(gpu);
    gpu.launchHostKernel(randomNest(7, 12));
    gpu.runToIdle();

    // 12 parents; TB i launches i%4 children x 2 TBs.
    std::uint64_t expected_children = 0;
    for (std::uint32_t i = 0; i < 12; ++i)
        expected_children += (i % 4) * 2;
    EXPECT_EQ(rec.records.size(), 12 + expected_children);

    std::set<TbUid> uids;
    std::uint64_t dynamic = 0;
    for (const auto &r : rec.records) {
        uids.insert(r.uid);
        dynamic += r.isDynamic;
        EXPECT_LT(r.smx, cfg.numSmx);
    }
    EXPECT_EQ(uids.size(), rec.records.size());
    EXPECT_EQ(dynamic, expected_children);
    EXPECT_EQ(gpu.stats().dynamicTbs, expected_children);
}

TEST_P(PolicyInvariants, ChildrenDispatchAfterTheirParent)
{
    auto [policy, model] = GetParam();
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = policy;
    cfg.dynParModel = model;

    Gpu gpu(cfg);
    DispatchRecorder rec(gpu);
    gpu.launchHostKernel(randomNest(13, 10));
    gpu.runToIdle();

    for (const auto &r : rec.records) {
        if (!r.isDynamic)
            continue;
        const DispatchRecord *parent = rec.byUid(r.directParent);
        ASSERT_NE(parent, nullptr);
        EXPECT_GT(r.cycle, parent->cycle);
    }
}

TEST_P(PolicyInvariants, SmxUtilizationAccounted)
{
    auto [policy, model] = GetParam();
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = policy;
    cfg.dynParModel = model;

    Gpu gpu(cfg);
    gpu.launchHostKernel(randomNest(23, 16));
    gpu.runToIdle();
    const GpuStats &s = gpu.stats();
    EXPECT_GT(s.avgSmxUtilization(), 0.0);
    EXPECT_LE(s.avgSmxUtilization(), 1.0);
    std::uint64_t tbs = 0;
    for (const auto &smx : s.smx)
        tbs += smx.tbsExecuted;
    EXPECT_EQ(tbs, 16u + gpu.stats().dynamicTbs);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndModels, PolicyInvariants,
    ::testing::Combine(
        ::testing::Values(TbPolicy::RR, TbPolicy::TbPri, TbPolicy::SmxBind,
                          TbPolicy::AdaptiveBind),
        ::testing::Values(DynParModel::CDP, DynParModel::DTBL)),
    [](const ::testing::TestParamInfo<Param> &param_info) {
        std::string name = toString(std::get<0>(param_info.param));
        name += "_";
        name += toString(std::get<1>(param_info.param));
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(PolicySpecifics, SmxBindBindingInvariant)
{
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = TbPolicy::SmxBind;
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    DispatchRecorder rec(gpu);
    gpu.launchHostKernel(randomNest(31, 12));
    gpu.runToIdle();
    for (const auto &r : rec.records) {
        if (!r.isDynamic)
            continue;
        const DispatchRecord *parent = rec.byUid(r.directParent);
        ASSERT_NE(parent, nullptr);
        EXPECT_EQ(r.smx, parent->smx);
    }
    EXPECT_EQ(gpu.stats().unboundDispatches, 0u);
}

TEST(PolicySpecifics, AdaptiveBindAccountsBoundPlusUnbound)
{
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    gpu.launchHostKernel(randomNest(37, 12));
    gpu.runToIdle();
    const GpuStats &s = gpu.stats();
    EXPECT_EQ(s.boundDispatches + s.unboundDispatches, s.dynamicTbs);
}

TEST(PolicySpecifics, QueueOverflowStillCompletes)
{
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.onchipQueueEntries = 1; // force overflow
    Gpu gpu(cfg);
    gpu.launchHostKernel(randomNest(41, 16));
    gpu.runToIdle();
    EXPECT_GT(gpu.stats().queueOverflows, 0u);
    EXPECT_EQ(gpu.undispatchedTbs(), 0u);
}

TEST(PolicySpecifics, RandomBackupPolicyCompletes)
{
    GpuConfig cfg = tinyConfig();
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.backupPolicy = BackupPolicy::Random;
    Gpu gpu(cfg);
    gpu.launchHostKernel(randomNest(43, 16));
    gpu.runToIdle();
    EXPECT_EQ(gpu.activeTbs(), 0u);
}

TEST(PolicySpecifics, ClusteredBindingTargetsCluster)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSmx = 4;
    cfg.smxPerCluster = 2; // 2 clusters of 2 SMXs sharing an L1
    cfg.tbPolicy = TbPolicy::SmxBind;
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    DispatchRecorder rec(gpu);
    gpu.launchHostKernel(randomNest(47, 8));
    gpu.runToIdle();
    for (const auto &r : rec.records) {
        if (!r.isDynamic)
            continue;
        const DispatchRecord *parent = rec.byUid(r.directParent);
        ASSERT_NE(parent, nullptr);
        EXPECT_EQ(r.smx / 2, parent->smx / 2); // same cluster
    }
}
