// sim-lint fixture: event-discipline violations — a schedule() call
// computing a past cycle via subtraction, an event kind minted from an
// integer, and a direct Gpu::tick() bypassing the event loop. Not
// compiled — parsed by test_sim_lint_v2.cc.

using Cycle = unsigned long long;
enum class SimEventKind { FrontEnd, SmxTick, Maintenance };
struct Queue
{
    void schedule(Cycle c, SimEventKind k);
};
struct Gpu
{
    void tick();
};

void
bad(Queue &q, Gpu *gpu, Cycle now, int raw)
{
    q.schedule(now - 5, SimEventKind::SmxTick);       // event-past
    q.schedule(now, static_cast<SimEventKind>(raw));  // event-kind
    gpu->tick();                                      // event-tick
}
