/**
 * @file
 * The op-trace "ISA" kernels are expressed in. A kernel program emits a
 * per-thread sequence of ops (compute, loads, stores, barriers, device
 * launches); the SIMT front end groups them into warp instructions.
 */

#ifndef LAPERM_KERNELS_ISA_HH
#define LAPERM_KERNELS_ISA_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace laperm {

class KernelProgram;

/** Kinds of per-thread operations. */
enum class OpKind : std::uint8_t
{
    Alu,    ///< compute for N cycles
    Load,   ///< global-memory load
    Store,  ///< global-memory store
    Bar,    ///< TB-wide barrier (__syncthreads)
    Launch, ///< device-side kernel / TB-group launch
};

/** One per-thread operation. */
struct ThreadOp
{
    OpKind kind;
    std::uint32_t aluCycles = 0;  ///< Alu: busy cycles
    Addr addr = 0;                ///< Load/Store: byte address
    std::uint32_t launchIx = 0;   ///< Launch: index into thread launches
};

/**
 * A device-side launch request: the child grid (CDP) or TB group (DTBL).
 * The same request feeds both models; the launcher interprets it
 * according to the configured DynParModel.
 */
struct LaunchRequest
{
    std::shared_ptr<const KernelProgram> program;
    std::uint32_t numTbs = 1;
    std::uint32_t threadsPerTb = kWarpSize;
    /** Owning tenant stream (0 = the default single-tenant stream). */
    std::uint32_t tenant = 0;
};

} // namespace laperm

#endif // LAPERM_KERNELS_ISA_HH
