#!/usr/bin/env bash
# Tier-1 verification: Release build + full test suite, then a
# ThreadSanitizer pass over the concurrent sweep harness.
set -euo pipefail
cd "$(dirname "$0")/.."

# 1. Release build + full ctest run (the tier-1 command).
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
ctest --test-dir build --output-on-failure -j

# 2. ThreadSanitizer configuration for the concurrent harness tests.
#    Only the gtest-free smoke binary runs here so every linked object
#    is instrumented (gtest/benchmark from the system are not).
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAPERM_TSAN=ON
cmake --build build-tsan -j --target harness_parallel_smoke
(cd build-tsan && ctest --output-on-failure -R '^harness_parallel_smoke$')

echo "verify.sh: all checks passed"
