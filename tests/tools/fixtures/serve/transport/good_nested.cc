// sim-lint fixture: a nested-module file using only its declared
// dependencies (common) plus self edges spelled through the nested
// include path. Not compiled — parsed by test_sim_lint_v2.cc.
#include <string>

#include "common/log.hh"                  // declared edge: legal
#include "serve/transport/endpoint.hh"    // self edge via nested path

void
touchNestedGood()
{
}
