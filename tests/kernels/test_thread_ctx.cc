#include <gtest/gtest.h>

#include "kernels/lambda_program.hh"
#include "kernels/thread_ctx.hh"

using namespace laperm;

TEST(ThreadCtx, Indices)
{
    ThreadCtx ctx(3, 17, 64, 10);
    EXPECT_EQ(ctx.tbIndex(), 3u);
    EXPECT_EQ(ctx.threadIndex(), 17u);
    EXPECT_EQ(ctx.threadsPerTb(), 64u);
    EXPECT_EQ(ctx.numTbs(), 10u);
    EXPECT_EQ(ctx.globalThreadIndex(), 3u * 64 + 17);
}

TEST(ThreadCtx, LoadEmitsLineAddress)
{
    ThreadCtx ctx(0, 0, 32, 1);
    ctx.ld(0x1234, 4);
    ASSERT_EQ(ctx.ops().size(), 1u);
    EXPECT_EQ(ctx.ops()[0].kind, OpKind::Load);
    EXPECT_EQ(ctx.ops()[0].addr, lineAddr(0x1234));
}

TEST(ThreadCtx, WideAccessSpansLines)
{
    ThreadCtx ctx(0, 0, 32, 1);
    ctx.ld(kLineBytes - 4, 8); // straddles two lines
    ASSERT_EQ(ctx.ops().size(), 2u);
    EXPECT_EQ(ctx.ops()[0].addr, 0u);
    EXPECT_EQ(ctx.ops()[1].addr, static_cast<Addr>(kLineBytes));
}

TEST(ThreadCtx, AluMergesAdjacent)
{
    ThreadCtx ctx(0, 0, 32, 1);
    ctx.alu(3);
    ctx.alu(5);
    ASSERT_EQ(ctx.ops().size(), 1u);
    EXPECT_EQ(ctx.ops()[0].aluCycles, 8u);
    ctx.ld(0);
    ctx.alu(2);
    EXPECT_EQ(ctx.ops().size(), 3u);
}

TEST(ThreadCtx, AluZeroIsNoop)
{
    ThreadCtx ctx(0, 0, 32, 1);
    ctx.alu(0);
    EXPECT_TRUE(ctx.ops().empty());
}

TEST(ThreadCtx, LaunchRecordsRequest)
{
    auto prog = std::make_shared<LambdaProgram>(
        "child", allocateFunctionId(), [](ThreadCtx &c) { c.alu(1); });
    ThreadCtx ctx(0, 0, 32, 1);
    ctx.launch({prog, 4, 64});
    ASSERT_EQ(ctx.ops().size(), 1u);
    EXPECT_EQ(ctx.ops()[0].kind, OpKind::Launch);
    ASSERT_EQ(ctx.launches().size(), 1u);
    EXPECT_EQ(ctx.launches()[0].numTbs, 4u);
    EXPECT_EQ(ctx.launches()[0].threadsPerTb, 64u);
}

TEST(ThreadCtx, BarEmitsOp)
{
    ThreadCtx ctx(0, 0, 32, 1);
    ctx.bar();
    ASSERT_EQ(ctx.ops().size(), 1u);
    EXPECT_EQ(ctx.ops()[0].kind, OpKind::Bar);
}
