/**
 * @file
 * Multi-tenant contention sweep: mix x hardware preset x TB policy,
 * one MixStudy (shared run + solo baselines, src/tenant/) per cell.
 * Like the single-app sweep (harness/experiment.hh) it executes cells
 * on a thread pool with preassigned result slots and caches per
 * (mix, preset, seed) TSVs under the shared fingerprint-gated cache,
 * so bench_multitenant and the EXPERIMENTS.md contention study share
 * one set of simulations.
 */

#ifndef LAPERM_HARNESS_TENANT_SWEEP_HH
#define LAPERM_HARNESS_TENANT_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "tenant/metrics.hh"

namespace laperm {

/**
 * One tenant of one (mix, preset, policy) cell. Mix-level metrics
 * (ANTT mean, STP, Jain, makespan) repeat on every row of the cell so
 * each row is self-contained for plotting.
 */
struct TenantSweepRow
{
    std::string mix;
    std::string preset = "k20c";
    TbPolicy policy = TbPolicy::RR;
    std::string tenant;        ///< stream name within the mix
    std::uint32_t tenantId = 0;
    std::uint32_t jobs = 0;
    double antt = 0.0;         ///< per-tenant normalized turnaround
    std::uint64_t p50 = 0;     ///< wave-latency percentiles, cycles
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t retiredTbs = 0;
    double mixAntt = 0.0;
    double mixStp = 0.0;
    double mixJain = 0.0;
    std::uint64_t makespan = 0;
};

/** Serialize rows (header comment + one row per tenant, %.17g doubles). */
std::string encodeTenantSweepTsv(const std::vector<TenantSweepRow> &rows);

/** Parse encodeTenantSweepTsv output; false on a malformed row. */
bool decodeTenantSweepTsv(const std::string &tsv,
                          std::vector<TenantSweepRow> &out);

/**
 * Cache file for one (mix, preset, seed) cell group:
 * "$LAPERM_CACHE_DIR/laperm_tenants_<mix>_<preset>_<seed>.tsv". The
 * group holds all four TB policies for that mix/preset.
 */
std::string tenantSweepCachePath(const std::string &mix,
                                 const std::string &preset,
                                 std::uint64_t seed);

/**
 * Run every builtin mix in @p mixes on every preset in @p presets under
 * all four TB policies (the dynamic-parallelism model stays the device
 * default). Rows come back grouped by (mix, preset) in argument order,
 * then policy in enum order, then tenant id — byte-identical at any
 * worker count and in both tick modes.
 *
 * @param use_cache per-(mix, preset) TSV cache, fingerprint-gated like
 *        the single-app sweep; disable with LAPERM_NO_CACHE=1.
 * @param jobs worker threads; 0 selects LAPERM_JOBS, falling back to
 *        hardware_concurrency().
 */
std::vector<TenantSweepRow> runTenantSweep(
    const std::vector<std::string> &mixes,
    const std::vector<std::string> &presets, std::uint64_t seed,
    bool use_cache = true, unsigned jobs = 0);

} // namespace laperm

#endif // LAPERM_HARNESS_TENANT_SWEEP_HH
