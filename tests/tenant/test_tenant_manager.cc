#include <gtest/gtest.h>

#include "harness/tenant_sweep.hh"
#include "tenant/mixes.hh"
#include "tenant/tenant_manager.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::tenant;

namespace {

GpuConfig
testConfig()
{
    GpuConfig cfg; // Table I defaults
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::RR;
    cfg.seed = 1;
    return cfg;
}

MixSpec
soloBfs()
{
    MixSpec mix;
    mix.name = "solo-bfs";
    TenantSpec t;
    t.name = "only";
    t.workload = "bfs-citation";
    t.scale = Scale::Tiny;
    mix.tenants.push_back(t);
    return mix;
}

} // namespace

TEST(TenantManager, SoloTenantScoresExactlyOne)
{
    // A single-tenant mix is its own baseline: the shared run and the
    // solo run are the same deterministic simulation, so ANTT and STP
    // must come out at exactly 1.0 (and Jain is trivially 1.0).
    const MixStudy study = runMixStudy(soloBfs(), testConfig());
    ASSERT_EQ(study.metrics.perTenant.size(), 1u);
    EXPECT_EQ(study.metrics.perTenant[0].antt, 1.0);
    EXPECT_EQ(study.metrics.antt, 1.0);
    EXPECT_EQ(study.metrics.stp, 1.0);
    EXPECT_EQ(study.metrics.jain, 1.0);
    EXPECT_GT(study.metrics.makespan, 0u);
}

TEST(TenantManager, AccountingInvariants)
{
    const MixSpec mix = builtinMix("duo");
    const MixStudy study = runMixStudy(mix, testConfig());

    ASSERT_EQ(study.shared.perTenant.size(), mix.tenants.size());
    for (std::size_t i = 0; i < mix.tenants.size(); ++i) {
        const TenantRunResult &r = study.shared.perTenant[i];
        const TenantSpec &spec = mix.tenants[i];
        EXPECT_EQ(r.name, spec.name);
        EXPECT_EQ(r.tenant, i);
        // Every job completed, one turnaround per job, and one wave
        // latency per (job x host wave).
        EXPECT_EQ(r.jobTurnarounds.size(), spec.jobs);
        auto w = createWorkload(spec.workload);
        w->setup(spec.scale, 1);
        EXPECT_EQ(r.waveLatencies.size(),
                  spec.jobs * w->waves().size());
        // Drained device: everything dispatched also retired.
        EXPECT_EQ(r.retiredTbs, r.dispatchedTbs);
        EXPECT_GT(r.retiredTbs, 0u);
        EXPECT_GT(r.kernelsAdmitted, 0u);
        for (Cycle t : r.jobTurnarounds)
            EXPECT_GT(t, 0u);
    }
    EXPECT_GT(study.shared.makespan, 0u);
}

TEST(TenantManager, PercentilesMonotonePerTenant)
{
    const MixStudy study =
        runMixStudy(builtinMix("duo"), testConfig());
    for (const TenantMetrics &tm : study.metrics.perTenant) {
        EXPECT_LE(tm.p50, tm.p95) << tm.name;
        EXPECT_LE(tm.p95, tm.p99) << tm.name;
        EXPECT_GT(tm.p50, 0u) << tm.name;
    }
}

TEST(TenantManager, RunsAreDeterministic)
{
    const MixSpec mix = builtinMix("duo");
    const MixStudy a = runMixStudy(mix, testConfig());
    const MixStudy b = runMixStudy(mix, testConfig());
    ASSERT_EQ(a.shared.perTenant.size(), b.shared.perTenant.size());
    EXPECT_EQ(a.shared.makespan, b.shared.makespan);
    for (std::size_t i = 0; i < a.shared.perTenant.size(); ++i) {
        EXPECT_EQ(a.shared.perTenant[i].jobTurnarounds,
                  b.shared.perTenant[i].jobTurnarounds);
        EXPECT_EQ(a.shared.perTenant[i].waveLatencies,
                  b.shared.perTenant[i].waveLatencies);
        EXPECT_EQ(a.shared.perTenant[i].retiredTbs,
                  b.shared.perTenant[i].retiredTbs);
        EXPECT_EQ(a.metrics.perTenant[i].antt,
                  b.metrics.perTenant[i].antt);
    }
}

TEST(TenantManager, TickModesAgree)
{
    // The manager only drives the device between slices, so the
    // engine's dense/event byte-equivalence must survive multi-tenant
    // interleaving (the tenant-smoke verify stage checks the same at
    // the artifact level).
    const MixSpec mix = builtinMix("duo");
    GpuConfig dense = testConfig();
    dense.tickMode = TickMode::Dense;
    GpuConfig event = testConfig();
    event.tickMode = TickMode::Event;
    const MixStudy a = runMixStudy(mix, dense);
    const MixStudy b = runMixStudy(mix, event);
    ASSERT_EQ(a.shared.perTenant.size(), b.shared.perTenant.size());
    EXPECT_EQ(a.shared.makespan, b.shared.makespan);
    for (std::size_t i = 0; i < a.shared.perTenant.size(); ++i) {
        EXPECT_EQ(a.shared.perTenant[i].jobTurnarounds,
                  b.shared.perTenant[i].jobTurnarounds);
        EXPECT_EQ(a.shared.perTenant[i].waveLatencies,
                  b.shared.perTenant[i].waveLatencies);
        EXPECT_EQ(a.solo[i].jobTurnarounds, b.solo[i].jobTurnarounds);
    }
}

TEST(TenantSweepTsv, RoundTripsExactly)
{
    TenantSweepRow r;
    r.mix = "duo";
    r.preset = "v100";
    r.policy = TbPolicy::AdaptiveBind;
    r.tenant = "graph";
    r.tenantId = 1;
    r.jobs = 2;
    r.antt = 1.0 / 3.0; // needs all 17 digits to round-trip
    r.p50 = 123;
    r.p95 = 456;
    r.p99 = 789;
    r.retiredTbs = 4242;
    r.mixAntt = 2.0 / 3.0;
    r.mixStp = 1.5;
    r.mixJain = 0.1234567890123456789;
    r.makespan = 99999;

    const std::string tsv = encodeTenantSweepTsv({r});
    std::vector<TenantSweepRow> back;
    ASSERT_TRUE(decodeTenantSweepTsv(tsv, back));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].mix, r.mix);
    EXPECT_EQ(back[0].preset, r.preset);
    EXPECT_EQ(back[0].policy, r.policy);
    EXPECT_EQ(back[0].tenant, r.tenant);
    EXPECT_EQ(back[0].tenantId, r.tenantId);
    EXPECT_EQ(back[0].antt, r.antt); // %.17g bit-exact round trip
    EXPECT_EQ(back[0].mixJain, r.mixJain);
    EXPECT_EQ(back[0].makespan, r.makespan);
    // Re-encoding the decoded rows reproduces the bytes — the cache
    // file is stable across load/store cycles.
    EXPECT_EQ(encodeTenantSweepTsv(back), tsv);

    std::vector<TenantSweepRow> bad;
    EXPECT_FALSE(decodeTenantSweepTsv("duo k20c not-a-policy\n", bad));
}
