#include "sched/policies.hh"

#include <algorithm>

namespace laperm {

RrScheduler::RrScheduler(const GpuConfig &cfg, DispatchContext &ctx)
    : TbScheduler(cfg, ctx)
{
}

void
RrScheduler::enqueue(DispatchUnit *unit, Cycle)
{
    units_.push_back(unit);
}

bool
RrScheduler::dispatchOne(Cycle now)
{
    while (!units_.empty() && units_.front()->exhausted())
        units_.pop_front();
    // Amortized compaction of mid-queue exhausted units so the
    // per-cycle scan stays proportional to live work (units exhaust
    // out of order because later kernels dispatch concurrently while
    // earlier ones block on resources).
    if (units_.size() > compactAbove_) {
        std::erase_if(units_,
                      [](const DispatchUnit *u) { return u->exhausted(); });
        compactAbove_ = std::max<std::size_t>(128, units_.size() * 2);
    }

    const std::uint32_t n = ctx_.numSmx();
    std::uint32_t examined = 0;
    for (DispatchUnit *unit : units_) {
        if (unit->exhausted() || unit->readyAt > now)
            continue;
        // The hardware KDU exposes a bounded window of concurrent
        // kernels; do not scan arbitrarily deep past blocked units.
        if (++examined > 64)
            break;
        // Next SMX with enough available resources, starting from the
        // rotation cursor (Section II-B).
        for (std::uint32_t j = 0; j < n; ++j) {
            SmxId smx = (cursor_ + j) % n;
            if (ctx_.fits(smx, *unit)) {
                ctx_.dispatchTb(*unit, smx, now);
                cursor_ = (smx + 1) % n;
                return true;
            }
        }
        // This kernel's TB fits nowhere; concurrent kernel execution
        // lets the next KDU kernel try (Section II-B).
    }
    return false;
}

Cycle
RrScheduler::nextReadyAt(Cycle) const
{
    // RR units are always immediately dispatchable (no priority-queue
    // overflow in the baseline); blocked dispatch resumes on SMX
    // events, which the GPU's clock-skip logic already tracks.
    return kNoCycle;
}

} // namespace laperm
