/**
 * @file
 * Fundamental scalar types and constants shared across the simulator.
 */

#ifndef LAPERM_COMMON_TYPES_HH
#define LAPERM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace laperm {

/** Simulation time in SMX-clock cycles. */
using Cycle = std::uint64_t;

/** A 64-bit simulated global-memory address. */
using Addr = std::uint64_t;

/** Monotonically increasing identifier of a kernel instance (grid). */
using KernelId = std::uint32_t;

/** Globally unique thread-block identifier (never reused). */
using TbUid = std::uint64_t;

/** Index of an SMX on the device. */
using SmxId = std::uint32_t;

/** Sentinel for "no cycle" / "not scheduled yet". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel TB uid used for host-launched (parent-less) kernels. */
constexpr TbUid kNoTb = std::numeric_limits<TbUid>::max();

/** Sentinel SMX id. */
constexpr SmxId kNoSmx = std::numeric_limits<SmxId>::max();

/** SIMT width: threads per warp. */
constexpr std::uint32_t kWarpSize = 32;

/** Cache line (and memory transaction) size in bytes, per Table I. */
constexpr std::uint32_t kLineBytes = 128;

/** Round @p addr down to its 128-byte cache-line address. */
constexpr Addr
lineAddr(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

} // namespace laperm

#endif // LAPERM_COMMON_TYPES_HH
