#include "mem/dram.hh"

#include <algorithm>

namespace laperm {

Dram::Dram(const GpuConfig &cfg)
    : latency_(cfg.dramLatency),
      serviceInterval_(cfg.dramServiceInterval),
      bankFreeAt_(cfg.dramChannels * cfg.dramBanksPerChannel, 0)
{
}

std::uint32_t
Dram::bankIndex(Addr line) const
{
    // Line-interleaved across all banks; the shift mixes in higher bits
    // so strided access patterns do not pathologically collide.
    Addr n = line / kLineBytes;
    return static_cast<std::uint32_t>((n ^ (n >> 7)) % bankFreeAt_.size());
}

Cycle
Dram::occupy(Addr line, Cycle arrival)
{
    Cycle &free_at = bankFreeAt_[bankIndex(line)];
    Cycle start = std::max(arrival, free_at);
    stats_.totalQueueCycles += start - arrival;
    free_at = start + serviceInterval_;
    return start;
}

Cycle
Dram::read(Addr line, Cycle arrival)
{
    ++stats_.reads;
    return occupy(line, arrival) + latency_;
}

void
Dram::write(Addr line, Cycle arrival)
{
    ++stats_.writes;
    occupy(line, arrival);
}

void
Dram::reset()
{
    std::fill(bankFreeAt_.begin(), bankFreeAt_.end(), 0);
    stats_ = DramStats{};
}

} // namespace laperm
