file(REMOVE_RECURSE
  "CMakeFiles/laperm_workloads.dir/workloads/amr.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/amr.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/bfs.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/bfs.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/bht.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/bht.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/clr.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/clr.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/graph_common.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/graph_common.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/join.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/join.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/pre.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/pre.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/regx.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/regx.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/sssp.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/sssp.cc.o.d"
  "CMakeFiles/laperm_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/laperm_workloads.dir/workloads/workload.cc.o.d"
  "liblaperm_workloads.a"
  "liblaperm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
