/**
 * @file
 * Sections IV-B/IV-C: the binding/balance trade-off. SMX-Bind
 * maximizes L1 reuse but can idle SMXs when launch patterns are
 * skewed; Adaptive-Bind's backup queues repair the imbalance. Reports
 * per-policy SMX utilization, busy-cycle imbalance, and the fraction
 * of dynamic TBs dispatched to their bound SMX.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    // Skewed launch patterns stress the balance trade-off.
    const char *names[] = {"join-gaussian", "bht-points",
                           "amr-combustion", "bfs-graph500"};

    std::printf("SMX utilization and balance (DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "policy", "util", "imbalance", "bound frac",
             "IPC vs RR"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        double rr_ipc = 0.0;
        for (TbPolicy p : {TbPolicy::RR, TbPolicy::TbPri,
                           TbPolicy::SmxBind, TbPolicy::AdaptiveBind}) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.tbPolicy = p;
            RunResult r = runOne(*w, cfg);
            if (p == TbPolicy::RR)
                rr_ipc = r.ipc;
            t.addRow({name, toString(p), fmtPct(r.smxUtilization),
                      fmtPct(r.smxImbalance), fmtPct(r.boundFraction),
                      fmtF(rr_ipc > 0 ? r.ipc / rr_ipc : 0.0)});
        }
        t.addRule();
    }
    t.print();
    std::printf("\npaper: restricting child TBs to one SMX can idle "
                "the others (Fig. 4d); Adaptive-Bind trades a little "
                "binding for balance (Fig. 4e).\n");
    return 0;
}
