#include "mem/cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

Cache::Cache(const CacheParams &params)
    : params_(params),
      numSets_(params.size / (params.assoc * kLineBytes))
{
    laperm_assert(numSets_ > 0, "cache %s too small", params_.name.c_str());
    laperm_assert(params_.size % (params_.assoc * kLineBytes) == 0,
                  "cache %s: size not divisible by assoc*line",
                  params_.name.c_str());
    ways_.resize(static_cast<std::size_t>(numSets_) * params_.assoc);
}

std::uint32_t
Cache::setIndex(Addr line) const
{
    return static_cast<std::uint32_t>((line / kLineBytes) % numSets_);
}

Cache::Way *
Cache::findWay(Addr line)
{
    Way *base = &ways_[static_cast<std::size_t>(setIndex(line)) *
                       params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

CacheAccessResult
Cache::lookupLoad(Addr line, Cycle now)
{
    CacheAccessResult res;
    ++stats_.accesses;
    if (Way *way = findWay(line)) {
        way->lruStamp = ++lruClock_;
        if (way->fillReady <= now) {
            ++stats_.hits;
            res.hit = true;
        } else {
            // The line is being filled by an earlier miss: merge.
            ++stats_.misses;
            ++stats_.mshrMerges;
            res.mshrMerge = true;
            res.fillReady = way->fillReady;
        }
        return res;
    }
    // Not in the tag array: check for a fill that outlived its line
    // (victim of an intervening allocation).
    auto it = mshr_.find(line);
    if (it != mshr_.end()) {
        if (it->second <= now) {
            mshr_.erase(it);
        } else {
            ++stats_.misses;
            ++stats_.mshrMerges;
            res.mshrMerge = true;
            res.fillReady = it->second;
            return res;
        }
    }
    ++stats_.misses;
    return res;
}

CacheAccessResult
Cache::lookupStore(Addr line, Cycle now)
{
    CacheAccessResult res;
    if (params_.writeEvict) {
        // Kepler-style L1: write-through, no allocate; a hitting line is
        // evicted so later loads observe the new data from L2. Stores do
        // not participate in the L1 hit-rate statistics.
        if (Way *way = findWay(line)) {
            way->valid = false;
            ++stats_.storeEvicts;
        }
        return res;
    }
    // Write-back, write-allocate (L2).
    ++stats_.accesses;
    if (Way *way = findWay(line)) {
        way->lruStamp = ++lruClock_;
        way->dirty = true;
        if (way->fillReady <= now) {
            ++stats_.hits;
            res.hit = true;
        } else {
            ++stats_.misses;
            ++stats_.mshrMerges;
            res.mshrMerge = true;
            res.fillReady = way->fillReady;
        }
        return res;
    }
    ++stats_.misses;
    return res;
}

bool
Cache::allocate(Addr line, Cycle fill_ready, Cycle now, bool dirty)
{
    Way *base = &ways_[static_cast<std::size_t>(setIndex(line)) *
                       params_.assoc];
    Way *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    bool victim_dirty = false;
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty) {
            victim_dirty = true;
            ++stats_.writebacks;
        }
        // Preserve an in-flight fill for MSHR merging after eviction.
        if (victim->fillReady > now)
            mshr_[victim->line] = victim->fillReady;
    }
    victim->line = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->fillReady = fill_ready;
    victim->lruStamp = ++lruClock_;
    return victim_dirty;
}

void
Cache::trimExpiredMshr(Cycle safe_now)
{
    // An entry with fillReady <= safe_now can never merge again: every
    // later lookup carries now >= safe_now and would erase-and-miss.
    // Access-time `now` is NOT a valid bound here — L2 sees timestamps
    // out of order, so an entry dead at one access can still satisfy a
    // merge for a logically earlier one.
    if (mshr_.size() < params_.mshrTrimWatermark)
        return;
    // Order-independent erase filter: the surviving entry set is the
    // same whatever order buckets are visited, and nothing downstream
    // observes the traversal.
    for (auto it = mshr_.begin(); it != mshr_.end();) {
        if (it->second <= safe_now)
            it = mshr_.erase(it);
        else
            ++it;
    }
}

bool
Cache::contains(Addr line) const
{
    const Way *base = &ways_[static_cast<std::size_t>(setIndex(line)) *
                             params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].line == line)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way{});
    mshr_.clear();
    lruClock_ = 0;
    stats_ = CacheStats{};
}

} // namespace laperm
