// sim-lint fixture: order-exposing traversal of unordered containers
// in scheduler code must be flagged; point lookups must not be.
// Not compiled — parsed by test_sim_lint.cc.
#include <unordered_map>
#include <unordered_set>

unsigned long
sumPending(const std::unordered_map<unsigned, unsigned> &pending)
{
    std::unordered_set<unsigned> live;
    unsigned long total = 0;
    for (const auto &kv : pending)
        total += kv.second;
    for (auto it = live.begin(); it != live.end(); ++it)
        total += *it;
    // Point lookup: legal, must NOT be flagged.
    if (pending.find(3) != pending.end())
        ++total;
    return total;
}
