# Empty dependencies file for bench_ablation_tb_throttle.
# This may be replaced when dependencies are built.
