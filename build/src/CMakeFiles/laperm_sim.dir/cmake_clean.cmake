file(REMOVE_RECURSE
  "CMakeFiles/laperm_sim.dir/tools/laperm_sim.cc.o"
  "CMakeFiles/laperm_sim.dir/tools/laperm_sim.cc.o.d"
  "laperm_sim"
  "laperm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laperm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
