#include "obs/trace_collector.hh"

#include <algorithm>
#include <cstdio>

namespace laperm {
namespace obs {

void
TraceCollector::onTbDispatch(const TbEvent &e)
{
    dispatches_.push_back(e);
    kernelDispatches_[e.kernel].push_back(e.cycle);
    if (e.smx != kNoSmx && e.smx > maxSmx_)
        maxSmx_ = e.smx;
    noteCycle(e.cycle);
}

void
TraceCollector::onTbRetire(const TbEvent &e)
{
    retires_.push_back(e);
    noteCycle(e.cycle);
}

void
TraceCollector::onLaunchQueued(const LaunchEvent &e)
{
    queued_.push_back(e);
    noteCycle(e.cycle);
}

void
TraceCollector::onLaunchAdmitted(const LaunchEvent &e)
{
    admitted_.push_back(e);
    noteCycle(e.cycle);
}

void
TraceCollector::onSteal(const StealEvent &e)
{
    steals_.push_back(e);
    noteCycle(e.cycle);
}

std::vector<LaunchLatency>
TraceCollector::launchLatencies() const
{
    std::vector<LaunchLatency> out;
    out.reserve(admitted_.size());
    for (const LaunchEvent &a : admitted_) {
        LaunchLatency ll;
        ll.kernel = a.kernel;
        ll.priority = a.priority;
        ll.isDevice = a.isDevice;
        ll.coalesced = a.coalesced;
        ll.queuedAt = a.queuedAt;
        ll.admittedAt = a.cycle;
        const auto it = kernelDispatches_.find(a.kernel);
        if (it != kernelDispatches_.end()) {
            // Per-kernel dispatch cycles are appended in simulation
            // order, so the vector is sorted and the first dispatch
            // at/after admission is a lower_bound away.
            const auto &cycles = it->second;
            const auto d =
                std::lower_bound(cycles.begin(), cycles.end(), a.cycle);
            if (d != cycles.end())
                ll.firstDispatchAt = *d;
        }
        out.push_back(ll);
    }
    return out;
}

namespace {

/** Escape-free JSON string field (names are simulator-generated). */
void
jsonEvent(std::FILE *f, bool &first, const char *body)
{
    std::fprintf(f, "%s\n%s", first ? "" : ",", body);
    first = false;
}

} // namespace

bool
TraceCollector::writeChromeTrace(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;

    std::fprintf(f, "{\"traceEvents\":[");
    bool first = true;
    char buf[512];

    // Process metadata: one "process" per SMX plus one for device-level
    // events (kernel admissions, steals).
    const std::uint32_t numSmx = maxSmx_ + 1;
    for (std::uint32_t s = 0; s < numSmx; ++s) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                      "\"tid\":0,\"args\":{\"name\":\"SMX %u\"}}",
                      s, s);
        jsonEvent(f, first, buf);
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"args\":{\"name\":\"device\"}}",
                  numSmx);
    jsonEvent(f, first, buf);

    // TB residency as "X" duration events. Retires arrive in
    // simulation order; pair each with its dispatch data (carried on
    // the retire event) and assign the first lane (tid) free at
    // dispatch time on that SMX — a deterministic greedy interval
    // assignment.
    {
        std::vector<std::vector<Cycle>> laneFreeAt(numSmx);
        // Sort retires by (dispatchCycle, uid) so lane assignment is
        // by residency start, matching what a viewer renders.
        std::vector<const TbEvent *> byStart;
        byStart.reserve(retires_.size());
        for (const TbEvent &e : retires_)
            byStart.push_back(&e);
        std::sort(byStart.begin(), byStart.end(),
                  [](const TbEvent *a, const TbEvent *b) {
                      if (a->dispatchCycle != b->dispatchCycle)
                          return a->dispatchCycle < b->dispatchCycle;
                      return a->uid < b->uid;
                  });
        for (const TbEvent *e : byStart) {
            auto &lanes = laneFreeAt[e->smx];
            std::uint32_t lane = 0;
            while (lane < lanes.size() && lanes[lane] > e->dispatchCycle)
                ++lane;
            if (lane == lanes.size())
                lanes.push_back(0);
            lanes[lane] = e->cycle;
            const Cycle dur = e->cycle - e->dispatchCycle;
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\":\"k%u tb%u\",\"cat\":\"tb\",\"ph\":\"X\","
                "\"pid\":%u,\"tid\":%u,\"ts\":%llu,\"dur\":%llu,"
                "\"args\":{\"uid\":%llu,\"kernel\":%u,\"priority\":%u,"
                "\"dynamic\":%u,\"parent\":%lld}}",
                e->kernel, e->tbIndex, e->smx, lane,
                static_cast<unsigned long long>(e->dispatchCycle),
                static_cast<unsigned long long>(dur),
                static_cast<unsigned long long>(e->uid), e->kernel,
                e->priority, e->isDynamic ? 1u : 0u,
                e->isDynamic ? static_cast<long long>(e->directParent)
                             : -1ll);
            jsonEvent(f, first, buf);
        }
    }

    // Per-SMX occupancy as "C" counter events: merge dispatches and
    // retires into one cycle-ordered delta stream per SMX.
    {
        struct Delta
        {
            Cycle cycle;
            SmxId smx;
            std::uint64_t seq; // tie-break: emission order
            std::int32_t d;
        };
        std::vector<Delta> deltas;
        deltas.reserve(dispatches_.size() + retires_.size());
        std::uint64_t seq = 0;
        for (const TbEvent &e : dispatches_)
            deltas.push_back({e.cycle, e.smx, seq++, +1});
        for (const TbEvent &e : retires_)
            deltas.push_back({e.cycle, e.smx, seq++, -1});
        std::sort(deltas.begin(), deltas.end(),
                  [](const Delta &a, const Delta &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      if (a.smx != b.smx)
                          return a.smx < b.smx;
                      return a.seq < b.seq;
                  });
        std::vector<std::int32_t> occ(numSmx, 0);
        for (std::size_t i = 0; i < deltas.size(); ++i) {
            const Delta &d = deltas[i];
            occ[d.smx] += d.d;
            // Emit only the last delta per (cycle, smx) pair.
            if (i + 1 < deltas.size() &&
                deltas[i + 1].cycle == d.cycle &&
                deltas[i + 1].smx == d.smx)
                continue;
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\":\"resident TBs\",\"ph\":\"C\",\"pid\":%u,"
                "\"tid\":0,\"ts\":%llu,\"args\":{\"tbs\":%d}}",
                d.smx, static_cast<unsigned long long>(d.cycle),
                occ[d.smx]);
            jsonEvent(f, first, buf);
        }
    }

    // Kernel admissions and Adaptive-Bind steals as instant events on
    // the device-level process.
    for (const LaunchEvent &e : admitted_) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"admit k%u\",\"cat\":\"launch\",\"ph\":\"i\","
            "\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":%llu,"
            "\"args\":{\"kernel\":%u,\"priority\":%u,\"tbs\":%u,"
            "\"device\":%u,\"coalesced\":%u,\"queued_at\":%llu}}",
            e.kernel, numSmx, static_cast<unsigned long long>(e.cycle),
            e.kernel, e.priority, e.numTbs, e.isDevice ? 1u : 0u,
            e.coalesced ? 1u : 0u,
            static_cast<unsigned long long>(e.queuedAt));
        jsonEvent(f, first, buf);
    }
    for (const StealEvent &e : steals_) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"p\","
            "\"pid\":%u,\"tid\":0,\"ts\":%llu,"
            "\"args\":{\"smx\":%u,\"cluster\":%u,\"backup_cluster\":%u}}",
            e.adoption ? "adopt backup" : "steal tb", numSmx,
            static_cast<unsigned long long>(e.cycle), e.smx, e.cluster,
            e.backupCluster);
        jsonEvent(f, first, buf);
    }

    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
}

bool
TraceCollector::writeIntervalTsv(const std::string &path,
                                 Cycle interval) const
{
    if (interval == 0)
        interval = 1;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "interval_start\tdispatches\tretires\tadmits\tsteals"
                    "\toccupancy_tb_cycles\n");

    const std::size_t numIntervals =
        static_cast<std::size_t>(lastCycle_ / interval) + 1;
    std::vector<std::uint64_t> nDisp(numIntervals, 0);
    std::vector<std::uint64_t> nRet(numIntervals, 0);
    std::vector<std::uint64_t> nAdmit(numIntervals, 0);
    std::vector<std::uint64_t> nSteal(numIntervals, 0);
    // Occupancy integral per interval: each retired TB contributes its
    // residency overlap with the interval, in TB-cycles (integer).
    std::vector<std::uint64_t> occ(numIntervals, 0);

    for (const TbEvent &e : dispatches_)
        ++nDisp[e.cycle / interval];
    for (const LaunchEvent &e : admitted_)
        ++nAdmit[e.cycle / interval];
    for (const StealEvent &e : steals_) {
        if (!e.adoption)
            ++nSteal[e.cycle / interval];
    }
    for (const TbEvent &e : retires_) {
        ++nRet[e.cycle / interval];
        const Cycle start = e.dispatchCycle;
        const Cycle end = e.cycle;
        for (std::size_t i = start / interval; i <= end / interval; ++i) {
            const Cycle lo = std::max<Cycle>(start, i * interval);
            const Cycle hi = std::min<Cycle>(end, (i + 1) * interval);
            occ[i] += hi - lo;
        }
    }

    for (std::size_t i = 0; i < numIntervals; ++i) {
        std::fprintf(f, "%llu\t%llu\t%llu\t%llu\t%llu\t%llu\n",
                     static_cast<unsigned long long>(i * interval),
                     static_cast<unsigned long long>(nDisp[i]),
                     static_cast<unsigned long long>(nRet[i]),
                     static_cast<unsigned long long>(nAdmit[i]),
                     static_cast<unsigned long long>(nSteal[i]),
                     static_cast<unsigned long long>(occ[i]));
    }
    std::fclose(f);
    return true;
}

namespace {

/** Power-of-two bucket index: 0 for latency 0, else floor(log2)+1. */
std::uint32_t
bucketOf(Cycle v)
{
    std::uint32_t b = 0;
    while (v) {
        ++b;
        v >>= 1;
    }
    return b;
}

constexpr std::uint32_t kNumBuckets = 33; // up to 2^32 cycles

} // namespace

bool
TraceCollector::writeLaunchLatencyTsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;

    const std::vector<LaunchLatency> lats = launchLatencies();

    std::uint64_t queueBuckets[kNumBuckets] = {};
    std::uint64_t dispatchBuckets[kNumBuckets] = {};
    std::uint64_t totalBuckets[kNumBuckets] = {};
    std::uint64_t queueSum = 0, dispatchSum = 0, totalSum = 0;
    std::uint32_t hiBucket = 0;
    for (const LaunchLatency &ll : lats) {
        const std::uint32_t qb = bucketOf(ll.queueCycles());
        const std::uint32_t db = bucketOf(ll.dispatchCycles());
        const std::uint32_t tb = bucketOf(ll.totalCycles());
        ++queueBuckets[qb];
        ++dispatchBuckets[db];
        ++totalBuckets[tb];
        hiBucket = std::max(hiBucket, std::max(qb, std::max(db, tb)));
        queueSum += ll.queueCycles();
        dispatchSum += ll.dispatchCycles();
        totalSum += ll.totalCycles();
    }

    std::fprintf(f, "bucket_lo\tbucket_hi\tqueue\tdispatch\ttotal\n");
    for (std::uint32_t b = 0; b <= hiBucket; ++b) {
        const std::uint64_t lo = b == 0 ? 0 : (1ull << (b - 1));
        const std::uint64_t hi = b == 0 ? 0 : (1ull << b) - 1;
        std::fprintf(f, "%llu\t%llu\t%llu\t%llu\t%llu\n",
                     static_cast<unsigned long long>(lo),
                     static_cast<unsigned long long>(hi),
                     static_cast<unsigned long long>(queueBuckets[b]),
                     static_cast<unsigned long long>(dispatchBuckets[b]),
                     static_cast<unsigned long long>(totalBuckets[b]));
    }
    const std::uint64_t n = lats.size();
    std::fprintf(f, "# launches\t%llu\n",
                 static_cast<unsigned long long>(n));
    if (n) {
        std::fprintf(
            f, "# mean_queue\t%.2f\n# mean_dispatch\t%.2f\n"
               "# mean_total\t%.2f\n",
            static_cast<double>(queueSum) / static_cast<double>(n),
            static_cast<double>(dispatchSum) / static_cast<double>(n),
            static_cast<double>(totalSum) / static_cast<double>(n));
    }
    std::fclose(f);
    return true;
}

} // namespace obs
} // namespace laperm
