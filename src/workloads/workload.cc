#include "workloads/workload.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/log.hh"

namespace laperm {

const char *
toString(Scale scale)
{
    switch (scale) {
      case Scale::Tiny: return "tiny";
      case Scale::Small: return "small";
      case Scale::Full: return "full";
      case Scale::Huge: return "huge";
    }
    return "?";
}

Scale
scaleFromString(const std::string &name)
{
    std::string s = name;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "tiny")
        return Scale::Tiny;
    if (s == "small")
        return Scale::Small;
    if (s == "full")
        return Scale::Full;
    if (s == "huge")
        return Scale::Huge;
    laperm_fatal("unknown scale '%s' (want tiny|small|full|huge)",
                 name.c_str());
}

void
WorkloadBase::setMemoryBase(Addr base)
{
    laperm_assert(waves_.empty() && mem_.regions().empty(),
                  "setMemoryBase must precede setup()");
    mem_ = BumpAllocator(base);
}

Scale
scaleFromEnv(Scale def)
{
    const char *env = std::getenv("LAPERM_SCALE");
    if (!env || !*env)
        return def;
    return scaleFromString(env);
}

} // namespace laperm
