#include <gtest/gtest.h>

#include "mem/mem_system.hh"

using namespace laperm;

namespace {

GpuConfig
memConfig()
{
    GpuConfig cfg;
    cfg.numSmx = 4;
    cfg.l1Size = 4 * 1024;
    cfg.l1Assoc = 4;
    cfg.l1HitLatency = 30;
    cfg.l2Size = 64 * 1024;
    cfg.l2Assoc = 8;
    cfg.l2HitLatency = 120;
    cfg.l2Banks = 2;
    cfg.l2ServiceInterval = 2;
    cfg.dramLatency = 230;
    cfg.dramServiceInterval = 8;
    return cfg;
}

} // namespace

TEST(MemSystem, ColdLoadGoesToDram)
{
    MemSystem m(memConfig());
    Cycle done = m.load(0, 0, 0);
    // L1 miss -> L2 miss detected after l2HitLatency -> DRAM latency.
    EXPECT_EQ(done, 120u + 230u);
    EXPECT_EQ(m.dram().stats().reads, 1u);
}

TEST(MemSystem, L1HitIsFast)
{
    GpuConfig cfg = memConfig();
    MemSystem m(cfg);
    Cycle fill = m.load(0, 0, 0);
    Cycle hit = m.load(0, 0, fill + 1);
    EXPECT_EQ(hit, fill + 1 + cfg.l1HitLatency);
    EXPECT_EQ(m.l1(0).stats().hits, 1u);
}

TEST(MemSystem, L2HitFromAnotherSmx)
{
    GpuConfig cfg = memConfig();
    MemSystem m(cfg);
    Cycle fill = m.load(0, 0, 0);
    // SMX 1 misses its own L1 but hits the shared L2.
    Cycle done = m.load(1, 0, fill + 1);
    EXPECT_LT(done, fill + 1 + cfg.l2HitLatency + 10);
    EXPECT_EQ(m.l2().stats().hits, 1u);
    EXPECT_EQ(m.dram().stats().reads, 1u); // no second DRAM access
}

TEST(MemSystem, StoreInvalidatesL1OfStoringSmx)
{
    MemSystem m(memConfig());
    Cycle fill = m.load(0, 0, 0);
    EXPECT_TRUE(m.l1(0).contains(0));
    m.store(0, 0, fill + 1);
    EXPECT_FALSE(m.l1(0).contains(0));
}

TEST(MemSystem, StoreAllocatesInL2)
{
    MemSystem m(memConfig());
    m.store(0, 0, 0);
    EXPECT_TRUE(m.l2().contains(0));
    // A later load from any SMX hits L2.
    Cycle done = m.load(2, 0, 1000);
    (void)done;
    EXPECT_EQ(m.l2().stats().hits, 1u);
}

TEST(MemSystem, MshrMergeProducesNoExtraL2Traffic)
{
    MemSystem m(memConfig());
    m.load(0, 0, 0);
    std::uint64_t l2_before = m.l2().stats().accesses;
    m.load(0, 0, 1); // merged into the in-flight fill
    EXPECT_EQ(m.l2().stats().accesses, l2_before);
    EXPECT_EQ(m.l1(0).stats().mshrMerges, 1u);
}

TEST(MemSystem, SmxClusterSharesL1)
{
    GpuConfig cfg = memConfig();
    cfg.smxPerCluster = 2;
    MemSystem m(cfg);
    EXPECT_EQ(m.numL1(), 2u);
    Cycle fill = m.load(0, 0, 0);
    // SMX 1 shares SMX 0's L1.
    m.load(1, 0, fill + 1);
    EXPECT_EQ(m.l1(0).stats().hits, 1u);
}

TEST(MemSystem, ExportStatsShape)
{
    GpuConfig cfg = memConfig();
    MemSystem m(cfg);
    m.load(0, 0, 0);
    GpuStats s;
    m.exportStats(s);
    ASSERT_EQ(s.l1.size(), cfg.numSmx);
    EXPECT_EQ(s.l1[0].misses, 1u);
    EXPECT_EQ(s.l2.misses, 1u);
}
