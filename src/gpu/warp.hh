/**
 * @file
 * Runtime state of one warp resident on an SMX.
 */

#ifndef LAPERM_GPU_WARP_HH
#define LAPERM_GPU_WARP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "kernels/warp_trace.hh"

namespace laperm {

class ThreadBlock;

/** Which WarpScheduler structure currently holds a warp. */
enum class WarpLoc : std::uint8_t
{
    None,    ///< not filed (at a barrier, retired, or not yet added)
    Ready,   ///< in its slot's ready list (readyAt has passed)
    Pending, ///< in its slot's pending heap, keyed by readyAt
};

/** A warp: instruction stream plus scheduling state. */
class Warp
{
  public:
    std::vector<WarpOp> ops;
    std::size_t pc = 0;

    /** Earliest cycle the next op may issue. */
    Cycle readyAt = 0;
    /** Waiting at a TB barrier (not schedulable until release). */
    bool atBarrier = false;
    /** All ops issued and drained; the warp has retired. */
    bool done = false;

    /** Which scheduler structure files this warp (see WarpScheduler). */
    WarpLoc loc = WarpLoc::None;
    /** Index into the ready list while loc == Ready (else unused). */
    std::uint32_t readyIx = 0;

    /** Global dispatch-order stamp; GTO "oldest" tie-break. */
    std::uint64_t age = 0;
    /** Last cycle this warp issued (LRR recency). */
    Cycle lastIssue = 0;
    /** Warp-scheduler slot this warp is pinned to. */
    std::uint32_t slot = 0;
    /** Threads alive in this warp. */
    std::uint32_t numThreads = 0;

    ThreadBlock *tb = nullptr;

    bool finishedOps() const { return pc >= ops.size(); }
};

} // namespace laperm

#endif // LAPERM_GPU_WARP_HH
