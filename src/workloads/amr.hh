/**
 * @file
 * Adaptive Mesh Refinement workload (Table II: combustion simulation).
 */

#ifndef LAPERM_WORKLOADS_AMR_HH
#define LAPERM_WORKLOADS_AMR_HH

#include "workloads/workload.hh"

namespace laperm {

/**
 * Two-level AMR on a 2D field with Gaussian hot spots [27]: cells whose
 * error exceeds a threshold spawn a child TB group refining a subgrid
 * over the parent's cell block; refined patches may refine again
 * (nested launches). Each child writes its own patch, giving the
 * near-zero child-sibling sharing the paper reports for amr.
 */
class AmrWorkload : public WorkloadBase
{
  public:
    std::string app() const override { return "amr"; }
    std::string input() const override { return "combustion"; }
    void setup(Scale scale, std::uint64_t seed) override;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_AMR_HH
