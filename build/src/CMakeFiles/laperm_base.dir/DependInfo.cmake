
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bump_alloc.cc" "src/CMakeFiles/laperm_base.dir/common/bump_alloc.cc.o" "gcc" "src/CMakeFiles/laperm_base.dir/common/bump_alloc.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/laperm_base.dir/common/log.cc.o" "gcc" "src/CMakeFiles/laperm_base.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/laperm_base.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/laperm_base.dir/common/rng.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/laperm_base.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/laperm_base.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/laperm_base.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/laperm_base.dir/sim/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
