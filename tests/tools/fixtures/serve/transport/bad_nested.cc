// sim-lint fixture: a file in a NESTED declared module. The path maps
// to `transport` (last declared component), not the umbrella `serve`,
// so reaching up into the session layer — or sideways through a
// nested include path — must be flagged. Not compiled — parsed by
// test_sim_lint_v2.cc.
#include "common/log.hh"               // declared edge: legal
#include "serve/session/server.hh"     // transport -> session: inverted
#include "serve/client.hh"             // transport -> serve: inverted

void
touchNestedBad()
{
}
