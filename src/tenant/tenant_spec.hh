/**
 * @file
 * Declarative multi-tenant mix specs: N workload streams with open-loop
 * deterministic arrival schedules (simulated cycles, never wall clock),
 * priority classes, and the shared admission/preemption knobs. Parsed
 * from the same TOML subset as machine configs (sim/config_loader
 * grammar: [section], key = value, # comments) and constructible from
 * the builtin mix registry (mixes.hh).
 */

#ifndef LAPERM_TENANT_TENANT_SPEC_HH
#define LAPERM_TENANT_TENANT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workloads/workload.hh"

namespace laperm {
namespace tenant {

/** One workload stream. */
struct TenantSpec
{
    /** Stream name ([tenant.<name>] section header). */
    std::string name;
    /** Table II workload instance, e.g. "bfs-citation". */
    std::string workload;
    Scale scale = Scale::Tiny;
    /** Priority class: 0 = highest; preemption only crosses classes. */
    std::uint32_t priority = 0;
    /** Arrival of job 0 in simulated cycles. */
    Cycle firstArrival = 0;
    /** Open-loop inter-arrival period; job i arrives at
     *  firstArrival + i * period (a late-finishing job delays the next
     *  one: streams are serial). */
    Cycle period = 0;
    /** Jobs in the stream; each job is one full wave sequence. */
    std::uint32_t jobs = 1;
};

/** A complete mix: the tenants plus the shared scheduling knobs. */
struct MixSpec
{
    std::string name;
    std::vector<TenantSpec> tenants;
    /**
     * Warp-occupancy admission threshold in percent (the BEMPS-style
     * compute threshold): a tenant's next kernel is admitted only while
     * resident threads / device thread capacity stays below this, or
     * the device is empty.
     */
    std::uint32_t admissionThresholdPct = 90;
    /** EWMA shift of the TB-runtime predictor (predictor.hh). */
    std::uint32_t ewmaShift = 3;
    /** Scheduling quantum: decision points every this many cycles. */
    Cycle quantum = 2048;
};

/**
 * Parse a mix spec file. Grammar (config_loader TOML subset): one
 * [mix] section for the shared knobs, one [tenant.<name>] section per
 * stream. Unknown sections/keys, duplicate tenants, unknown workload
 * names (structured error listing the valid names) and empty mixes all
 * fail with "<line>: <reason>" in @p err.
 * @return false on error; @p out is only written on success.
 */
bool loadMixToml(const std::string &path, MixSpec &out, std::string &err);

/** As loadMixToml, but from an in-memory string (tests, builtins). */
bool parseMixToml(const std::string &text, MixSpec &out,
                  std::string &err);

} // namespace tenant
} // namespace laperm

#endif // LAPERM_TENANT_TENANT_SPEC_HH
