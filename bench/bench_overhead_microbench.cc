/**
 * @file
 * Section IV-E: hardware overhead microbenchmarks. The paper budgets
 * one cycle for the three-stage dispatch search, up to L cycles for
 * the KMU priority search, and up to 128 cycles for an on-chip queue
 * insert (hidden by TB-group setup). These google-benchmark timings
 * establish that the modeled operations are O(1)/O(L) as the hardware
 * design assumes — and measure the simulator's own costs.
 */

#include <benchmark/benchmark.h>

#include "gpu/gpu.hh"
#include "gpu/kmu.hh"
#include "kernels/lambda_program.hh"
#include "mem/cache.hh"
#include "sched/priority_queues.hh"

using namespace laperm;

namespace {

void
BM_PriorityQueuePushFront(benchmark::State &state)
{
    GpuStats stats;
    PriorityQueues q(5, 0);
    std::vector<DispatchUnit> units(1024);
    for (std::size_t i = 0; i < units.size(); ++i) {
        units[i].priority = static_cast<std::uint32_t>(i % 5);
        units[i].count = 1;
    }
    std::size_t i = 0;
    for (auto _ : state) {
        DispatchUnit &u = units[i++ % units.size()];
        u.nextTb = 0;
        q.push(&u, stats);
        bool blocked;
        benchmark::DoNotOptimize(q.front(0, blocked));
        u.nextTb = u.count;
        q.popIfExhausted(&u);
    }
}
BENCHMARK(BM_PriorityQueuePushFront);

void
BM_KmuPeekUnderBacklog(benchmark::State &state)
{
    // A large CDP backlog must not make admission O(n).
    Kmu kmu;
    auto prog = std::make_shared<LambdaProgram>(
        "k", 1, [](ThreadCtx &c) { c.alu(1); });
    for (int i = 0; i < state.range(0); ++i) {
        PendingLaunch p;
        p.req = {prog, 1, 32};
        p.priority = static_cast<std::uint32_t>(i % 4);
        p.readyAt = 0;
        kmu.push(std::move(p));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(kmu.peekReady(1, true));
}
BENCHMARK(BM_KmuPeekUnderBacklog)->Arg(64)->Arg(4096);

void
BM_CacheLookup(benchmark::State &state)
{
    CacheParams p;
    p.size = 32 * 1024;
    p.assoc = 4;
    Cache c(p);
    Addr line = 0;
    Cycle now = 0;
    for (auto _ : state) {
        auto r = c.lookupLoad(line, now);
        if (!r.hit && !r.mshrMerge)
            c.allocate(line, now, now, false);
        line = (line + kLineBytes) % (1 << 20);
        ++now;
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_WarpTraceBuild(benchmark::State &state)
{
    auto prog = std::make_shared<LambdaProgram>(
        "t", 4, [](ThreadCtx &c) {
            for (std::uint32_t i = 0; i < 8; ++i) {
                c.ld(c.globalThreadIndex() * 4 + i * 4096, 4);
                c.alu(4);
            }
        });
    for (auto _ : state) {
        auto tb = buildThreadBlock(*prog, 0, 128, 1);
        benchmark::DoNotOptimize(tb);
    }
}
BENCHMARK(BM_WarpTraceBuild);

void
BM_GpuSimulatedCycle(benchmark::State &state)
{
    // Wall-clock cost per simulated cycle on a busy Table I device.
    GpuConfig cfg;
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    auto child = std::make_shared<LambdaProgram>(
        "c", 5, [](ThreadCtx &c) {
            c.ld(c.globalThreadIndex() * 128, 4);
            c.alu(20);
        });
    auto parent = std::make_shared<LambdaProgram>(
        "p", 6, [child](ThreadCtx &c) {
            c.alu(40);
            if (c.threadIndex() < 8)
                c.launch({child, 1, 64});
        });

    for (auto _ : state) {
        state.PauseTiming();
        Gpu gpu(cfg);
        gpu.launchHostKernel({parent, 128, 128});
        state.ResumeTiming();
        gpu.runToIdle();
        state.counters["sim_cycles"] = static_cast<double>(
            gpu.stats().cycles);
    }
}
BENCHMARK(BM_GpuSimulatedCycle)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
