/**
 * @file
 * Per-SMX warp scheduling: four scheduler slots (Kepler-style), each
 * picking among its warps with greedy-then-oldest (GTO) or loose
 * round-robin (LRR). LaPerm is deliberately orthogonal to this layer
 * (paper Section IV-F).
 *
 * Warps are partitioned per slot into a *ready* list (readyAt has
 * passed; scanned by pick) and a *pending* min-heap keyed by
 * (readyAt, age) (never scanned; drained into ready as time advances).
 * Barrier-parked warps leave both structures until released. The ready
 * list stores the fields each policy compares (age, lastIssue, TB
 * family) inline, so the selection loop never chases Warp pointers.
 * Selection is a total order over eligible warps (ages are globally
 * unique), so the partition changes scan cost but never the winner.
 */

#ifndef LAPERM_GPU_WARP_SCHEDULER_HH
#define LAPERM_GPU_WARP_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/warp.hh"
#include "sim/config.hh"

namespace laperm {

/**
 * Tracks live warps per scheduler slot and selects the next warp to
 * issue. Warps waiting at barriers or done are never selected.
 */
class WarpScheduler
{
  public:
    WarpScheduler(std::uint32_t num_slots, WarpPolicy policy);

    /** Register a newly dispatched warp (assigned to a slot). */
    void addWarp(Warp *warp);

    /** Remove a retired warp from its slot. */
    void removeWarp(Warp *warp);

    /**
     * Select a warp eligible to issue at @p now from @p slot, honouring
     * the policy; nullptr if none is ready. Drains the slot's pending
     * heap up to @p now first.
     */
    Warp *pick(std::uint32_t slot, Cycle now);

    /** Record that @p warp issued at @p now (updates greedy/recency). */
    void issued(std::uint32_t slot, Warp *warp, Cycle now);

    /**
     * Re-file a ready warp after its readyAt moved forward (an op
     * issued). Files into the pending heap keyed by the new readyAt.
     */
    void requeue(Warp *warp);

    /** Unfile a warp that just blocked on its TB barrier. */
    void parkAtBarrier(Warp *warp);

    /** File a barrier-released warp by its (future) readyAt. */
    void wakeFromBarrier(Warp *warp);

    /** Earliest cycle any warp becomes ready; kNoCycle if none pending. */
    Cycle nextWakeup(Cycle now) const;

    std::uint32_t numSlots() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    std::uint32_t liveWarps() const { return liveWarps_; }

  private:
    /** Hot fields for one ready warp, hoisted out of Warp. */
    struct ReadyEntry
    {
        std::uint64_t age;
        Cycle lastIssue;
        TbUid family; ///< the TB's direct parent (TbAware grouping)
        bool hasTb;   ///< family is meaningful (kNoTb is a real value)
        Warp *warp;
    };

    /** Heap node for one stalled warp, keyed by wakeup time. */
    struct PendingEntry
    {
        Cycle readyAt;
        std::uint64_t age;
        Warp *warp;
    };

    struct Slot
    {
        std::vector<ReadyEntry> ready;
        std::vector<PendingEntry> pending; ///< min-heap (readyAt, age)
        Warp *greedy = nullptr;
    };

    void fileReady(Slot &slot, Warp *warp);
    void filePending(Slot &slot, Warp *warp);
    void eraseReady(Slot &slot, std::uint32_t ix);
    /** Promote every pending warp with readyAt <= @p now to ready. */
    void drainPending(Slot &slot, Cycle now);

    WarpPolicy policy_;
    std::vector<Slot> slots_;
    std::uint64_t nextAssign_ = 0;
    std::uint32_t liveWarps_ = 0;
};

} // namespace laperm

#endif // LAPERM_GPU_WARP_SCHEDULER_HH
