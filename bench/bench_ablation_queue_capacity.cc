/**
 * @file
 * Ablation: on-chip priority-queue capacity (Section IV-E sizes the
 * SRAM at 128 entries/SMX; overflow entries pay a global-memory
 * round-trip before becoming dispatchable).
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"bfs-citation", "clr-cage"};
    const std::uint32_t capacities[] = {8, 32, 128, 1024};

    std::printf("Ablation: on-chip queue entries per SMX "
                "(Adaptive-Bind, DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "entries/SMX", "IPC", "overflows", "cycles"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (std::uint32_t cap : capacities) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            cfg.onchipQueueEntries = cap;
            RunResult r = runOne(*w, cfg);
            t.addRow({name, fmtU(cap), fmtF(r.ipc),
                      fmtF(r.queueOverflows, 0), fmtF(r.cycles, 0)});
        }
        t.addRule();
    }
    t.print();
    std::printf("\npaper: 128 entries/SMX (3KB SRAM, ~1%% of the\n"
                "register-file + shared-memory area) suffice.\n");
    return 0;
}
