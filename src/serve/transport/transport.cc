#include "serve/transport/transport.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace laperm {
namespace serve {

namespace {

bool
fillUnixAddr(const std::string &path, sockaddr_un &addr, std::string &err)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        err = "socket path empty or too long (max " +
              std::to_string(sizeof(addr.sun_path) - 1) + " bytes): '" +
              path + "'";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

/**
 * Resolve the textual host of a tcp: endpoint. Numeric IPv4 via
 * inet_pton plus the one name every smoke test uses; full resolver
 * integration (getaddrinfo) would drag wall-clock DNS into a layer the
 * tests need deterministic.
 */
bool
fillTcpAddr(const Endpoint &ep, sockaddr_in &addr, std::string &err)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    // Explicit host->network byte-order conversion: the port is the
    // one multi-byte integer this transport ever puts on the wire.
    addr.sin_port = htons(ep.port);
    std::string host = ep.host;
    if (host == "localhost")
        host = "127.0.0.1";
    if (host == "*" || host == "0.0.0.0") {
        addr.sin_addr.s_addr = htonl(INADDR_ANY);
        return true;
    }
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        err = "cannot resolve host '" + ep.host +
              "' (use an IPv4 address, 'localhost', or '*')";
        return false;
    }
    return true;
}

int
unixConnectFd(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr, err))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        err = std::string("connect '") + path +
              "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

class FdListener : public Listener
{
  public:
    FdListener(int fd, Endpoint bound, bool unlinkOnClose)
        : fd_(fd), bound_(std::move(bound)),
          unlinkOnClose_(unlinkOnClose)
    {
    }

    ~FdListener() override
    {
        if (fd_ >= 0)
            ::close(fd_);
        if (unlinkOnClose_)
            ::unlink(bound_.path.c_str());
    }

    std::unique_ptr<Connection> accept() override
    {
        for (;;) {
            const int fd = ::accept(fd_, nullptr, nullptr);
            if (fd >= 0)
                return std::make_unique<Connection>(fd);
            if (errno == EINTR)
                continue;
            return nullptr; // woken or fatal
        }
    }

    void wake() override
    {
        // shutdown() forces accept() to return even where a plain
        // close() would leave it blocked.
        ::shutdown(fd_, SHUT_RDWR);
    }

    const Endpoint &boundEndpoint() const override { return bound_; }

  private:
    int fd_;
    Endpoint bound_;
    bool unlinkOnClose_;
};

std::unique_ptr<Listener>
unixListen(const Endpoint &ep, int backlog, std::string &err)
{
    sockaddr_un addr;
    if (!fillUnixAddr(ep.path, addr, err))
        return nullptr;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    bool bound =
        ::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) ==
        0;
    if (!bound && errno == EADDRINUSE) {
        // Distinguish a live daemon from a stale file: only a refused
        // connection proves nobody is listening.
        std::string probeErr;
        int probe = unixConnectFd(ep.path, probeErr);
        if (probe >= 0) {
            ::close(probe);
            ::close(fd);
            err = "socket '" + ep.path + "' already has a listener";
            return nullptr;
        }
        ::unlink(ep.path.c_str());
        bound = ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) == 0;
    }
    if (!bound) {
        err = std::string("bind '") + ep.path +
              "': " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    if (::listen(fd, backlog) < 0) {
        err = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        ::unlink(ep.path.c_str());
        return nullptr;
    }
    return std::make_unique<FdListener>(fd, ep, /*unlinkOnClose=*/true);
}

std::unique_ptr<Listener>
tcpListen(const Endpoint &ep, int backlog, std::string &err)
{
    sockaddr_in addr;
    if (!fillTcpAddr(ep, addr, err))
        return nullptr;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    // A restarted daemon must rebind its port without waiting out the
    // previous incarnation's TIME_WAIT sockets.
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        err = "bind '" + ep.toString() + "': " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    if (::listen(fd, backlog) < 0) {
        err = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    // Report the port the kernel actually assigned (ephemeral binds
    // pass port 0); network->host conversion is again explicit.
    Endpoint bound = ep;
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual), &len) ==
        0) {
        bound.port = ntohs(actual.sin_port);
    }
    return std::make_unique<FdListener>(fd, std::move(bound),
                                        /*unlinkOnClose=*/false);
}

} // namespace

Connection::Connection(int fd) : fd_(fd) {}

Connection::~Connection()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Connection::writeAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Connection::readLine(std::string &line)
{
    for (;;) {
        const std::size_t nl = carry_.find('\n');
        if (nl != std::string::npos) {
            line = carry_.substr(0, nl);
            carry_.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // includes recv-timeout (EAGAIN)
        }
        if (n == 0)
            return false; // EOF mid-frame
        carry_.append(buf, static_cast<std::size_t>(n));
    }
}

bool
Connection::setRecvTimeout(std::uint64_t ms)
{
    timeval tv;
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
           0;
}

void
Connection::shutdownBoth()
{
    ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<Listener>
listenOn(const Endpoint &ep, int backlog, std::string &err)
{
    if (ep.kind == Endpoint::Kind::Unix)
        return unixListen(ep, backlog, err);
    return tcpListen(ep, backlog, err);
}

std::unique_ptr<Connection>
connectTo(const Endpoint &ep, std::string &err)
{
    if (ep.kind == Endpoint::Kind::Unix) {
        const int fd = unixConnectFd(ep.path, err);
        return fd < 0 ? nullptr : std::make_unique<Connection>(fd);
    }
    sockaddr_in addr;
    if (!fillTcpAddr(ep, addr, err))
        return nullptr;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        err = "connect '" + ep.toString() +
              "': " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    // Request/response frames are small; never batch them behind
    // Nagle's algorithm.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<Connection>(fd);
}

} // namespace serve
} // namespace laperm
