#include "gpu/trace.hh"

#include <cstdio>

#include "gpu/gpu.hh"

namespace laperm {

DispatchTrace::DispatchTrace(Gpu &gpu)
{
    gpu.setDispatchHook(&DispatchTrace::hook, this);
}

void
DispatchTrace::hook(void *ctx, const ThreadBlock &tb)
{
    auto *self = static_cast<DispatchTrace *>(ctx);
    self->events_.push_back({tb.uid, tb.kernel ? tb.kernel->id : 0,
                             tb.tbIndex, tb.smx, tb.dispatchCycle,
                             tb.priority, tb.isDynamic,
                             tb.directParent});
}

bool
DispatchTrace::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "uid,kernel,tbIndex,smx,cycle,priority,dynamic,"
                    "parent\n");
    for (const DispatchEvent &e : events_) {
        std::fprintf(f, "%llu,%u,%u,%u,%llu,%u,%d,",
                     static_cast<unsigned long long>(e.uid), e.kernel,
                     e.tbIndex, e.smx,
                     static_cast<unsigned long long>(e.cycle),
                     e.priority, e.isDynamic ? 1 : 0);
        if (e.directParent == kNoTb)
            std::fprintf(f, "-\n");
        else
            std::fprintf(f, "%llu\n",
                         static_cast<unsigned long long>(e.directParent));
    }
    std::fclose(f);
    return true;
}

} // namespace laperm
