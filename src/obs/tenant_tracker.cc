#include "obs/tenant_tracker.hh"

#include "common/log.hh"

namespace laperm {
namespace obs {

namespace {
const TenantCounters kZeroCounters{};
} // namespace

TenantCounters &
TenantTracker::slot(std::uint32_t tenant)
{
    if (tenant >= perTenant_.size())
        perTenant_.resize(tenant + 1);
    return perTenant_[tenant];
}

const TenantCounters &
TenantTracker::counters(std::uint32_t tenant) const
{
    if (tenant >= perTenant_.size())
        return kZeroCounters;
    return perTenant_[tenant];
}

void
TenantTracker::onTbDispatch(const TbEvent &e)
{
    ++slot(e.tenant).dispatchedTbs;
}

void
TenantTracker::onTbRetire(const TbEvent &e)
{
    TenantCounters &c = slot(e.tenant);
    ++c.retiredTbs;
    laperm_assert(c.outstandingTbs > 0, "tenant retired-TB underflow");
    --c.outstandingTbs;
    if (c.outstandingTbs == 0 && c.pendingLaunches == 0)
        c.lastDrainCycle = e.cycle;
}

void
TenantTracker::onLaunchQueued(const LaunchEvent &e)
{
    ++slot(e.tenant).pendingLaunches;
}

void
TenantTracker::onLaunchAdmitted(const LaunchEvent &e)
{
    TenantCounters &c = slot(e.tenant);
    c.outstandingTbs += e.numTbs;
    ++c.kernelsAdmitted;
    if (e.isDevice) {
        laperm_assert(c.pendingLaunches > 0,
                      "tenant pending-launch underflow");
        --c.pendingLaunches;
    }
}

} // namespace obs
} // namespace laperm
