# Empty compiler generated dependencies file for bench_ablation_queue_capacity.
# This may be replaced when dependencies are built.
