#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace laperm;

namespace {

GpuConfig
dramConfig()
{
    GpuConfig cfg;
    cfg.dramChannels = 1;
    cfg.dramBanksPerChannel = 1; // single bank: deterministic queueing
    cfg.dramLatency = 100;
    cfg.dramServiceInterval = 10;
    return cfg;
}

} // namespace

TEST(Dram, UncontendedLatency)
{
    Dram d(dramConfig());
    EXPECT_EQ(d.read(0, 50), 150u);
}

TEST(Dram, BankQueueing)
{
    Dram d(dramConfig());
    Cycle first = d.read(0, 0);
    Cycle second = d.read(kLineBytes, 0); // same (only) bank
    EXPECT_EQ(first, 100u);
    EXPECT_EQ(second, 110u); // starts after the service interval
    EXPECT_EQ(d.stats().totalQueueCycles, 10u);
}

TEST(Dram, WritesConsumeBandwidth)
{
    Dram d(dramConfig());
    d.write(0, 0);
    Cycle r = d.read(kLineBytes, 0);
    EXPECT_EQ(r, 110u); // queued behind the write
    EXPECT_EQ(d.stats().writes, 1u);
    EXPECT_EQ(d.stats().reads, 1u);
}

TEST(Dram, MultiBankParallelism)
{
    GpuConfig cfg = dramConfig();
    cfg.dramBanksPerChannel = 8;
    Dram d(cfg);
    // Requests to different banks do not queue on each other.
    Cycle worst = 0;
    for (Addr i = 0; i < 8; ++i)
        worst = std::max(worst, d.read(i * kLineBytes, 0));
    // With 8 banks at least some pair must have proceeded in parallel:
    // the worst completion is far below fully serialized service.
    EXPECT_LT(worst, 100u + 8 * 10u);
}

TEST(Dram, ResetClearsQueues)
{
    Dram d(dramConfig());
    d.read(0, 0);
    d.reset();
    EXPECT_EQ(d.read(0, 0), 100u);
    EXPECT_EQ(d.stats().reads, 1u);
}
