#include "gpu/thread_block.hh"

#include "common/log.hh"
#include "kernels/thread_ctx.hh"
#include "kernels/warp_trace.hh"

namespace laperm {

void
buildThreadBlockInto(ThreadBlock &tb, const KernelProgram &program,
                     std::uint32_t tb_index, std::uint32_t threads_per_tb,
                     std::uint32_t num_tbs,
                     std::vector<ThreadCtx> &thread_scratch)
{
    laperm_assert(threads_per_tb > 0, "empty TB");

    tb.uid = 0;
    tb.kernel = nullptr;
    tb.tbIndex = tb_index;
    tb.smx = kNoSmx;
    tb.dispatchCycle = 0;
    tb.priority = 0;
    tb.directParent = kNoTb;
    tb.isDynamic = false;
    tb.tenant = 0;
    tb.numThreads = threads_per_tb;
    tb.regs = program.regsPerThread() * threads_per_tb;
    tb.smem = program.smemPerTb();
    tb.warpsAtBarrier = 0;
    tb.warpsDone = 0;

    for (std::uint32_t t = 0; t < threads_per_tb; ++t) {
        if (t < thread_scratch.size())
            thread_scratch[t].reset(tb_index, t, threads_per_tb, num_tbs);
        else
            thread_scratch.emplace_back(tb_index, t, threads_per_tb,
                                        num_tbs);
        program.emitThread(thread_scratch[t]);
    }

    const std::uint32_t num_warps =
        (threads_per_tb + kWarpSize - 1) / kWarpSize;
    tb.warps.resize(num_warps);
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        std::uint32_t first = w * kWarpSize;
        std::uint32_t count =
            std::min(kWarpSize, threads_per_tb - first);
        Warp &warp = tb.warps[w];
        buildWarpOpsInto(warp.ops, thread_scratch, first, count);
        warp.pc = 0;
        warp.readyAt = 0;
        warp.atBarrier = false;
        warp.done = false;
        warp.loc = WarpLoc::None;
        warp.readyIx = 0;
        warp.age = 0;
        warp.lastIssue = 0;
        warp.slot = 0;
        warp.numThreads = count;
        warp.tb = &tb;
    }
}

std::unique_ptr<ThreadBlock>
buildThreadBlock(const KernelProgram &program, std::uint32_t tb_index,
                 std::uint32_t threads_per_tb, std::uint32_t num_tbs)
{
    auto tb = std::make_unique<ThreadBlock>();
    std::vector<ThreadCtx> threads;
    threads.reserve(threads_per_tb);
    buildThreadBlockInto(*tb, program, tb_index, threads_per_tb, num_tbs,
                         threads);
    return tb;
}

} // namespace laperm
