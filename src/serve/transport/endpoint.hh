/**
 * @file
 * Serve-layer endpoint addresses (DESIGN.md §15.1). One Endpoint names
 * one place a listener can bind or a client can connect:
 *
 *   unix:PATH            Unix-domain stream socket
 *   tcp:HOST:PORT        TCP socket (IPv4 dotted quad or "localhost")
 *
 * A bare string with no scheme is accepted as a Unix path so every
 * pre-cluster invocation (`--socket laperm_served.sock`) keeps
 * working. Parsing is checked: a malformed endpoint is reported, never
 * half-applied (same stance as tools/cli_parse.hh).
 */

#ifndef LAPERM_SERVE_TRANSPORT_ENDPOINT_HH
#define LAPERM_SERVE_TRANSPORT_ENDPOINT_HH

#include <cstdint>
#include <string>

namespace laperm {
namespace serve {

struct Endpoint
{
    enum class Kind
    {
        Unix,
        Tcp,
    };

    Kind kind = Kind::Unix;
    std::string path;       ///< Unix socket path (Kind::Unix)
    std::string host;       ///< TCP host (Kind::Tcp)
    std::uint16_t port = 0; ///< TCP port; 0 = ephemeral (tests/bench)

    /** Canonical "unix:PATH" / "tcp:HOST:PORT" spelling. */
    std::string toString() const;

    /** Convenience constructors. */
    static Endpoint unixAt(std::string p);
    static Endpoint tcpAt(std::string host, std::uint16_t port);

    bool operator==(const Endpoint &o) const
    {
        return kind == o.kind && path == o.path && host == o.host &&
               port == o.port;
    }
};

/**
 * Parse "unix:PATH", "tcp:HOST:PORT", or a bare Unix path into @p out.
 * False with a diagnostic in @p err on malformed input (empty path,
 * missing or non-numeric port, port > 65535, empty host).
 */
bool parseEndpoint(const std::string &text, Endpoint &out,
                   std::string &err);

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_TRANSPORT_ENDPOINT_HH
