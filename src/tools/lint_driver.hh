/**
 * @file
 * sim-lint driver (DESIGN.md §12.5): orchestrates the four analysis
 * passes over a file set, applies allow() suppressions and audits
 * them, applies the committed baseline, and renders reports (text +
 * SARIF 2.1.0).
 *
 * Pipeline per run:
 *   1. load files (explicit list, or every source under <root>/src);
 *   2. token pass, layering pass (when a spec is present), cycle-
 *      safety pass, event-discipline pass — each timed;
 *   3. suppression: drop findings covered by allow()/allow-file()
 *      markers; every marker that suppressed nothing becomes an
 *      unused-allow finding (waivers cannot rot silently);
 *   4. baseline: drop findings matching committed baseline entries
 *      (rule + path + squeezed line text — line-number-insensitive so
 *      unrelated edits do not churn the file); every entry matching
 *      nothing becomes a stale-baseline finding (burn-down is
 *      enforced, not hoped for);
 *   5. sort findings (path, line, rule) and optionally write SARIF.
 *
 * The driver is deterministic: same tree, same spec, same baseline —
 * byte-identical output, independent of directory iteration order.
 */

#ifndef LAPERM_TOOLS_LINT_DRIVER_HH
#define LAPERM_TOOLS_LINT_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tools/sim_lint.hh"

namespace laperm {
namespace simlint {

struct PassTiming
{
    std::string pass;          ///< "token", "layering", ...
    std::uint64_t micros = 0;  ///< wall time (reporting only)
    std::size_t findings = 0;  ///< raw findings before suppression
};

struct DriverOptions
{
    /** Repo root; files default to <root>/src when none are given. */
    std::string root = ".";
    /** Explicit file list (e.g. from --diff); empty = scan root/src. */
    std::vector<std::string> files;
    /**
     * Layering spec path. Empty = use <root>/layering.toml when it
     * exists, else skip the layering pass.
     */
    std::string layeringSpec;
    /**
     * Baseline path. Empty = use <root>/sim_lint_baseline.tsv when it
     * exists, else no baseline.
     */
    std::string baselinePath;
    /** When set, write SARIF 2.1.0 to this path. */
    std::string sarifPath;
    /**
     * When set, skip baseline application and instead write the
     * current (post-suppression, non-audit) findings to this path in
     * baseline format — the burn-down bootstrap.
     */
    std::string writeBaselinePath;
    /** Skip the unused-suppression audit (fixture debugging only). */
    bool audit = true;
};

struct DriverResult
{
    /** Final findings, sorted by (path, line, rule). */
    std::vector<Finding> findings;
    std::vector<PassTiming> timings;
    std::size_t filesScanned = 0;
    /** Baseline entries consumed by a matching finding. */
    std::size_t baselineMatched = 0;
    /** Non-empty on configuration/IO error (CLI exit 2). */
    std::string error;
};

/** Run the full pipeline. */
DriverResult runDriver(const DriverOptions &opts);

/**
 * Baseline entry serialization for one finding:
 *   <rule>\t<path relative to root>\t<squeezed flagged line>
 */
std::string baselineKey(const Finding &f, const std::string &flaggedLine,
                        const std::string &root);

/** Render findings as one baseline file (sorted, with header). */
std::string renderBaseline(const std::vector<std::string> &keys);

/** Write SARIF 2.1.0. Returns false on IO error. */
bool writeSarif(const std::string &path,
                const std::vector<Finding> &findings,
                const std::string &root);

/** @p path relative to @p root when it is inside it (else unchanged). */
std::string relativeToRoot(const std::string &path,
                           const std::string &root);

} // namespace simlint
} // namespace laperm

#endif // LAPERM_TOOLS_LINT_DRIVER_HH
