/**
 * @file
 * Base class for kernel programs: the simulator-facing equivalent of a
 * compiled CUDA kernel function.
 */

#ifndef LAPERM_KERNELS_KERNEL_PROGRAM_HH
#define LAPERM_KERNELS_KERNEL_PROGRAM_HH

#include <cstdint>
#include <string>

#include "kernels/isa.hh"

namespace laperm {

class ThreadCtx;

/**
 * A kernel function. Workloads subclass this once per kernel; instances
 * may carry per-launch parameters (the equivalent of kernel arguments),
 * while functionId() identifies the underlying function for DTBL
 * configuration matching.
 */
class KernelProgram
{
  public:
    virtual ~KernelProgram() = default;

    /** Human-readable kernel name. */
    virtual std::string name() const = 0;

    /**
     * Identity of the kernel *function* (not the launch). DTBL coalesces
     * TB groups onto KDU kernels with equal functionId and TB size.
     */
    virtual std::uint32_t functionId() const = 0;

    /** Registers per thread (occupancy limiter). */
    virtual std::uint32_t regsPerThread() const { return 32; }

    /** Shared memory per TB in bytes (occupancy limiter). */
    virtual std::uint32_t smemPerTb() const { return 0; }

    /**
     * Emit the op trace of one thread into @p ctx. Must be deterministic
     * and const: the same (tbIndex, threadIndex) always produces the
     * same trace, so traces can be regenerated per scheduling policy.
     */
    virtual void emitThread(ThreadCtx &ctx) const = 0;
};

/** Process-wide unique function-id source for workload kernels. */
std::uint32_t allocateFunctionId();

} // namespace laperm

#endif // LAPERM_KERNELS_KERNEL_PROGRAM_HH
