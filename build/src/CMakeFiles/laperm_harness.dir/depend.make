# Empty dependencies file for laperm_harness.
# This may be replaced when dependencies are built.
