/**
 * @file
 * Per-SMX warp scheduling: four scheduler slots (Kepler-style), each
 * picking among its warps with greedy-then-oldest (GTO) or loose
 * round-robin (LRR). LaPerm is deliberately orthogonal to this layer
 * (paper Section IV-F).
 */

#ifndef LAPERM_GPU_WARP_SCHEDULER_HH
#define LAPERM_GPU_WARP_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/warp.hh"
#include "sim/config.hh"

namespace laperm {

/**
 * Tracks live warps per scheduler slot and selects the next warp to
 * issue. Warps waiting at barriers or done are never selected.
 */
class WarpScheduler
{
  public:
    WarpScheduler(std::uint32_t num_slots, WarpPolicy policy);

    /** Register a newly dispatched warp (assigned to a slot). */
    void addWarp(Warp *warp);

    /** Remove a retired warp from its slot. */
    void removeWarp(Warp *warp);

    /**
     * Select a warp eligible to issue at @p now from @p slot, honouring
     * the policy; nullptr if none is ready.
     */
    Warp *pick(std::uint32_t slot, Cycle now);

    /** Record that @p warp issued at @p now (updates greedy/recency). */
    void issued(std::uint32_t slot, Warp *warp, Cycle now);

    /** Earliest cycle any warp becomes ready; kNoCycle if none pending. */
    Cycle nextWakeup(Cycle now) const;

    std::uint32_t numSlots() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    std::uint32_t liveWarps() const { return liveWarps_; }

  private:
    struct Slot
    {
        std::vector<Warp *> warps;
        Warp *greedy = nullptr;
    };

    bool eligible(const Warp *warp, Cycle now) const
    {
        return !warp->done && !warp->atBarrier && warp->readyAt <= now;
    }

    WarpPolicy policy_;
    std::vector<Slot> slots_;
    std::uint64_t nextAssign_ = 0;
    std::uint32_t liveWarps_ = 0;
};

} // namespace laperm

#endif // LAPERM_GPU_WARP_SCHEDULER_HH
