/**
 * @file
 * sim-lint CLI. Usage:
 *
 *   sim_lint [--root <dir>] [file...]
 *
 * With explicit files, lints exactly those. Otherwise scans every
 * .hh/.cc under <root>/src (default root "."). Exit status: 0 when
 * clean, 1 when findings were reported, 2 on usage/IO errors.
 * Invoked by scripts/lint.sh and the verify pipeline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "tools/sim_lint.hh"

int
main(int argc, char **argv)
{
    using namespace laperm::simlint;

    std::string root = ".";
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "sim-lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: sim_lint [--root <dir>] [file...]\n");
            return 0;
        } else {
            files.push_back(arg);
        }
    }

    std::vector<Finding> findings;
    std::size_t scanned = 0;
    if (files.empty()) {
        scanned = lintTree(root + "/src", findings);
        if (scanned == 0) {
            std::fprintf(stderr,
                         "sim-lint: no sources found under %s/src\n",
                         root.c_str());
            return 2;
        }
    } else {
        for (const auto &f : files) {
            if (!lintFile(f, findings)) {
                std::fprintf(stderr, "sim-lint: cannot read %s\n",
                             f.c_str());
                return 2;
            }
            ++scanned;
        }
    }

    for (const auto &f : findings) {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                     ruleName(f.rule), f.message.c_str());
    }
    std::printf("sim-lint: %zu files scanned, %zu finding%s\n", scanned,
                findings.size(), findings.size() == 1 ? "" : "s");
    return findings.empty() ? 0 : 1;
}
