/**
 * @file
 * Named hardware presets (DESIGN.md §13.4). Each preset is a complete
 * GpuConfig for a real machine, spanning the Kepler -> Volta
 * generations used by the cross-generation study in EXPERIMENTS.md.
 *
 * Presets change *geometry* (SMX count, cache sizes, DRAM bandwidth,
 * residency and KDU limits) and deliberately keep the K20c-era access
 * latencies, the paper's launch costs, and the LaPerm queue hardware
 * fixed, so cross-preset comparisons isolate the scaling question
 * ("what happens to locality-aware scheduling as the machine grows")
 * from retimed-everything noise. The arithmetic behind each derived
 * value is spelled out in DESIGN.md §13.4.
 *
 * The "k20c" preset is defined as a default-constructed GpuConfig and
 * a test pins machineHash(presetConfig("k20c")) == defaultMachineHash()
 * so the paper's Table I machine can never drift.
 */

#ifndef LAPERM_SIM_PRESETS_HH
#define LAPERM_SIM_PRESETS_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace laperm {

/** One named machine preset. */
struct PresetInfo
{
    const char *name;        ///< CLI / wire name (e.g. "v100")
    const char *description; ///< one-line hardware summary
};

/** All presets, oldest generation first. */
std::vector<PresetInfo> presets();

/** True and fills @p out if @p name is a known preset. */
bool findPreset(const std::string &name, GpuConfig &out);

/** Preset config by name; fatal() on an unknown name (CLI-checked). */
GpuConfig presetConfig(const std::string &name);

/** Comma-separated preset names for usage/error text. */
std::string presetNameList();

} // namespace laperm

#endif // LAPERM_SIM_PRESETS_HH
