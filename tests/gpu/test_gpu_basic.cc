#include <gtest/gtest.h>

#include "test_util.hh"

using namespace laperm;
using namespace laperm::test;

namespace {

/** A parent kernel whose thread 0 of each TB launches children. */
LaunchRequest
nestedLaunch(std::uint32_t parent_tbs, std::uint32_t children_per_tb,
             std::uint32_t child_tbs)
{
    auto child = std::make_shared<LambdaProgram>(
        "child", allocateFunctionId(), [](ThreadCtx &c) {
            c.ld(c.globalThreadIndex() * 4, 4);
            c.alu(8);
        });
    auto parent = std::make_shared<LambdaProgram>(
        "parent", allocateFunctionId(),
        [child, children_per_tb, child_tbs](ThreadCtx &c) {
            c.alu(16);
            if (c.threadIndex() < children_per_tb)
                c.launch({child, child_tbs, 32});
        });
    return {parent, parent_tbs, 32};
}

} // namespace

TEST(GpuBasic, HostKernelDrains)
{
    Gpu gpu(tinyConfig());
    auto prog = std::make_shared<LambdaProgram>(
        "k", allocateFunctionId(), [](ThreadCtx &c) { c.alu(5); });
    gpu.launchHostKernel({prog, 16, 32});
    gpu.runToIdle();
    EXPECT_EQ(gpu.activeTbs(), 0u);
    EXPECT_EQ(gpu.undispatchedTbs(), 0u);
    EXPECT_EQ(gpu.stats().kernelsLaunched, 1u);
}

TEST(GpuBasic, DeviceLaunchesExecuteAllChildTbs)
{
    for (DynParModel model : {DynParModel::CDP, DynParModel::DTBL}) {
        GpuConfig cfg = tinyConfig();
        cfg.dynParModel = model;
        Gpu gpu(cfg);
        gpu.launchHostKernel(nestedLaunch(4, 2, 3));
        gpu.runToIdle();
        const GpuStats &s = gpu.stats();
        EXPECT_EQ(s.deviceLaunches, 8u) << toString(model);
        EXPECT_EQ(s.dynamicTbs, 24u) << toString(model);
        std::uint64_t dyn_tbs = 0;
        for (const auto &smx : s.smx)
            dyn_tbs += smx.dynamicTbsExecuted;
        EXPECT_EQ(dyn_tbs, 24u) << toString(model);
    }
}

TEST(GpuBasic, DtblCoalescesOntoMatchingKernel)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    Gpu gpu(cfg);
    gpu.launchHostKernel(nestedLaunch(4, 2, 3));
    gpu.runToIdle();
    const GpuStats &s = gpu.stats();
    // The first child launch creates a device kernel; subsequent ones
    // coalesce while it is still running.
    EXPECT_GT(s.dtblCoalesced, 0u);
    EXPECT_LT(s.kernelsLaunched, 1u + 8u);
}

TEST(GpuBasic, CdpCreatesOneKernelPerLaunch)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    Gpu gpu(cfg);
    gpu.launchHostKernel(nestedLaunch(4, 2, 3));
    gpu.runToIdle();
    EXPECT_EQ(gpu.stats().kernelsLaunched, 1u + 8u);
    EXPECT_EQ(gpu.stats().dtblCoalesced, 0u);
}

TEST(GpuBasic, CdpLaunchLatencyDelaysChildren)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    cfg.cdpLaunchLatency = 50;
    Gpu fast(cfg);
    fast.launchHostKernel(nestedLaunch(2, 1, 1));
    fast.runToIdle();

    cfg.cdpLaunchLatency = 5000;
    Gpu slow(cfg);
    slow.launchHostKernel(nestedLaunch(2, 1, 1));
    slow.runToIdle();

    EXPECT_GT(slow.stats().cycles, fast.stats().cycles + 4000);
}

TEST(GpuBasic, KduLimitSerializesCdpKernels)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::CDP;
    cfg.kduEntries = 2; // host kernel + one device kernel at a time
    Gpu gpu(cfg);
    gpu.launchHostKernel(nestedLaunch(8, 2, 1)); // 16 device kernels
    gpu.runToIdle();
    EXPECT_GT(gpu.stats().kduFullStalls, 0u);
    EXPECT_EQ(gpu.stats().dynamicTbs, 16u); // still all executed
}

TEST(GpuBasic, MultipleWavesRunInOrder)
{
    Gpu gpu(tinyConfig());
    auto prog = std::make_shared<LambdaProgram>(
        "w", allocateFunctionId(), [](ThreadCtx &c) { c.alu(5); });
    std::vector<LaunchRequest> waves = {{prog, 4, 32}, {prog, 4, 32}};
    gpu.runWaves(waves);
    EXPECT_EQ(gpu.stats().kernelsLaunched, 2u);
}

TEST(GpuBasic, NestedLaunchDepthClampsPriority)
{
    GpuConfig cfg = tinyConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.maxPriorityLevels = 2;
    cfg.tbPolicy = TbPolicy::TbPri;

    // Three levels of nesting: priorities must be 0, 1, 2, 2.
    auto l3 = std::make_shared<LambdaProgram>(
        "l3", allocateFunctionId(), [](ThreadCtx &c) { c.alu(1); });
    auto l2 = std::make_shared<LambdaProgram>(
        "l2", allocateFunctionId(), [l3](ThreadCtx &c) {
            c.alu(1);
            if (c.threadIndex() == 0)
                c.launch({l3, 1, 32});
        });
    auto l1 = std::make_shared<LambdaProgram>(
        "l1", allocateFunctionId(), [l2](ThreadCtx &c) {
            c.alu(1);
            if (c.threadIndex() == 0)
                c.launch({l2, 1, 32});
        });
    auto l0 = std::make_shared<LambdaProgram>(
        "l0", allocateFunctionId(), [l1](ThreadCtx &c) {
            c.alu(1);
            if (c.threadIndex() == 0)
                c.launch({l1, 1, 32});
        });

    Gpu gpu(cfg);
    DispatchRecorder rec(gpu);
    gpu.launchHostKernel({l0, 1, 32});
    gpu.runToIdle();

    ASSERT_EQ(rec.records.size(), 4u);
    std::vector<std::uint32_t> prios;
    for (const auto &r : rec.records)
        prios.push_back(r.priority);
    std::sort(prios.begin(), prios.end());
    EXPECT_EQ(prios, (std::vector<std::uint32_t>{0, 1, 2, 2}));
}

TEST(GpuBasic, StatsIpcPositive)
{
    Gpu gpu(tinyConfig());
    auto prog = std::make_shared<LambdaProgram>(
        "k", allocateFunctionId(), [](ThreadCtx &c) {
            c.alu(4);
            c.ld(c.globalThreadIndex() * 4);
        });
    gpu.launchHostKernel({prog, 8, 64});
    gpu.runToIdle();
    EXPECT_GT(gpu.stats().ipc(), 0.0);
}
