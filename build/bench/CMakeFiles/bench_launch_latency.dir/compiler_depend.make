# Empty compiler generated dependencies file for bench_launch_latency.
# This may be replaced when dependencies are built.
