/**
 * @file
 * sim-lint: simulator-specific determinism lints that clang-tidy cannot
 * express. The simulator's headline numbers (Fig. 9 IPC deltas) are only
 * trustworthy if a run is bit-deterministic, and the parallel sweep
 * harness further requires byte-identical TSV output at any worker
 * count. These rules statically ban the constructs that historically
 * break that property:
 *
 *  - banned-rng       std::rand / <random> engines anywhere outside
 *                     common/rng.hh (the seedable xoshiro256** wrapper).
 *                     std::mt19937 distributions are implementation-
 *                     defined, so results would differ across stdlibs.
 *  - wall-clock       system/steady/high_resolution_clock, time(),
 *                     gettimeofday, std::chrono in simulator code.
 *                     Model time is GpuConfig-driven cycles; wall time
 *                     makes runs irreproducible.
 *  - unordered-iter   iteration over std::unordered_{map,set} in
 *                     simulator code. Bucket order is unspecified, so
 *                     any result-affecting traversal is nondeterministic
 *                     across stdlib versions (and across inserts).
 *  - fp-accum         += / -= into a float/double accumulator in
 *                     simulator code without a documented ordering.
 *                     FP addition is non-associative; reordered sums
 *                     change low bits, which the byte-identical TSV
 *                     contract turns into failures.
 *
 * Scoping: the wall-clock / unordered-iter / fp-accum rules apply only
 * to "restricted" simulator directories (sim, sched, mem, gpu, dynpar);
 * harness and bench code legitimately measures wall time. banned-rng
 * applies everywhere except common/rng.{hh,cc} itself.
 *
 * v2 grows the four token rules into a multi-pass analyzer
 * (DESIGN.md §12):
 *
 *  - layering       include-graph pass enforcing the declared module
 *                   DAG in layering.toml (lint_layering.hh)
 *  - cycle-float /  cycle-safety pass keeping integer-cycle timing
 *    cycle-narrow /  integer end-to-end (lint_cycle.hh)
 *    cycle-sign
 *  - event-past /   event-discipline pass for EventQueue call sites
 *    event-kind /    (lint_event.hh)
 *    event-tick
 *  - unused-allow   suppression audit: an allow() marker that no
 *                   longer suppresses anything is itself a finding
 *  - stale-baseline a baseline entry that matches no current finding
 *
 * The passes are orchestrated by lint_driver.hh, which also applies
 * the committed baseline (sim_lint_baseline.tsv) and emits SARIF.
 *
 * Suppression: a finding on line N is suppressed if line N or N-1
 * contains "sim-lint: allow(<rule>)" — always with a reason in the
 * surrounding comment. "sim-lint: allow-file(<rule>)" anywhere in the
 * file disables the rule for the whole file. The audit rules
 * (unused-allow, stale-baseline) are not suppressible: waivers must
 * not be able to waive the waiver check.
 */

#ifndef LAPERM_TOOLS_SIM_LINT_HH
#define LAPERM_TOOLS_SIM_LINT_HH

#include <string>
#include <vector>

namespace laperm {
namespace simlint {

enum class Rule
{
    // token pass (v1)
    BannedRng,
    WallClock,
    UnorderedIter,
    FpAccum,
    // layering pass
    Layering,
    // cycle-safety pass
    CycleFloat,
    CycleNarrow,
    CycleSign,
    // event-discipline pass
    EventPast,
    EventKind,
    EventTick,
    // audit rules (never suppressible)
    UnusedAllow,
    StaleBaseline,
};

/** Stable kebab-case name used in reports and allow() comments. */
const char *ruleName(Rule rule);

/** Parse a kebab-case rule name. Returns false if unknown. */
bool ruleFromName(const std::string &name, Rule &out);

struct Finding
{
    std::string path;
    std::size_t line = 0; ///< 1-based
    Rule rule = Rule::BannedRng;
    std::string message;
};

/** A "sim-lint: allow(...)" / "allow-file(...)" marker in a file. */
struct Allow
{
    std::size_t line = 0; ///< 1-based line the marker sits on
    Rule rule = Rule::BannedRng;
    bool fileWide = false; ///< allow-file(...) form
    bool used = false;     ///< set once it suppresses a finding
};

/** How a file's path scopes the rule set. */
struct FileScope
{
    bool restricted = false; ///< under sim/sched/mem/gpu/dynpar
    bool rngExempt = false;  ///< common/rng.{hh,cc} itself
};

/** Classify @p path by its components (separator-normalized). */
FileScope classifyPath(const std::string &path);

/**
 * Strip comments and string/char literals while preserving line
 * structure (findings keep their line numbers; a banned token inside a
 * doc comment or log string never fires). Shared by every pass.
 */
std::string stripCommentsAndStrings(const std::string &src);

/**
 * Strip comments only, preserving string/char literals and line
 * structure. The layering pass needs this: `#include "mem/cache.hh"`
 * paths are string literals and would vanish under the full strip.
 */
std::string stripComments(const std::string &src);

/** Split @p s on '\n' (a trailing fragment counts as a line). */
std::vector<std::string> splitLines(const std::string &s);

/** Collect every allow()/allow-file() marker from raw source lines. */
std::vector<Allow> collectAllows(const std::vector<std::string> &rawLines);

/**
 * Token-rule pass *without* suppression: every raw finding, including
 * ones an allow() marker covers. The driver applies suppression so it
 * can audit which markers actually fire.
 */
std::vector<Finding> scanTokenRules(const std::string &path,
                                    const std::string &content);

/**
 * Drop findings covered by an allow marker (same rule; file-wide, or
 * on the finding's line or the line above). Consumed markers get
 * used=true — the input to the unused-suppression audit. Audit rules
 * are never suppressed.
 */
std::vector<Finding> applySuppressions(std::vector<Finding> findings,
                                       std::vector<Allow> &allows);

/**
 * Lint one translation unit given its contents (token rules only,
 * suppressions applied — the v1 behaviour). Comments, string and
 * character literals are stripped before pattern matching (a mention of
 * mt19937 in a doc comment is not a violation), but allow() markers are
 * honoured from the raw text.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Lint a file on disk. Returns false if it cannot be read. */
bool lintFile(const std::string &path, std::vector<Finding> &out);

/**
 * Sorted list of every .hh/.cc/.hpp/.cpp under @p root (deterministic
 * scan order — the linter holds itself to the bar it enforces).
 */
std::vector<std::string> listSources(const std::string &root);

/**
 * Recursively lint every .hh/.cc under @p root in sorted path order
 * (the linter is itself deterministic). Returns the number of files
 * scanned.
 */
std::size_t lintTree(const std::string &root, std::vector<Finding> &out);

} // namespace simlint
} // namespace laperm

#endif // LAPERM_TOOLS_SIM_LINT_HH
