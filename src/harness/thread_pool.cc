#include "harness/thread_pool.hh"

#include <cstdlib>

namespace laperm {

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    threads_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                idleCv_.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("LAPERM_JOBS")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace laperm
