// sim-lint fixture: every banned RNG construct must be flagged.
// Not compiled — parsed by test_sim_lint.cc.
#include <cstdlib>
#include <random>

int
unseededNoise()
{
    std::srand(42);
    return std::rand() % 7 + rand();
}

int
stdlibEngines()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    std::uniform_int_distribution<int> dist(0, 9);
    return dist(gen);
}
