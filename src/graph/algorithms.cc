#include "graph/algorithms.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace laperm {

BfsResult
bfs(const Csr &csr, std::uint32_t source)
{
    laperm_assert(source < csr.numVertices(), "BFS source out of range");
    BfsResult res;
    res.level.assign(csr.numVertices(), kUnreached);
    res.level[source] = 0;
    res.frontiers.push_back({source});
    for (;;) {
        const auto &front = res.frontiers.back();
        std::vector<std::uint32_t> next;
        for (std::uint32_t u : front) {
            for (std::uint32_t v : csr.neighbors(u)) {
                if (res.level[v] == kUnreached) {
                    res.level[v] = res.level[u] + 1;
                    next.push_back(v);
                }
            }
        }
        if (next.empty())
            break;
        res.frontiers.push_back(std::move(next));
    }
    return res;
}

SsspResult
sssp(const Csr &csr, const std::vector<std::uint32_t> &weights,
     std::uint32_t source, std::uint32_t max_rounds)
{
    laperm_assert(weights.size() == csr.numEdges(),
                  "weight array does not match edge count");
    SsspResult res;
    res.dist.assign(csr.numVertices(), kUnreached);
    res.dist[source] = 0;
    std::vector<std::uint32_t> active = {source};
    std::vector<bool> in_next(csr.numVertices(), false);
    while (!active.empty() && res.rounds.size() < max_rounds) {
        res.rounds.push_back(active);
        std::vector<std::uint32_t> next;
        for (std::uint32_t u : active) {
            std::uint64_t base = csr.offset(u);
            auto nbrs = csr.neighbors(u);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                std::uint32_t v = nbrs[i];
                std::uint32_t w = weights[base + i];
                if (res.dist[u] != kUnreached &&
                    res.dist[u] + w < res.dist[v]) {
                    res.dist[v] = res.dist[u] + w;
                    if (!in_next[v]) {
                        in_next[v] = true;
                        next.push_back(v);
                    }
                }
            }
        }
        for (std::uint32_t v : next)
            in_next[v] = false;
        active = std::move(next);
    }
    return res;
}

ColoringResult
jpColoring(const Csr &csr, std::uint64_t seed, std::uint32_t max_rounds)
{
    const std::uint32_t n = csr.numVertices();
    ColoringResult res;
    res.color.assign(n, kUnreached);

    // Random priorities with vertex id as the tie-break.
    Rng rng(seed);
    std::vector<std::uint64_t> prio(n);
    for (std::uint32_t v = 0; v < n; ++v)
        prio[v] = (rng.next() << 20) | v;

    std::uint32_t uncolored = n;
    while (uncolored > 0 && res.rounds.size() < max_rounds) {
        std::vector<std::uint32_t> this_round;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (res.color[v] != kUnreached)
                continue;
            bool local_max = true;
            for (std::uint32_t u : csr.neighbors(v)) {
                if (res.color[u] == kUnreached && prio[u] > prio[v]) {
                    local_max = false;
                    break;
                }
            }
            if (local_max)
                this_round.push_back(v);
        }
        if (this_round.empty()) {
            // Remaining vertices (possible only when max_rounds was hit
            // by a pathological priority tie) get sequential colors.
            break;
        }
        for (std::uint32_t v : this_round) {
            // Smallest color unused by colored neighbors.
            std::vector<std::uint32_t> used;
            for (std::uint32_t u : csr.neighbors(v)) {
                if (res.color[u] != kUnreached)
                    used.push_back(res.color[u]);
            }
            std::sort(used.begin(), used.end());
            std::uint32_t c = 0;
            for (std::uint32_t uc : used) {
                if (uc == c)
                    ++c;
                else if (uc > c)
                    break;
            }
            res.color[v] = c;
        }
        uncolored -= static_cast<std::uint32_t>(this_round.size());
        res.rounds.push_back(std::move(this_round));
    }
    // Color any leftovers greedily (never triggers in practice).
    for (std::uint32_t v = 0; v < n; ++v) {
        if (res.color[v] == kUnreached)
            res.color[v] = csr.degree(v) + 1;
    }
    return res;
}

bool
coloringValid(const Csr &csr, const std::vector<std::uint32_t> &color)
{
    for (std::uint32_t v = 0; v < csr.numVertices(); ++v) {
        for (std::uint32_t u : csr.neighbors(v)) {
            if (u != v && color[u] == color[v])
                return false;
        }
    }
    return true;
}

} // namespace laperm
