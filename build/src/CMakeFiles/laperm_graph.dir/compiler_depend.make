# Empty compiler generated dependencies file for laperm_graph.
# This may be replaced when dependencies are built.
