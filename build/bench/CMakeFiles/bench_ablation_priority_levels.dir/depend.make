# Empty dependencies file for bench_ablation_priority_levels.
# This may be replaced when dependencies are built.
