/**
 * @file
 * Differential determinism across simulator cores (DESIGN.md §11): the
 * event-driven loop must be an *observably invisible* optimization of
 * the dense reference loop. Every artifact — the canonical result
 * record behind the CSV report, the observability trace files, and the
 * sweep TSV cache — must be byte-identical between --tick-mode dense
 * and event, at any worker count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "workloads/registry.hh"

using namespace laperm;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "laperm_tick_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** name -> bytes for every regular file under @p dir. */
std::map<std::string, std::string>
dirContents(const std::string &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.is_regular_file())
            out[e.path().filename().string()] = slurp(e.path());
    }
    return out;
}

/** RAII environment override restoring the prior value on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *prev = std::getenv(name))
            prev_ = prev;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (prev_.empty())
            ::unsetenv(name_);
        else
            ::setenv(name_, prev_.c_str(), 1);
    }

  private:
    const char *name_;
    std::string prev_;
};

GpuConfig
modeConfig(TickMode mode)
{
    // Pin the mode explicitly so an ambient LAPERM_TICK_MODE cannot
    // collapse the two sides of the comparison into one.
    ScopedEnv tick("LAPERM_TICK_MODE", nullptr);
    GpuConfig cfg = paperConfig();
    cfg.dynParModel = DynParModel::DTBL;
    cfg.tickMode = mode;
    return cfg;
}

} // namespace

TEST(TickModeDifferential, CanonicalRecordsMatch)
{
    // bfs-citation exercises the launch-heavy path; chase-ring the
    // stall-heavy path where the event loop elides almost every
    // front-end visit.
    for (const char *name : {"bfs-citation", "chase-ring"}) {
        auto w = createWorkload(name);
        w->setup(Scale::Tiny, 3);
        for (TbPolicy policy :
             {TbPolicy::RR, TbPolicy::TbPri, TbPolicy::AdaptiveBind}) {
            GpuConfig dense = modeConfig(TickMode::Dense);
            dense.tbPolicy = policy;
            GpuConfig event = modeConfig(TickMode::Event);
            event.tbPolicy = policy;
            const std::string a = runOneRecord(*w, dense, "").encode();
            const std::string b = runOneRecord(*w, event, "").encode();
            EXPECT_EQ(a, b) << name << "/" << toString(policy);
        }
    }
}

TEST(TickModeDifferential, TraceArtifactsMatch)
{
    auto w = createWorkload("bfs-citation");
    w->setup(Scale::Tiny, 3);

    const std::string denseDir = freshDir("trace_dense");
    const std::string eventDir = freshDir("trace_event");
    GpuConfig dense = modeConfig(TickMode::Dense);
    dense.tbPolicy = TbPolicy::AdaptiveBind;
    GpuConfig event = modeConfig(TickMode::Event);
    event.tbPolicy = TbPolicy::AdaptiveBind;
    (void)runOneRecord(*w, dense, denseDir);
    (void)runOneRecord(*w, event, eventDir);

    const auto a = dirContents(denseDir);
    const auto b = dirContents(eventDir);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[file, bytes] : a) {
        auto it = b.find(file);
        ASSERT_NE(it, b.end()) << file;
        EXPECT_EQ(bytes, it->second) << file;
    }
}

TEST(TickModeDifferential, SweepTsvMatchesAcrossModesAndJobCounts)
{
    const std::vector<std::string> names = {"bfs-citation"};
    const std::uint64_t seed = 3;
    std::vector<std::string> tsvs;
    for (const char *mode : {"dense", "event"}) {
        for (unsigned jobs : {1u, 8u}) {
            const std::string cacheDir = freshDir(
                std::string("sweep_") + mode + "_" + std::to_string(jobs));
            ScopedEnv cache("LAPERM_CACHE_DIR", cacheDir.c_str());
            ScopedEnv nocache("LAPERM_NO_CACHE", nullptr);
            ScopedEnv tick("LAPERM_TICK_MODE", mode);
            const auto results =
                runMatrix(names, Scale::Tiny, seed, true, jobs);
            EXPECT_FALSE(results.empty());
            tsvs.push_back(slurp(sweepCachePath(Scale::Tiny, seed)));
        }
    }
    ASSERT_EQ(tsvs.size(), 4u);
    for (std::size_t i = 1; i < tsvs.size(); ++i)
        EXPECT_EQ(tsvs[0], tsvs[i]) << "variant " << i;
    EXPECT_FALSE(tsvs[0].empty());
}
