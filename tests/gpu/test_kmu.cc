#include <gtest/gtest.h>

#include "gpu/kmu.hh"
#include "kernels/lambda_program.hh"

using namespace laperm;

namespace {

PendingLaunch
makeLaunch(std::uint32_t priority, Cycle ready_at)
{
    static auto prog = std::make_shared<LambdaProgram>(
        "k", 1, [](ThreadCtx &c) { c.alu(1); });
    PendingLaunch p;
    p.req = {prog, 1, 32};
    p.priority = priority;
    p.readyAt = ready_at;
    return p;
}

} // namespace

TEST(Kmu, EmptyInitially)
{
    Kmu kmu;
    EXPECT_TRUE(kmu.empty());
    EXPECT_EQ(kmu.peekReady(100, false), nullptr);
    EXPECT_EQ(kmu.nextReadyAt(), kNoCycle);
}

TEST(Kmu, LatencyGatesReadiness)
{
    Kmu kmu;
    kmu.push(makeLaunch(1, 50));
    EXPECT_EQ(kmu.peekReady(49, false), nullptr);
    EXPECT_NE(kmu.peekReady(50, false), nullptr);
    EXPECT_EQ(kmu.size(), 1u);
}

TEST(Kmu, FcfsOrder)
{
    Kmu kmu;
    kmu.push(makeLaunch(0, 10));
    kmu.push(makeLaunch(3, 10)); // higher priority but later seq
    PendingLaunch *p = kmu.peekReady(10, false);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->priority, 0u);
    EXPECT_EQ(p->seq, 0u);
}

TEST(Kmu, PriorityOrder)
{
    Kmu kmu;
    kmu.push(makeLaunch(0, 10));
    kmu.push(makeLaunch(3, 10));
    kmu.push(makeLaunch(2, 10));
    PendingLaunch *p = kmu.peekReady(10, true);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->priority, 3u);
    kmu.pop(p);
    p = kmu.peekReady(10, true);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->priority, 2u);
}

TEST(Kmu, FcfsWithinPriorityLevel)
{
    Kmu kmu;
    kmu.push(makeLaunch(2, 10)); // seq 0
    kmu.push(makeLaunch(2, 10)); // seq 1
    PendingLaunch *p = kmu.peekReady(10, true);
    EXPECT_EQ(p->seq, 0u);
    kmu.pop(p);
    EXPECT_EQ(kmu.peekReady(10, true)->seq, 1u);
}

TEST(Kmu, NextReadyAtTracksLatentHeap)
{
    Kmu kmu;
    kmu.push(makeLaunch(0, 100));
    kmu.push(makeLaunch(0, 40));
    EXPECT_EQ(kmu.nextReadyAt(), 40u);
    PendingLaunch *p = kmu.peekReady(40, false);
    ASSERT_NE(p, nullptr);
    kmu.pop(p);
    EXPECT_EQ(kmu.nextReadyAt(), 100u);
    EXPECT_EQ(kmu.size(), 1u);
}

TEST(Kmu, ManyLaunchesDrainInOrder)
{
    Kmu kmu;
    for (std::uint32_t i = 0; i < 100; ++i)
        kmu.push(makeLaunch(i % 4, i));
    std::uint64_t drained = 0;
    std::uint64_t last_seq = 0;
    for (Cycle now = 0; now < 200 && !kmu.empty(); ++now) {
        PendingLaunch *p = kmu.peekReady(now, false);
        if (!p)
            continue;
        EXPECT_GE(p->seq, last_seq);
        last_seq = p->seq;
        kmu.pop(p);
        ++drained;
    }
    EXPECT_EQ(drained, 100u);
}
