/**
 * @file
 * Figure 7: L2 cache hit rate under the four TB schedulers, for both
 * the CDP and DTBL models.
 *
 * Paper anchors: TB-Pri gains +6.7% (CDP) / +8.7% (DTBL) over RR on
 * average; SMX-Bind/Adaptive-Bind retain or extend the L2 benefit.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(true);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);
    auto results = runMatrix(workloadNames(), scale, 1);
    setVerbose(false);

    std::printf("\nFigure 7: L2 cache hit rate (scale '%s')\n\n",
                toString(scale));

    for (DynParModel model : {DynParModel::CDP, DynParModel::DTBL}) {
        std::printf("%s:\n", toString(model));
        Table t({"workload", "RR", "TB-Pri", "SMX-Bind",
                 "Adaptive-Bind"});
        for (const auto &name : workloadNames()) {
            std::vector<std::string> row = {name};
            for (TbPolicy p : {TbPolicy::RR, TbPolicy::TbPri,
                               TbPolicy::SmxBind,
                               TbPolicy::AdaptiveBind}) {
                row.push_back(
                    fmtPct(findResult(results, name, model, p)
                               .l2HitRate));
            }
            t.addRow(std::move(row));
        }
        t.addRule();
        std::vector<std::string> avg = {"average"};
        double rr = meanOver(results, model, TbPolicy::RR,
                             &RunResult::l2HitRate);
        for (TbPolicy p : {TbPolicy::RR, TbPolicy::TbPri,
                           TbPolicy::SmxBind, TbPolicy::AdaptiveBind}) {
            double v = meanOver(results, model, p, &RunResult::l2HitRate);
            avg.push_back(fmtPct(v) +
                          logFormat(" (%+.1fpp)", 100.0 * (v - rr)));
        }
        t.addRow(std::move(avg));
        t.print();
        std::printf("paper: TB-Pri improves the average L2 hit rate by "
                    "+%.1fpp over RR under %s\n\n",
                    model == DynParModel::CDP ? 6.7 : 8.7,
                    toString(model));
    }
    return 0;
}
