/**
 * @file
 * Shared data layout and input construction for the graph workloads
 * (BFS, SSSP, CLR): the CSR arrays in simulated memory plus the
 * per-vertex child-parameter buffer the parent writes and children
 * read (the paper's Section III temporal-locality pattern).
 */

#ifndef LAPERM_WORKLOADS_GRAPH_COMMON_HH
#define LAPERM_WORKLOADS_GRAPH_COMMON_HH

#include <cstdint>
#include <string>

#include "common/bump_alloc.hh"
#include "graph/csr.hh"
#include "graph/generators.hh"
#include "workloads/workload.hh"

namespace laperm {

/**
 * Vertex degree above which the benchmarks spawn a child launch. The
 * CDP implementations of [15] convert any vertex with more than a few
 * neighbors into a device launch so the bulk of the edge expansion
 * runs in (coalesced) dynamic TBs.
 */
constexpr std::uint32_t kSpawnDegree = 16;

/** Threads per TB used by the top-level graph kernels. */
constexpr std::uint32_t kGraphTbThreads = 64;

/** Threads per dynamic (child) TB. */
constexpr std::uint32_t kChildTbThreads = 64;

/** Max TBs per child launch; larger expansions stride internally. */
constexpr std::uint32_t kMaxChildTbs = 8;

/** TB count for a child launch expanding @p work items. */
constexpr std::uint32_t
childTbCount(std::uint32_t work)
{
    std::uint32_t tbs = (work + kChildTbThreads - 1) / kChildTbThreads;
    return tbs < 1 ? 1 : (tbs > kMaxChildTbs ? kMaxChildTbs : tbs);
}

/** Device-memory layout of one CSR graph plus per-vertex state. */
struct GraphLayout
{
    Addr rowOff = 0;   ///< 8B per vertex (offset pairs)
    Addr cols = 0;     ///< 4B per edge
    Addr weights = 0;  ///< 4B per edge (SSSP only)
    Addr vdata = 0;    ///< 4B per vertex (level / dist / color)
    Addr mask = 0;     ///< 1B per vertex status mask (visited/colored)
    Addr prio = 0;     ///< 8B per vertex (CLR priorities)
    Addr params = 0;   ///< 16B per vertex: parent-written child args
    Addr worklist = 0; ///< 4B per vertex: flattened frontier storage

    Addr rowAddr(std::uint32_t v) const { return rowOff + 8ull * v; }
    Addr colAddr(std::uint64_t e) const { return cols + 4ull * e; }
    Addr weightAddr(std::uint64_t e) const { return weights + 4ull * e; }
    Addr vdataAddr(std::uint32_t v) const { return vdata + 4ull * v; }
    Addr maskAddr(std::uint32_t v) const { return mask + v; }
    Addr prioAddr(std::uint32_t v) const { return prio + 8ull * v; }
    Addr paramAddr(std::uint32_t v) const { return params + 16ull * v; }
    Addr worklistAddr(std::uint64_t i) const { return worklist + 4ull * i; }

    /** Allocate all regions for @p csr (weights only if requested). */
    void allocate(BumpAllocator &mem, const Csr &csr, bool with_weights);
};

/**
 * Build the graph for one of the paper's inputs:
 * "citation", "graph500", or "cage" (Table II).
 */
Csr buildGraphInput(const std::string &input, Scale scale,
                    std::uint64_t seed);

/** A well-connected source vertex (highest degree). */
std::uint32_t pickSource(const Csr &csr);

} // namespace laperm

#endif // LAPERM_WORKLOADS_GRAPH_COMMON_HH
