#!/usr/bin/env bash
# serve-smoke: end-to-end check of the serving subsystem against real
# binaries (see DESIGN.md §10).
#
#   1. start laperm_served on a private socket + private cache dir
#   2. wait for readiness via --ping
#   3. submit the same simulation directly (laperm_sim --csv), cold
#      through the daemon, and again cached — all three must be
#      byte-identical
#   4. batch submission prints the sweep-format TSV
#   5. --stats returns the metrics snapshot
#   6. protocol shutdown; the daemon must exit cleanly and remove its
#      socket
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SIM="$BUILD/src/laperm_sim"
SERVED="$BUILD/src/laperm_served"
SUBMIT="$BUILD/src/laperm_submit"

for bin in "$SIM" "$SERVED" "$SUBMIT"; do
    if [ ! -x "$bin" ]; then
        echo "serve_smoke: missing binary '$bin' (build first)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d /tmp/laperm_serve_smoke.XXXXXX)
SOCK="$WORK/served.sock"
export LAPERM_CACHE_DIR="$WORK/cache"
DAEMON_PID=

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVED" --socket "$SOCK" --jobs 2 >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# Readiness: the daemon may still be binding the socket.
ready=0
for _ in $(seq 1 100); do
    if "$SUBMIT" --socket "$SOCK" --ping >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ "$ready" -ne 1 ]; then
    echo "serve_smoke: daemon never became ready" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
fi
"$SUBMIT" --socket "$SOCK" --ping

# Determinism contract: direct, cold-served, and cache-served output
# must be byte-identical.
req=(--workload bfs-cage --scale tiny --seed 1)
"$SIM" "${req[@]}" --csv >"$WORK/direct.csv"
"$SUBMIT" --socket "$SOCK" "${req[@]}" >"$WORK/cold.csv"
"$SUBMIT" --socket "$SOCK" "${req[@]}" >"$WORK/cached.csv"
cmp "$WORK/direct.csv" "$WORK/cold.csv"
cmp "$WORK/direct.csv" "$WORK/cached.csv"
echo "serve_smoke: direct/cold/cached outputs byte-identical"

# Batch submission prints the sweep-harness TSV format.
printf '%s\n' \
    '{"op":"run","workload":"bfs-cage","scale":"tiny","seed":1}' \
    '{"op":"run","workload":"bfs-cage","scale":"tiny","seed":2}' \
    >"$WORK/batch.jsonl"
"$SUBMIT" --socket "$SOCK" --batch "$WORK/batch.jsonl" >"$WORK/batch.tsv"
[ "$(wc -l <"$WORK/batch.tsv")" -eq 3 ] # header comment + 2 rows
head -1 "$WORK/batch.tsv" | grep -q '^# workload'
echo "serve_smoke: batch TSV ok"

# Metrics snapshot through the stats verb.
"$SUBMIT" --socket "$SOCK" --stats >"$WORK/stats.tsv"
grep -q '^cache_hits' "$WORK/stats.tsv"
grep -q '^executed' "$WORK/stats.tsv"

# Clean protocol shutdown: daemon exits 0 and removes its socket.
"$SUBMIT" --socket "$SOCK" --shutdown
wait "$DAEMON_PID"
DAEMON_PID=
if [ -e "$SOCK" ]; then
    echo "serve_smoke: daemon left its socket behind" >&2
    exit 1
fi
echo "serve_smoke: OK"
