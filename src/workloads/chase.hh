/**
 * @file
 * Pointer-chase latency microbenchmark (not part of Table II).
 */

#ifndef LAPERM_WORKLOADS_CHASE_HH
#define LAPERM_WORKLOADS_CHASE_HH

#include "workloads/workload.hh"

namespace laperm {

/**
 * A memory-latency stress: each thread walks a private random
 * permutation ring in device memory, one dependent cache-hostile load
 * per step, with a short ALU op between steps so loads cannot overlap
 * in the warp's MLP window. Occupancy is deliberately minimal (one
 * single-thread warp per TB, two TBs per SMX), so SMXs spend almost
 * every cycle stalled on DRAM — the adversarial case for a polling
 * simulator loop and the showcase for the event-driven core
 * (DESIGN.md §11). Excluded from the Table II sweep list; create it
 * by name ("chase-ring") for scheduler/core benchmarks and tests.
 */
class ChaseWorkload : public WorkloadBase
{
  public:
    explicit ChaseWorkload(std::string input) : input_(std::move(input)) {}

    std::string app() const override { return "chase"; }
    std::string input() const override { return input_; }
    void setup(Scale scale, std::uint64_t seed) override;

  private:
    std::string input_;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_CHASE_HH
