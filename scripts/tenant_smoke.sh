#!/usr/bin/env bash
# Multi-tenant determinism gate (DESIGN.md §14): the tenant decision
# loop only drives the device between slices, so its artifacts must be
# byte-identical across tick modes AND across harness parallelism.
#
#   1. laperm_sim --tenants duo, dense vs event: stdout and the
#      --tenants-tsv artifact byte-compare.
#   2. bench_multitenant, LAPERM_JOBS=1/event vs LAPERM_JOBS=8/dense:
#      BENCH_multitenant.json and the sweep cache TSVs byte-compare.
#
# Usage: scripts/tenant_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SIM="$BUILD/src/laperm_sim"
BENCH="$BUILD/bench/bench_multitenant"
for bin in "$SIM" "$BENCH"; do
    if [ ! -x "$bin" ]; then
        echo "tenant_smoke.sh: $bin not built" >&2
        exit 1
    fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
unset LAPERM_TICK_MODE
export LAPERM_NO_CACHE=1

# -- 1. CLI front end: dense vs event -------------------------------
for mode in dense event; do
    mkdir -p "$TMP/$mode"
    "$SIM" --tenants duo --tick-mode "$mode" \
        --tenants-tsv "$TMP/$mode/duo.tsv" >"$TMP/$mode/stdout.txt"
done
fail=0
for f in stdout.txt duo.tsv; do
    if ! cmp -s "$TMP/dense/$f" "$TMP/event/$f"; then
        echo "tenant_smoke.sh: $f diverges between tick modes" >&2
        fail=1
    fi
done

# -- 2. Bench: serial/event vs parallel/dense, cold caches ----------
# The bench walks the full mix x policy x preset grid; restrict it to
# one small mix and one preset so the gate stays fast.
unset LAPERM_NO_CACHE
export LAPERM_TENANT_MIXES=duo
export LAPERM_TENANT_PRESETS=k20c
run_bench() { # jobs tick-mode outdir
    local out="$TMP/$3"
    mkdir -p "$out"
    (cd "$out" &&
        LAPERM_JOBS="$1" LAPERM_TICK_MODE="$2" \
            LAPERM_CACHE_DIR="$out/cache" \
            "$OLDPWD/$BENCH" >bench_stdout.txt)
}
run_bench 1 event bench-a
run_bench 8 dense bench-b

if ! cmp -s "$TMP/bench-a/BENCH_multitenant.json" \
    "$TMP/bench-b/BENCH_multitenant.json"; then
    echo "tenant_smoke.sh: BENCH_multitenant.json differs between" \
        "LAPERM_JOBS=1/event and LAPERM_JOBS=8/dense" >&2
    fail=1
fi
for a in "$TMP/bench-a/cache"/laperm_tenants_*.tsv; do
    b="$TMP/bench-b/cache/$(basename "$a")"
    if ! cmp -s "$a" "$b"; then
        echo "tenant_smoke.sh: cache $(basename "$a") differs" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1

echo "tenant_smoke.sh: multi-tenant artifacts byte-identical across" \
    "tick modes and LAPERM_JOBS"
