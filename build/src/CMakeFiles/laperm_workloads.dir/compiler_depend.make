# Empty compiler generated dependencies file for laperm_workloads.
# This may be replaced when dependencies are built.
