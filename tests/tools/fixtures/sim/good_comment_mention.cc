// sim-lint fixture: banned tokens inside comments and string literals
// must NOT be flagged (the linter strips them before matching).
// For instance this mention of std::mt19937, std::rand and
// steady_clock is documentation, not use.
// Not compiled — parsed by test_sim_lint.cc.
#include <cstdint>

/* Block comments too: random_device, high_resolution_clock. */
const char *
bannedTokensInStrings()
{
    return "std::rand() and system_clock inside a string literal";
}

std::uint64_t
operandParade(std::uint64_t operand)
{
    // "operand(" must not match the rand() pattern.
    return operand;
}
