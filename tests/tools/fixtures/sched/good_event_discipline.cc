// sim-lint fixture: disciplined event-queue usage — deadlines are
// now + delta, kinds are named enumerators, iterator arrows and
// decrements are not subtraction. Not compiled — parsed by
// test_sim_lint_v2.cc.
#include <map>

using Cycle = unsigned long long;
enum class SimEventKind { FrontEnd, SmxTick, Maintenance };
struct Queue
{
    void schedule(Cycle c, SimEventKind k);
};

void
good(Queue &q, std::map<Cycle, int> &pending, Cycle now, Cycle delta)
{
    q.schedule(now + delta, SimEventKind::SmxTick);
    q.schedule(pending.begin()->first, SimEventKind::FrontEnd);
    for (int i = 3; i > 0; --i)
        q.schedule(now + static_cast<Cycle>(i), SimEventKind::Maintenance);
}
