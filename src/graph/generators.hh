/**
 * @file
 * Deterministic graph/input generators substituting the paper's data
 * sets (Table II). Each generator reproduces the structural property
 * the paper attributes to its input:
 *
 *  - citation network: connectivity concentrated around nearby vertex
 *    ids (high child-sibling footprint sharing in CSR layout);
 *  - Graph500 logn20: RMAT — scattered connectivity (low sharing);
 *  - cage15: banded matrix — neighbors at close indices (high sharing).
 */

#ifndef LAPERM_GRAPH_GENERATORS_HH
#define LAPERM_GRAPH_GENERATORS_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace laperm {

/**
 * Citation-network-like graph: each vertex cites ~avg_degree earlier
 * vertices, mostly within a recency window (spatially concentrated ids)
 * with a preferential-attachment tail for realistic degree skew.
 */
Csr genCitation(std::uint32_t n, std::uint32_t avg_degree,
                std::uint64_t seed);

/**
 * Graph500-style RMAT graph (A=0.57, B=0.19, C=0.19), symmetrized.
 * Vertex ids are scattered; heavy-tailed degrees.
 */
Csr genRmat(std::uint32_t scale_log2, std::uint32_t avg_degree,
            std::uint64_t seed);

/**
 * cage15-like banded sparse matrix graph: neighbors lie within a
 * +-bandwidth index band, nearly uniform degrees.
 */
Csr genCage(std::uint32_t n, std::uint32_t bandwidth,
            std::uint32_t avg_degree, std::uint64_t seed);

/** Uniform random (Erdos-Renyi style) graph, symmetrized. */
Csr genUniform(std::uint32_t n, std::uint32_t avg_degree,
               std::uint64_t seed);

/** Per-edge weights in [1, max_weight], aligned with csr.cols(). */
std::vector<std::uint32_t> genEdgeWeights(const Csr &csr,
                                          std::uint32_t max_weight,
                                          std::uint64_t seed);

} // namespace laperm

#endif // LAPERM_GRAPH_GENERATORS_HH
