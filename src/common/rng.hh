/**
 * @file
 * Deterministic, seedable pseudo-random number generator used by every
 * input-data generator so experiment runs are exactly reproducible.
 */

#ifndef LAPERM_COMMON_RNG_HH
#define LAPERM_COMMON_RNG_HH

#include <cstdint>

namespace laperm {

/**
 * xoshiro256** generator. Small, fast, and fully deterministic across
 * platforms (unlike std::mt19937 distributions, whose mapping to ranges
 * is implementation-defined via std::uniform_int_distribution).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal via Box-Muller. */
    double nextGaussian();

    /**
     * Zipf-distributed integer in [0, n) with exponent @p s.
     * Uses the rejection method of Jason Crease / W. Hormann; O(1).
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

  private:
    std::uint64_t s_[4];
    bool haveGauss_ = false;
    double gauss_ = 0.0;
};

} // namespace laperm

#endif // LAPERM_COMMON_RNG_HH
