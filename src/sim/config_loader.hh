/**
 * @file
 * Declarative machine-configuration subsystem (DESIGN.md §13).
 *
 * A GpuConfig splits into two kinds of knobs:
 *
 *  - *machine* fields: hardware geometry and timing (SMX count, cache
 *    sizes, DRAM channels, launch latencies, LaPerm queue hardware).
 *    These are what a named preset or a `machine.toml` file sets, and
 *    they are exactly what canonicalMachine() covers.
 *
 *  - *run* fields: what a single experiment varies on top of a machine
 *    (dynParModel, tbPolicy, seed) plus the timing-invisible tickMode.
 *    They stay out of the machine canonicalization; the serving layer
 *    keys them separately (serve/sim_request.hh).
 *
 * Every machine field is declared once in a key registry (name, doc,
 * checked parser, canonical emitter). The registry drives four
 * consumers with one source of truth:
 *
 *  - parseMachineToml(): TOML-subset deserialization with unknown-key,
 *    duplicate-key, overflow and junk rejection;
 *  - emitMachineToml(): canonical re-emission (parse -> emit -> parse
 *    is the identity);
 *  - canonicalMachine()/machineHash(): the fixed-order canonical
 *    string and its 128-bit content key — two configs that mean the
 *    same machine hash identically no matter how they were spelled;
 *  - setMachineField(): single-key override used by the serve layer to
 *    map flat-JSON request fields onto the same checked parsers.
 *
 * Grammar of the TOML subset (a superset of the layering.toml reader's
 * needs, same parsing discipline):
 *
 *   file     := line*
 *   line     := ws (comment | section | entry)? ws
 *   section  := "[machine]"            ; the only legal section
 *   entry    := key ws "=" ws value ws comment?
 *   key      := [a-z_][a-z0-9_]*
 *   value    := integer | float | bool | '"' string '"'
 *   comment  := "#" .*                 ; values must not contain '#'
 */

#ifndef LAPERM_SIM_CONFIG_LOADER_HH
#define LAPERM_SIM_CONFIG_LOADER_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace laperm {

/** One declared machine field (name + one-line doc). */
struct MachineFieldInfo
{
    const char *key; ///< snake_case TOML / wire name
    const char *doc; ///< one-line description (units included)
};

/** Every machine field, in canonical (registry) order. */
std::vector<MachineFieldInfo> machineFields();

/**
 * Set one machine field from its raw value spelling. Checked parsing:
 * unknown keys, junk, overflow, bad enum/bool spellings all fail with
 * a diagnostic in @p err and leave @p cfg untouched.
 */
bool setMachineField(GpuConfig &cfg, const std::string &key,
                     const std::string &raw, std::string &err);

/** Canonical value spelling of one machine field ("" if unknown). */
std::string machineFieldValue(const GpuConfig &cfg, const std::string &key);

/**
 * Apply a TOML-subset machine config on top of @p cfg. Only mentioned
 * keys change — parse onto a preset to express "v100 but 40 SMXs".
 * Rejects unknown sections, unknown keys, duplicate keys, and any
 * value the field's checked parser refuses. On failure @p cfg is
 * unchanged and @p err carries "line N: ...".
 */
bool parseMachineToml(const std::string &text, GpuConfig &cfg,
                      std::string &err);

/** parseMachineToml() over a file's contents; false if unreadable. */
bool loadMachineToml(const std::string &path, GpuConfig &cfg,
                     std::string &err);

/**
 * Canonical TOML emission of every machine field, registry order.
 * parse(emit(cfg)) == cfg, and emit(parse(emit(cfg))) is byte-equal.
 */
std::string emitMachineToml(const GpuConfig &cfg);

/**
 * Fixed-order "key=value ..." canonical string over every machine
 * field. This is the serving-layer cache-key input: equal machines
 * canonicalize equally regardless of spelling (preset name, TOML file,
 * or per-field overrides).
 */
std::string canonicalMachine(const GpuConfig &cfg);

/** 128-bit hex content key of canonicalMachine(cfg). */
std::string machineHash(const GpuConfig &cfg);

/** machineHash of a default-constructed GpuConfig (the k20c machine). */
const std::string &defaultMachineHash();

} // namespace laperm

#endif // LAPERM_SIM_CONFIG_LOADER_HH
