file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tb_throttle.dir/bench_ablation_tb_throttle.cc.o"
  "CMakeFiles/bench_ablation_tb_throttle.dir/bench_ablation_tb_throttle.cc.o.d"
  "bench_ablation_tb_throttle"
  "bench_ablation_tb_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tb_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
