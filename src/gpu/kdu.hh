/**
 * @file
 * Kernel Distributor Unit: the table of kernels currently executable on
 * the device (maximum 32 entries on Kepler). Owns kernel instances and
 * their dispatch units.
 */

#ifndef LAPERM_GPU_KDU_HH
#define LAPERM_GPU_KDU_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/types.hh"
#include "kernels/kernel_program.hh"
#include "sched/dispatch_unit.hh"

namespace laperm {

/** A kernel instance (grid) resident in the KDU. */
struct KernelInstance
{
    KernelId id = 0;
    std::uint32_t functionId = 0;
    std::uint32_t threadsPerTb = 0;
    /** Total TBs in the pool; grows when DTBL groups coalesce on. */
    std::uint32_t totalTbs = 0;
    std::uint32_t dispatchedTbs = 0;
    std::uint32_t finishedTbs = 0;
    bool isDevice = false;
    /** Owning tenant stream; children inherit their parent's tenant. */
    std::uint32_t tenant = 0;
    Cycle admitCycle = 0;

    bool complete() const
    {
        return finishedTbs == totalTbs && totalTbs > 0;
    }
};

/**
 * The KDU. Kernels are admitted in FCFS order (or KMU priority order
 * under LaPerm) and occupy an entry until all their TBs finish.
 */
class Kdu
{
  public:
    explicit Kdu(std::uint32_t entries);

    bool hasFreeEntry() const { return occupied_ < entries_; }
    std::uint32_t freeEntries() const { return entries_ - occupied_; }
    std::uint32_t occupied() const { return occupied_; }

    /**
     * Admit a new kernel of @p total_tbs TBs.
     * @return the kernel instance (stable pointer).
     */
    KernelInstance *admitKernel(std::uint32_t function_id,
                                std::uint32_t threads_per_tb,
                                std::uint32_t total_tbs, bool is_device,
                                Cycle now, std::uint32_t tenant = 0);

    /**
     * Append @p count TBs to @p kernel (DTBL coalescing).
     * @return first TB index of the appended range.
     */
    std::uint32_t coalesceTbs(KernelInstance *kernel, std::uint32_t count);

    /** Create a dispatch unit (stable pointer, owned by the KDU). */
    DispatchUnit *createUnit();

    /** Record a finished TB; frees the entry when the kernel completes. */
    void tbFinished(KernelInstance *kernel);

    /**
     * Find a running, still-coalescable kernel matching a DTBL group's
     * configuration and tenant; nullptr if none. Groups never coalesce
     * across tenants — accounting attributes every TB to one stream.
     */
    KernelInstance *findMatch(std::uint32_t function_id,
                              std::uint32_t threads_per_tb,
                              std::uint32_t tenant = 0) const;

    /** Kernels ever admitted (monotonic id source). */
    std::uint64_t kernelsAdmitted() const { return nextId_; }

  private:
    std::uint32_t entries_;
    std::uint32_t occupied_ = 0;
    KernelId nextId_ = 0;
    std::uint64_t nextUnitSeq_ = 0;
    std::deque<KernelInstance> kernels_; ///< stable storage
    std::deque<DispatchUnit> units_;     ///< stable storage
};

} // namespace laperm

#endif // LAPERM_GPU_KDU_HH
