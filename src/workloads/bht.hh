/**
 * @file
 * Barnes-Hut tree workload (Table II: random data points).
 */

#ifndef LAPERM_WORKLOADS_BHT_HH
#define LAPERM_WORKLOADS_BHT_HH

#include "workloads/workload.hh"

namespace laperm {

/**
 * Barnes-Hut N-body step [28]: a build wave bins bodies into a spatial
 * grid (the tree's leaf level); a force wave walks cells and spawns a
 * child launch per crowded cell whose body threads traverse the upper
 * tree — the shared tree top gives high child-sibling footprint reuse.
 */
class BhtWorkload : public WorkloadBase
{
  public:
    std::string app() const override { return "bht"; }
    std::string input() const override { return "points"; }
    void setup(Scale scale, std::uint64_t seed) override;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_BHT_HH
