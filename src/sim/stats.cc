#include "sim/stats.hh"

#include <algorithm>

namespace laperm {

void
CacheStats::add(const CacheStats &other)
{
    accesses += other.accesses;
    hits += other.hits;
    misses += other.misses;
    mshrMerges += other.mshrMerges;
    evictions += other.evictions;
    writebacks += other.writebacks;
    storeEvicts += other.storeEvicts;
}

double
GpuStats::ipc() const
{
    if (cycles == 0)
        return 0.0;
    std::uint64_t insts = 0;
    for (const auto &s : smx)
        insts += s.threadInstructions;
    // End-of-run reporting: the simulation is over, nothing feeds back
    // into timing. sim-lint: allow(cycle-float)
    return static_cast<double>(insts) / static_cast<double>(cycles);
}

CacheStats
GpuStats::l1Total() const
{
    CacheStats total;
    for (const auto &c : l1)
        total.add(c);
    return total;
}

double
GpuStats::avgSmxUtilization() const
{
    if (smx.empty() || cycles == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &s : smx)
        // Summed in smx-vector index order, which is fixed by
        // GpuConfig, so the reduction is deterministic; end-of-run
        // reporting only, nothing feeds back into timing.
        // sim-lint: allow(fp-accum) sim-lint: allow(cycle-float)
        sum += static_cast<double>(s.busyCycles) /
               static_cast<double>(cycles); // sim-lint: allow(cycle-float)
    return sum / static_cast<double>(smx.size());
}

double
GpuStats::smxImbalance() const
{
    if (smx.empty())
        return 0.0;
    std::uint64_t lo = smx[0].busyCycles, hi = smx[0].busyCycles;
    for (const auto &s : smx) {
        lo = std::min(lo, s.busyCycles);
        hi = std::max(hi, s.busyCycles);
    }
    return hi ? static_cast<double>(hi - lo) / static_cast<double>(hi)
              : 0.0;
}

} // namespace laperm
