/**
 * @file
 * Graph-coloring workload (Table II: citation / graph500 / cage).
 */

#ifndef LAPERM_WORKLOADS_CLR_HH
#define LAPERM_WORKLOADS_CLR_HH

#include "workloads/workload.hh"

namespace laperm {

/** Jones-Plassmann greedy coloring with child launches [31]. */
class ClrWorkload : public WorkloadBase
{
  public:
    explicit ClrWorkload(std::string input) : input_(std::move(input)) {}

    std::string app() const override;
    std::string input() const override;
    void setup(Scale scale, std::uint64_t seed) override;

  private:
    std::string input_;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_CLR_HH
