file(REMOVE_RECURSE
  "CMakeFiles/bench_smx_utilization.dir/bench_smx_utilization.cc.o"
  "CMakeFiles/bench_smx_utilization.dir/bench_smx_utilization.cc.o.d"
  "bench_smx_utilization"
  "bench_smx_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smx_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
