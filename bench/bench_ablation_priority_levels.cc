/**
 * @file
 * Ablation: the maximum nesting priority level L (Section IV-A clamps
 * nested launches to L). Deep-nesting workloads (AMR launches
 * grandchildren) distinguish L=1 from L>=2.
 */

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

using namespace laperm;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Scale scale = argc > 1 ? scaleFromString(argv[1])
                           : scaleFromEnv(Scale::Small);

    const char *names[] = {"amr-combustion", "bfs-citation"};
    const std::uint32_t levels[] = {1, 2, 4, 8};

    std::printf("Ablation: maximum priority levels L "
                "(Adaptive-Bind, DTBL, scale '%s')\n\n",
                toString(scale));

    Table t({"workload", "L", "IPC", "L1 hit", "L2 hit", "cycles"});
    for (const char *name : names) {
        auto w = createWorkload(name);
        w->setup(scale, 1);
        for (std::uint32_t level : levels) {
            GpuConfig cfg = paperConfig();
            cfg.dynParModel = DynParModel::DTBL;
            cfg.tbPolicy = TbPolicy::AdaptiveBind;
            cfg.maxPriorityLevels = level;
            RunResult r = runOne(*w, cfg);
            t.addRow({name, fmtU(level), fmtF(r.ipc),
                      fmtPct(r.l1HitRate), fmtPct(r.l2HitRate),
                      fmtF(r.cycles, 0)});
        }
        t.addRule();
    }
    t.print();
    return 0;
}
