/**
 * @file
 * Multi-tenant contention study (EXPERIMENTS.md): the builtin mixes
 * (duo/quad/octo) under all four TB policies on the smallest and
 * largest presets (k20c, v100). Per cell the study reports ANTT, STP
 * and Jain fairness against per-tenant solo baselines plus the worst
 * p99 wave-completion latency across tenants; BENCH_multitenant.json
 * captures every per-tenant row for tooling.
 *
 * Environment:
 *   LAPERM_TENANT_MIXES    comma-separated mix subset (smoke tests)
 *   LAPERM_TENANT_PRESETS  comma-separated preset subset
 *   LAPERM_JOBS            sweep worker threads (results identical)
 *
 * Sweeps cache per (mix, preset, seed) TSV, so reruns are free.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/table.hh"
#include "harness/tenant_sweep.hh"
#include "tenant/mixes.hh"

using namespace laperm;

namespace {

constexpr TbPolicy kPolicies[] = {TbPolicy::RR, TbPolicy::TbPri,
                                  TbPolicy::SmxBind,
                                  TbPolicy::AdaptiveBind};

std::vector<std::string>
envList(const char *var, std::vector<std::string> def)
{
    const char *v = std::getenv(var);
    if (!v || !*v)
        return def;
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

/** Rows of one (mix, preset, policy) cell, in tenant order. */
std::vector<const TenantSweepRow *>
cellOf(const std::vector<TenantSweepRow> &rows, const std::string &mix,
       const std::string &preset, TbPolicy policy)
{
    std::vector<const TenantSweepRow *> out;
    for (const TenantSweepRow &r : rows) {
        if (r.mix == mix && r.preset == preset && r.policy == policy)
            out.push_back(&r);
    }
    return out;
}

} // namespace

int
main()
{
    setVerbose(true);
    const std::uint64_t seed = 1;
    const std::vector<std::string> mixes =
        envList("LAPERM_TENANT_MIXES", tenant::mixNames());
    const std::vector<std::string> presetNames =
        envList("LAPERM_TENANT_PRESETS", {"k20c", "v100"});

    const std::vector<TenantSweepRow> rows =
        runTenantSweep(mixes, presetNames, seed);
    setVerbose(false);

    std::printf("\nMulti-tenant contention study (%zu mixes x %zu "
                "presets x %zu policies)\n",
                mixes.size(), presetNames.size(), std::size(kPolicies));

    std::ofstream json("BENCH_multitenant.json");
    json << "{\n"
         << "  \"bench\": \"multitenant\",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"cells\": [\n";
    bool first = true;

    for (const std::string &preset : presetNames) {
        std::printf("\npreset %s — mix-level ANTT / STP / Jain "
                    "(worst p99 in cycles):\n",
                    preset.c_str());
        Table t({"mix", "policy", "ANTT", "STP", "Jain", "worst p99"});
        for (const std::string &mix : mixes) {
            for (TbPolicy p : kPolicies) {
                const auto cell = cellOf(rows, mix, preset, p);
                if (cell.empty())
                    laperm_fatal("sweep returned no rows for %s/%s/%s",
                                 mix.c_str(), preset.c_str(),
                                 toString(p));
                std::uint64_t worstP99 = 0;
                for (const TenantSweepRow *r : cell)
                    worstP99 = std::max(worstP99, r->p99);
                t.addRow({mix, toString(p), fmtF(cell[0]->mixAntt),
                          fmtF(cell[0]->mixStp), fmtF(cell[0]->mixJain),
                          std::to_string(worstP99)});
                for (const TenantSweepRow *r : cell) {
                    if (!first)
                        json << ",\n";
                    first = false;
                    json << "    {\"mix\": \"" << r->mix
                         << "\", \"preset\": \"" << r->preset
                         << "\", \"policy\": \"" << toString(r->policy)
                         << "\", \"tenant\": \"" << r->tenant
                         << "\", \"jobs\": " << r->jobs
                         << ", \"ANTT\": " << r->antt
                         << ", \"p50\": " << r->p50
                         << ", \"p95\": " << r->p95
                         << ", \"p99\": " << r->p99
                         << ", \"retired_tbs\": " << r->retiredTbs
                         << ", \"mix_ANTT\": " << r->mixAntt
                         << ", \"STP\": " << r->mixStp
                         << ", \"Jain\": " << r->mixJain
                         << ", \"makespan\": " << r->makespan << "}";
                }
            }
        }
        t.print();
    }

    json << "\n  ]\n}\n";
    json.close();
    std::printf("\nwrote BENCH_multitenant.json\n");
    return 0;
}
