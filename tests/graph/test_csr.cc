#include <gtest/gtest.h>

#include "graph/csr.hh"

using namespace laperm;

TEST(Csr, FromEdgesBasic)
{
    Csr g = Csr::fromEdges(4, {{0, 1}, {0, 2}, {2, 3}}, false);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);
    auto n0 = g.neighbors(0);
    ASSERT_EQ(n0.size(), 2u);
    EXPECT_EQ(n0[0], 1u);
    EXPECT_EQ(n0[1], 2u);
}

TEST(Csr, SymmetricInsertsReverseEdges)
{
    Csr g = Csr::fromEdges(3, {{0, 1}}, true);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(Csr, DuplicatesAndSelfLoopsRemoved)
{
    Csr g = Csr::fromEdges(3, {{0, 1}, {0, 1}, {1, 1}, {2, 2}}, false);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(Csr, OffsetsConsistent)
{
    Csr g = Csr::fromEdges(5, {{0, 1}, {1, 2}, {1, 3}, {4, 0}}, false);
    std::uint64_t total = 0;
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(g.offset(v), total);
        total += g.degree(v);
    }
    EXPECT_EQ(total, g.numEdges());
}

TEST(Csr, MaxDegree)
{
    Csr g = Csr::fromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}, false);
    EXPECT_EQ(g.maxDegree(), 3u);
    Csr empty = Csr::fromEdges(2, {}, false);
    EXPECT_EQ(empty.maxDegree(), 0u);
}
