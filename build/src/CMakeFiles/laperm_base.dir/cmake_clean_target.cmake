file(REMOVE_RECURSE
  "liblaperm_base.a"
)
