#include "sched/policies.hh"

#include <algorithm>

namespace laperm {

RrScheduler::RrScheduler(const GpuConfig &cfg, DispatchContext &ctx)
    : TbScheduler(cfg, ctx)
{
}

void
RrScheduler::enqueue(DispatchUnit *unit, Cycle)
{
    units_.push_back(unit);
    stuck_ = false;
}

bool
RrScheduler::dispatchOne(Cycle now)
{
    // A failed scan stays a failure until the machine state it read
    // changes (see the memo's invariant in policies.hh); skip the
    // rescan outright. Deferring the queue compaction below is fine —
    // it only drops units the scan would ignore anyway.
    if (stuck_ && now < stuckReadyAt_)
        return false;
    stuck_ = false;

    while (!units_.empty() && units_.front()->exhausted())
        units_.pop_front();
    // Amortized compaction of mid-queue exhausted units so the
    // per-cycle scan stays proportional to live work (units exhaust
    // out of order because later kernels dispatch concurrently while
    // earlier ones block on resources).
    if (units_.size() > compactAbove_) {
        std::erase_if(units_,
                      [](const DispatchUnit *u) { return u->exhausted(); });
        compactAbove_ = std::max<std::size_t>(128, units_.size() * 2);
    }

    const std::uint32_t n = ctx_.numSmx();
    const DispatchGate *gate = ctx_.gate();
    std::uint32_t examined = 0;
    Cycle earliestDelayed = kNoCycle;
    blockedShapes_.clear();
    for (DispatchUnit *unit : units_) {
        if (unit->exhausted())
            continue;
        if (unit->readyAt > now) {
            earliestDelayed = std::min(earliestDelayed, unit->readyAt);
            continue;
        }
        // A gated tenant's units are skipped like not-yet-ready ones;
        // gate flips invalidate the memo via noteCapacityFreed().
        if (gate && gate->blocked(unit->tenant))
            continue;
        // The hardware KDU exposes a bounded window of concurrent
        // kernels; do not scan arbitrarily deep past blocked units.
        if (++examined > 64)
            break;
        // A demand that already failed on every SMX this scan fails
        // again: the cursor and SMX occupancy are unchanged since, so
        // the probe sequence — and its outcome — would be identical.
        const Shape shape{unit->threadsPerTb, unit->regsPerTb,
                          unit->smemPerTb};
        if (std::find(blockedShapes_.begin(), blockedShapes_.end(),
                      shape) != blockedShapes_.end()) {
            continue;
        }
        // Next SMX with enough available resources, starting from the
        // rotation cursor (Section II-B).
        for (std::uint32_t j = 0; j < n; ++j) {
            SmxId smx = (cursor_ + j) % n;
            if (ctx_.fits(smx, *unit)) {
                ctx_.dispatchTb(*unit, smx, now);
                cursor_ = (smx + 1) % n;
                return true;
            }
        }
        blockedShapes_.push_back(shape);
        // This kernel's TB fits nowhere; concurrent kernel execution
        // lets the next KDU kernel try (Section II-B).
    }
    // Delayed units past the 64-unit window can't invalidate the memo:
    // the window's members are fixed until a dispatch or enqueue, and
    // both of those clear it.
    stuck_ = true;
    stuckReadyAt_ = earliestDelayed;
    return false;
}

Cycle
RrScheduler::nextReadyAt(Cycle) const
{
    // RR units are always immediately dispatchable (no priority-queue
    // overflow in the baseline); blocked dispatch resumes on SMX
    // events, which the GPU's clock-skip logic already tracks.
    return kNoCycle;
}

} // namespace laperm
