# Empty compiler generated dependencies file for bench_fig8_l1_hitrate.
# This may be replaced when dependencies are built.
