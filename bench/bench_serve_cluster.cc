/**
 * @file
 * Wall-clock self-benchmark of the layered serving stack (DESIGN.md
 * §15): assembles in-process clusters — N worker Servers sharing one
 * disk cache tier behind a consistent-hash BalancerHandler fronted by
 * its own Server — for every {unix, tcp} x {1, 2, 4 workers}
 * combination, drives a Zipf-skewed request mix through real client
 * sockets, and writes BENCH_serve_cluster.json with per-configuration
 *   - cold and cached throughput (requests per second),
 *   - the shed rate with half the workers down (structured overloaded
 *     responses for the lost share of the key space),
 *   - the cross-worker cache-hit rate after a simulated worker
 *     restart (every L1 dropped; replays must hit the shared tier).
 *
 * Environment:
 *   LAPERM_BENCH_REQUESTS  Zipf draws per cached phase (default 32)
 *   LAPERM_BENCH_UNIVERSE  distinct requests per cluster (default 16)
 *
 * Exits nonzero if a served payload diverges from the direct run, the
 * overload burst never sheds, or a restart replay finds no shared-tier
 * hit (the cross-worker dedup contract).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/experiment.hh"
#include "serve/client.hh"
#include "serve/cluster/balancer.hh"
#include "serve/service/service_handler.hh"
#include "serve/service/sim_request.hh"
#include "serve/session/server.hh"
#include "workloads/registry.hh"

using namespace laperm;
using namespace laperm::serve;

namespace {

std::uint64_t g_requests = 32;
std::uint64_t g_universe = 16;

SimRequest
tinyRequest(std::uint64_t seed)
{
    SimRequest req;
    req.workload = "bfs-cage";
    req.scale = Scale::Tiny;
    req.seed = seed;
    req.cfg = paperConfig();
    req.cfg.dynParModel = req.model;
    req.cfg.tbPolicy = req.policy;
    req.cfg.seed = seed;
    return req;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Endpoint
benchEndpoint(const std::string &transport, const std::string &tag)
{
    if (transport == "unix")
        return Endpoint::unixAt("bench_cluster_" + tag + ".sock");
    return Endpoint::tcpAt("127.0.0.1", 0); // kernel-assigned port
}

/**
 * One in-process cluster: what `laperm_served --cluster N` builds from
 * processes, built from objects so the bench measures the serving
 * stack, not fork/exec. Workers and the front listen on the transport
 * under test; every byte a client sees crossed a real socket twice.
 */
struct BenchCluster
{
    std::vector<std::unique_ptr<ServiceHandler>> handlers;
    std::vector<std::unique_ptr<Server>> workers;
    std::unique_ptr<BalancerHandler> balancer;
    std::unique_ptr<Server> front;
    Endpoint frontEndpoint;

    BenchCluster(const std::string &transport, std::size_t n,
                 const std::string &cacheDir, ServiceOptions base)
    {
        BalancerOptions bopts;
        for (std::size_t i = 0; i < n; ++i) {
            SessionOptions sopts;
            // Built with += : GCC 12's -Werror=restrict false-positives
            // on the (const char* + string&&) operator+ overload here.
            std::string tag = "w";
            tag += std::to_string(i);
            sopts.endpoint = benchEndpoint(transport, tag);
            ServiceOptions wopts = base;
            wopts.cacheDir = cacheDir;
            handlers.push_back(
                std::make_unique<ServiceHandler>(std::move(wopts)));
            workers.push_back(
                std::make_unique<Server>(sopts, *handlers.back()));
            std::string err;
            if (!workers.back()->start(err)) {
                std::fprintf(stderr, "worker start: %s\n", err.c_str());
                std::exit(1);
            }
            bopts.workers.push_back(workers.back()->boundEndpoint());
        }
        bopts.connectRetries = 4;
        bopts.backoffMs = 20;
        balancer = std::make_unique<BalancerHandler>(std::move(bopts));

        SessionOptions fopts;
        fopts.endpoint = benchEndpoint(transport, "front");
        front = std::make_unique<Server>(fopts, *balancer);
        std::string err;
        if (!front->start(err)) {
            std::fprintf(stderr, "front start: %s\n", err.c_str());
            std::exit(1);
        }
        frontEndpoint = front->boundEndpoint();
    }

    ~BenchCluster()
    {
        if (front)
            front->stop();
        balancer.reset(); // close worker links before the workers go
        for (auto &w : workers)
            w->stop();
    }

    ServiceMetrics aggregate() const
    {
        ServiceMetrics sum;
        for (const auto &h : handlers) {
            const ServiceMetrics m = h->service().metrics();
            sum.requests += m.requests;
            sum.executed += m.executed;
            sum.cacheHits += m.cacheHits;
            sum.cacheMemHits += m.cacheMemHits;
            sum.cacheSharedHits += m.cacheSharedHits;
            sum.shed += m.shed;
        }
        return sum;
    }
};

struct CallResult
{
    std::string status;
    bool cached = false;
    std::string payload;
};

bool
submit(Client &client, const SimRequest &req, CallResult &out,
       std::string &err)
{
    JsonObject resp;
    if (!client.call(req.toJson(), resp, err))
        return false;
    getString(resp, "status", out.status);
    if (resp.count("cached"))
        out.cached = resp.at("cached").boolean;
    getString(resp, "result", out.payload);
    return true;
}

struct PhaseResult
{
    double seconds = 0.0;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    bool identical = true;
};

/** Submit @p seeds through one connection, verifying expectations. */
PhaseResult
drive(const Endpoint &ep, const std::vector<std::uint64_t> &seeds,
      bool expectCached, const std::string &direct1)
{
    PhaseResult r;
    ClientOptions copts;
    copts.endpoint = ep;
    copts.overloadRetries = 0;
    Client client(copts);
    std::string err;
    if (!client.connect(err)) {
        std::fprintf(stderr, "client connect: %s\n", err.c_str());
        r.identical = false;
        return r;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (const std::uint64_t seed : seeds) {
        CallResult out;
        if (!submit(client, tinyRequest(seed), out, err)) {
            std::fprintf(stderr, "call: %s\n", err.c_str());
            r.identical = false;
            continue;
        }
        if (out.status != kStatusOk) {
            std::fprintf(stderr, "unexpected status %s\n",
                         out.status.c_str());
            r.identical = false;
            continue;
        }
        ++r.ok;
        if (out.cached != expectCached)
            r.identical = false;
        if (seed == 1 && out.payload != direct1) {
            std::fprintf(stderr,
                         "FAIL: served payload differs from direct\n");
            r.identical = false;
        }
    }
    r.seconds = secondsSince(t0);
    return r;
}

struct ConfigResult
{
    std::string transport;
    std::size_t workersN = 0;
    double coldRps = 0.0;
    double cachedRps = 0.0;
    double shedRate = 0.0;
    double crossWorkerHitRate = 0.0;
    std::uint64_t restartSharedHits = 0;
    bool identical = true;
};

ConfigResult
runConfig(const std::string &transport, std::size_t n)
{
    ConfigResult result;
    result.transport = transport;
    result.workersN = n;

    const std::string cacheDir = "bench_cluster_cache.tmp";
    std::filesystem::remove_all(cacheDir);

    // The determinism pin: what a daemon-free run of seed 1 produces.
    const SimRequest probe = tinyRequest(1);
    auto w = createWorkload(probe.workload);
    w->setup(probe.scale, probe.seed);
    const std::string direct1 =
        runOneRecord(*w, probe.cfg, std::string()).encode();

    ServiceOptions base;
    base.jobs = 2;
    base.fingerprint = "bench-cluster";
    base.queueCapacity = g_universe + g_requests;

    {
        BenchCluster cluster(transport, n, cacheDir, base);

        // Phase 1 — cold: every distinct request once.
        std::vector<std::uint64_t> coldSeeds;
        for (std::uint64_t s = 1; s <= g_universe; ++s)
            coldSeeds.push_back(s);
        const PhaseResult cold = drive(cluster.frontEndpoint, coldSeeds,
                                       /*expectCached=*/false, direct1);
        result.identical = result.identical && cold.identical;
        result.coldRps =
            static_cast<double>(cold.ok) / cold.seconds;

        // Phase 2 — cached: a Zipf-skewed replay mix (s = 1.1, the
        // shape bench_serve_cluster pins in the Rng regression test).
        Rng zipf(42);
        std::vector<std::uint64_t> mix;
        for (std::uint64_t i = 0; i < g_requests; ++i)
            mix.push_back(1 + zipf.nextZipf(g_universe, 1.1));
        const PhaseResult cached = drive(cluster.frontEndpoint, mix,
                                         /*expectCached=*/true, direct1);
        result.identical = result.identical && cached.identical;
        result.cachedRps =
            static_cast<double>(cached.ok) / cached.seconds;

        // Phase 3 — restart: drop every worker's L1 (what killing and
        // respawning the processes does) and replay; hits must come
        // off the shared disk tier, proving cross-incarnation dedup.
        const std::uint64_t sharedBefore =
            cluster.aggregate().cacheSharedHits;
        for (auto &h : cluster.handlers)
            h->service().dropMemoryCache();
        const PhaseResult replay = drive(cluster.frontEndpoint, mix,
                                         /*expectCached=*/true, direct1);
        result.identical = result.identical && replay.identical;
        result.restartSharedHits =
            cluster.aggregate().cacheSharedHits - sharedBefore;
        result.crossWorkerHitRate =
            static_cast<double>(result.restartSharedHits) /
            static_cast<double>(replay.ok ? replay.ok : 1);
    }

    // Phase 4 — shed: fresh cluster with the upper half of its workers
    // taken down (all of them when n == 1). The balancer's per-worker
    // link serializes requests, so worker admission never overflows
    // through it; the cluster-level shedding path is worker LOSS —
    // requests whose keys land on a downed worker degrade to the
    // structured overloaded response after the reconnect budget, while
    // survivors keep serving their share of the key space.
    {
        std::filesystem::remove_all(cacheDir);
        BenchCluster cluster(transport, n, cacheDir, base);
        for (std::size_t i = n / 2; i < n; ++i)
            cluster.workers[i]->stop();

        const std::uint64_t burst = g_universe;
        std::vector<std::string> statuses(burst);
        std::vector<std::thread> threads;
        for (std::uint64_t i = 0; i < burst; ++i) {
            threads.emplace_back([&, i] {
                ClientOptions copts;
                copts.endpoint = cluster.frontEndpoint;
                copts.overloadRetries = 0;
                Client client(copts);
                std::string err;
                CallResult out;
                if (client.connect(err) &&
                    submit(client, tinyRequest(5000 + i), out, err))
                    statuses[i] = out.status;
            });
        }
        for (auto &t : threads)
            t.join();
        std::uint64_t shed = 0;
        for (const std::string &s : statuses)
            shed += (s == kStatusOverloaded);
        result.shedRate = static_cast<double>(shed) /
                          static_cast<double>(burst);
    }
    std::filesystem::remove_all(cacheDir);
    return result;
}

} // namespace

int
main()
{
    setVerbose(false);
    if (const char *env = std::getenv("LAPERM_BENCH_REQUESTS")) {
        const long v = std::atol(env);
        if (v > 0)
            g_requests = static_cast<std::uint64_t>(v);
    }
    if (const char *env = std::getenv("LAPERM_BENCH_UNIVERSE")) {
        const long v = std::atol(env);
        if (v > 0)
            g_universe = static_cast<std::uint64_t>(v);
    }

    std::vector<ConfigResult> results;
    for (const char *transport : {"unix", "tcp"}) {
        for (const std::size_t n : {std::size_t(1), std::size_t(2),
                                    std::size_t(4)}) {
            results.push_back(runConfig(transport, n));
            const ConfigResult &r = results.back();
            std::printf("%-4s x%zu: cold %.1f req/s, cached %.1f "
                        "req/s, shed %.2f, cross-worker hits %.2f\n",
                        r.transport.c_str(), r.workersN, r.coldRps,
                        r.cachedRps, r.shedRate,
                        r.crossWorkerHitRate);
        }
    }

    bool ok = true;
    std::ofstream json("BENCH_serve_cluster.json");
    json << "{\n"
         << "  \"bench\": \"serve_cluster\",\n"
         << "  \"requests\": " << g_requests << ",\n"
         << "  \"universe\": " << g_universe << ",\n"
         << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ConfigResult &r = results[i];
        if (!r.identical || r.restartSharedHits == 0 ||
            r.shedRate <= 0.0)
            ok = false;
        json << "    {\"transport\": \"" << r.transport
             << "\", \"workers\": " << r.workersN
             << ", \"req_per_sec_cold\": " << r.coldRps
             << ", \"req_per_sec_cached\": " << r.cachedRps
             << ", \"shed_rate\": " << r.shedRate
             << ", \"cross_worker_hit_rate\": " << r.crossWorkerHitRate
             << ", \"restart_shared_hits\": " << r.restartSharedHits
             << ", \"payload_identical\": "
             << (r.identical ? "true" : "false") << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    std::printf("  wrote BENCH_serve_cluster.json\n");

    if (!ok) {
        std::fprintf(stderr, "FAIL: cluster bench contract violated "
                             "(identity, shared hits, or shedding)\n");
        return 1;
    }
    return 0;
}
