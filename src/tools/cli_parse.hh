/**
 * @file
 * Checked numeric parsing for CLI flags, shared by laperm_sim,
 * laperm_submit and laperm_served. strtoul-family calls silently
 * accept `--seed 12abc` (parses "12"), `--jobs -3` (wraps to a huge
 * unsigned) and overflow (clamps to max with errno nobody checks) —
 * and a config that half-parsed is worse than one that failed,
 * because the run *looks* configured. These helpers accept exactly
 * `[0-9]+` within range and report everything else, so each tool can
 * fail loudly with its own error policy (usage(), laperm_fatal, ...).
 */

#ifndef LAPERM_TOOLS_CLI_PARSE_HH
#define LAPERM_TOOLS_CLI_PARSE_HH

#include <cstdint>

namespace laperm {
namespace cli {

/**
 * Parse a base-10 unsigned 64-bit value. Accepts only `[0-9]+` — no
 * sign, no whitespace, no trailing junk, no overflow. @p out is
 * untouched on failure.
 */
inline bool
parseU64(const char *s, std::uint64_t &out)
{
    if (s == nullptr || *s == '\0')
        return false;
    std::uint64_t v = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        const std::uint64_t d = static_cast<std::uint64_t>(*p - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false; // overflow
        v = v * 10 + d;
    }
    out = v;
    return true;
}

/** parseU64 restricted to 32-bit range. */
inline bool
parseU32(const char *s, std::uint32_t &out)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v) || v > 0xFFFFFFFFull)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

} // namespace cli
} // namespace laperm

#endif // LAPERM_TOOLS_CLI_PARSE_HH
