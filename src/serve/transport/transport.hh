/**
 * @file
 * Transport layer of the serving stack (DESIGN.md §15.1): byte streams
 * and connection lifecycle, nothing else. A Connection moves
 * newline-delimited frames; a Listener accepts Connections; listenOn /
 * connectTo turn an Endpoint into either. The layer knows no protocol
 * verbs and no service types — sessions (serve/session) and services
 * (serve/service) stack on top, and sim-lint's layering pass enforces
 * that this directory never includes them.
 *
 * Framing note: every frame is one line of 7-bit-clean JSON terminated
 * by '\n', so frames are self-delimiting byte streams with no
 * multi-byte wire integers — there is nothing to byte-swap. The only
 * place host byte order can leak onto the network is the TCP
 * address/port pair, which is converted explicitly (htons/htonl) in
 * transport.cc.
 *
 * All functions report failure via return value + @p err instead of
 * throwing; SIGPIPE is avoided with MSG_NOSIGNAL so callers never need
 * signal handlers.
 */

#ifndef LAPERM_SERVE_TRANSPORT_TRANSPORT_HH
#define LAPERM_SERVE_TRANSPORT_TRANSPORT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/transport/endpoint.hh"

namespace laperm {
namespace serve {

/**
 * One accepted or established stream connection. Owns the fd; the
 * destructor closes it. Thread-compatible: one reader and one writer
 * at a time (the session layer serializes request/response per
 * connection).
 */
class Connection
{
  public:
    explicit Connection(int fd);
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return fd_; }

    /** Send all of @p data (handles partial writes, no SIGPIPE). */
    bool writeAll(const std::string &data);

    /**
     * Read one '\n'-terminated frame into @p line (terminator
     * stripped). Bytes past the frame stay buffered for the next
     * call. False on EOF/error with no complete frame buffered.
     */
    bool readLine(std::string &line);

    /** Bound the time a read may block (0 = no timeout). */
    bool setRecvTimeout(std::uint64_t ms);

    /**
     * Force any blocked reader/writer on this connection to return
     * (shutdown(2) both directions); the fd stays valid until the
     * destructor closes it.
     */
    void shutdownBoth();

  private:
    int fd_ = -1;
    std::string carry_; ///< bytes received past the last frame
};

/**
 * A bound, listening endpoint. accept() blocks until a connection
 * arrives; wake() forces a blocked accept() to return null so an
 * owning thread can be joined. The destructor closes the socket and,
 * for Unix listeners, unlinks the socket file.
 */
class Listener
{
  public:
    virtual ~Listener() = default;

    /** Blocks; null on wake()/close or fatal accept error. */
    virtual std::unique_ptr<Connection> accept() = 0;

    /** Unblock a pending accept() permanently. */
    virtual void wake() = 0;

    /**
     * The endpoint actually bound. For tcp:HOST:0 this carries the
     * kernel-assigned port, so tests and benches can listen on an
     * ephemeral port and hand the real address to clients.
     */
    virtual const Endpoint &boundEndpoint() const = 0;
};

/**
 * Bind and listen on @p ep. Unix endpoints recover stale socket files
 * (a file nobody accepts on is unlinked and rebound; a live listener
 * yields an "already has a listener" error). TCP endpoints set
 * SO_REUSEADDR so a restarted daemon rebinds without waiting out
 * TIME_WAIT. Returns null with @p err set on failure.
 */
std::unique_ptr<Listener> listenOn(const Endpoint &ep, int backlog,
                                   std::string &err);

/** Connect to @p ep. Returns null with @p err set on failure. */
std::unique_ptr<Connection> connectTo(const Endpoint &ep,
                                      std::string &err);

} // namespace serve
} // namespace laperm

#endif // LAPERM_SERVE_TRANSPORT_TRANSPORT_HH
