#include "gpu/kmu.hh"

#include <algorithm>

#include "common/log.hh"

namespace laperm {

void
Kmu::push(PendingLaunch launch)
{
    launch.seq = nextSeq_++;
    store_.push_back(std::move(launch));
    Iter it = std::prev(store_.end());
    latent_.push({it->readyAt, it->seq, it});
    ++count_;
}

void
Kmu::promote(Cycle now)
{
    while (!latent_.empty() && latent_.top().readyAt <= now) {
        Iter it = latent_.top().it;
        latent_.pop();
        std::uint32_t level = it->priority;
        if (ready_.size() <= level)
            ready_.resize(level + 1);
        ready_[level].push_back(it);
    }
}

PendingLaunch *
Kmu::peekReady(Cycle now, bool priority_order)
{
    promote(now);
    if (priority_order) {
        for (std::size_t level = ready_.size(); level-- > 0;) {
            if (!ready_[level].empty())
                return &*ready_[level].front();
        }
        return nullptr;
    }
    // FCFS: the minimum sequence number over the level fronts (launch
    // latency is constant per model, so readiness order == seq order
    // within a level).
    PendingLaunch *best = nullptr;
    for (auto &level : ready_) {
        if (!level.empty()) {
            PendingLaunch *cand = &*level.front();
            if (!best || cand->seq < best->seq)
                best = cand;
        }
    }
    return best;
}

void
Kmu::pop(PendingLaunch *launch)
{
    auto &level = ready_[launch->priority];
    laperm_assert(!level.empty() && &*level.front() == launch,
                  "pop must target the peeked launch");
    Iter it = level.front();
    level.pop_front();
    store_.erase(it);
    --count_;
}

Cycle
Kmu::nextReadyAt() const
{
    for (const auto &level : ready_) {
        if (!level.empty())
            return level.front()->readyAt;
    }
    if (!latent_.empty())
        return latent_.top().readyAt;
    return kNoCycle;
}

} // namespace laperm
