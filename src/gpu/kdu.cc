#include "gpu/kdu.hh"

#include "common/log.hh"

namespace laperm {

Kdu::Kdu(std::uint32_t entries) : entries_(entries)
{
    laperm_assert(entries_ > 0, "KDU needs at least one entry");
}

KernelInstance *
Kdu::admitKernel(std::uint32_t function_id, std::uint32_t threads_per_tb,
                 std::uint32_t total_tbs, bool is_device, Cycle now,
                 std::uint32_t tenant)
{
    laperm_assert(hasFreeEntry(), "KDU admission with no free entry");
    ++occupied_;
    kernels_.emplace_back();
    KernelInstance &k = kernels_.back();
    k.id = nextId_++;
    k.functionId = function_id;
    k.threadsPerTb = threads_per_tb;
    k.totalTbs = total_tbs;
    k.isDevice = is_device;
    k.tenant = tenant;
    k.admitCycle = now;
    return &k;
}

std::uint32_t
Kdu::coalesceTbs(KernelInstance *kernel, std::uint32_t count)
{
    laperm_assert(!kernel->complete(), "coalescing onto a finished kernel");
    std::uint32_t first = kernel->totalTbs;
    kernel->totalTbs += count;
    return first;
}

DispatchUnit *
Kdu::createUnit()
{
    units_.emplace_back();
    units_.back().seq = nextUnitSeq_++;
    return &units_.back();
}

void
Kdu::tbFinished(KernelInstance *kernel)
{
    ++kernel->finishedTbs;
    laperm_assert(kernel->finishedTbs <= kernel->totalTbs,
                  "kernel %u finished more TBs than it has", kernel->id);
    if (kernel->complete()) {
        laperm_assert(occupied_ > 0, "KDU underflow");
        --occupied_;
    }
}

KernelInstance *
Kdu::findMatch(std::uint32_t function_id,
               std::uint32_t threads_per_tb, std::uint32_t tenant) const
{
    for (const auto &k : kernels_) {
        if (!k.complete() && k.functionId == function_id &&
            k.threadsPerTb == threads_per_tb && k.tenant == tenant) {
            return const_cast<KernelInstance *>(&k);
        }
    }
    return nullptr;
}

} // namespace laperm
