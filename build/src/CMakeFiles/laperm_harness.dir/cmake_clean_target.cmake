file(REMOVE_RECURSE
  "liblaperm_harness.a"
)
