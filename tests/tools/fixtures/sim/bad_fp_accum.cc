// sim-lint fixture: undocumented floating-point accumulation in
// simulator code must be flagged; integer accumulation must not be.
// Not compiled — parsed by test_sim_lint.cc.
#include <vector>

double
meanLatency(const std::vector<double> &samples)
{
    double sum = 0.0;
    unsigned long count = 0;
    for (double s : samples) {
        sum += s;
        count += 1; // integer accumulator: must NOT be flagged
    }
    return count ? sum / count : 0.0;
}
