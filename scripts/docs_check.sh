#!/usr/bin/env bash
# docs-check: keep the docs and the build in lockstep.
#
# Forward rule: every bench target (bench/CMakeLists.txt) and example
# (examples/CMakeLists.txt) must be mentioned in EXPERIMENTS.md or
# DESIGN.md — an undocumented binary is a doc gap.
#
# Reverse rules: every `bench_*` token and every `examples/<name>`
# reference in the docs must name a real build target; every `--flag`
# inside a fenced code block that invokes a laperm CLI binary
# (laperm_sim, laperm_submit, laperm_served) must be a real flag of one
# of the binaries that block mentions; and every protocol verb
# (`"op":"..."`) in the docs must exist in serve/service/protocol.hh —
# a stale doc reference is a doc bug.
#
# Serving rules: the serving binaries and every protocol verb declared
# in src/serve/service/protocol.hh must be documented (README.md or
# DESIGN.md).
#
# sim-lint rules: every lint rule the analyzer can emit (ruleName() in
# src/tools/sim_lint.cc) must be documented in DESIGN.md, every rule
# name the docs cite must exist, and `sim_lint` joins the CLI binaries
# whose documented flags are checked against their sources.
#
# Preset rules: every hardware preset in the registry (the kPresets
# table in src/sim/presets.cc, one entry per line) must be documented
# (backticked) in both README.md and DESIGN.md, and every `--preset X`
# example anywhere in the docs must name a real preset — same
# two-direction pattern as the sim-lint rule<->doc check.
#
# Tenant-metric rules: every fairness/tail metric the multi-tenant
# sweep emits (the TSV header literal in src/harness/tenant_sweep.cc)
# must be documented (backticked) in DESIGN.md §14, and every
# backticked metric-shaped token in the docs must be one the sweep
# actually emits; every `--tenants X` example must name a builtin mix
# or a .toml file.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
    echo "docs-check: $*" >&2
    fail=1
}

docs="EXPERIMENTS.md DESIGN.md"
all_docs="README.md EXPERIMENTS.md DESIGN.md"

# --- Collect build targets ---------------------------------------------
bench_targets=$(grep -oE '\bbench_[a-z0-9_]+\b' bench/CMakeLists.txt |
    sort -u)
# The examples CMakeLists declares its targets in one foreach(example
# ...) list, possibly spanning lines.
example_targets=$(tr '\n' ' ' <examples/CMakeLists.txt |
    sed -E 's/.*foreach\(example ([a-z0-9_ ]+)\).*/\1/' |
    tr -s ' ' '\n' | grep -vE '^$' | sort -u)

[ -n "$bench_targets" ] || err "could not extract bench targets"
[ -n "$example_targets" ] || err "could not extract example targets"

# --- Forward: every binary is documented -------------------------------
for t in $bench_targets; do
    if ! grep -q "$t" $docs; then
        err "bench target '$t' is not mentioned in EXPERIMENTS.md or DESIGN.md"
    fi
done
for e in $example_targets; do
    if ! grep -qE "(examples/)?$e" $docs; then
        err "example '$e' is not mentioned in EXPERIMENTS.md or DESIGN.md"
    fi
done

# --- Reverse: every documented binary exists ---------------------------
# A trailing dot means a data file ("bench_output.txt"), not a target.
# Membership tests use herestrings, not `echo | grep -q`: under
# pipefail, grep -q exiting at the first match can SIGPIPE the echo
# and turn a successful lookup into a spurious failure.
doc_bench=$(grep -ohP '\bbench_[a-z0-9_]+\b(?!\.)' $all_docs | sort -u)
for t in $doc_bench; do
    if ! grep -qx "$t" <<<"$bench_targets"; then
        err "docs reference unknown bench target '$t'"
    fi
done
doc_examples=$(grep -ohE '\bexamples/[a-z0-9_]+\b' $all_docs |
    sed 's#examples/##' | sort -u)
for e in $doc_examples; do
    # Accept source-file references (examples/foo.cpp strips to foo).
    if ! grep -qx "$e" <<<"$example_targets"; then
        err "docs reference unknown example '$e'"
    fi
done

# --- Forward: serving binaries and protocol verbs are documented -------
for b in laperm_served laperm_submit; do
    if ! grep -q "$b" $all_docs; then
        err "binary '$b' is not mentioned in any doc"
    fi
done
verbs=$(grep -oE 'kVerb[A-Za-z]+ = "[a-z]+"' src/serve/service/protocol.hh |
    grep -oE '"[a-z]+"' | tr -d '"' | sort -u)
[ -n "$verbs" ] || err "could not extract protocol verbs"
for v in $verbs; do
    if ! grep -q "\"op\":\"$v\"" DESIGN.md; then
        err "protocol verb '$v' is not documented in DESIGN.md"
    fi
done

# --- Reverse: documented protocol verbs exist ---------------------------
doc_verbs=$(grep -ohE '"op":"[a-z]+"' $all_docs |
    sed -E 's/.*:"([a-z]+)"/\1/' | sort -u)
for v in $doc_verbs; do
    if ! grep -qx "$v" <<<"$verbs"; then
        err "docs reference unknown protocol verb '$v'"
    fi
done

# --- Reverse: documented CLI flags exist --------------------------------
# Every fenced code block is classified by which laperm CLI binaries it
# mentions; each `--flag` in the block must be a string literal in at
# least one of those binaries' sources.
sim_flags=$(grep -ohE '"--[a-z0-9-]+"' src/tools/laperm_sim.cc |
    tr -d '"' | sort -u)
submit_flags=$(grep -ohE '"--[a-z0-9-]+"' src/tools/laperm_submit.cc |
    tr -d '"' | sort -u)
served_flags=$(grep -ohE '"--[a-z0-9-]+"' src/tools/laperm_served.cc |
    tr -d '"' | sort -u)
lint_flags=$(grep -ohE '"--[a-z0-9-]+"' src/tools/sim_lint_main.cc |
    tr -d '"' | sort -u)
bad_flags=$(awk \
    -v sim="$sim_flags" -v submit="$submit_flags" \
    -v served="$served_flags" -v lint="$lint_flags" '
    function load(list, set,   n, a, i) {
        n = split(list, a, "\n")
        for (i = 1; i <= n; i++) set[a[i]] = 1
    }
    BEGIN {
        load(sim, simf); load(submit, subf); load(served, serf)
        load(lint, lintf)
    }
    function checkblock(   n, parts, i, f, ok, hasSim, hasSub, hasSer,
                           hasLint) {
        hasSim = block ~ /laperm_sim([^a-z_]|$)/
        hasSub = block ~ /laperm_submit/
        hasSer = block ~ /laperm_served/
        hasLint = block ~ /(^|[^a-z_.])sim_lint([^a-z_]|$)/
        if (!hasSim && !hasSub && !hasSer && !hasLint) return
        n = split(block, parts, /[[:space:]]+/)
        for (i = 1; i <= n; i++) {
            f = parts[i]
            if (f !~ /^--[a-z0-9-]+$/) continue
            ok = (hasSim && (f in simf)) || (hasSub && (f in subf)) ||
                 (hasSer && (f in serf)) || (hasLint && (f in lintf))
            if (!ok) print f
        }
    }
    /^```/ {
        if (inblock) checkblock()
        inblock = !inblock
        block = ""
        next
    }
    inblock { block = block "\n" $0 }
    ' $all_docs | sort -u)
for f in $bad_flags; do
    err "docs reference flag '$f' unknown to the binaries in its code block"
done
doc_flags=$(awk '
    /^```/ {
        if (inblock && block ~ /laperm_/) print block
        inblock = !inblock
        block = ""
        next
    }
    inblock { block = block "\n" $0 }
    ' $all_docs | grep -oE '(^|[[:space:]])--[a-z0-9-]+' |
    tr -d ' \t' | sort -u)

# --- sim-lint rules: emitted <-> documented ----------------------------
# "unknown" is ruleName()'s defensive default arm, not a rule.
lint_rules=$(grep -oE 'return "[a-z][a-z-]+";' src/tools/sim_lint.cc |
    sed -E 's/return "([a-z-]+)";/\1/' | grep -vx unknown | sort -u)
[ -n "$lint_rules" ] || err "could not extract sim-lint rule names"
for r in $lint_rules; do
    if ! grep -q "\`$r\`" DESIGN.md; then
        err "sim-lint rule '$r' is not documented in DESIGN.md"
    fi
done
# Reverse: every `rule-name` cited in DESIGN.md §12's rule tables (the
# backticked kebab-case tokens that look like rules, i.e. appear in a
# sim-lint allow() or rule-list context) must be a real rule.
doc_rules=$(grep -ohE 'allow\([a-z-]+\)' $all_docs |
    sed -E 's/allow\(([a-z-]+)\)/\1/' | sort -u)
for r in $doc_rules; do
    if ! grep -qx "$r" <<<"$lint_rules"; then
        err "docs reference unknown sim-lint rule '$r' in an allow()"
    fi
done

# --- Hardware presets: registry <-> docs, both directions --------------
presets=$(grep -oE '^\s*\{"[a-z0-9]+",' src/sim/presets.cc |
    grep -oE '"[a-z0-9]+"' | tr -d '"' | sort -u)
[ -n "$presets" ] || err "could not extract preset names from presets.cc"
for p in $presets; do
    for d in README.md DESIGN.md; do
        if ! grep -q "\`$p\`" "$d"; then
            err "preset '$p' is not documented (backticked) in $d"
        fi
    done
done
doc_presets=$(grep -ohE '\-\-preset[= ][a-z0-9]+' $all_docs |
    sed -E 's/--preset[= ]//' | sort -u)
for p in $doc_presets; do
    if ! grep -qx "$p" <<<"$presets"; then
        err "docs reference unknown preset '$p' after --preset"
    fi
done

# --- Tenant metrics: sweep TSV header <-> DESIGN.md, both directions ---
tenant_hdr=$(grep -A1 '"# mix preset policy' src/harness/tenant_sweep.cc)
tenant_metrics=$(grep -ohE '\b(ANTT|STP|Jain|p(50|95|99))\b' \
    <<<"$tenant_hdr" | sort -u)
[ -n "$tenant_metrics" ] ||
    err "could not extract tenant metric names from tenant_sweep.cc"
for m in $tenant_metrics; do
    if ! grep -q "\`$m\`" DESIGN.md; then
        err "tenant metric '$m' is not documented (backticked) in DESIGN.md"
    fi
done
doc_metrics=$(grep -ohE '`(ANTT|STP|Jain|p[0-9]+)`' $all_docs |
    tr -d '\`' | sort -u)
for m in $doc_metrics; do
    # `p100` is a hardware preset, not a percentile — skip anything the
    # preset registry already claims.
    if grep -qx "$m" <<<"$presets"; then
        continue
    fi
    if ! grep -qx "$m" <<<"$tenant_metrics"; then
        err "docs reference unknown tenant metric '$m'"
    fi
done
# --tenants examples must name a builtin mix (or point at a TOML file).
mixes=$(grep -oE 'm\.name = "[a-z0-9-]+"' src/tenant/mixes.cc |
    grep -oE '"[a-z0-9-]+"' | tr -d '"' | sort -u)
[ -n "$mixes" ] || err "could not extract builtin mix names from mixes.cc"
doc_mixes=$(grep -ohE '\-\-tenants[= ][a-z0-9.-]+' $all_docs |
    sed -E 's/--tenants[= ]//' | grep -v '\.toml$' | sort -u)
for m in $doc_mixes; do
    if ! grep -qx "$m" <<<"$mixes"; then
        err "docs reference unknown builtin mix '$m' after --tenants"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED" >&2
    exit 1
fi
echo "docs-check: OK ($(echo "$bench_targets" | wc -l) bench targets, \
$(echo "$example_targets" | wc -l) examples, \
$(echo "$verbs" | wc -l) protocol verbs, \
$(echo "$doc_flags" | grep -c -- --) documented flags, \
$(echo "$lint_rules" | wc -l) sim-lint rules, \
$(echo "$presets" | wc -l) presets, \
$(echo "$tenant_metrics" | wc -l) tenant metrics checked)"
