#include "serve/service/protocol.hh"

#include <cctype>
#include <cstdlib>

namespace laperm {
namespace serve {

namespace {

struct Cursor
{
    const std::string &s;
    std::size_t i = 0;

    bool eof() const { return i >= s.size(); }
    char peek() const { return s[i]; }

    void skipWs()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
    }
};

bool
parseString(Cursor &c, std::string &out, std::string &err)
{
    if (c.eof() || c.peek() != '"') {
        err = "expected string";
        return false;
    }
    ++c.i;
    out.clear();
    while (!c.eof()) {
        char ch = c.s[c.i++];
        if (ch == '"')
            return true;
        if (ch == '\\') {
            if (c.eof()) {
                err = "dangling escape";
                return false;
            }
            char esc = c.s[c.i++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            default:
                // \uXXXX never appears in this protocol's traffic.
                err = "unsupported escape";
                return false;
            }
        } else {
            out += ch;
        }
    }
    err = "unterminated string";
    return false;
}

bool
parseValue(Cursor &c, JsonValue &out, std::string &err)
{
    c.skipWs();
    if (c.eof()) {
        err = "expected value";
        return false;
    }
    const char ch = c.peek();
    if (ch == '"') {
        out.type = JsonValue::Type::String;
        return parseString(c, out.str, err);
    }
    if (ch == '{' || ch == '[') {
        err = "nested objects/arrays are not part of the protocol";
        return false;
    }
    if (ch == 't' || ch == 'f') {
        const char *word = ch == 't' ? "true" : "false";
        const std::size_t len = ch == 't' ? 4 : 5;
        if (c.s.compare(c.i, len, word) != 0) {
            err = "bad literal";
            return false;
        }
        c.i += len;
        out.type = JsonValue::Type::Bool;
        out.boolean = ch == 't';
        return true;
    }
    if (ch == 'n') {
        if (c.s.compare(c.i, 4, "null") != 0) {
            err = "bad literal";
            return false;
        }
        c.i += 4;
        out.type = JsonValue::Type::Null;
        return true;
    }
    // Number: capture the raw token; validation happens at access.
    const std::size_t start = c.i;
    if (ch == '-')
        ++c.i;
    bool digits = false;
    while (!c.eof()) {
        const char d = c.peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
            digits = true;
            ++c.i;
        } else if (d == '.' || d == 'e' || d == 'E' || d == '+' ||
                   d == '-') {
            ++c.i;
        } else {
            break;
        }
    }
    if (!digits) {
        err = "expected value";
        return false;
    }
    out.type = JsonValue::Type::Number;
    out.str = c.s.substr(start, c.i - start);
    return true;
}

} // namespace

bool
parseJsonObject(const std::string &text, JsonObject &out, std::string &err)
{
    Cursor c{text};
    c.skipWs();
    if (c.eof() || c.peek() != '{') {
        err = "expected '{'";
        return false;
    }
    ++c.i;
    out.clear();
    c.skipWs();
    if (!c.eof() && c.peek() == '}') {
        ++c.i;
    } else {
        for (;;) {
            c.skipWs();
            std::string key;
            if (!parseString(c, key, err))
                return false;
            c.skipWs();
            if (c.eof() || c.peek() != ':') {
                err = "expected ':'";
                return false;
            }
            ++c.i;
            JsonValue v;
            if (!parseValue(c, v, err))
                return false;
            if (!out.emplace(key, std::move(v)).second) {
                err = "duplicate key '" + key + "'";
                return false;
            }
            c.skipWs();
            if (c.eof()) {
                err = "unterminated object";
                return false;
            }
            if (c.peek() == ',') {
                ++c.i;
                continue;
            }
            if (c.peek() == '}') {
                ++c.i;
                break;
            }
            err = "expected ',' or '}'";
            return false;
        }
    }
    c.skipWs();
    if (!c.eof()) {
        err = "trailing characters after object";
        return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += ch;
        }
    }
    return out;
}

bool
getString(const JsonObject &obj, const std::string &key, std::string &out)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.type != JsonValue::Type::String)
        return false;
    out = it->second.str;
    return true;
}

bool
getU64(const JsonObject &obj, const std::string &key, std::uint64_t &out)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.type != JsonValue::Type::Number)
        return false;
    const std::string &raw = it->second.str;
    if (raw.empty() || raw[0] == '-' ||
        raw.find_first_of(".eE") != std::string::npos) {
        return false;
    }
    char *end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

std::string
errorResponse(const std::string &status, const std::string &message)
{
    return "{\"status\":\"" + jsonEscape(status) + "\",\"message\":\"" +
           jsonEscape(message) + "\"}";
}

} // namespace serve
} // namespace laperm
