/**
 * @file
 * Content-addressed, fingerprint-versioned result cache shared by the
 * sweep harness (harness/experiment.cc) and the serving subsystem
 * (src/serve).
 *
 * Three pieces:
 *
 *  - ResultRecord: the canonical single-line encoding of one
 *    simulation's statistics. Doubles are stored with %.17g so they
 *    round-trip bit-exactly; every consumer-facing rendering (the
 *    laperm_sim --csv row, the sweep-harness TSV row) regenerated from
 *    a record is byte-identical to one produced directly from the
 *    simulation. This is the determinism contract of the serve layer.
 *
 *  - ResultCache: payload files keyed either by an explicit path (the
 *    sweep TSV) or by a content key (served requests). Every file
 *    starts with a "# laperm-cache fingerprint=<hex>" line; a load
 *    whose fingerprint differs from the current simulator fingerprint
 *    is treated as a miss, so entries written by an older binary
 *    self-invalidate instead of silently serving stale results.
 *
 *  - simFingerprint(): build-time content hash over the simulator
 *    sources (cmake/GenFingerprint.cmake), overridable through the
 *    LAPERM_SIM_FINGERPRINT environment variable for tests.
 */

#ifndef LAPERM_HARNESS_RESULT_CACHE_HH
#define LAPERM_HARNESS_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.hh" // fnv1a64 / contentKey, re-exported for callers
#include "sim/config.hh"
#include "sim/stats.hh"

namespace laperm {

struct RunResult; // harness/experiment.hh

/** Build-time simulator fingerprint (env LAPERM_SIM_FINGERPRINT wins). */
std::string simFingerprint();

/** Cache directory: $LAPERM_CACHE_DIR, default "cache". */
std::string cacheRootDir();

/**
 * Canonical record of one simulation run: every counter both the
 * laperm_sim CSV report and the sweep harness TSV derive from.
 */
struct ResultRecord
{
    std::string workload;
    DynParModel model = DynParModel::CDP;
    TbPolicy policy = TbPolicy::RR;

    /**
     * Machine-config content hash (sim/config_loader.hh machineHash).
     * Empty means "the default k20c machine"; encode() materializes
     * the default hash so every stored record is self-describing.
     */
    std::string config;

    std::uint64_t cycles = 0;
    std::uint64_t launches = 0;    ///< GpuStats::deviceLaunches
    std::uint64_t dynamicTbs = 0;
    std::uint64_t bound = 0;       ///< GpuStats::boundDispatches
    std::uint64_t overflows = 0;   ///< GpuStats::queueOverflows
    std::uint64_t kduStalls = 0;   ///< GpuStats::kduFullStalls
    double ipc = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double util = 0.0;
    double imbalance = 0.0;

    /** @p config_hash empty means the default (k20c) machine. */
    static ResultRecord fromStats(const std::string &workload,
                                  DynParModel model, TbPolicy policy,
                                  const GpuStats &stats,
                                  const std::string &config_hash =
                                      std::string());

    /** Single-line "v1 k=v ..." encoding; doubles round-trip exactly. */
    std::string encode() const;

    /** Parse encode() output; false on malformed/missing fields. */
    static bool decode(const std::string &line, ResultRecord &out);

    /** The laperm_sim --csv row (no trailing newline). */
    std::string csvRow() const;

    /**
     * csvRow() plus a trailing config-hash column; pairs with
     * statsCsvHeaderWithConfig(). Used only for non-default machines so
     * the default-config CSV stays byte-identical across releases.
     */
    std::string csvRowWithConfig() const;

    /** True when the record's machine differs from the k20c default. */
    bool customMachine() const;

    /** Convert to the sweep harness metric row. */
    RunResult toRunResult() const;
};

/** Header row matching ResultRecord::csvRow (no trailing newline). */
const char *statsCsvHeader();

/** Header row matching ResultRecord::csvRowWithConfig. */
const char *statsCsvHeaderWithConfig();

/**
 * Serialize sweep results in the harness TSV format (header comment +
 * one row per cell, ostream default float formatting — the format
 * cached under sweepCachePath() and printed by laperm_submit --batch).
 *
 * When every row's preset is "k20c" the legacy 12-column format is
 * emitted byte-identically to pre-preset releases; any other preset
 * switches the whole table to the extended format with a leading
 * "preset" column. decodeSweepTsv() accepts both.
 */
std::string encodeSweepTsv(const std::vector<RunResult> &rows);

/** Parse encodeSweepTsv output (either format); false on a bad row. */
bool decodeSweepTsv(const std::string &tsv, std::vector<RunResult> &out);

/**
 * Fingerprint-gated payload storage. Not itself thread-safe per entry;
 * writers use a write-temp-then-rename so readers never observe a
 * partial file (the serve layer additionally single-flights identical
 * keys, see serve/service.hh).
 */
class ResultCache
{
  public:
    /** Empty dir/fingerprint select cacheRootDir()/simFingerprint(). */
    explicit ResultCache(std::string dir = std::string(),
                         std::string fingerprint = std::string());

    const std::string &dir() const { return dir_; }
    const std::string &fingerprint() const { return fingerprint_; }

    /** File backing a content key: "<dir>/results/<key>.rec". */
    std::string entryPath(const std::string &key) const;

    /** Load a content-keyed payload; false on miss or stale entry. */
    bool load(const std::string &key, std::string &payload) const;

    /** Store a content-keyed payload (creates directories). */
    bool store(const std::string &key, const std::string &payload) const;

    /**
     * Load a payload from an explicit path, validating the embedded
     * fingerprint; false on miss, stale fingerprint, or bad header.
     */
    bool loadFile(const std::string &path, std::string &payload) const;

    /** Atomically write fingerprint header + payload to @p path. */
    bool storeFile(const std::string &path,
                   const std::string &payload) const;

  private:
    std::string dir_;
    std::string fingerprint_;
};

/**
 * Two-tier cache for the serve layer (DESIGN.md §15.3): a per-process
 * in-memory map (L1) in front of the fingerprint-gated on-disk
 * ResultCache (L2). The disk tier is SHARED — every worker of a
 * cluster points at the same directory, so a result computed by one
 * worker is a (promoted) hit for all of them, across process restarts.
 *
 * probe() distinguishes where a hit came from: Memory means this
 * process stored or already promoted the entry; Shared means the bytes
 * came off disk — i.e. another process (or a previous incarnation of
 * this one) paid for the run. That distinction is what the
 * cross-worker cache-hit metrics count.
 *
 * Thread-safe; disk writes go through ResultCache's unique-temp
 * rename, so concurrent writers of one key are last-writer-wins with
 * no torn reads.
 */
class TieredResultCache
{
  public:
    /** Empty dir/fingerprint select cacheRootDir()/simFingerprint(). */
    explicit TieredResultCache(std::string dir = std::string(),
                               std::string fingerprint = std::string());

    enum class Tier
    {
        Miss,
        Memory, ///< in-process L1
        Shared, ///< on-disk L2; entry was promoted to L1
    };

    /** Look up @p key; fills @p payload unless Miss. */
    Tier probe(const std::string &key, std::string &payload);

    /** Write through: disk first, then the in-memory tier. */
    bool store(const std::string &key, const std::string &payload);

    /**
     * Drop the in-memory tier (what a worker restart does to L1). The
     * shared tier is untouched; the next probe of a stored key reports
     * Shared. Tests and the cluster bench use this to measure
     * cross-worker / cross-incarnation hits without forking.
     */
    void dropMemory();

    std::size_t memorySize() const;
    const std::string &fingerprint() const
    {
        return disk_.fingerprint();
    }
    const ResultCache &shared() const { return disk_; }

  private:
    ResultCache disk_;
    mutable std::mutex mu_;
    std::map<std::string, std::string> mem_;
};

} // namespace laperm

#endif // LAPERM_HARNESS_RESULT_CACHE_HH
