/**
 * @file
 * Workload interface: a benchmark application instance (Table II) that
 * lays out its data in simulated memory, computes its functional result
 * on the CPU, and exposes the sequence of host kernel launches whose
 * threads replay the application's memory/compute/launch schedule.
 */

#ifndef LAPERM_WORKLOADS_WORKLOAD_HH
#define LAPERM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bump_alloc.hh"
#include "kernels/isa.hh"

namespace laperm {

/** Input sizing presets. */
enum class Scale
{
    Tiny,  ///< unit tests: milliseconds of simulation
    Small, ///< bench default: seconds per simulation
    Full,  ///< closest to the paper's inputs (slow)
    Huge,  ///< sized for the big presets (p100/v100 actually loaded)
};

const char *toString(Scale scale);

/** Parse "tiny"/"small"/"full"/"huge" (case-insensitive); fatal on error. */
Scale scaleFromString(const std::string &name);

/** Scale selected by the LAPERM_SCALE environment variable (or @p def). */
Scale scaleFromEnv(Scale def = Scale::Small);

/**
 * A benchmark application bound to one input data set.
 *
 * Lifecycle: construct, setup() once, then waves() may be replayed on
 * any number of Gpu instances (traces are const after setup).
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Application short name, e.g. "bfs". */
    virtual std::string app() const = 0;

    /** Input data set name, e.g. "citation". */
    virtual std::string input() const = 0;

    /** "app-input" identifier used by the registry and benches. */
    std::string fullName() const { return app() + "-" + input(); }

    /** Generate inputs, compute reference results, lay out memory. */
    virtual void setup(Scale scale, std::uint64_t seed) = 0;

    /**
     * Rebase the simulated address space before setup() (multi-tenant
     * runs give each tenant a disjoint slice so co-resident workloads
     * never alias in the shared caches). Calling after setup() is a
     * programming error.
     */
    virtual void setMemoryBase(Addr base) = 0;

    /**
     * Host kernel launches in order; each wave is synchronized (the
     * next host launch waits for the previous wave and all of its
     * dynamic children), matching the benchmarks' host loops.
     */
    virtual const std::vector<LaunchRequest> &waves() const = 0;

    /** Bytes of simulated device memory the workload allocated. */
    virtual std::size_t footprintBytes() const = 0;
};

/** Shared plumbing for the concrete workloads. */
class WorkloadBase : public Workload
{
  public:
    const std::vector<LaunchRequest> &waves() const override
    {
        return waves_;
    }

    void setMemoryBase(Addr base) override;

    std::size_t footprintBytes() const override
    {
        return mem_.totalBytes();
    }

  protected:
    BumpAllocator mem_;
    std::vector<LaunchRequest> waves_;
    std::uint64_t seed_ = 1;
    Scale scale_ = Scale::Small;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_WORKLOAD_HH
