#include "harness/tenant_sweep.hh"

#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "harness/thread_pool.hh"
#include "sim/presets.hh"
#include "tenant/mixes.hh"
#include "tenant/tenant_manager.hh"

namespace laperm {

namespace {

constexpr TbPolicy kPolicies[] = {TbPolicy::RR, TbPolicy::TbPri,
                                  TbPolicy::SmxBind,
                                  TbPolicy::AdaptiveBind};
constexpr std::size_t kNumPolicies = std::size(kPolicies);

std::vector<TenantSweepRow>
cellRows(const std::string &mix_name, const std::string &preset,
         TbPolicy policy, const tenant::MixStudy &study)
{
    std::vector<TenantSweepRow> rows;
    for (const tenant::TenantMetrics &tm : study.metrics.perTenant) {
        TenantSweepRow r;
        r.mix = mix_name;
        r.preset = preset;
        r.policy = policy;
        r.tenant = tm.name;
        r.tenantId = tm.tenant;
        r.jobs = tm.jobs;
        r.antt = tm.antt;
        r.p50 = tm.p50;
        r.p95 = tm.p95;
        r.p99 = tm.p99;
        r.retiredTbs = tm.retiredTbs;
        r.mixAntt = study.metrics.antt;
        r.mixStp = study.metrics.stp;
        r.mixJain = study.metrics.jain;
        r.makespan = study.metrics.makespan;
        rows.push_back(std::move(r));
    }
    return rows;
}

bool
loadGroup(const std::string &path, const std::string &mix_name,
          const std::string &preset, std::size_t tenants,
          std::vector<TenantSweepRow> &out)
{
    ResultCache cache;
    std::string payload;
    if (!cache.loadFile(path, payload))
        return false;
    std::vector<TenantSweepRow> rows;
    if (!decodeTenantSweepTsv(payload, rows))
        return false;
    // The group file must hold exactly this (mix, preset) under every
    // policy with the expected tenant count; anything else (e.g. a mix
    // definition that changed shape) regenerates.
    if (rows.size() != kNumPolicies * tenants)
        return false;
    std::size_t ix = 0;
    for (TbPolicy p : kPolicies) {
        for (std::size_t t = 0; t < tenants; ++t, ++ix) {
            const TenantSweepRow &r = rows[ix];
            if (r.mix != mix_name || r.preset != preset ||
                r.policy != p || r.tenantId != t) {
                return false;
            }
        }
    }
    out = std::move(rows);
    return true;
}

} // namespace

std::string
encodeTenantSweepTsv(const std::vector<TenantSweepRow> &rows)
{
    std::ostringstream out;
    out << "# mix preset policy tenant tenantId jobs ANTT p50 p95 p99 "
           "retiredTbs mixANTT STP Jain makespan\n";
    for (const TenantSweepRow &r : rows) {
        out << r.mix << ' ' << r.preset << ' '
            << static_cast<int>(r.policy) << ' ' << r.tenant << ' '
            << r.tenantId << ' ' << r.jobs << ' '
            << logFormat("%.17g", r.antt) << ' ' << r.p50 << ' '
            << r.p95 << ' ' << r.p99 << ' ' << r.retiredTbs << ' '
            << logFormat("%.17g", r.mixAntt) << ' '
            << logFormat("%.17g", r.mixStp) << ' '
            << logFormat("%.17g", r.mixJain) << ' ' << r.makespan
            << '\n';
    }
    return out.str();
}

bool
decodeTenantSweepTsv(const std::string &tsv,
                     std::vector<TenantSweepRow> &out)
{
    std::istringstream in(tsv);
    std::vector<TenantSweepRow> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        TenantSweepRow r;
        int pi;
        if (!(ls >> r.mix >> r.preset >> pi >> r.tenant >> r.tenantId >>
              r.jobs >> r.antt >> r.p50 >> r.p95 >> r.p99 >>
              r.retiredTbs >> r.mixAntt >> r.mixStp >> r.mixJain >>
              r.makespan)) {
            return false;
        }
        r.policy = static_cast<TbPolicy>(pi);
        rows.push_back(std::move(r));
    }
    out = std::move(rows);
    return true;
}

std::string
tenantSweepCachePath(const std::string &mix, const std::string &preset,
                     std::uint64_t seed)
{
    return logFormat("%s/laperm_tenants_%s_%s_%llu.tsv",
                     cacheRootDir().c_str(), mix.c_str(), preset.c_str(),
                     static_cast<unsigned long long>(seed));
}

std::vector<TenantSweepRow>
runTenantSweep(const std::vector<std::string> &mixes,
               const std::vector<std::string> &presets,
               std::uint64_t seed, bool use_cache, unsigned jobs)
{
    const char *no_cache = std::getenv("LAPERM_NO_CACHE");
    if (no_cache && *no_cache == '1')
        use_cache = false;
    if (jobs == 0)
        jobs = ThreadPool::defaultJobs();

    // Resolve every axis value up front so a typo dies with the
    // structured known-names error before any simulation runs.
    struct Group
    {
        tenant::MixSpec mix;
        std::string preset;
        std::string path;
        std::vector<TenantSweepRow> rows; ///< filled from cache or run
        bool cached = false;
    };
    std::vector<Group> groups;
    for (const std::string &mix_name : mixes) {
        const tenant::MixSpec mix = tenant::builtinMix(mix_name);
        for (const std::string &preset : presets) {
            presetConfig(preset); // fatal on unknown preset
            Group g;
            g.mix = mix;
            g.preset = preset;
            g.path = tenantSweepCachePath(mix_name, preset, seed);
            groups.push_back(std::move(g));
        }
    }

    for (Group &g : groups) {
        if (use_cache && loadGroup(g.path, g.mix.name, g.preset,
                                   g.mix.tenants.size(), g.rows)) {
            g.cached = true;
        }
    }

    // One job per (group x policy) cell, each owning its device and
    // workload instances and writing a preassigned slot — the output
    // (and the cache TSVs) are byte-identical at any worker count.
    std::vector<std::vector<TenantSweepRow>> cells(groups.size() *
                                                   kNumPolicies);
    {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, cells.size())));
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            if (groups[gi].cached)
                continue;
            for (std::size_t pi = 0; pi < kNumPolicies; ++pi) {
                const std::size_t slot = gi * kNumPolicies + pi;
                pool.submit([&, gi, pi, slot] {
                    const Group &g = groups[gi];
                    GpuConfig cfg = presetConfig(g.preset);
                    cfg.tickMode = paperConfig().tickMode;
                    cfg.tbPolicy = kPolicies[pi];
                    cfg.seed = seed;
                    tenant::MixStudy study =
                        tenant::runMixStudy(g.mix, cfg);
                    cells[slot] = cellRows(g.mix.name, g.preset,
                                           kPolicies[pi], study);
                    laperm_inform(
                        "mix %s %s/%s: ANTT=%.2f STP=%.2f Jain=%.3f",
                        g.mix.name.c_str(), g.preset.c_str(),
                        toString(kPolicies[pi]), study.metrics.antt,
                        study.metrics.stp, study.metrics.jain);
                });
            }
        }
        pool.wait();
    }

    std::vector<TenantSweepRow> out;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        Group &g = groups[gi];
        if (!g.cached) {
            for (std::size_t pi = 0; pi < kNumPolicies; ++pi) {
                for (TenantSweepRow &r : cells[gi * kNumPolicies + pi])
                    g.rows.push_back(std::move(r));
            }
            if (use_cache) {
                ResultCache cache;
                cache.storeFile(g.path, encodeTenantSweepTsv(g.rows));
            }
        }
        for (TenantSweepRow &r : g.rows)
            out.push_back(std::move(r));
    }
    return out;
}

} // namespace laperm
