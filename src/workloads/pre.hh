/**
 * @file
 * Product-recommendation workload (Table II: MovieLens).
 */

#ifndef LAPERM_WORKLOADS_PRE_HH
#define LAPERM_WORKLOADS_PRE_HH

#include "workloads/workload.hh"

namespace laperm {

/**
 * Item-based collaborative filtering [34][35]: a profile wave builds
 * per-user aggregates; a recommend wave spawns a child launch per
 * heavy user whose threads score that user's rated items against the
 * shared (Zipf-hot) item feature table.
 */
class PreWorkload : public WorkloadBase
{
  public:
    std::string app() const override { return "pre"; }
    std::string input() const override { return "movielens"; }
    void setup(Scale scale, std::uint64_t seed) override;
};

} // namespace laperm

#endif // LAPERM_WORKLOADS_PRE_HH
