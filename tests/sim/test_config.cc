#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/stats.hh"

using namespace laperm;

TEST(Config, DefaultsValidate)
{
    GpuConfig cfg;
    cfg.validate(); // must not fatal
    EXPECT_EQ(cfg.numSmx, 13u);
}

TEST(Config, EffectiveOnchipEntriesLimitedForCdp)
{
    GpuConfig cfg;
    cfg.onchipQueueEntries = 128;
    cfg.kduEntries = 32;
    cfg.dynParModel = DynParModel::CDP;
    EXPECT_EQ(cfg.effectiveOnchipEntries(), 32u);
    cfg.dynParModel = DynParModel::DTBL;
    EXPECT_EQ(cfg.effectiveOnchipEntries(), 128u);
}

TEST(Config, ToStringNames)
{
    EXPECT_STREQ(toString(TbPolicy::RR), "RR");
    EXPECT_STREQ(toString(TbPolicy::TbPri), "TB-Pri");
    EXPECT_STREQ(toString(TbPolicy::SmxBind), "SMX-Bind");
    EXPECT_STREQ(toString(TbPolicy::AdaptiveBind), "Adaptive-Bind");
    EXPECT_STREQ(toString(DynParModel::CDP), "CDP");
    EXPECT_STREQ(toString(DynParModel::DTBL), "DTBL");
    EXPECT_STREQ(toString(WarpPolicy::GTO), "GTO");
}

TEST(Config, SummaryMentionsPolicy)
{
    GpuConfig cfg;
    cfg.tbPolicy = TbPolicy::AdaptiveBind;
    EXPECT_NE(cfg.summary().find("Adaptive-Bind"), std::string::npos);
}

TEST(Stats, CacheHitRate)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.0);
    s.accesses = 10;
    s.hits = 4;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.4);
}

TEST(Stats, CacheAdd)
{
    CacheStats a, b;
    a.accesses = 5;
    a.hits = 2;
    b.accesses = 3;
    b.hits = 1;
    a.add(b);
    EXPECT_EQ(a.accesses, 8u);
    EXPECT_EQ(a.hits, 3u);
}

TEST(Stats, GpuIpcAndAggregates)
{
    GpuStats s;
    s.cycles = 100;
    s.smx.resize(2);
    s.smx[0].threadInstructions = 300;
    s.smx[1].threadInstructions = 200;
    s.smx[0].busyCycles = 80;
    s.smx[1].busyCycles = 40;
    EXPECT_DOUBLE_EQ(s.ipc(), 5.0);
    EXPECT_DOUBLE_EQ(s.avgSmxUtilization(), 0.6);
    EXPECT_DOUBLE_EQ(s.smxImbalance(), 0.5);
}

TEST(Stats, L1TotalAggregates)
{
    GpuStats s;
    s.l1.resize(3);
    for (auto &c : s.l1) {
        c.accesses = 10;
        c.hits = 5;
    }
    EXPECT_EQ(s.l1Total().accesses, 30u);
    EXPECT_DOUBLE_EQ(s.l1Total().hitRate(), 0.5);
}
