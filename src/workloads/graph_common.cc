#include "workloads/graph_common.hh"

#include "common/log.hh"

namespace laperm {

void
GraphLayout::allocate(BumpAllocator &mem, const Csr &csr,
                      bool with_weights)
{
    const std::uint32_t n = csr.numVertices();
    const std::uint64_t m = csr.numEdges();
    rowOff = mem.allocArray(n + 1, 8, "rowOff");
    cols = mem.allocArray(m ? m : 1, 4, "cols");
    if (with_weights)
        weights = mem.allocArray(m ? m : 1, 4, "weights");
    vdata = mem.allocArray(n, 4, "vdata");
    mask = mem.allocArray(n, 1, "mask");
    prio = mem.allocArray(n, 8, "prio");
    params = mem.allocArray(n, 16, "params");
    worklist = mem.allocArray(n, 4, "worklist");
}

Csr
buildGraphInput(const std::string &input, Scale scale, std::uint64_t seed)
{
    std::uint32_t n;
    std::uint32_t rmat_scale;
    std::uint32_t deg;
    std::uint32_t band;
    switch (scale) {
      case Scale::Tiny:
        n = 3000;
        rmat_scale = 11;
        deg = 8;
        band = 128;
        break;
      case Scale::Small:
        n = 64000;
        rmat_scale = 16;
        deg = 16;
        band = 2048;
        break;
      case Scale::Full:
        n = 200000;
        rmat_scale = 17;
        deg = 16;
        band = 4096;
        break;
      case Scale::Huge:
        n = 500000;
        rmat_scale = 18;
        deg = 16;
        band = 8192;
        break;
      default:
        n = 3000;
        rmat_scale = 11;
        deg = 8;
        band = 128;
        break;
    }
    if (input == "citation")
        return genCitation(n, deg, seed);
    if (input == "graph500")
        return genRmat(rmat_scale, deg, seed);
    if (input == "cage") {
        // The band keeps neighbors at nearby indices (the cage15
        // property the paper highlights) while leaving BFS frontiers
        // wide enough to oversubscribe the device.
        return genCage(n, band, deg, seed);
    }
    laperm_fatal("unknown graph input '%s'", input.c_str());
}

std::uint32_t
pickSource(const Csr &csr)
{
    std::uint32_t best = 0;
    for (std::uint32_t v = 0; v < csr.numVertices(); ++v) {
        if (csr.degree(v) > csr.degree(best))
            best = v;
    }
    return best;
}

} // namespace laperm
